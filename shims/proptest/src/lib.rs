//! Minimal offline stand-in for `proptest`.
//!
//! Implements the generate-and-assert core of the proptest API the
//! workspace's property tests use: the [`proptest!`] macro, [`Strategy`]
//! with `prop_map`, `any::<T>()`, range and tuple strategies, [`Just`],
//! `prop_oneof!` (plain and weighted arms), `prop::collection::vec`, and
//! the `prop_assert*` macros.
//!
//! Differences from the real crate, on purpose:
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the message instead of a minimized counterexample.
//! * **Deterministic seeding.** Cases derive from a fixed per-test seed
//!   (hash of the test name), so failures reproduce exactly on re-run.

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 source used to drive all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Per-test configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator. The real crate's `Strategy` produces shrinkable value
/// trees; this one produces plain values.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U: std::fmt::Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
    U: std::fmt::Debug,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + std::fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy form of [`Arbitrary`].
#[derive(Clone, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — uniform over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// One weighted arm of a [`OneOf`]: (weight, value generator).
pub type OneOfArm<V> = (u32, Box<dyn Fn(&mut TestRng) -> V>);

/// Weighted union of same-valued strategies, built by [`prop_oneof!`].
pub struct OneOf<V> {
    arms: Vec<OneOfArm<V>>,
    total_weight: u64,
}

impl<V> OneOf<V> {
    pub fn new(arms: Vec<OneOfArm<V>>) -> OneOf<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        OneOf { arms, total_weight }
    }
}

impl<V: std::fmt::Debug> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (w, gen) in &self.arms {
            if pick < *w as u64 {
                return gen(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is uniform in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// Namespace mirror so `prop::collection::vec` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Build a [`OneOf`](crate::OneOf) from strategy arms, optionally weighted
/// (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, {
                let s = $strategy;
                Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::generate(&s, rng))
                    as Box<dyn Fn(&mut $crate::TestRng) -> _>
            })),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, {
                let s = $strategy;
                Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::generate(&s, rng))
                    as Box<dyn Fn(&mut $crate::TestRng) -> _>
            })),+
        ])
    };
}

/// Assert inside a property; panics (no shrinking) with the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// The `proptest!` test-block macro: each contained `#[test] fn` runs its
/// body `cases` times against freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        Push(u64),
        Pop,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in 10u32..=12, f in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..=12).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f), "f = {}", f);
        }

        #[test]
        fn vec_and_oneof(ops in prop::collection::vec(
            prop_oneof![any::<u64>().prop_map(Op::Push), Just(Op::Pop)],
            0..20,
        )) {
            prop_assert!(ops.len() < 20);
        }

        #[test]
        fn weighted_arms(v in prop_oneof![3 => Just(1u8), 1 => Just(2u8)]) {
            let v: u8 = v;
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn tuples_compose(pair in (any::<u8>(), 0u8..6).prop_map(|(a, b)| (a, b))) {
            prop_assert!(pair.1 < 6);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
