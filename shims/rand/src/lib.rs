//! Minimal offline stand-in for `rand` 0.8.
//!
//! Provides `rngs::SmallRng`, [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer and float ranges — the subset the
//! workspace uses. The generator is splitmix64: deterministic under a fixed
//! seed (which the balancer tests rely on) and statistically solid for
//! load-spreading purposes.

use std::ops::Range;

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniform sample (mirrors `rand`'s trait of the
/// same name, for the `Range` forms the workspace uses).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo bias is < span/2^64 — irrelevant for load spreading.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast deterministic RNG (splitmix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.gen_range(0usize..7);
            assert_eq!(x, b.gen_range(0usize..7));
            assert!(x < 7);
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn float_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&x));
        }
    }
}
