//! Minimal offline stand-in for `crossbeam-utils`.
//!
//! Only [`CachePadded`] is provided — the one item the workspace uses. The
//! alignment (128 bytes) matches what the real crate picks on x86_64, where
//! the adjacent-line prefetcher makes a pair of 64-byte lines the effective
//! false-sharing unit.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to avoid false sharing between cache lines.
#[derive(Clone, Copy, Default, Debug)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_and_transparent() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        let mut p = CachePadded::new(7u64);
        *p += 1;
        assert_eq!(*p, 8);
        assert_eq!(p.into_inner(), 8);
    }
}
