//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's non-poisoning `lock()`
//! signature. A poisoned lock yields the inner guard — matching parking_lot,
//! which has no poisoning at all.

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Mutex with the `parking_lot::Mutex` API (no poisoning, infallible lock).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }
}
