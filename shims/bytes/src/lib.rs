//! Minimal offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply clonable immutable buffer (an `Arc<Vec<u8>>`
//! without the real crate's zero-copy slicing — LVRM never slices).
//! [`BytesMut`] + [`BufMut`] cover the big-endian append API the frame
//! builder uses. Semantics match the real crate for this subset: `put_u16`
//! and `put_u32` write network byte order.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Cheaply clonable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::new(data.to_vec()) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Default, Debug, Clone)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Append-style writer trait (the subset of `bytes::BufMut` LVRM uses).
/// Multi-byte integers are written big-endian (network byte order), like the
/// real crate.
pub trait BufMut {
    fn put_slice(&mut self, s: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_is_big_endian() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x04050607);
        b.put_slice(&[8]);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3, 4, 5, 6, 7, 8]);
        let clone = frozen.clone();
        assert_eq!(frozen, clone);
    }

    #[test]
    fn bytesmut_indexable() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&[9, 9, 9]);
        b[1..3].copy_from_slice(&[1, 2]);
        assert_eq!(&b[..], &[9, 1, 2]);
    }
}
