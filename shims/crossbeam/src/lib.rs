//! Minimal offline stand-in for `crossbeam`.
//!
//! Only `queue::ArrayQueue` is provided, backed by a mutexed `VecDeque`
//! rather than the real lock-free ring. The sole user is the frame pool's
//! free list (`lvrm-net::pool`), which is not on the measured hot path, so
//! the simpler implementation keeps identical semantics at acceptable cost.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Bounded MPMC queue with the `crossbeam::queue::ArrayQueue` API.
    pub struct ArrayQueue<T> {
        inner: Mutex<VecDeque<T>>,
        cap: usize,
    }

    impl<T> ArrayQueue<T> {
        /// Create a queue holding at most `cap` items (`cap > 0`).
        pub fn new(cap: usize) -> ArrayQueue<T> {
            assert!(cap > 0, "capacity must be positive");
            ArrayQueue { inner: Mutex::new(VecDeque::with_capacity(cap)), cap }
        }

        /// Push, handing the item back when full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if q.len() >= self.cap {
                return Err(value);
            }
            q.push_back(value);
            Ok(())
        }

        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
        }

        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        pub fn capacity(&self) -> usize {
            self.cap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::ArrayQueue;

    #[test]
    fn bounded_fifo() {
        let q = ArrayQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.capacity(), 2);
    }
}
