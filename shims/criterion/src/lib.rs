//! Minimal offline stand-in for `criterion`.
//!
//! Implements the bench-definition API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_with_input`, `Bencher::iter`, `Throughput`, `BenchmarkId`) over a
//! small calibrating harness: each benchmark is warmed up, then measured in
//! batches until a time budget is spent, and the mean ns/iter plus derived
//! throughput is printed.
//!
//! No statistics, plots, or regression tracking — this exists so
//! `cargo bench` runs offline and produces comparable numbers between
//! configurations on the same machine.
//!
//! Env knobs: `LVRM_BENCH_BUDGET_MS` (measure budget per benchmark,
//! default 300), `LVRM_BENCH_WARMUP_MS` (default 100).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation; scales the printed per-second figure.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

/// Measurement driver handed to the bench closure.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by `iter`.
    mean_ns: f64,
    warmup: Duration,
    budget: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Run `f` repeatedly and record its mean wall-clock cost.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.mean_ns = 0.0;
            return;
        }
        // Warmup: also calibrates how many iterations fit the budget.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);

        let mut total_iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < self.budget {
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            total_iters += batch;
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / total_iters as f64;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    harness: &'a Harness,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the harness is budget-driven.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = self.harness.bencher();
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = self.harness.bencher();
        f(&mut b);
        self.report(&id.id, &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        if b.test_mode {
            println!("test {}/{} ... ok", self.name, id);
            return;
        }
        let mut line = format!("{}/{}: {:>12.1} ns/iter", self.name, id, b.mean_ns);
        match self.throughput {
            Some(Throughput::Elements(n)) if b.mean_ns > 0.0 => {
                let eps = n as f64 * 1e9 / b.mean_ns;
                line.push_str(&format!("  ({:.3} Melem/s)", eps / 1e6));
            }
            Some(Throughput::Bytes(n)) if b.mean_ns > 0.0 => {
                let bps = n as f64 * 1e9 / b.mean_ns;
                line.push_str(&format!("  ({:.1} MiB/s)", bps / (1024.0 * 1024.0)));
            }
            _ => {}
        }
        println!("{line}");
    }

    pub fn finish(&mut self) {}
}

struct Harness {
    warmup: Duration,
    budget: Duration,
    test_mode: bool,
}

impl Harness {
    fn bencher(&self) -> Bencher {
        Bencher {
            mean_ns: 0.0,
            warmup: self.warmup,
            budget: self.budget,
            test_mode: self.test_mode,
        }
    }
}

/// Top-level benchmark driver with the criterion entry API.
pub struct Criterion {
    harness: Harness,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let ms = |var: &str, default_ms: u64| {
            std::env::var(var).ok().and_then(|v| v.parse().ok()).unwrap_or(default_ms)
        };
        // `cargo test` runs harness=false bench targets with `--test`;
        // `cargo bench` passes `--bench`. In test mode run everything once.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            harness: Harness {
                warmup: Duration::from_millis(ms("LVRM_BENCH_WARMUP_MS", 100)),
                budget: Duration::from_millis(ms("LVRM_BENCH_BUDGET_MS", 300)),
                test_mode,
            },
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, harness: &self.harness }
    }
}

/// Defines a function that runs each listed bench with a shared `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Defines `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export for benches that use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            mean_ns: 0.0,
            warmup: Duration::from_millis(1),
            budget: Duration::from_millis(5),
            test_mode: false,
        };
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
    }
}
