//! Minimal offline stand-in for the `libc` crate.
//!
//! Declares exactly the glibc symbols, types, and constants the workspace
//! uses (CPU affinity, SysV shared memory, fork/waitpid). Constant values
//! and struct layouts match Linux/glibc on the architectures this repo
//! targets; anything else is out of scope.

#![allow(non_camel_case_types, non_snake_case)]

pub use std::ffi::c_void;

pub type c_int = i32;
pub type c_long = i64;
pub type size_t = usize;
pub type pid_t = i32;
pub type key_t = i32;

/// `cpu_set_t`: a 1024-bit CPU mask, as on Linux/glibc.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; 16],
}

pub fn CPU_ZERO(set: &mut cpu_set_t) {
    set.bits = [0; 16];
}

pub fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < 1024 {
        set.bits[cpu / 64] |= 1u64 << (cpu % 64);
    }
}

pub fn CPU_ISSET(cpu: usize, set: &cpu_set_t) -> bool {
    cpu < 1024 && set.bits[cpu / 64] & (1u64 << (cpu % 64)) != 0
}

// SysV IPC constants (Linux/glibc values).
pub const IPC_PRIVATE: key_t = 0;
pub const IPC_CREAT: c_int = 0o1000;
pub const IPC_RMID: c_int = 0;

// Signals (Linux/glibc values) — only what the graceful-shutdown path needs.
pub type sighandler_t = usize;
pub const SIG_ERR: sighandler_t = usize::MAX; // (sighandler_t)-1
pub const SIGHUP: c_int = 1;
pub const SIGINT: c_int = 2;
pub const SIGTERM: c_int = 15;
pub const SIGUSR1: c_int = 10;

// waitpid status decoding (Linux encoding).
pub fn WIFEXITED(status: c_int) -> bool {
    status & 0x7f == 0
}

pub fn WEXITSTATUS(status: c_int) -> c_int {
    (status >> 8) & 0xff
}

extern "C" {
    pub fn shmget(key: key_t, size: size_t, shmflg: c_int) -> c_int;
    pub fn shmat(shmid: c_int, shmaddr: *const c_void, shmflg: c_int) -> *mut c_void;
    pub fn shmdt(shmaddr: *const c_void) -> c_int;
    pub fn shmctl(shmid: c_int, cmd: c_int, buf: *mut c_void) -> c_int;
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *const cpu_set_t) -> c_int;
    pub fn sched_getcpu() -> c_int;
    pub fn fork() -> pid_t;
    pub fn _exit(status: c_int) -> !;
    pub fn waitpid(pid: pid_t, status: *mut c_int, options: c_int) -> pid_t;
    pub fn signal(signum: c_int, handler: sighandler_t) -> sighandler_t;
    pub fn raise(signum: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_set_ops() {
        let mut s: cpu_set_t = unsafe { std::mem::zeroed() };
        CPU_ZERO(&mut s);
        CPU_SET(3, &mut s);
        assert!(CPU_ISSET(3, &s));
        assert!(!CPU_ISSET(4, &s));
    }

    #[test]
    fn getcpu_answers() {
        let c = unsafe { sched_getcpu() };
        assert!(c >= 0);
    }
}
