//! The paper's extensibility claim, exercised: every combination of IPC
//! queue, balancer (frame/flow), and load estimator must forward traffic
//! correctly — "each component can support different variants of
//! implementation" without affecting the others (abstract, §1).

use lvrm::core::config::{BalancerKind, EstimatorKind};
use lvrm::prelude::*;
use lvrm::testbed::scenario::Scenario;
use lvrm::testbed::{ForwardingMech, VrSpec, VrType};

fn run_combo(
    queue_kind: QueueKind,
    balancer: BalancerKind,
    flow_based: bool,
    estimator: EstimatorKind,
) -> lvrm::testbed::ScenarioResult {
    let mut sc = Scenario::new(ForwardingMech::Lvrm);
    sc.duration_ns = 400_000_000;
    sc.warmup_ns = 100_000_000;
    sc.vrs = vec![VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 0 })];
    sc.lvrm.queue_kind = queue_kind;
    sc.lvrm.balancer = balancer;
    sc.lvrm.flow_based = flow_based;
    sc.lvrm.estimator = estimator;
    sc.lvrm.allocator = lvrm::core::config::AllocatorKind::Fixed { cores: 3 };
    sc.with_udp_load(0, 84, 100_000.0, 16).run()
}

#[test]
fn every_variant_combination_forwards_loss_free() {
    for queue_kind in QueueKind::ALL {
        for balancer in BalancerKind::ALL {
            for flow_based in [false, true] {
                for estimator in [EstimatorKind::QueueLength, EstimatorKind::InterArrival] {
                    let r = run_combo(queue_kind, balancer, flow_based, estimator);
                    assert!(
                        r.delivery_ratio() > 0.99,
                        "combo {:?}/{:?}/flow={}/{:?}: ratio {}",
                        queue_kind,
                        balancer,
                        flow_based,
                        estimator,
                        r.delivery_ratio()
                    );
                    let stats = r.lvrm_stats.expect("LVRM mech");
                    assert_eq!(stats.unclassified, 0);
                }
            }
        }
    }
}

#[test]
fn balancers_spread_work_across_vris() {
    for balancer in BalancerKind::ALL {
        let r = run_combo(QueueKind::Lamport, balancer, false, EstimatorKind::QueueLength);
        let dispatch = &r.per_vri_dispatches[0];
        assert_eq!(dispatch.len(), 3);
        let total: u64 = dispatch.iter().sum();
        for (i, d) in dispatch.iter().enumerate() {
            assert!(*d * 6 > total, "{balancer:?}: VRI {i} starved ({d} of {total}): {dispatch:?}");
        }
    }
}

#[test]
fn flow_based_balancing_pins_flows() {
    // With very few flows and JSQ underneath, flow stickiness means the
    // dispatch counts are multiples of whole flows, and fewer VRIs than
    // flows can be in use.
    let mut sc = Scenario::new(ForwardingMech::Lvrm);
    sc.duration_ns = 400_000_000;
    sc.warmup_ns = 100_000_000;
    sc.vrs = vec![VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 0 })];
    sc.lvrm.flow_based = true;
    sc.lvrm.allocator = lvrm::core::config::AllocatorKind::Fixed { cores: 3 };
    // One flow only: everything must land on a single VRI.
    let sc = sc.with_udp_load(0, 84, 50_000.0, 1);
    let r = sc.run();
    let dispatch = &r.per_vri_dispatches[0];
    let busy = dispatch.iter().filter(|d| **d > 0).count();
    // Two sources (hosts) => two flows => at most two VRIs touched.
    assert!(busy <= 2, "two flows must stick to at most two VRIs: {dispatch:?}");
    assert!(r.delivery_ratio() > 0.99);
}
