//! Inter-VRI routing-state synchronization over the control plane — the
//! paper's §2.1 example use of control queues, end to end through LVRM's
//! relay: VRI 0 learns a route, announces it to VRI 1, and both then
//! forward traffic for it identically.

use std::net::Ipv4Addr;

use lvrm::core::host::RecordingHost;
use lvrm::ipc::channels::{ControlEvent, Work};
use lvrm::prelude::*;
use lvrm::router::{DynamicVr, RouteUpdate};

#[test]
fn route_update_propagates_between_vris() {
    let clock = ManualClock::new();
    let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
    let config = LvrmConfig {
        allocator: lvrm::core::config::AllocatorKind::Fixed { cores: 2 },
        ..LvrmConfig::default()
    };
    let mut lvrm = Lvrm::new(config, cores, clock);
    let mut host = RecordingHost::default();
    let vr = lvrm.add_vr(
        "dyn",
        &[(Ipv4Addr::new(10, 0, 1, 0), 24)],
        Box::new(DynamicVr::new("dyn", RouteTable::new())),
        &mut host,
    );
    assert_eq!(lvrm.vri_count(vr), 2, "fixed allocator pre-assigns both VRIs");
    assert_eq!(host.endpoints.len(), 2);

    // Neither instance can route 10.0.2.0/24 yet.
    let frame = || {
        FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 5), Ipv4Addr::new(10, 0, 2, 9)).udp(5000, 80, &[])
    };
    lvrm.ingress(frame(), &mut host);
    host.pump();
    let mut out = Vec::new();
    lvrm.poll_egress(&mut out);
    assert!(out.is_empty(), "no route installed yet");

    // VRI 0 learns the route and announces it to VRI 1 via a control event.
    let update = RouteUpdate::Add(lvrm::router::Route {
        prefix: Ipv4Addr::new(10, 0, 2, 0),
        len: 24,
        iface: 1,
        next_hop: None,
    });
    let (vri0, vri1) = (host.spawned[0].vri, host.spawned[1].vri);
    // Apply locally at VRI 0 and emit the announcement upstream.
    {
        let (_, endpoint0, router0) = &mut host.endpoints[0];
        let dyn0 =
            router0.as_any_mut().downcast_mut::<DynamicVr>().expect("hosted router is a DynamicVr");
        dyn0.apply(&update);
        endpoint0.ctrl_tx.try_send(ControlEvent::new(vri0.0, vri1.0, update.to_bytes())).unwrap();
    }
    // LVRM relays the event to VRI 1, which applies it.
    lvrm.process_control();
    {
        let (_, endpoint1, router1) = &mut host.endpoints[1];
        match endpoint1.next_work() {
            Some(Work::Control(ev)) => {
                let dyn1 = router1
                    .as_any_mut()
                    .downcast_mut::<DynamicVr>()
                    .expect("hosted router is a DynamicVr");
                assert!(dyn1.apply_payload(&ev.payload), "payload is a route update");
            }
            other => panic!("expected relayed control event, got {other:?}"),
        }
    }
    assert_eq!(lvrm.stats().control_relayed, 1);

    // Now frames flow regardless of which VRI the balancer picks.
    for _ in 0..20 {
        lvrm.ingress(frame(), &mut host);
    }
    host.pump();
    lvrm.poll_egress(&mut out);
    assert_eq!(out.len(), 20, "both instances route the new prefix");
    assert!(out.iter().all(|f| f.egress_if == 1));
}
