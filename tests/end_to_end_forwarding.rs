//! Cross-crate integration: the full ingress→classify→balance→VRI→egress
//! workflow of paper §2.1, over real threads and over the in-process host.

use std::net::Ipv4Addr;

use lvrm::core::host::RecordingHost;
use lvrm::prelude::*;

fn subnet(a: u8, b: u8, c: u8) -> (Ipv4Addr, u8) {
    (Ipv4Addr::new(a, b, c, 0), 24)
}

fn routed_vr(name: &str) -> Box<dyn VirtualRouter> {
    let routes = lvrm::router::parse_map_file("10.0.2.0/24 1\n10.9.2.0/24 1\n").unwrap();
    Box::new(FastVr::new(name, routes))
}

#[test]
fn multi_vr_classification_and_forwarding() {
    let clock = ManualClock::new();
    let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
    let mut lvrm = Lvrm::new(LvrmConfig::default(), cores, clock);
    let mut host = RecordingHost::default();
    let a = lvrm.add_vr("dept-a", &[subnet(10, 0, 1)], routed_vr("a"), &mut host);
    let b = lvrm.add_vr("dept-b", &[subnet(10, 9, 1)], routed_vr("b"), &mut host);

    let mut out = Vec::new();
    for i in 0..200u16 {
        let (src, dst) = if i % 2 == 0 {
            (Ipv4Addr::new(10, 0, 1, 5), Ipv4Addr::new(10, 0, 2, 9))
        } else {
            (Ipv4Addr::new(10, 9, 1, 5), Ipv4Addr::new(10, 9, 2, 9))
        };
        let f = FrameBuilder::new(src, dst).udp(1000 + i, 80, &[0u8; 18]);
        lvrm.ingress(f, &mut host);
        host.pump();
        lvrm.poll_egress(&mut out);
    }
    assert_eq!(out.len(), 200);
    assert_eq!(lvrm.vr_frame_counts(a), (100, 100));
    assert_eq!(lvrm.vr_frame_counts(b), (100, 100));
    assert_eq!(lvrm.stats().unclassified, 0);
    assert!(out.iter().all(|f| f.egress_if == 1));
}

#[test]
fn threaded_runtime_forwards_and_reports_service_rate() {
    let clock = MonotonicClock::new();
    let n = lvrm::runtime::affinity::available_cores().max(1) as u16;
    let cores = CoreMap::new(CoreTopology::single_package(n), CoreId(0), AffinityMode::Same);
    let mut lvrm = Lvrm::new(LvrmConfig::default(), cores, clock.clone());
    let mut host = lvrm::runtime::ThreadHost::new(clock);
    let _vr = lvrm.add_vr("vr0", &[subnet(10, 0, 1)], routed_vr("t"), &mut host);

    let mut trace = Trace::generate(&TraceSpec::new(84, 16));
    let mut out = Vec::new();
    let t0 = std::time::Instant::now();
    let mut sent = 0u64;
    while out.len() < 2_000 && t0.elapsed().as_secs() < 30 {
        if sent < 2_000 {
            lvrm.ingress(trace.next_frame(), &mut host);
            sent += 1;
        }
        lvrm.process_control();
        lvrm.poll_egress(&mut out);
        if sent >= 2_000 {
            std::thread::yield_now();
        }
    }
    host.shutdown();
    lvrm.poll_egress(&mut out);
    let drops = lvrm.stats().dispatch_drops + lvrm.stats().no_vri_drops;
    assert_eq!(out.len() as u64 + drops, sent, "conservation across threads");
    assert!(out.len() > 1_000, "most frames should flow: {}", out.len());
}

#[test]
fn unroutable_frames_are_dropped_not_misdelivered() {
    let clock = ManualClock::new();
    let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
    let mut lvrm = Lvrm::new(LvrmConfig::default(), cores, clock);
    let mut host = RecordingHost::default();
    // The VR routes only 10.0.2.0/24.
    let vr = lvrm.add_vr("strict", &[subnet(10, 0, 1)], routed_vr("s"), &mut host);
    let mut out = Vec::new();
    // Frame to an unrouted destination: classified (source matches) but the
    // VR drops it.
    let f =
        FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 5), Ipv4Addr::new(172, 16, 0, 1)).udp(1, 2, &[]);
    lvrm.ingress(f, &mut host);
    host.pump();
    lvrm.poll_egress(&mut out);
    assert!(out.is_empty());
    assert_eq!(lvrm.vr_frame_counts(vr).0, 1, "the VR did see the frame");
}
