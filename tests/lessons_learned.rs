//! The paper's §4.6 "Lessons Learned", encoded as executable assertions
//! over the simulated testbed. If a refactor breaks one of the paper's
//! conclusions, these tests say so in the paper's own terms.

use lvrm::core::config::AllocatorKind;
use lvrm::core::SocketKind;
use lvrm::testbed::scenario::{search_achievable, Scenario, SourceSpec, TcpFlowSpec};
use lvrm::testbed::tcp::TcpConfig;
use lvrm::testbed::traffic::{RateSchedule, SourceKind};
use lvrm::testbed::{ForwardingMech, HypervisorKind, VrSpec, VrType};

fn throughput_84b(mech: ForwardingMech, socket: SocketKind) -> f64 {
    search_achievable(
        |rate| {
            let mut sc = Scenario::new(mech);
            sc.socket = socket;
            sc.duration_ns = 150_000_000;
            sc.warmup_ns = 50_000_000;
            sc.with_udp_load(0, 84, rate, 8)
        },
        20_000.0,
        1_500_000.0,
        5,
    )
}

/// Lesson 1: "LVRM itself incurs minimal performance overhead in data
/// forwarding in terms of throughput and latency. It also provides a more
/// lightweight approach than general-purpose hypervisors."
#[test]
fn lesson1_lvrm_overhead_is_minimal_and_beats_hypervisors() {
    let native = throughput_84b(ForwardingMech::Native, SocketKind::PfRing);
    let lvrm = throughput_84b(ForwardingMech::Lvrm, SocketKind::PfRing);
    let kvm =
        throughput_84b(ForwardingMech::Hypervisor(HypervisorKind::QemuKvm), SocketKind::PfRing);
    assert!(
        lvrm > native * 0.8,
        "LVRM throughput must stay close to native: {lvrm:.0} vs {native:.0}"
    );
    assert!(
        lvrm > kvm * 5.0,
        "LVRM must dwarf the general-purpose hypervisor: {lvrm:.0} vs {kvm:.0}"
    );
}

/// Lesson 2: "LVRM dynamically allocates CPU cores for VRs based on their
/// traffic loads, with very small reaction times" — here: the allocation
/// settles within one allocation period of a load change.
#[test]
fn lesson2_allocation_tracks_load_within_a_period() {
    let mut sc = Scenario::new(ForwardingMech::Lvrm);
    sc.duration_ns = 7_000_000_000;
    sc.warmup_ns = 100_000_000;
    sc.sample_period_ns = 250_000_000;
    sc.vrs = vec![VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 16_667 })];
    sc.lvrm.allocator = AllocatorKind::DynamicFixed { per_core_rate: 60_000.0 };
    sc.sources.push(SourceSpec {
        vr: 0,
        host: 1,
        kind: SourceKind::UdpCbr { wire_size: 84, flows: 8 },
        schedule: RateSchedule::piecewise(vec![(0, 50_000.0), (3_000_000_000, 170_000.0)]),
    });
    let r = sc.run();
    // The step lands at t=3 s and needs two grows; with the paper's one
    // allocation pass per second the VR must hold 3 cores within ~2.5 s
    // (estimator settle + two periods).
    let settled: Vec<usize> =
        r.samples.iter().filter(|s| s.t_ns >= 5_500_000_000).map(|s| s.vris_per_vr[0]).collect();
    assert!(
        !settled.is_empty() && settled.iter().all(|c| *c == 3),
        "3x load step must settle at 3 cores within ~2.5 s: {settled:?}"
    );
    // And the reallocation events confirm growth started within 2 periods.
    let first_growth_after_step =
        r.realloc.iter().find(|e| e.ts_ns > 3_000_000_000).expect("growth events after the step");
    assert!(
        first_growth_after_step.ts_ns < 5_000_000_000,
        "first reaction too late: {} s",
        first_growth_after_step.ts_ns as f64 / 1e9
    );
}

/// Lesson 3: "it is desirable to first select sibling cores … and to
/// dedicate a CPU core to at most one VRI."
#[test]
fn lesson3_sibling_first_and_dedicated_cores_win() {
    use lvrm::core::topology::AffinityMode;
    let run = |mode: AffinityMode| {
        let mut sc = Scenario::new(ForwardingMech::Lvrm);
        sc.duration_ns = 200_000_000;
        sc.warmup_ns = 50_000_000;
        sc.lvrm.affinity = mode;
        sc.lvrm.allocator = AllocatorKind::Fixed { cores: 1 };
        sc.with_udp_load(0, 84, 300_000.0, 8).run().delivered_fps()
    };
    let sibling = run(AffinityMode::SiblingFirst);
    let non_sibling = run(AffinityMode::NonSiblingFirst);
    let same = run(AffinityMode::Same);
    assert!(sibling >= non_sibling, "sibling {sibling:.0} < non-sibling {non_sibling:.0}");
    assert!(
        same < sibling * 0.8,
        "sharing LVRM's core must hurt clearly: {same:.0} vs {sibling:.0}"
    );
}

/// Lesson 4: "LVRM is scalable … It also provides a fair approach as well
/// as the native Linux IP forwarding."
#[test]
fn lesson4_tcp_fairness_parity_with_native() {
    let run = |mech: ForwardingMech| {
        let mut sc = Scenario::new(mech);
        sc.duration_ns = 6_000_000_000;
        sc.warmup_ns = 2_000_000_000;
        sc.lvrm.allocator = AllocatorKind::Fixed { cores: 6 };
        for i in 0..10 {
            sc.tcp_flows.push(TcpFlowSpec {
                vr: 0,
                cfg: TcpConfig::default(),
                start_ns: i * 5_000_000,
            });
        }
        let r = sc.run();
        (r.tcp_aggregate_mbps(), lvrm::metrics::jain_index(&r.tcp_goodput_mbps()))
    };
    let (native_mbps, native_jain) = run(ForwardingMech::Native);
    let (lvrm_mbps, lvrm_jain) = run(ForwardingMech::Lvrm);
    assert!(
        lvrm_mbps > native_mbps * 0.95,
        "aggregate parity: lvrm {lvrm_mbps:.0} vs native {native_mbps:.0}"
    );
    assert!(lvrm_jain > 0.9, "lvrm Jain {lvrm_jain:.3}");
    assert!(
        (lvrm_jain - native_jain).abs() < 0.1,
        "fairness parity: lvrm {lvrm_jain:.3} vs native {native_jain:.3}"
    );
}
