//! Property test across crates: a Click pipeline built from `LookupIPRoute`
//! must make exactly the same forwarding decisions as a `FastVr` with the
//! equivalent route table — the two hosted VR types are interchangeable
//! behind the `VirtualRouter` trait (paper §3.8).

use std::net::Ipv4Addr;

use lvrm::click::ClickVr;
use lvrm::prelude::*;
use lvrm::router::{Route, RouterAction};
use proptest::prelude::*;

fn fast_vr() -> FastVr {
    let mut routes = RouteTable::new();
    routes.insert(Route { prefix: Ipv4Addr::new(10, 0, 2, 0), len: 24, iface: 1, next_hop: None });
    routes.insert(Route { prefix: Ipv4Addr::new(10, 0, 0, 0), len: 16, iface: 2, next_hop: None });
    FastVr::new("fast", routes)
}

fn click_vr() -> ClickVr {
    ClickVr::from_config(
        "click",
        "FromDevice(0) -> rt :: LookupIPRoute(10.0.2.0/24 1, 10.0.0.0/16 2);\n\
         rt[1] -> ToDevice(1); rt[2] -> ToDevice(2);",
    )
    .expect("config compiles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn same_decisions_for_any_destination(a in 0u8..=255, b in 0u8..=255, c in 0u8..=255, d in 1u8..=254) {
        let dst = Ipv4Addr::new(a, b, c, d);
        let mut fast = fast_vr();
        let mut click = click_vr();
        let mut f1 = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 5), dst).udp(1, 2, &[0u8; 26]);
        let mut f2 = f1.clone();
        let r1 = fast.process(&mut f1);
        let r2 = click.process(&mut f2);
        prop_assert_eq!(r1, r2, "divergence for dst {}", dst);
        if let RouterAction::Forward { .. } = r1 {
            prop_assert_eq!(f1.egress_if, f2.egress_if);
        }
    }

    #[test]
    fn lpm_priority_is_respected(c in 0u8..=255, d in 1u8..=254) {
        // Destinations inside 10.0.2.0/24 take iface 1 even though the /16
        // also matches.
        let mut fast = fast_vr();
        let mut f = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 5), Ipv4Addr::new(10, 0, 2, d))
            .udp(1, 2, &[]);
        prop_assert_eq!(fast.process(&mut f), RouterAction::Forward { iface: 1 });
        let mut g = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 5), Ipv4Addr::new(10, 0, 3, d.max(1)))
            .udp(1, 2, &vec![0u8; c as usize]);
        prop_assert_eq!(fast.process(&mut g), RouterAction::Forward { iface: 2 });
    }
}

#[test]
fn both_types_host_identically_under_lvrm() {
    use lvrm::core::host::RecordingHost;
    for use_click in [false, true] {
        let clock = ManualClock::new();
        let cores =
            CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
        let mut lvrm = Lvrm::new(LvrmConfig::default(), cores, clock);
        let mut host = RecordingHost::default();
        let router: Box<dyn VirtualRouter> =
            if use_click { Box::new(click_vr()) } else { Box::new(fast_vr()) };
        let _ = lvrm.add_vr("vr", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], router, &mut host);
        let mut out = Vec::new();
        for i in 0..50u16 {
            let f = FrameBuilder::new(
                Ipv4Addr::new(10, 0, 1, 5),
                Ipv4Addr::new(10, 0, 2, (i % 250) as u8 + 1),
            )
            .udp(1000 + i, 80, &[0u8; 10]);
            lvrm.ingress(f, &mut host);
        }
        host.pump();
        lvrm.poll_egress(&mut out);
        assert_eq!(out.len(), 50, "click={use_click}");
        assert!(out.iter().all(|f| f.egress_if == 1));
    }
}
