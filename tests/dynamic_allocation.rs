//! Cross-crate integration: dynamic core allocation through the full
//! simulated testbed (the substance of Experiments 2c–2e).

use lvrm::core::config::AllocatorKind;
use lvrm::testbed::scenario::{Scenario, SourceSpec};
use lvrm::testbed::traffic::{RateSchedule, SourceKind};
use lvrm::testbed::{ForwardingMech, VrSpec, VrType};

fn base(duration_s: u64) -> Scenario {
    let mut sc = Scenario::new(ForwardingMech::Lvrm);
    sc.duration_ns = duration_s * 1_000_000_000;
    sc.warmup_ns = 100_000_000;
    sc.sample_period_ns = 500_000_000;
    sc.vrs = vec![VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 16_667 })];
    sc.lvrm.allocator = AllocatorKind::DynamicFixed { per_core_rate: 60_000.0 };
    sc
}

#[test]
fn staircase_up_allocates_staircase_of_cores() {
    let mut sc = base(8);
    sc.sources.push(SourceSpec {
        vr: 0,
        host: 1,
        kind: SourceKind::UdpCbr { wire_size: 84, flows: 8 },
        schedule: RateSchedule::piecewise(vec![
            (0, 50_000.0),
            (2_500_000_000, 110_000.0),
            (5_000_000_000, 170_000.0),
        ]),
    });
    let r = sc.run();
    let cores: Vec<usize> = r.samples.iter().map(|s| s.vris_per_vr[0]).collect();
    assert_eq!(*cores.last().unwrap(), 3, "170 Kfps wants 3 cores: {cores:?}");
    assert!(cores.windows(2).all(|w| w[1] >= w[0]), "monotone ramp up: {cores:?}");
}

#[test]
fn load_drop_releases_cores() {
    let mut sc = base(10);
    sc.sources.push(SourceSpec {
        vr: 0,
        host: 1,
        kind: SourceKind::UdpCbr { wire_size: 84, flows: 8 },
        schedule: RateSchedule::piecewise(vec![(0, 170_000.0), (4_000_000_000, 50_000.0)]),
    });
    let r = sc.run();
    let peak = r.samples.iter().map(|s| s.vris_per_vr[0]).max().unwrap();
    let last = r.samples.last().unwrap().vris_per_vr[0];
    assert!(peak >= 3, "peak {peak}");
    assert_eq!(last, 1, "idle load keeps one core");
    // Shrinks must appear in the log.
    assert!(r.realloc.iter().any(|e| e.decision == lvrm::core::alloc::AllocDecision::Shrink));
}

#[test]
fn service_rate_thresholds_favor_the_slower_vr() {
    let mut sc = Scenario::new(ForwardingMech::Lvrm);
    sc.duration_ns = 8_000_000_000;
    sc.warmup_ns = 100_000_000;
    sc.sample_period_ns = 1_000_000_000;
    sc.vrs = vec![
        VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 33_333 }), // slow
        VrSpec::numbered(1, VrType::Cpp { dummy_load_ns: 16_667 }), // fast
    ];
    sc.lvrm.allocator = AllocatorKind::DynamicServiceRate { bootstrap_rate: 60_000.0 };
    for vr in 0..2 {
        sc.sources.push(SourceSpec {
            vr,
            host: 1,
            kind: SourceKind::UdpCbr { wire_size: 84, flows: 8 },
            schedule: RateSchedule::constant(80_000.0),
        });
    }
    let r = sc.run();
    let last = r.samples.last().unwrap();
    assert!(
        last.vris_per_vr[0] > last.vris_per_vr[1],
        "equal load, half the service rate => more cores: {:?}",
        last.vris_per_vr
    );
}

#[test]
fn deterministic_given_same_scenario() {
    let make = || {
        let mut sc = base(4);
        sc.sources.push(SourceSpec {
            vr: 0,
            host: 1,
            kind: SourceKind::UdpCbr { wire_size: 84, flows: 8 },
            schedule: RateSchedule::constant(120_000.0),
        });
        sc.run()
    };
    let a = make();
    let b = make();
    assert_eq!(a.udp_sent, b.udp_sent);
    assert_eq!(a.udp_received, b.udp_received);
    assert_eq!(
        a.samples.iter().map(|s| s.vris_per_vr.clone()).collect::<Vec<_>>(),
        b.samples.iter().map(|s| s.vris_per_vr.clone()).collect::<Vec<_>>()
    );
    assert_eq!(a.latency.mean_ns(), b.latency.mean_ns());
}
