//! Experiment 2c in miniature, live: drive a staircase load (60→360→60
//! Kfps) at one VR and print the core allocation tracking it — the paper's
//! Fig. 4.10 as a terminal chart.
//!
//! ```sh
//! cargo run --release --example dynamic_scaling
//! ```

use lvrm::testbed::scenario::Scenario;
use lvrm::testbed::traffic::RateSchedule;
use lvrm::testbed::{ForwardingMech, VrSpec, VrType};

fn main() {
    let dwell = 2_000_000_000; // 2 s per step (the paper uses 5 s)
    let schedule = RateSchedule::staircase(60_000.0, 360_000.0, dwell);
    let duration = schedule.last_change_ns() + dwell;

    let mut sc = Scenario::new(ForwardingMech::Lvrm);
    sc.duration_ns = duration;
    sc.warmup_ns = 100_000_000;
    sc.sample_period_ns = 500_000_000;
    sc.vrs = vec![VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 16_667 })];
    sc.lvrm.allocator = lvrm::core::config::AllocatorKind::DynamicFixed { per_core_rate: 60_000.0 };
    // Split the staircase across the two sender hosts, like the testbed.
    for host in [1u8, 2u8] {
        sc.sources.push(lvrm::testbed::scenario::SourceSpec {
            vr: 0,
            host,
            kind: lvrm::testbed::traffic::SourceKind::UdpCbr { wire_size: 84, flows: 8 },
            schedule: RateSchedule::piecewise(
                (0..)
                    .map_while(|k| {
                        let t = k * dwell;
                        (t <= schedule.last_change_ns()).then(|| (t, schedule.rate_at(t) / 2.0))
                    })
                    .collect(),
            ),
        });
    }

    println!("offered load vs allocated cores (one '#' per core):\n");
    let result = sc.run();
    for s in &result.samples {
        let offered: f64 = s.offered_fps_per_vr.iter().sum();
        let cores = s.vris_per_vr.first().copied().unwrap_or(0);
        println!(
            "t={:>5.1}s offered {:>6.0} Kfps  cores {:<7} {}",
            s.t_ns as f64 / 1e9,
            offered / 1e3,
            format!("[{cores}]"),
            "#".repeat(cores)
        );
    }
    println!("\nreallocation events:");
    for e in &result.realloc {
        println!(
            "  t={:>5.2}s {:?} -> {} VRIs (reaction {} us)",
            e.ts_ns as f64 / 1e9,
            e.decision,
            e.vris_after,
            e.latency_ns / 1_000
        );
    }
    println!("\ndelivery ratio over the run: {:.3}", result.delivery_ratio());
}
