//! The paper's motivating deployment (§1): one physical gateway on a campus
//! backbone hosts a virtual router per department, each with its own routing
//! policy, and CPU cores follow each department's traffic.
//!
//! Three departments share the gateway. CS gets a traffic burst halfway
//! through; watch LVRM move cores to it and take them back afterwards.
//!
//! ```sh
//! cargo run --release --example campus_subnets
//! ```

use lvrm::testbed::scenario::{Scenario, SourceSpec};
use lvrm::testbed::traffic::{RateSchedule, SourceKind};
use lvrm::testbed::{ForwardingMech, VrSpec, VrType};

fn main() {
    let mut sc = Scenario::new(ForwardingMech::Lvrm);
    sc.duration_ns = 12_000_000_000; // 12 s
    sc.warmup_ns = 500_000_000;
    sc.sample_period_ns = 1_000_000_000;
    // Per-frame work of 1/60 ms makes each core worth ~60 Kfps (paper §4.3).
    sc.vrs = (0..3)
        .map(|k| {
            let mut v = VrSpec::numbered(k, VrType::Cpp { dummy_load_ns: 16_667 });
            v.name = ["cs", "ee", "math"][k].to_string();
            v
        })
        .collect();
    sc.lvrm.allocator = lvrm::core::config::AllocatorKind::DynamicFixed { per_core_rate: 60_000.0 };

    // Steady 50 Kfps per department...
    for vr in 0..3 {
        sc.sources.push(SourceSpec {
            vr,
            host: 1,
            kind: SourceKind::UdpCbr { wire_size: 84, flows: 16 },
            schedule: RateSchedule::constant(50_000.0),
        });
    }
    // ...plus a CS burst to 170 Kfps between t=4 s and t=8 s.
    sc.sources.push(SourceSpec {
        vr: 0,
        host: 2,
        kind: SourceKind::UdpCbr { wire_size: 84, flows: 16 },
        schedule: RateSchedule::piecewise(vec![(4_000_000_000, 120_000.0), (8_000_000_000, 0.0)]),
    });

    println!("time   cs-cores ee-cores math-cores   delivered");
    let result = sc.run();
    for s in &result.samples {
        if s.vris_per_vr.is_empty() {
            continue;
        }
        println!(
            "{:>4.0} s  {:^8} {:^8} {:^10}   {:>7.1} Mbps",
            s.t_ns as f64 / 1e9,
            s.vris_per_vr[0],
            s.vris_per_vr[1],
            s.vris_per_vr[2],
            s.delivered_mbps,
        );
    }
    println!(
        "\ndelivery ratio {:.3}; reallocation events: {}",
        result.delivery_ratio(),
        result.realloc.len()
    );
    let peak_cs = result.samples.iter().map(|s| s.vris_per_vr[0]).max().unwrap_or(0);
    println!("CS department peaked at {peak_cs} cores during its burst");
}
