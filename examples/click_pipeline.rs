//! Hosting a Click VR: parse a configuration script into an element
//! pipeline, run mixed traffic through it, and read the element counters —
//! the extensibility story of paper §3.8 ("LVRM is designed with the
//! capability of hosting different implementations of VRs").
//!
//! ```sh
//! cargo run --release --example click_pipeline
//! ```

use std::net::Ipv4Addr;

use lvrm::click::ClickVr;
use lvrm::core::host::RecordingHost;
use lvrm::prelude::*;

const CONFIG: &str = "
// Campus edge pipeline: validate, classify, route, count.
in0  :: FromDevice(0);
chk  :: CheckIPHeader;
cls  :: Classifier(ip proto udp, ip proto tcp, -);
rt   :: LookupIPRoute(10.0.2.0/24 0, 10.0.3.0/24 1);
udp_cnt :: Counter;
tcp_cnt :: Counter;
oddballs :: Discard;

in0 -> chk;
chk[0] -> cls;
chk[1] -> bad :: Discard;
cls[0] -> udp_cnt -> rt;
cls[1] -> tcp_cnt -> rt;
cls[2] -> oddballs;
rt[0] -> ToDevice(1);
rt[1] -> ToDevice(2);
";

fn main() {
    let clock = MonotonicClock::new();
    let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
    let mut lvrm = Lvrm::new(LvrmConfig::default(), cores, clock);
    let click = ClickVr::from_config("edge", CONFIG).expect("config parses");
    println!("compiled Click graph with {} elements", click.graph().len());

    let mut host = RecordingHost::default();
    let vr = lvrm.add_vr("edge", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], Box::new(click), &mut host);

    // Mixed traffic: UDP to 10.0.2.x, TCP to 10.0.3.x, and some ARP noise.
    let mut b = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 5), Ipv4Addr::new(10, 0, 2, 9));
    for i in 0..600u16 {
        lvrm.ingress(b.udp(1000 + i, 53, &[0u8; 30]), &mut host);
    }
    let mut b2 = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 6), Ipv4Addr::new(10, 0, 3, 9));
    for i in 0..400u32 {
        lvrm.ingress(
            b2.tcp(2000 + i as u16, 80, i * 1460, 0, 0x10, 0xffff, &[0u8; 100]),
            &mut host,
        );
    }
    host.pump();
    let mut out = Vec::new();
    lvrm.poll_egress(&mut out);

    let to_if1 = out.iter().filter(|f| f.egress_if == 1).count();
    let to_if2 = out.iter().filter(|f| f.egress_if == 2).count();
    println!("forwarded {} frames: {to_if1} out if1 (UDP), {to_if2} out if2 (TCP)", out.len());
    let (vr_in, vr_out) = lvrm.vr_frame_counts(vr);
    println!("VR processed {vr_in} frames, returned {vr_out}");
    assert_eq!(to_if1, 600);
    assert_eq!(to_if2, 400);
}
