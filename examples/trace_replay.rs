//! Trace-file workflow: synthesize a workload, write it as a standard pcap
//! file, read it back, and replay it through LVRM from main memory — the
//! paper's "main memory" socket-adapter variant (§3.1) with a real trace
//! file behind it.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use std::net::Ipv4Addr;

use lvrm::core::host::RecordingHost;
use lvrm::net::{read_pcap, write_pcap};
use lvrm::prelude::*;

fn main() {
    // 1. Synthesize a mixed-size workload and stamp arrival times (1 Mfps).
    let mut frames = Vec::new();
    for (i, &size) in [84usize, 256, 512, 1024, 1538].iter().cycle().take(5_000).enumerate() {
        let mut b = FrameBuilder::new(
            Ipv4Addr::new(10, 0, 1, (i % 200) as u8 + 1),
            Ipv4Addr::new(10, 0, 2, 9),
        );
        let mut f =
            b.udp_with_wire_size(10_000 + (i % 500) as u16, 20_000, size).expect("valid sizes");
        f.ts_ns = i as u64 * 1_000;
        frames.push(f);
    }

    // 2. Write and re-read a real pcap file.
    let path = std::env::temp_dir().join("lvrm-example-trace.pcap");
    write_pcap(&path, &frames).expect("write pcap");
    let loaded = read_pcap(&path).expect("read pcap");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("wrote {} frames ({bytes} bytes) to {}", loaded.len(), path.display());
    assert_eq!(loaded.len(), frames.len());

    // 3. Replay through LVRM from memory, inline (no network, output
    //    discarded) and time it.
    let clock = MonotonicClock::new();
    let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
    let mut lvrm = Lvrm::new(LvrmConfig::default(), cores, clock.clone());
    let mut host = RecordingHost::default();
    let routes = lvrm::router::parse_map_file("0.0.0.0/0 1\n").unwrap();
    let _ = lvrm.add_vr(
        "replay",
        &[(Ipv4Addr::new(10, 0, 1, 0), 24)],
        Box::new(FastVr::new("replay", routes)),
        &mut host,
    );

    let mut discarded = 0u64;
    let mut wire_bytes = 0u64;
    let mut out = Vec::new();
    let t0 = clock.now_ns();
    for f in loaded {
        wire_bytes += f.wire_len() as u64;
        lvrm.ingress(f, &mut host);
        host.pump();
        out.clear();
        lvrm.poll_egress(&mut out);
        discarded += out.len() as u64;
    }
    let elapsed = clock.now_ns() - t0;
    println!(
        "replayed {} frames in {:.2} ms: {:.2} Mfps, {:.2} Gbps wire-equivalent",
        discarded,
        elapsed as f64 / 1e6,
        discarded as f64 * 1e3 / elapsed as f64,
        wire_bytes as f64 * 8.0 / elapsed as f64,
    );
    std::fs::remove_file(&path).ok();
    assert_eq!(discarded, 5_000);
}
