//! Quickstart: host one virtual router, push a trace through it, print what
//! happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::net::Ipv4Addr;

use lvrm::core::host::RecordingHost;
use lvrm::prelude::*;

fn main() {
    // LVRM runs on core 0 of the paper's dual quad-core gateway; VRIs get
    // sibling cores first.
    let clock = MonotonicClock::new();
    let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
    let mut lvrm = Lvrm::new(LvrmConfig::default(), cores, clock);

    // One VR, owning subnet 10.0.1.0/24, routing everything toward
    // interface 1 via a static map file (paper §3.7).
    let routes = lvrm::router::parse_map_file(
        "# static routes for dept-a\n\
         10.0.2.0/24  1\n\
         0.0.0.0/0    1\n",
    )
    .expect("valid map file");
    let mut host = RecordingHost::default();
    let vr = lvrm.add_vr(
        "dept-a",
        &[(Ipv4Addr::new(10, 0, 1, 0), 24)],
        Box::new(FastVr::new("dept-a", routes)),
        &mut host,
    );
    println!("registered {} ({} VRI)", lvrm.vr_name(vr), lvrm.vri_count(vr));

    // Replay a small in-memory trace (the paper's main-memory adapter).
    let mut trace = Trace::generate(&TraceSpec::new(84, 32));
    let mut out = Vec::new();
    for _ in 0..10_000 {
        lvrm.ingress(trace.next_frame(), &mut host);
        host.pump(); // single-threaded "runtime" for the example
        lvrm.poll_egress(&mut out); // drain as we go, like the real loop
    }

    // The same relay, burst-oriented: 32 frames share one classify pass,
    // one load-view refresh, and one bulk enqueue per VRI (DESIGN.md §6).
    let mut burst = Vec::with_capacity(32);
    for _ in 0..(10_000 / 32) {
        burst.clear();
        for _ in 0..32 {
            burst.push(trace.next_frame());
        }
        lvrm.ingress_batch(&mut burst, &mut host);
        host.pump();
        lvrm.poll_egress(&mut out);
    }

    let (vr_in, vr_out) = lvrm.vr_frame_counts(vr);
    println!("frames in        : {}", lvrm.stats().frames_in);
    println!("frames forwarded : {} (VR saw {vr_in}, returned {vr_out})", out.len());
    println!("unclassified     : {}", lvrm.stats().unclassified);
    println!("dispatch drops   : {}", lvrm.stats().dispatch_drops);
    println!(
        "egress interface of first frame: {}",
        out.first().map(|f| f.egress_if).unwrap_or(u16::MAX)
    );
    assert_eq!(out.len(), 10_000 + (10_000 / 32) * 32);
}
