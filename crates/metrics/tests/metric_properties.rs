//! Property tests on the metric invariants Chapter 4 relies on.

use lvrm_metrics::{jain_index, max_min_fairness, Ewma, LatencyHistogram, Summary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Jain's index lies in [1/n, 1] for any positive population, and
    /// max-min never exceeds it.
    #[test]
    fn fairness_bounds(rates in prop::collection::vec(0.001f64..1e6, 1..64)) {
        let j = jain_index(&rates);
        let n = rates.len() as f64;
        prop_assert!(j >= 1.0 / n - 1e-9 && j <= 1.0 + 1e-9, "jain {j}");
        let m = max_min_fairness(&rates);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&m), "max-min {m}");
        prop_assert!(m <= j + 1e-9, "max-min never exceeds jain: {m} vs {j}");
    }

    /// EWMA output always lies within the sample range seen so far.
    #[test]
    fn ewma_stays_in_range(weight in 0.0f64..64.0, samples in prop::collection::vec(-1e9f64..1e9, 1..200)) {
        let mut e = Ewma::new(weight);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &s in &samples {
            lo = lo.min(s);
            hi = hi.max(s);
            let v = e.update(s);
            prop_assert!(v >= lo - 1e-6 && v <= hi + 1e-6, "ewma {v} outside [{lo}, {hi}]");
        }
    }

    /// Histogram percentiles are monotone in q and bracketed by min/max.
    #[test]
    fn percentiles_monotone(samples in prop::collection::vec(1u64..10_000_000, 1..500)) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let p = h.percentile_ns(q);
            prop_assert!(p >= prev, "p({q}) = {p} < previous {prev}");
            prev = p;
        }
        let max = *samples.iter().max().unwrap() as f64;
        let min = *samples.iter().min().unwrap() as f64;
        prop_assert!(h.percentile_ns(1.0) as f64 <= max * 1.05 + 1.0);
        prop_assert!(h.percentile_ns(0.0) as f64 >= min * 0.95 - 1.0);
    }

    /// Histogram merge equals recording the union.
    #[test]
    fn merge_equals_union(
        a in prop::collection::vec(1u64..1_000_000, 0..200),
        b in prop::collection::vec(1u64..1_000_000, 0..200),
    ) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut hu = LatencyHistogram::new();
        for &x in &a { ha.record(x); hu.record(x); }
        for &x in &b { hb.record(x); hu.record(x); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.max_ns(), hu.max_ns());
        prop_assert_eq!(ha.min_ns(), hu.min_ns());
        prop_assert!((ha.mean_ns() - hu.mean_ns()).abs() < 1e-6);
        prop_assert_eq!(ha.percentile_ns(0.5), hu.percentile_ns(0.5));
    }

    /// Welford summary matches the naive two-pass computation.
    #[test]
    fn summary_matches_naive(values in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let s = Summary::of(&values);
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.stddev() - var.sqrt()).abs() < 1e-5 * var.sqrt().max(1.0));
    }
}
