//! Lock-free runtime metrics registry.
//!
//! The dataplane publishes into handles ([`Counter`], [`Gauge`],
//! [`SharedHistogram`]) that are plain `Arc`s over atomics: recording is a
//! handful of `Relaxed` atomic ops, never a lock, never an allocation. The
//! registry itself (name → family → labelled series) sits behind a mutex
//! that is only taken at registration and scrape/snapshot time — both off
//! the per-frame path.
//!
//! Readers take a [`MetricsSnapshot`]: a point-in-time copy of every series
//! plus the bounded event log, with lookup helpers for tests and a
//! Prometheus text-format (0.0.4) renderer for the scrape endpoint.
//!
//! Naming follows Prometheus conventions: counters end in `_total`, gauges
//! are bare, histograms are exposed as summaries (fixed quantiles +
//! `_sum`/`_count`) to keep scrape cardinality bounded.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use crate::histogram::{LatencyHistogram, NUM_BUCKETS};

/// Oldest events are evicted beyond this many (the log is a ring, not a
/// database; the structured tick line is the durable record).
const EVENT_CAP: usize = 1024;

/// Monotonically increasing `u64` metric. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Relaxed);
        }
    }

    /// Overwrite the absolute value. For *mirrored* counters — authoritative
    /// state lives elsewhere (e.g. a per-VR `u64` on the hot path) and is
    /// copied into the registry at refresh time.
    #[inline]
    pub fn store(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Instantaneous value (f64 stored as bits). Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Relaxed);
    }

    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Relaxed))
    }
}

/// Atomic share of a [`LatencyHistogram`]: same log-bucket layout, but every
/// slot is an `AtomicU64` so any number of publishers can `record()`
/// concurrently (one `fetch_add` per bucket + four for the moments — bounded
/// hot-path cost, no lock). Cloning shares the buckets, which is how the
/// histogram shards: each publisher holds its own cheap handle.
#[derive(Clone)]
pub struct SharedHistogram(Arc<AtomicBuckets>);

struct AtomicBuckets {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for SharedHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedHistogram {
    pub fn new() -> SharedHistogram {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        SharedHistogram(Arc::new(AtomicBuckets {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    /// Record one sample (nanoseconds).
    #[inline]
    pub fn record(&self, ns: u64) {
        let b = &*self.0;
        b.buckets[LatencyHistogram::index_of(ns)].fetch_add(1, Relaxed);
        b.count.fetch_add(1, Relaxed);
        b.sum.fetch_add(ns, Relaxed);
        b.min.fetch_min(ns, Relaxed);
        b.max.fetch_max(ns, Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Relaxed)
    }

    /// Overwrite this series with `h`'s contents (`Relaxed` stores, no RMW).
    ///
    /// This is the single-writer publishing path: a dataplane that owns a
    /// plain [`LatencyHistogram`] records into it with plain memory ops
    /// (five locked RMWs per [`SharedHistogram::record`] — `fetch_min`/
    /// `fetch_max` are CAS loops — cost ~30% of pipeline throughput at
    /// batch 32) and mirrors it here at scrape/snapshot time instead.
    pub fn store(&self, h: &LatencyHistogram) {
        let b = &*self.0;
        let (buckets, count, sum, min, max) = h.raw_parts();
        for (dst, src) in b.buckets.iter().zip(buckets.iter()) {
            dst.store(*src, Relaxed);
        }
        b.sum.store(sum as u64, Relaxed);
        b.min.store(min, Relaxed);
        b.max.store(max, Relaxed);
        // Count last: `snapshot` keys emptiness off it, so a racing reader
        // never sees a non-empty count with stale bounds.
        b.count.store(count, Relaxed);
    }

    /// Point-in-time copy as a plain [`LatencyHistogram`]. Not atomic across
    /// buckets (concurrent recording may straddle the copy), which is fine
    /// for observability; quiesced histograms snapshot exactly.
    pub fn snapshot(&self) -> LatencyHistogram {
        let b = &*self.0;
        let mut buckets = Box::new([0u64; NUM_BUCKETS]);
        for (dst, src) in buckets.iter_mut().zip(b.buckets.iter()) {
            *dst = src.load(Relaxed);
        }
        let count = b.count.load(Relaxed);
        let min = if count == 0 { u64::MAX } else { b.min.load(Relaxed) };
        LatencyHistogram::from_raw(
            buckets,
            count,
            b.sum.load(Relaxed) as u128,
            min,
            b.max.load(Relaxed),
        )
    }
}

impl std::fmt::Debug for SharedHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// One entry in the allocation/retirement/health event log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricEvent {
    /// Monotonic timestamp (same clock as the dataplane).
    pub ts_ns: u64,
    /// `key=value` structured text, e.g. `vri-died vr=deptA vri=vri3`.
    pub text: String,
}

/// What a metric family measures — drives `# TYPE` and rendering.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetricKind {
    Counter,
    Gauge,
    Summary,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Summary => "summary",
        }
    }
}

#[derive(Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Summary(SharedHistogram),
}

struct Series {
    /// Sorted by key at registration; lookup and rendering preserve this.
    labels: Vec<(String, String)>,
    handle: Handle,
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<Series>,
}

#[derive(Default)]
struct Inner {
    families: Vec<Family>,
    events: VecDeque<MetricEvent>,
}

/// The registry. Cloning shares it; handles returned from the `counter` /
/// `gauge` / `summary` registrars stay valid for the registry's lifetime.
/// Registering the same (name, labels) twice returns the *same* underlying
/// cell, so refresh-style publishers can re-look-up by name each pass.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    v.sort();
    v
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Register (or find) a counter series. Panics if `name` was previously
    /// registered with a different kind — that is a programming error, not a
    /// runtime condition.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, MetricKind::Counter, labels) {
            Handle::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Register (or find) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, MetricKind::Gauge, labels) {
            Handle::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Register (or find) a latency summary series.
    pub fn summary(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> SharedHistogram {
        match self.series(name, help, MetricKind::Summary, labels) {
            Handle::Summary(h) => h,
            _ => unreachable!(),
        }
    }

    fn series(&self, name: &str, help: &str, kind: MetricKind, labels: &[(&str, &str)]) -> Handle {
        let labels = sorted_labels(labels);
        let mut inner = self.inner.lock().unwrap();
        let family = match inner.families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(f.kind, kind, "metric {name:?} registered as {:?} and {kind:?}", f.kind);
                f
            }
            None => {
                inner.families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                inner.families.last_mut().unwrap()
            }
        };
        if let Some(s) = family.series.iter().find(|s| s.labels == labels) {
            return s.handle.clone();
        }
        let handle = match kind {
            MetricKind::Counter => Handle::Counter(Counter::new()),
            MetricKind::Gauge => Handle::Gauge(Gauge::new()),
            MetricKind::Summary => Handle::Summary(SharedHistogram::new()),
        };
        family.series.push(Series { labels, handle: handle.clone() });
        handle
    }

    /// Append to the bounded event log (oldest evicted past the cap).
    pub fn push_event(&self, ts_ns: u64, text: impl Into<String>) {
        let mut inner = self.inner.lock().unwrap();
        if inner.events.len() == EVENT_CAP {
            inner.events.pop_front();
        }
        inner.events.push_back(MetricEvent { ts_ns, text: text.into() });
    }

    /// Copy of the current event log, oldest first.
    pub fn events(&self) -> Vec<MetricEvent> {
        self.inner.lock().unwrap().events.iter().cloned().collect()
    }

    /// Point-in-time copy of every series and the event log. Families come
    /// back sorted by name and series by label values, so the snapshot (and
    /// its rendering) is stable regardless of registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        let mut families: Vec<FamilySnapshot> = inner
            .families
            .iter()
            .map(|f| {
                let mut series: Vec<SeriesSnapshot> = f
                    .series
                    .iter()
                    .map(|s| SeriesSnapshot {
                        labels: s.labels.clone(),
                        value: match &s.handle {
                            Handle::Counter(c) => SeriesValue::Counter(c.get()),
                            Handle::Gauge(g) => SeriesValue::Gauge(g.get()),
                            Handle::Summary(h) => SeriesValue::Summary(h.snapshot()),
                        },
                    })
                    .collect();
                series.sort_by(|a, b| a.labels.cmp(&b.labels));
                FamilySnapshot { name: f.name.clone(), help: f.help.clone(), kind: f.kind, series }
            })
            .collect();
        families.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { families, events: inner.events.iter().cloned().collect() }
    }
}

/// One series' value in a snapshot.
#[derive(Clone, Debug)]
pub enum SeriesValue {
    Counter(u64),
    Gauge(f64),
    Summary(LatencyHistogram),
}

/// One labelled series in a snapshot.
#[derive(Clone, Debug)]
pub struct SeriesSnapshot {
    /// Sorted by key.
    pub labels: Vec<(String, String)>,
    pub value: SeriesValue,
}

impl SeriesSnapshot {
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    pub fn as_counter(&self) -> Option<u64> {
        match self.value {
            SeriesValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_gauge(&self) -> Option<f64> {
        match self.value {
            SeriesValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_summary(&self) -> Option<&LatencyHistogram> {
        match &self.value {
            SeriesValue::Summary(h) => Some(h),
            _ => None,
        }
    }
}

/// One metric family (all series sharing a name/help/kind) in a snapshot.
#[derive(Clone, Debug)]
pub struct FamilySnapshot {
    pub name: String,
    pub help: String,
    pub kind: MetricKind,
    pub series: Vec<SeriesSnapshot>,
}

/// Point-in-time view of the whole registry.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Sorted by family name; series sorted by label values.
    pub families: Vec<FamilySnapshot>,
    /// Event log, oldest first.
    pub events: Vec<MetricEvent>,
}

fn labels_match(series: &SeriesSnapshot, want: &[(&str, &str)]) -> bool {
    series.labels.len() == want.len() && want.iter().all(|(k, v)| series.label(k) == Some(*v))
}

impl MetricsSnapshot {
    pub fn family(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|f| f.name == name)
    }

    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SeriesSnapshot> {
        self.family(name)?.series.iter().find(|s| labels_match(s, labels))
    }

    /// Counter value for an exact (name, labels) series.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.find(name, labels)?.as_counter()
    }

    /// Sum of a counter family across all its series (0 when absent).
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.family(name).map(|f| f.series.iter().filter_map(|s| s.as_counter()).sum()).unwrap_or(0)
    }

    /// Gauge value for an exact (name, labels) series.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.find(name, labels)?.as_gauge()
    }

    /// Sum of a gauge family across all its series (0 when absent).
    pub fn gauge_sum(&self, name: &str) -> f64 {
        self.family(name).map(|f| f.series.iter().filter_map(|s| s.as_gauge()).sum()).unwrap_or(0.0)
    }

    /// Latency summary for an exact (name, labels) series.
    pub fn summary(&self, name: &str, labels: &[(&str, &str)]) -> Option<&LatencyHistogram> {
        self.find(name, labels)?.as_summary()
    }

    /// Render in Prometheus text exposition format 0.0.4. Deterministic:
    /// families by name, series by label values, labels by key.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        for f in &self.families {
            out.push_str("# HELP ");
            out.push_str(&f.name);
            out.push(' ');
            out.push_str(&escape_help(&f.help));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&f.name);
            out.push(' ');
            out.push_str(f.kind.as_str());
            out.push('\n');
            for s in &f.series {
                match &s.value {
                    SeriesValue::Counter(v) => {
                        render_sample(&mut out, &f.name, "", &s.labels, None, &v.to_string());
                    }
                    SeriesValue::Gauge(v) => {
                        render_sample(&mut out, &f.name, "", &s.labels, None, &format_f64(*v));
                    }
                    SeriesValue::Summary(h) => {
                        for (q, qs) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                            let v = h.percentile_ns(q);
                            render_sample(
                                &mut out,
                                &f.name,
                                "",
                                &s.labels,
                                Some(qs),
                                &v.to_string(),
                            );
                        }
                        let sum = (h.mean_ns() * h.count() as f64).round() as u128;
                        render_sample(&mut out, &f.name, "_sum", &s.labels, None, &sum.to_string());
                        render_sample(
                            &mut out,
                            &f.name,
                            "_count",
                            &s.labels,
                            None,
                            &h.count().to_string(),
                        );
                    }
                }
            }
        }
        out
    }
}

fn render_sample(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &[(String, String)],
    quantile: Option<&str>,
    value: &str,
) {
    out.push_str(name);
    out.push_str(suffix);
    let extra = quantile.map(|q| ("quantile", q));
    if !labels.is_empty() || extra.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Integral gauges render without a fractional part (Prometheus accepts
/// either; integral keeps golden files readable).
fn format_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip_and_sharing() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total", "help", &[]);
        let b = reg.counter("x_total", "help", &[]);
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5, "re-registration must return the same cell");
        assert_eq!(reg.snapshot().counter("x_total", &[]), Some(5));
    }

    #[test]
    fn labelled_series_are_distinct() {
        let reg = MetricsRegistry::new();
        reg.counter("y_total", "h", &[("vr", "a")]).add(3);
        reg.counter("y_total", "h", &[("vr", "b")]).add(7);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("y_total", &[("vr", "a")]), Some(3));
        assert_eq!(snap.counter("y_total", &[("vr", "b")]), Some(7));
        assert_eq!(snap.counter_sum("y_total"), 10);
        assert_eq!(snap.counter("y_total", &[("vr", "c")]), None);
    }

    #[test]
    fn label_order_at_registration_does_not_matter() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("z_total", "h", &[("vr", "a"), ("vri", "vri0")]);
        let b = reg.counter("z_total", "h", &[("vri", "vri0"), ("vr", "a")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("w", "h", &[]);
        let _ = reg.gauge("w", "h", &[]);
    }

    #[test]
    fn gauge_stores_floats() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("g", "h", &[]);
        g.set(2.5);
        assert_eq!(reg.snapshot().gauge("g", &[]), Some(2.5));
    }

    #[test]
    fn shared_histogram_snapshot_matches_plain() {
        let shared = SharedHistogram::new();
        let mut plain = LatencyHistogram::new();
        for v in [1u64, 99, 1_000, 123_456, 10_000_000] {
            shared.record(v);
            plain.record(v);
        }
        let snap = shared.snapshot();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.min_ns(), plain.min_ns());
        assert_eq!(snap.max_ns(), plain.max_ns());
        assert_eq!(snap.percentile_ns(0.5), plain.percentile_ns(0.5));
        assert_eq!(snap.percentile_ns(0.99), plain.percentile_ns(0.99));
        assert!((snap.mean_ns() - plain.mean_ns()).abs() < 1e-9);
    }

    #[test]
    fn store_mirrors_a_locally_recorded_histogram_exactly() {
        let shared = SharedHistogram::new();
        let mut local = LatencyHistogram::new();
        for v in [1u64, 99, 1_000, 123_456, 10_000_000] {
            local.record(v);
        }
        shared.store(&local);
        let snap = shared.snapshot();
        assert_eq!(snap.count(), local.count());
        assert_eq!(snap.min_ns(), local.min_ns());
        assert_eq!(snap.max_ns(), local.max_ns());
        assert_eq!(snap.percentile_ns(0.5), local.percentile_ns(0.5));
        assert_eq!(snap.percentile_ns(0.99), local.percentile_ns(0.99));
        // Re-store after more samples overwrites, not accumulates.
        local.record(7);
        shared.store(&local);
        assert_eq!(shared.snapshot().count(), local.count());
        // Storing an empty histogram restores the calm-empty state.
        shared.store(&LatencyHistogram::new());
        assert_eq!(shared.snapshot().count(), 0);
        assert_eq!(shared.snapshot().min_ns(), 0);
    }

    #[test]
    fn empty_shared_histogram_snapshot_is_calm() {
        let h = SharedHistogram::new().snapshot();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.percentile_ns(0.5), 0);
    }

    #[test]
    fn concurrent_publishers_lose_nothing() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c_total", "h", &[]);
        let h = reg.summary("s_ns", "h", &[]);
        let iters = if cfg!(miri) { 50 } else { 10_000 };
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let c = c.clone();
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..iters {
                        c.inc();
                        h.record(i + 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 2 * iters);
        assert_eq!(h.count(), 2 * iters);
        assert_eq!(h.snapshot().max_ns(), iters);
    }

    #[test]
    fn event_log_is_bounded_and_ordered() {
        let reg = MetricsRegistry::new();
        for i in 0..(EVENT_CAP as u64 + 10) {
            reg.push_event(i, format!("e{i}"));
        }
        let events = reg.events();
        assert_eq!(events.len(), EVENT_CAP);
        assert_eq!(events[0].text, "e10", "oldest evicted first");
        assert_eq!(events.last().unwrap().ts_ns, EVENT_CAP as u64 + 9);
    }

    #[test]
    fn prometheus_rendering_is_stable_and_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total", "second \"family\"", &[("vr", "a")]).add(2);
        reg.gauge("a_gauge", "first\nfamily", &[]).set(3.0);
        let text = reg.snapshot().render_prometheus();
        let expect = "# HELP a_gauge first\\nfamily\n\
                      # TYPE a_gauge gauge\n\
                      a_gauge 3\n\
                      # HELP b_total second \"family\"\n\
                      # TYPE b_total counter\n\
                      b_total{vr=\"a\"} 2\n";
        assert_eq!(text, expect);
    }

    #[test]
    fn prometheus_summary_rendering() {
        let reg = MetricsRegistry::new();
        let h = reg.summary("lat_ns", "latency", &[("vr", "a")]);
        h.record(10);
        h.record(10);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# TYPE lat_ns summary\n"), "{text}");
        assert!(text.contains("lat_ns{vr=\"a\",quantile=\"0.5\"} 10\n"), "{text}");
        assert!(text.contains("lat_ns_sum{vr=\"a\"} 20\n"), "{text}");
        assert!(text.contains("lat_ns_count{vr=\"a\"} 2\n"), "{text}");
    }
}
