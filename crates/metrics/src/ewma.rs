//! Exponential weighted moving averages and rate estimators.
//!
//! The paper's load-estimation pseudocode (Fig. 3.4) updates the average as
//!
//! ```text
//! Average_Load <- (current load + weight * Average_Load) / (1 + weight)
//! ```
//!
//! i.e. a convex combination with smoothing factor `alpha = 1 / (1 + weight)`
//! applied to the newest sample. [`Ewma`] implements exactly that recurrence;
//! the first sample initializes the average (the "is valid" guard in the
//! pseudocode).

/// Exponential weighted moving average in the paper's parameterization.
#[derive(Clone, Debug)]
pub struct Ewma {
    /// The paper's `weight` (history weight); `alpha = 1 / (1 + weight)`.
    weight: f64,
    avg: Option<f64>,
}

impl Ewma {
    /// Create an EWMA with the paper's `weight` parameter (must be >= 0).
    /// `weight = 0` tracks the latest sample exactly; larger is smoother.
    pub fn new(weight: f64) -> Ewma {
        assert!(weight >= 0.0 && weight.is_finite(), "weight must be finite and >= 0");
        Ewma { weight, avg: None }
    }

    /// Feed one sample; returns the updated average.
    pub fn update(&mut self, sample: f64) -> f64 {
        let next = match self.avg {
            None => sample,
            Some(avg) => (sample + self.weight * avg) / (1.0 + self.weight),
        };
        self.avg = Some(next);
        next
    }

    /// The current average (`None` before the first sample).
    pub fn value(&self) -> Option<f64> {
        self.avg
    }

    /// Current average, or `default` before the first sample.
    pub fn value_or(&self, default: f64) -> f64 {
        self.avg.unwrap_or(default)
    }

    /// Forget all history.
    pub fn reset(&mut self) {
        self.avg = None;
    }

    /// True once at least one sample has been absorbed.
    pub fn is_valid(&self) -> bool {
        self.avg.is_some()
    }
}

/// Arrival-rate estimator: counts events in fixed windows and smooths the
/// per-window rate with an [`Ewma`]. This is the "exponential weighted
/// average arrival rate of incoming data frames" the VR monitor compares
/// against its thresholds (§3.2).
#[derive(Clone, Debug)]
pub struct RateEstimator {
    window_ns: u64,
    window_start: Option<u64>,
    count_in_window: u64,
    ewma: Ewma,
}

impl RateEstimator {
    /// `window_ns` is the sampling window; `weight` the EWMA history weight.
    pub fn new(window_ns: u64, weight: f64) -> RateEstimator {
        assert!(window_ns > 0, "window must be positive");
        RateEstimator { window_ns, window_start: None, count_in_window: 0, ewma: Ewma::new(weight) }
    }

    /// Record one event at `now_ns`.
    pub fn record(&mut self, now_ns: u64) {
        self.advance(now_ns);
        self.count_in_window += 1;
    }

    /// Close any windows that have fully elapsed by `now_ns`, feeding their
    /// rates into the EWMA. Call this from the control loop even when no
    /// events arrive, so silence drives the rate toward zero.
    pub fn advance(&mut self, now_ns: u64) {
        let start = *self.window_start.get_or_insert(now_ns);
        if now_ns < start {
            return; // out-of-order timestamp; ignore
        }
        let mut start = start;
        while now_ns - start >= self.window_ns {
            let rate = self.count_in_window as f64 * 1e9 / self.window_ns as f64;
            self.ewma.update(rate);
            self.count_in_window = 0;
            start += self.window_ns;
        }
        self.window_start = Some(start);
    }

    /// Smoothed events-per-second estimate.
    pub fn rate_per_sec(&self) -> f64 {
        self.ewma.value_or(0.0)
    }

    /// Forget the smoothed rate and any partial window, but keep the window
    /// anchor. Dropping the anchor would let the next `record()` re-anchor
    /// time at whatever (possibly stale) timestamp it carries; a later
    /// `advance()` at wall time would then close every window in between as
    /// empty and flood the fresh EWMA with zeros. Keeping the anchor means
    /// stale timestamps after a reset fall under the normal out-of-order
    /// policy (ignored) instead.
    pub fn reset(&mut self) {
        self.count_in_window = 0;
        self.ewma.reset();
    }
}

/// Service-rate estimator: the average **departure rate** of a VRI's
/// incoming data queue, measured from the gaps between consecutive
/// dequeues while the VRI is busy (§3.6 — "it measures the service rate by
/// observing the service time between the current call and the next call of
/// the function fromLVRM()").
///
/// The paper prefers this over `getrusage()` CPU load because it is directly
/// comparable with the arrival rate.
#[derive(Clone, Debug)]
pub struct ServiceRateEstimator {
    last_departure_ns: Option<u64>,
    /// EWMA over service *times* (ns); rate is its reciprocal.
    service_time: Ewma,
    /// Gaps longer than this mean the VRI went idle, not slow; they are
    /// discarded so idleness does not deflate the service-rate estimate.
    idle_cutoff_ns: u64,
}

impl ServiceRateEstimator {
    pub fn new(weight: f64, idle_cutoff_ns: u64) -> ServiceRateEstimator {
        ServiceRateEstimator {
            last_departure_ns: None,
            service_time: Ewma::new(weight),
            idle_cutoff_ns,
        }
    }

    /// The queue was observed empty: the next departure gap would measure
    /// idleness, not service time, so forget the last departure.
    pub fn note_idle(&mut self) {
        self.last_departure_ns = None;
    }

    /// Record that one frame departed the incoming queue at `now_ns`.
    pub fn record_departure(&mut self, now_ns: u64) {
        if let Some(prev) = self.last_departure_ns {
            let gap = now_ns.saturating_sub(prev);
            if gap > 0 && gap <= self.idle_cutoff_ns {
                self.service_time.update(gap as f64);
            }
        }
        self.last_departure_ns = Some(now_ns);
    }

    /// Smoothed frames-per-second service rate (`None` until two departures
    /// closer than the idle cutoff have been seen).
    pub fn rate_per_sec(&self) -> Option<f64> {
        self.service_time.value().map(|t| 1e9 / t)
    }

    pub fn reset(&mut self) {
        self.last_departure_ns = None;
        self.service_time.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = Ewma::new(7.0);
        assert!(!e.is_valid());
        assert_eq!(e.update(10.0), 10.0);
        assert!(e.is_valid());
    }

    #[test]
    fn paper_recurrence() {
        // avg = (current + w*avg) / (1 + w) with w = 3:
        let mut e = Ewma::new(3.0);
        e.update(8.0);
        let v = e.update(4.0); // (4 + 3*8)/4 = 7
        assert!((v - 7.0).abs() < 1e-12);
    }

    #[test]
    fn weight_zero_tracks_latest() {
        let mut e = Ewma::new(0.0);
        e.update(100.0);
        assert_eq!(e.update(5.0), 5.0);
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(9.0);
        e.update(0.0);
        for _ in 0..2000 {
            e.update(50.0);
        }
        assert!((e.value().unwrap() - 50.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "weight must be finite")]
    fn negative_weight_rejected() {
        let _ = Ewma::new(-1.0);
    }

    #[test]
    fn rate_estimator_measures_cbr() {
        // 1000 events/s for 5 seconds in 100 ms windows.
        let mut r = RateEstimator::new(100_000_000, 1.0);
        let mut t = 0u64;
        for _ in 0..5000 {
            r.record(t);
            t += 1_000_000; // 1 ms apart => 1000/s
        }
        r.advance(t);
        assert!((r.rate_per_sec() - 1000.0).abs() / 1000.0 < 0.05, "{}", r.rate_per_sec());
    }

    #[test]
    fn rate_decays_to_zero_when_idle() {
        let mut r = RateEstimator::new(100_000_000, 1.0);
        for i in 0..100 {
            r.record(i * 1_000_000);
        }
        // 10 s of silence.
        r.advance(10_000_000_000);
        assert!(r.rate_per_sec() < 1.0, "{}", r.rate_per_sec());
    }

    #[test]
    fn rate_ignores_out_of_order_timestamps() {
        let mut r = RateEstimator::new(1_000_000, 1.0);
        r.record(5_000_000);
        r.record(1_000_000); // earlier than window start: not crash, counted
        let _ = r.rate_per_sec();
    }

    #[test]
    fn rate_reset_clears_history() {
        let mut r = RateEstimator::new(100_000_000, 1.0);
        for i in 0..100 {
            r.record(i * 1_000_000);
        }
        r.advance(200_000_000);
        assert!(r.rate_per_sec() > 0.0);
        r.reset();
        assert_eq!(r.rate_per_sec(), 0.0);
    }

    #[test]
    fn rate_reset_mid_window_keeps_the_time_anchor() {
        // Regression: reset() used to drop the window anchor, so a stale
        // timestamp recorded afterwards re-anchored time in the past and the
        // next advance() at wall time closed ~40 empty windows, burying the
        // one real sample under a flood of zero-rate windows.
        let mut r = RateEstimator::new(100_000_000, 1.0);
        for i in 0..50 {
            r.record(5_000_000_000 + i * 1_000_000); // anchor time around t=5s
        }
        r.reset();
        r.record(1_000_000_000); // stale event from t=1s must NOT re-anchor time
        r.advance(5_100_000_000); // one real window elapses at wall time
                                  // Fixed: the stale event counts into the current (t=5s) window, one
                                  // window closes, rate = 10/s. Buggy: 41 windows close (40 of them
                                  // empty) and the rate is 10/2^40 ≈ 0.
        assert!(r.rate_per_sec() > 1.0, "stale record collapsed rate: {}", r.rate_per_sec());
    }

    #[test]
    fn service_rate_from_departure_gaps() {
        // Departures every 16.67 us => 60 Kfps (the paper's dummy-load rate).
        let mut s = ServiceRateEstimator::new(4.0, 1_000_000);
        let mut t = 0u64;
        for _ in 0..100 {
            t += 16_667;
            s.record_departure(t);
        }
        let rate = s.rate_per_sec().unwrap();
        assert!((rate - 60_000.0).abs() / 60_000.0 < 0.01, "{rate}");
    }

    #[test]
    fn service_rate_skips_idle_gaps() {
        let mut s = ServiceRateEstimator::new(0.0, 1_000_000);
        s.record_departure(0);
        s.record_departure(10_000); // 10 us busy gap
        s.record_departure(2_000_000_000); // 2 s idle gap: ignored
        let rate = s.rate_per_sec().unwrap();
        assert!((rate - 100_000.0).abs() < 1.0, "{rate}");
    }

    #[test]
    fn note_idle_breaks_the_gap_chain() {
        let mut s = ServiceRateEstimator::new(0.0, u64::MAX);
        s.record_departure(0);
        s.record_departure(10_000); // 100 Kfps busy gap
        s.note_idle();
        // A long wait follows, but the gap after idleness is not counted.
        s.record_departure(500_000_000);
        let rate = s.rate_per_sec().unwrap();
        assert!((rate - 100_000.0).abs() < 1.0, "idle gap polluted the rate: {rate}");
    }

    #[test]
    fn service_rate_none_before_two_departures() {
        let mut s = ServiceRateEstimator::new(1.0, 1_000_000);
        assert!(s.rate_per_sec().is_none());
        s.record_departure(100);
        assert!(s.rate_per_sec().is_none());
    }
}
