//! Fairness indexes used by Experiments 3c and 4 (§4.1 "Metrics").
//!
//! * **Jain's fairness index** (Jain, Chiu & Hawe 1984, the paper's \[20\]):
//!   `(Σx)² / (n · Σx²)`, in `(0, 1]`; 1 means perfectly equal shares. The
//!   paper reads it as "the majority of the flows".
//! * **Max-min fairness**, "which focuses on the outliner": the worst flow's
//!   share normalized by the mean share, `n · min(x) / Σx`, also in `[0, 1]`.

/// Jain's fairness index over per-flow rates. Returns 1.0 for an empty or
/// all-zero population (nothing is unfair about nothing).
pub fn jain_index(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return 1.0;
    }
    let sum: f64 = rates.iter().sum();
    let sum_sq: f64 = rates.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (rates.len() as f64 * sum_sq)
}

/// Normalized max-min fairness: the minimum share divided by the mean share
/// (`n·min/Σ`). Returns 1.0 for an empty or all-zero population.
pub fn max_min_fairness(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return 1.0;
    }
    let sum: f64 = rates.iter().sum();
    if sum == 0.0 {
        return 1.0;
    }
    let min = rates.iter().copied().fold(f64::INFINITY, f64::min);
    (rates.len() as f64 * min) / sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_shares_are_perfectly_fair() {
        let r = [5.0; 8];
        assert!((jain_index(&r) - 1.0).abs() < 1e-12);
        assert!((max_min_fairness(&r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_known_value() {
        // One flow gets everything among n: index = 1/n.
        let r = [10.0, 0.0, 0.0, 0.0];
        assert!((jain_index(&r) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn max_min_detects_outlier() {
        // One starved flow drags max-min down but barely moves Jain.
        let mut r = vec![10.0; 100];
        r[0] = 1.0;
        assert!(max_min_fairness(&r) < 0.11);
        assert!(jain_index(&r) > 0.99);
    }

    #[test]
    fn degenerate_populations() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(max_min_fairness(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert_eq!(max_min_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn indexes_are_scale_invariant() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((jain_index(&a) - jain_index(&b)).abs() < 1e-12);
        assert!((max_min_fairness(&a) - max_min_fairness(&b)).abs() < 1e-12);
    }

    #[test]
    fn jain_between_bounds() {
        let r = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let j = jain_index(&r);
        assert!(j > 1.0 / r.len() as f64 && j < 1.0);
    }
}
