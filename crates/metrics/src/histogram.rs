//! Log-bucketed latency histogram.
//!
//! The latency experiments (1b, 1d, 1e, 2c) need averages and tail
//! percentiles over millions of per-frame samples without storing them.
//! This histogram uses HDR-style buckets: values are grouped by power-of-two
//! magnitude with `2^SUB_BITS` linear sub-buckets each, giving a bounded
//! relative error of `2^-SUB_BITS` (≈1.6 % here) at constant memory.

/// Sub-bucket resolution bits (64 linear sub-buckets per octave).
const SUB_BITS: u32 = 6;
const SUB: usize = 1 << SUB_BITS;
/// Octaves covered: values up to 2^40 ns (~18 minutes) fit.
const OCTAVES: usize = 40;
/// Total bucket count — shared with the registry's atomic histogram so both
/// sides agree on the bucket layout.
pub(crate) const NUM_BUCKETS: usize = SUB * OCTAVES;

/// Fixed-memory latency histogram over `u64` nanosecond samples.
#[derive(Clone)]
pub struct LatencyHistogram {
    buckets: Box<[u64; SUB * OCTAVES]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: Box::new([0; SUB * OCTAVES]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Rebuild a histogram from raw bucket counts + exact moments. Used by
    /// the registry's atomic histogram to snapshot into this plain type.
    pub(crate) fn from_raw(
        buckets: Box<[u64; NUM_BUCKETS]>,
        count: u64,
        sum: u128,
        min: u64,
        max: u64,
    ) -> LatencyHistogram {
        LatencyHistogram { buckets, count, sum, min, max }
    }

    /// Raw `(buckets, count, sum, min, max)` with `min == u64::MAX` when
    /// empty — the mirror-image of [`LatencyHistogram::from_raw`], for
    /// publishing a locally-recorded histogram into an atomic one.
    pub(crate) fn raw_parts(&self) -> (&[u64; NUM_BUCKETS], u64, u128, u64, u64) {
        (&self.buckets, self.count, self.sum, self.min, self.max)
    }

    pub(crate) fn index_of(value: u64) -> usize {
        // Values below SUB go to their own linear bucket in octave 0.
        if value < SUB as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let octave = (msb - SUB_BITS + 1) as usize;
        let sub = (value >> (msb - SUB_BITS)) as usize & (SUB - 1);
        ((octave * SUB) + SUB / 2 + sub / 2).min(SUB * OCTAVES - 1)
    }

    /// Representative (midpoint-ish) value for bucket `idx` — inverse of
    /// `index_of` up to the bucket's relative error.
    fn value_of(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let octave = idx / SUB;
        let pos = idx % SUB;
        // Invert: idx = octave*SUB + SUB/2 + sub/2, value msb = octave + SUB_BITS - 1
        let sub = (pos - SUB / 2) * 2;
        let msb = octave as u32 + SUB_BITS - 1;
        (1u64 << msb) | ((sub as u64) << (msb - SUB_BITS))
    }

    /// Record one sample (nanoseconds).
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::index_of(ns)] += 1;
        self.count += 1;
        self.sum += ns as u128;
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact arithmetic mean of all recorded samples.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Exact minimum (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Approximate percentile (`q` in `[0, 1]`), within bucket resolution.
    ///
    /// The bucket's representative value is clamped into `[min, max]`: the
    /// true samples all lie in that range, so a representative outside it
    /// (possible because a bucket spans many values) would be nonsense — in
    /// particular a single-sample histogram reports the sample exactly.
    pub fn percentile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0)) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::value_of(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one (for multi-trial aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("mean_ns", &self.mean_ns())
            .field("p50_ns", &self.percentile_ns(0.50))
            .field("p99_ns", &self.percentile_ns(0.99))
            .field("max_ns", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_calm() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.percentile_ns(0.99), 0);
        assert_eq!(h.min_ns(), 0);
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = LatencyHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 63);
        assert!((h.mean_ns() - 31.5).abs() < 1e-9);
        assert_eq!(h.percentile_ns(0.5), 31);
    }

    #[test]
    fn percentile_within_relative_error() {
        let mut h = LatencyHistogram::new();
        // Uniform ramp 1..100_000 ns.
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.percentile_ns(q) as f64;
            assert!((got - expect).abs() / expect < 0.05, "q={q}: got {got}, expect {expect}");
        }
    }

    #[test]
    fn mean_is_exact_regardless_of_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_000);
        h.record(3_000_000);
        assert!((h.mean_ns() - 2_000_000.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min_ns(), 10);
        assert_eq!(a.max_ns(), 1_000_000);
    }

    #[test]
    fn bucket_roundtrip_error_bounded() {
        for v in [100u64, 1_000, 10_000, 123_456, 10_000_000, 1 << 35] {
            let idx = LatencyHistogram::index_of(v);
            let back = LatencyHistogram::value_of(idx) as f64;
            let err = (back - v as f64).abs() / v as f64;
            assert!(err < 0.05, "v={v} back={back} err={err}");
        }
    }

    #[test]
    fn single_bucket_percentile_returns_the_sample() {
        // Regression: 99 lands in a bucket whose representative value is 98,
        // so every percentile used to come back *below* the only sample.
        let mut h = LatencyHistogram::new();
        h.record(99);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile_ns(q), 99, "q={q}");
        }
    }

    #[test]
    fn percentiles_never_leave_observed_range() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_003);
        h.record(1_000_007);
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let p = h.percentile_ns(q);
            assert!((1_000_003..=1_000_007).contains(&p), "q={q} p={p}");
        }
    }

    #[test]
    fn huge_values_clamp_instead_of_panic() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max_ns(), u64::MAX);
    }
}
