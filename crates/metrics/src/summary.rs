//! Multi-trial summary statistics.
//!
//! The paper runs "ten trials in one experiment" for UDP and three for FTP
//! (§4.1) and plots mean values. [`Summary`] accumulates per-trial results
//! and reports mean, standard deviation and extremes.

/// Streaming mean/variance (Welford) over trial results.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    pub fn new() -> Summary {
        Summary { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Absorb one trial result.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Build a summary from a slice of trial results.
    pub fn of(values: &[f64]) -> Summary {
        let mut s = Summary::new();
        for &v in values {
            s.add(v);
        }
        s
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 for fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ± {:.3} (n={})", self.mean(), self.stddev(), self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is ~2.138.
        assert!((s.stddev() - 2.138).abs() < 1e-3);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn single_sample_has_zero_stddev() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn streaming_matches_batch() {
        let vals = [1.5, -2.0, 3.25, 8.0, 0.0];
        let mut a = Summary::new();
        for v in vals {
            a.add(v);
        }
        let b = Summary::of(&vals);
        assert!((a.mean() - b.mean()).abs() < 1e-12);
        assert!((a.stddev() - b.stddev()).abs() < 1e-12);
    }
}
