//! Load estimation and evaluation metrics for LVRM.
//!
//! Two halves:
//!
//! * **On-line estimators** used by LVRM's control loop — the exponential
//!   weighted moving average of §3.4 (queue length or inter-arrival time),
//!   the windowed arrival-rate estimator the VR monitor feeds its thresholds
//!   with (§3.2), and the departure-rate service estimator behind the
//!   dynamic-threshold allocator (§3.6).
//! * **Off-line evaluation metrics** used by Chapter 4 — Jain's fairness
//!   index, normalized max-min fairness, latency histograms with percentile
//!   queries, and small summary statistics for multi-trial experiments.
//! * **The runtime metrics registry** — lock-free counters/gauges/shared
//!   histograms the live dataplane publishes into, snapshotted for tests
//!   and rendered in Prometheus text format for the scrape endpoint.

pub mod ewma;
pub mod fairness;
pub mod histogram;
pub mod registry;
pub mod summary;

pub use ewma::{Ewma, RateEstimator, ServiceRateEstimator};
pub use fairness::{jain_index, max_min_fairness};
pub use histogram::LatencyHistogram;
pub use registry::{
    Counter, FamilySnapshot, Gauge, MetricEvent, MetricKind, MetricsRegistry, MetricsSnapshot,
    SeriesSnapshot, SeriesValue, SharedHistogram,
};
pub use summary::Summary;
