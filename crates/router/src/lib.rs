//! Routing substrate and the minimal "C++ VR" implementation.
//!
//! A VRI "is responsible for interpreting the address resolution and routing
//! information. Currently, the route tables are initialized with the map
//! files, which pass the static routes to the memories of the VRIs" (paper
//! §3.7). This crate provides:
//!
//! * [`RouteTable`] — longest-prefix-match IPv4 routing via a binary trie;
//! * [`mapfile`] — the map-file format that seeds static routes;
//! * [`VirtualRouter`] — the trait every hosted VR implements (LVRM "can in
//!   essence host different implementations of virtual routers", §1);
//! * [`FastVr`] — the paper's *C++ VR*: a minimal forwarder that relays
//!   frames between interfaces, optionally with the synthetic per-frame
//!   "dummy processing load" Chapter 4 uses to make workloads CPU-bound.

pub mod fastvr;
pub mod mapfile;
pub mod rib;
pub mod update;
pub mod vr;

pub use fastvr::FastVr;
pub use mapfile::{parse_map_file, MapFileError};
pub use rib::{Route, RouteTable};
pub use update::{DynamicVr, RouteUpdate};
pub use vr::{RouterAction, VirtualRouter};
