//! The virtual-router trait hosted VRs implement.
//!
//! "LVRM is designed with the capability of hosting different implementations
//! of VRs, provided that we allow minimal changes to the interfaces of the
//! VRs so that the VRs can communicate with LVRM" (paper §3.8). The minimal
//! interface is exactly: take a raw frame, decide an egress interface (or
//! drop), and hand it back. Everything else — queues, core binding, load
//! estimation — is LVRM's business, and "the internal processing of the VRI
//! on the raw frames is transparent to LVRM".

use lvrm_net::Frame;

/// What a VR decided to do with a frame.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RouterAction {
    /// Forward out of the given interface (written into `Frame::egress_if`).
    Forward { iface: u16 },
    /// Drop the frame (no route, TTL expired, policy).
    Drop,
}

/// A hosted virtual-router implementation.
///
/// Implementations must be `Send` so a VRI can run on its own core, but each
/// instance is driven by exactly one VRI at a time (`&mut self`).
pub trait VirtualRouter: Send {
    /// Human-readable implementation name ("cpp", "click", ...).
    fn name(&self) -> &str;

    /// Process one frame: inspect it, pick an egress interface, and return
    /// the action. Implementations should also stamp `frame.egress_if` when
    /// forwarding, since LVRM relays the frame, not the action (§2.1 step 3:
    /// "it indicates the output network interface in the data frame").
    fn process(&mut self, frame: &mut Frame) -> RouterAction;

    /// Synthetic extra per-frame processing the experiments configure to make
    /// workloads CPU-bound (Chapter 4 adds "a dummy processing load of
    /// 1/60 ms for each received raw frame"). The real runtime spins for this
    /// long; the testbed simulator charges it to the owning core. Zero by
    /// default.
    fn dummy_load_ns(&self) -> u64 {
        0
    }

    /// Intrinsic per-frame CPU cost of this implementation in nanoseconds,
    /// used *only* by the testbed's cost model (calibrated so the simulator
    /// reproduces the paper's measured anchors — e.g. the C++ VR's 3.7 Mfps
    /// LVRM-only throughput at 84 B). The real runtime ignores this and
    /// simply measures.
    fn nominal_cost_ns(&self) -> u64;

    /// Fresh instance for an additional VRI of the same VR. VRIs of one VR
    /// "are expected to share the same set of routing policies and
    /// configurations" (§2.1), so this clones configuration, not state.
    fn spawn_instance(&self) -> Box<dyn VirtualRouter>;

    /// Downcasting hook so hosts can reach implementation-specific APIs
    /// (e.g. feeding [`crate::DynamicVr`] a route update from the control
    /// plane).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial VR used to pin down trait-object ergonomics.
    struct NullVr;

    impl VirtualRouter for NullVr {
        fn name(&self) -> &str {
            "null"
        }
        fn process(&mut self, _frame: &mut Frame) -> RouterAction {
            RouterAction::Drop
        }
        fn nominal_cost_ns(&self) -> u64 {
            10
        }
        fn spawn_instance(&self) -> Box<dyn VirtualRouter> {
            Box::new(NullVr)
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn trait_objects_spawn_instances() {
        let vr: Box<dyn VirtualRouter> = Box::new(NullVr);
        let clone = vr.spawn_instance();
        assert_eq!(clone.name(), "null");
        assert_eq!(clone.dummy_load_ns(), 0);
    }
}
