//! `FastVr` — the paper's "C++ VR".
//!
//! "A simple data forwarding program written in C++ … performs the minimal
//! data forwarding function, i.e., by simply relaying data frames from an
//! input network interface to an output network interface" (§3.8). Our
//! version does the same minimal work: longest-prefix-match on the
//! destination address, stamp the egress interface, done. Because it skips
//! Click's element machinery it is the lightweight end of the VR spectrum
//! ("we expect that the C++ VR is more lightweight and can eliminate the
//! internal processing overhead in Click").

use std::sync::Arc;

use lvrm_net::Frame;

use crate::rib::RouteTable;
use crate::vr::{RouterAction, VirtualRouter};

/// Default nominal per-frame cost of the C++ VR in the testbed's cost model,
/// calibrated (with the LVRM dispatch cost) against the paper's 3.7 Mfps
/// LVRM-only anchor for 84-byte frames (Fig. 4.5).
pub const CPP_VR_COST_NS: u64 = 120;

/// Minimal-forwarding virtual router.
pub struct FastVr {
    name: String,
    routes: Arc<RouteTable>,
    dummy_load_ns: u64,
    nominal_cost_ns: u64,
    /// Frames processed by this instance (observability for the examples).
    pub processed: u64,
    /// Frames dropped for lack of a route.
    pub no_route: u64,
}

impl FastVr {
    /// Create a C++ VR over a finished route table.
    pub fn new(name: impl Into<String>, routes: RouteTable) -> FastVr {
        FastVr {
            name: name.into(),
            routes: Arc::new(routes),
            dummy_load_ns: 0,
            nominal_cost_ns: CPP_VR_COST_NS,
            processed: 0,
            no_route: 0,
        }
    }

    /// Add the synthetic per-frame load Chapter 4 uses (e.g. `1_000_000/60`
    /// ns — "a dummy processing load of 1/60 ms").
    pub fn with_dummy_load_ns(mut self, ns: u64) -> FastVr {
        self.dummy_load_ns = ns;
        self
    }

    /// Override the nominal cost used by the simulator's calibration.
    pub fn with_nominal_cost_ns(mut self, ns: u64) -> FastVr {
        self.nominal_cost_ns = ns;
        self
    }

    /// The shared route table.
    pub fn routes(&self) -> &RouteTable {
        &self.routes
    }
}

impl VirtualRouter for FastVr {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, frame: &mut Frame) -> RouterAction {
        self.processed += 1;
        let Ok(dst) = frame.dst_ip() else {
            self.no_route += 1;
            return RouterAction::Drop;
        };
        match self.routes.lookup(dst) {
            Some(route) => {
                frame.egress_if = route.iface;
                RouterAction::Forward { iface: route.iface }
            }
            None => {
                self.no_route += 1;
                RouterAction::Drop
            }
        }
    }

    fn dummy_load_ns(&self) -> u64 {
        self.dummy_load_ns
    }

    fn nominal_cost_ns(&self) -> u64 {
        self.nominal_cost_ns
    }

    fn spawn_instance(&self) -> Box<dyn VirtualRouter> {
        Box::new(FastVr {
            name: self.name.clone(),
            routes: Arc::clone(&self.routes),
            dummy_load_ns: self.dummy_load_ns,
            nominal_cost_ns: self.nominal_cost_ns,
            processed: 0,
            no_route: 0,
        })
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapfile::parse_map_file;
    use lvrm_net::FrameBuilder;
    use std::net::Ipv4Addr;

    fn vr() -> FastVr {
        let routes = parse_map_file("10.0.2.0/24 1\n10.0.1.0/24 0\n").unwrap();
        FastVr::new("deptA", routes)
    }

    fn frame_to(dst: Ipv4Addr) -> Frame {
        FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 5), dst).udp(1000, 2000, &[0u8; 18])
    }

    #[test]
    fn forwards_via_route_table() {
        let mut vr = vr();
        let mut f = frame_to(Ipv4Addr::new(10, 0, 2, 9));
        assert_eq!(vr.process(&mut f), RouterAction::Forward { iface: 1 });
        assert_eq!(f.egress_if, 1);
        assert_eq!(vr.processed, 1);
    }

    #[test]
    fn drops_unroutable_frames() {
        let mut vr = vr();
        let mut f = frame_to(Ipv4Addr::new(192, 168, 1, 1));
        assert_eq!(vr.process(&mut f), RouterAction::Drop);
        assert_eq!(vr.no_route, 1);
        assert_eq!(f.egress_if, Frame::NO_IF);
    }

    #[test]
    fn drops_non_ipv4_frames() {
        let mut vr = vr();
        let mut raw = vec![0u8; 60];
        raw[12] = 0x08;
        raw[13] = 0x06; // ARP
        let mut f = Frame::new(bytes::Bytes::from(raw));
        assert_eq!(vr.process(&mut f), RouterAction::Drop);
    }

    #[test]
    fn instances_share_routes_not_counters() {
        let mut vr = vr().with_dummy_load_ns(16_667);
        let mut f = frame_to(Ipv4Addr::new(10, 0, 2, 9));
        vr.process(&mut f);
        let mut inst = vr.spawn_instance();
        assert_eq!(inst.name(), "deptA");
        assert_eq!(inst.dummy_load_ns(), 16_667);
        let mut f2 = frame_to(Ipv4Addr::new(10, 0, 2, 10));
        assert_eq!(inst.process(&mut f2), RouterAction::Forward { iface: 1 });
        // The parent's counter did not move when the instance processed.
        assert_eq!(vr.processed, 1);
    }
}
