//! Route updates over the control plane.
//!
//! The paper's VRIs "can share control information with other VRIs of the
//! same VR, for example, to synchronize the routing state" (§2.1), and "if
//! dynamic routes are used, the VRIs can be slightly changed to support both
//! static and dynamic routes without affecting the design of LVRM" (§3.7).
//! This module provides that slight change: a compact wire codec for route
//! updates (suitable for control-event payloads) and [`DynamicVr`], a
//! variant of the C++ VR whose instances each own their route table and
//! apply updates received from peers.

use std::net::Ipv4Addr;

use lvrm_net::Frame;

use crate::rib::{Route, RouteTable};
use crate::vr::{RouterAction, VirtualRouter};

/// A single routing-state change.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouteUpdate {
    Add(Route),
    Remove { prefix: Ipv4Addr, len: u8 },
}

/// Codec errors.
#[derive(Debug, PartialEq, Eq)]
pub struct CodecError(pub &'static str);

impl RouteUpdate {
    /// Serialize for a control-event payload.
    ///
    /// Layout: `magic(1) op(1) prefix(4) len(1) [iface(2) has_nh(1) nh(4)]`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(14);
        out.push(0xAB); // magic
        match self {
            RouteUpdate::Add(r) => {
                out.push(1);
                out.extend_from_slice(&r.prefix.octets());
                out.push(r.len);
                out.extend_from_slice(&r.iface.to_be_bytes());
                match r.next_hop {
                    Some(nh) => {
                        out.push(1);
                        out.extend_from_slice(&nh.octets());
                    }
                    None => out.push(0),
                }
            }
            RouteUpdate::Remove { prefix, len } => {
                out.push(2);
                out.extend_from_slice(&prefix.octets());
                out.push(*len);
            }
        }
        out
    }

    /// Parse a control-event payload.
    pub fn from_bytes(data: &[u8]) -> Result<RouteUpdate, CodecError> {
        if data.len() < 7 || data[0] != 0xAB {
            return Err(CodecError("not a route update"));
        }
        let prefix = Ipv4Addr::new(data[2], data[3], data[4], data[5]);
        let len = data[6];
        if len > 32 {
            return Err(CodecError("prefix length out of range"));
        }
        match data[1] {
            1 => {
                if data.len() < 10 {
                    return Err(CodecError("truncated add"));
                }
                let iface = u16::from_be_bytes([data[7], data[8]]);
                let next_hop = match data[9] {
                    0 => None,
                    1 => {
                        if data.len() < 14 {
                            return Err(CodecError("truncated next hop"));
                        }
                        Some(Ipv4Addr::new(data[10], data[11], data[12], data[13]))
                    }
                    _ => return Err(CodecError("bad next-hop flag")),
                };
                Ok(RouteUpdate::Add(Route { prefix, len, iface, next_hop }))
            }
            2 => Ok(RouteUpdate::Remove { prefix, len }),
            _ => Err(CodecError("unknown op")),
        }
    }
}

/// A forwarding VR with per-instance dynamic routes. Unlike [`crate::FastVr`]
/// (whose instances share one immutable table), each `DynamicVr` instance
/// owns its table and converges with its peers by applying the same stream
/// of [`RouteUpdate`]s — exactly the control-queue synchronization the paper
/// sketches.
pub struct DynamicVr {
    name: String,
    routes: RouteTable,
    nominal_cost_ns: u64,
    dummy_load_ns: u64,
    /// Updates applied so far (observability).
    pub updates_applied: u64,
}

impl DynamicVr {
    pub fn new(name: impl Into<String>, routes: RouteTable) -> DynamicVr {
        DynamicVr {
            name: name.into(),
            routes,
            nominal_cost_ns: crate::fastvr::CPP_VR_COST_NS,
            dummy_load_ns: 0,
            updates_applied: 0,
        }
    }

    pub fn with_dummy_load_ns(mut self, ns: u64) -> DynamicVr {
        self.dummy_load_ns = ns;
        self
    }

    /// Apply one routing-state change.
    pub fn apply(&mut self, update: &RouteUpdate) {
        match update {
            RouteUpdate::Add(r) => {
                self.routes.insert(*r);
            }
            RouteUpdate::Remove { prefix, len } => {
                self.routes.remove(*prefix, *len);
            }
        }
        self.updates_applied += 1;
    }

    /// Try to apply a raw control payload; `false` when it is not a route
    /// update (other control traffic passes through untouched).
    pub fn apply_payload(&mut self, payload: &[u8]) -> bool {
        match RouteUpdate::from_bytes(payload) {
            Ok(u) => {
                self.apply(&u);
                true
            }
            Err(_) => false,
        }
    }

    pub fn routes(&self) -> &RouteTable {
        &self.routes
    }
}

impl VirtualRouter for DynamicVr {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, frame: &mut Frame) -> RouterAction {
        let Ok(dst) = frame.dst_ip() else {
            return RouterAction::Drop;
        };
        match self.routes.lookup(dst) {
            Some(route) => {
                frame.egress_if = route.iface;
                RouterAction::Forward { iface: route.iface }
            }
            None => RouterAction::Drop,
        }
    }

    fn dummy_load_ns(&self) -> u64 {
        self.dummy_load_ns
    }

    fn nominal_cost_ns(&self) -> u64 {
        self.nominal_cost_ns
    }

    fn spawn_instance(&self) -> Box<dyn VirtualRouter> {
        // New instances start from the current table snapshot; later updates
        // arrive over the control plane.
        let mut routes = RouteTable::new();
        for r in self.routes.iter() {
            routes.insert(*r);
        }
        Box::new(DynamicVr {
            name: self.name.clone(),
            routes,
            nominal_cost_ns: self.nominal_cost_ns,
            dummy_load_ns: self.dummy_load_ns,
            updates_applied: 0,
        })
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvrm_net::FrameBuilder;

    fn route(a: u8, b: u8, c: u8, len: u8, iface: u16) -> Route {
        Route { prefix: Ipv4Addr::new(a, b, c, 0), len, iface, next_hop: None }
    }

    #[test]
    fn codec_roundtrip_add_without_next_hop() {
        let u = RouteUpdate::Add(route(10, 0, 2, 24, 3));
        assert_eq!(RouteUpdate::from_bytes(&u.to_bytes()), Ok(u));
    }

    #[test]
    fn codec_roundtrip_add_with_next_hop() {
        let u = RouteUpdate::Add(Route {
            prefix: Ipv4Addr::new(10, 0, 3, 0),
            len: 24,
            iface: 1,
            next_hop: Some(Ipv4Addr::new(10, 0, 2, 254)),
        });
        assert_eq!(RouteUpdate::from_bytes(&u.to_bytes()), Ok(u));
    }

    #[test]
    fn codec_roundtrip_remove() {
        let u = RouteUpdate::Remove { prefix: Ipv4Addr::new(10, 0, 2, 0), len: 24 };
        assert_eq!(RouteUpdate::from_bytes(&u.to_bytes()), Ok(u));
    }

    #[test]
    fn codec_rejects_garbage() {
        assert!(RouteUpdate::from_bytes(b"hello").is_err());
        assert!(RouteUpdate::from_bytes(&[]).is_err());
        let mut bad = RouteUpdate::Remove { prefix: Ipv4Addr::new(1, 2, 3, 0), len: 24 }.to_bytes();
        bad[6] = 40; // invalid prefix length
        assert!(RouteUpdate::from_bytes(&bad).is_err());
    }

    #[test]
    fn dynamic_vr_applies_updates() {
        let mut vr = DynamicVr::new("dyn", RouteTable::new());
        let mut f = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 2, 9)).udp(
            1,
            2,
            &[],
        );
        assert_eq!(vr.process(&mut f), RouterAction::Drop);
        vr.apply(&RouteUpdate::Add(route(10, 0, 2, 24, 5)));
        let mut f2 = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 2, 9)).udp(
            1,
            2,
            &[],
        );
        assert_eq!(vr.process(&mut f2), RouterAction::Forward { iface: 5 });
        vr.apply(&RouteUpdate::Remove { prefix: Ipv4Addr::new(10, 0, 2, 0), len: 24 });
        let mut f3 = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 2, 9)).udp(
            1,
            2,
            &[],
        );
        assert_eq!(vr.process(&mut f3), RouterAction::Drop);
        assert_eq!(vr.updates_applied, 2);
    }

    #[test]
    fn apply_payload_ignores_foreign_control_traffic() {
        let mut vr = DynamicVr::new("dyn", RouteTable::new());
        assert!(!vr.apply_payload(b"user-protocol-chatter"));
        assert!(vr.apply_payload(&RouteUpdate::Add(route(10, 0, 9, 24, 1)).to_bytes()));
        assert_eq!(vr.updates_applied, 1);
    }

    #[test]
    fn spawn_instance_snapshots_current_table() {
        let mut vr = DynamicVr::new("dyn", RouteTable::new());
        vr.apply(&RouteUpdate::Add(route(10, 0, 2, 24, 7)));
        let mut inst = vr.spawn_instance();
        let mut f = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 2, 9)).udp(
            1,
            2,
            &[],
        );
        assert_eq!(inst.process(&mut f), RouterAction::Forward { iface: 7 });
    }
}
