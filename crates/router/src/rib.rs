//! Longest-prefix-match IPv4 route table.
//!
//! A path-compressed binary trie keyed on address bits. Routers hold few,
//! summarized routes (the paper: "routers use the memory usually for the
//! summarized routes", §3.2), so a simple trie beats fancier structures while
//! staying obviously correct; the `route_lookup` ablation bench compares it
//! against a linear scan to justify the choice.

use std::net::Ipv4Addr;

/// One routing entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Route {
    /// Network prefix (host bits zeroed on insert).
    pub prefix: Ipv4Addr,
    /// Prefix length, 0–32.
    pub len: u8,
    /// Egress interface index.
    pub iface: u16,
    /// Optional next-hop address (directly-connected routes use `None`).
    pub next_hop: Option<Ipv4Addr>,
}

#[derive(Default)]
struct Node {
    children: [Option<Box<Node>>; 2],
    /// Route terminating at this depth, if any.
    route: Option<Route>,
}

/// Longest-prefix-match route table.
#[derive(Default)]
pub struct RouteTable {
    root: Node,
    len: usize,
}

fn bit(addr: u32, depth: u8) -> usize {
    ((addr >> (31 - depth)) & 1) as usize
}

fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

impl RouteTable {
    pub fn new() -> RouteTable {
        RouteTable::default()
    }

    /// Number of routes installed.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert (or replace) a route. Host bits beyond the prefix length are
    /// zeroed. Returns the previous route for the same prefix, if any.
    pub fn insert(&mut self, mut route: Route) -> Option<Route> {
        assert!(route.len <= 32, "prefix length out of range");
        let canon = u32::from(route.prefix) & mask(route.len);
        route.prefix = Ipv4Addr::from(canon);
        let mut node = &mut self.root;
        for depth in 0..route.len {
            let b = bit(canon, depth);
            node = node.children[b].get_or_insert_with(Box::default);
        }
        let prev = node.route.replace(route);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Remove the route exactly matching `prefix/len`.
    pub fn remove(&mut self, prefix: Ipv4Addr, len: u8) -> Option<Route> {
        let canon = u32::from(prefix) & mask(len);
        let mut node = &mut self.root;
        for depth in 0..len {
            let b = bit(canon, depth);
            node = node.children[b].as_deref_mut()?;
        }
        let removed = node.route.take();
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Longest-prefix-match lookup.
    #[inline]
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<&Route> {
        let addr = u32::from(dst);
        let mut best = self.root.route.as_ref();
        let mut node = &self.root;
        for depth in 0..32 {
            match node.children[bit(addr, depth)].as_deref() {
                Some(child) => {
                    node = child;
                    if node.route.is_some() {
                        best = node.route.as_ref();
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Iterate all installed routes (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Route> {
        let mut stack = vec![&self.root];
        std::iter::from_fn(move || {
            while let Some(n) = stack.pop() {
                for c in n.children.iter().flatten() {
                    stack.push(c);
                }
                if let Some(r) = n.route.as_ref() {
                    return Some(r);
                }
            }
            None
        })
    }
}

impl std::fmt::Debug for RouteTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteTable").field("routes", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    fn route(prefix: Ipv4Addr, len: u8, iface: u16) -> Route {
        Route { prefix, len, iface, next_hop: None }
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = RouteTable::new();
        t.insert(route(ip(10, 0, 0, 0), 8, 1));
        t.insert(route(ip(10, 0, 2, 0), 24, 2));
        assert_eq!(t.lookup(ip(10, 0, 2, 77)).unwrap().iface, 2);
        assert_eq!(t.lookup(ip(10, 9, 9, 9)).unwrap().iface, 1);
        assert!(t.lookup(ip(192, 168, 0, 1)).is_none());
    }

    #[test]
    fn default_route_catches_everything() {
        let mut t = RouteTable::new();
        t.insert(route(ip(0, 0, 0, 0), 0, 9));
        assert_eq!(t.lookup(ip(1, 2, 3, 4)).unwrap().iface, 9);
        assert_eq!(t.lookup(ip(255, 255, 255, 255)).unwrap().iface, 9);
    }

    #[test]
    fn host_route_is_most_specific() {
        let mut t = RouteTable::new();
        t.insert(route(ip(10, 0, 0, 0), 8, 1));
        t.insert(route(ip(10, 0, 0, 5), 32, 7));
        assert_eq!(t.lookup(ip(10, 0, 0, 5)).unwrap().iface, 7);
        assert_eq!(t.lookup(ip(10, 0, 0, 6)).unwrap().iface, 1);
    }

    #[test]
    fn insert_canonicalizes_host_bits() {
        let mut t = RouteTable::new();
        t.insert(route(ip(10, 0, 1, 99), 24, 3));
        let r = t.lookup(ip(10, 0, 1, 1)).unwrap();
        assert_eq!(r.prefix, ip(10, 0, 1, 0));
    }

    #[test]
    fn replace_returns_previous() {
        let mut t = RouteTable::new();
        assert!(t.insert(route(ip(10, 0, 1, 0), 24, 1)).is_none());
        let prev = t.insert(route(ip(10, 0, 1, 0), 24, 2)).unwrap();
        assert_eq!(prev.iface, 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(ip(10, 0, 1, 1)).unwrap().iface, 2);
    }

    #[test]
    fn remove_restores_shorter_match() {
        let mut t = RouteTable::new();
        t.insert(route(ip(10, 0, 0, 0), 8, 1));
        t.insert(route(ip(10, 0, 2, 0), 24, 2));
        assert_eq!(t.remove(ip(10, 0, 2, 0), 24).unwrap().iface, 2);
        assert_eq!(t.lookup(ip(10, 0, 2, 77)).unwrap().iface, 1);
        assert!(t.remove(ip(10, 0, 2, 0), 24).is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_visits_every_route() {
        let mut t = RouteTable::new();
        for i in 0..10u16 {
            t.insert(route(ip(10, i as u8, 0, 0), 16, i));
        }
        let mut ifaces: Vec<u16> = t.iter().map(|r| r.iface).collect();
        ifaces.sort_unstable();
        assert_eq!(ifaces, (0..10).collect::<Vec<_>>());
    }
}
