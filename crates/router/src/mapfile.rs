//! The map-file format that seeds a VR's static routes (paper §3.7).
//!
//! One route per line:
//!
//! ```text
//! # destination          iface   [next-hop]
//! 10.0.2.0/24            1
//! 10.0.3.0/24            1       10.0.2.254
//! 0.0.0.0/0              0
//! ```
//!
//! `#` starts a comment; blank lines are skipped. The interface is a numeric
//! index into the deployment's NIC table ("it is configured with the mappings
//! of the routes to the network interfaces of the deployment architecture",
//! §2.1).

use std::net::Ipv4Addr;

use crate::rib::{Route, RouteTable};

/// Parse failure, with the 1-based line number where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapFileError {
    pub line: usize,
    pub reason: String,
}

impl std::fmt::Display for MapFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "map file line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for MapFileError {}

fn err(line: usize, reason: impl Into<String>) -> MapFileError {
    MapFileError { line, reason: reason.into() }
}

/// Parse map-file text into a [`RouteTable`].
pub fn parse_map_file(text: &str) -> Result<RouteTable, MapFileError> {
    let mut table = RouteTable::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let cidr = parts.next().ok_or_else(|| err(line_no, "missing destination"))?;
        let iface_s = parts.next().ok_or_else(|| err(line_no, "missing interface index"))?;
        let next_hop_s = parts.next();
        if let Some(extra) = parts.next() {
            return Err(err(line_no, format!("unexpected trailing token {extra:?}")));
        }

        let (prefix_s, len_s) = cidr
            .split_once('/')
            .ok_or_else(|| err(line_no, format!("destination {cidr:?} is not CIDR")))?;
        let prefix: Ipv4Addr = prefix_s
            .parse()
            .map_err(|_| err(line_no, format!("bad prefix address {prefix_s:?}")))?;
        let len: u8 = len_s
            .parse()
            .ok()
            .filter(|l| *l <= 32)
            .ok_or_else(|| err(line_no, format!("bad prefix length {len_s:?}")))?;
        let iface: u16 = iface_s
            .parse()
            .map_err(|_| err(line_no, format!("bad interface index {iface_s:?}")))?;
        let next_hop = match next_hop_s {
            Some(s) => Some(
                s.parse::<Ipv4Addr>().map_err(|_| err(line_no, format!("bad next-hop {s:?}")))?,
            ),
            None => None,
        };
        table.insert(Route { prefix, len, iface, next_hop });
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_routes_comments_and_blanks() {
        let text = "\
# campus backbone
10.0.2.0/24  1
10.0.3.0/24  1  10.0.2.254   # via the CS gateway

0.0.0.0/0    0
";
        let t = parse_map_file(text).unwrap();
        assert_eq!(t.len(), 3);
        let r = t.lookup(Ipv4Addr::new(10, 0, 3, 9)).unwrap();
        assert_eq!(r.iface, 1);
        assert_eq!(r.next_hop, Some(Ipv4Addr::new(10, 0, 2, 254)));
        assert_eq!(t.lookup(Ipv4Addr::new(8, 8, 8, 8)).unwrap().iface, 0);
    }

    #[test]
    fn rejects_non_cidr_destination() {
        let e = parse_map_file("10.0.2.0 1").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.reason.contains("CIDR"));
    }

    #[test]
    fn rejects_bad_prefix_length() {
        assert!(parse_map_file("10.0.2.0/33 1").is_err());
        assert!(parse_map_file("10.0.2.0/x 1").is_err());
    }

    #[test]
    fn rejects_missing_interface() {
        let e = parse_map_file("10.0.2.0/24").unwrap_err();
        assert!(e.reason.contains("interface"));
    }

    #[test]
    fn rejects_trailing_garbage_with_line_number() {
        let e = parse_map_file("# ok\n10.0.2.0/24 1 10.0.0.1 junk").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.reason.contains("junk"));
    }

    #[test]
    fn empty_input_yields_empty_table() {
        let t = parse_map_file("").unwrap();
        assert!(t.is_empty());
    }
}
