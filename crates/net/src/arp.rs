//! ARP frames and neighbor resolution.
//!
//! The paper's VRI "is responsible for interpreting the address resolution
//! and routing information" (§3.7). This module provides the address-
//! resolution half: building/parsing Ethernet ARP requests and replies, and
//! a [`NeighborTable`] mapping next-hop IPv4 addresses to MAC addresses
//! with ageing, so a VR can rewrite destination MACs when forwarding via a
//! next hop.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use bytes::{BufMut, BytesMut};

use crate::frame::Frame;
use crate::headers::{EtherType, EthernetView, MacAddr};

/// ARP operation codes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArpOp {
    Request,
    Reply,
}

/// A parsed IPv4-over-Ethernet ARP message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArpMessage {
    pub op: ArpOp,
    pub sender_mac: MacAddr,
    pub sender_ip: Ipv4Addr,
    pub target_mac: MacAddr,
    pub target_ip: Ipv4Addr,
}

impl ArpMessage {
    /// Build a who-has request from `sender` for `target_ip`, broadcast.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> ArpMessage {
        ArpMessage {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Build the reply answering `request` with `my_mac`.
    pub fn reply_to(request: &ArpMessage, my_mac: MacAddr) -> ArpMessage {
        ArpMessage {
            op: ArpOp::Reply,
            sender_mac: my_mac,
            sender_ip: request.target_ip,
            target_mac: request.sender_mac,
            target_ip: request.sender_ip,
        }
    }

    /// Serialize into a full Ethernet frame (padded to the minimum).
    pub fn to_frame(&self) -> Frame {
        let mut buf = BytesMut::with_capacity(60);
        let dst = match self.op {
            ArpOp::Request => MacAddr::BROADCAST,
            ArpOp::Reply => self.target_mac,
        };
        buf.put_slice(dst.as_bytes());
        buf.put_slice(self.sender_mac.as_bytes());
        buf.put_u16(EtherType::Arp.to_u16());
        buf.put_u16(1); // HTYPE ethernet
        buf.put_u16(EtherType::Ipv4.to_u16());
        buf.put_u8(6); // HLEN
        buf.put_u8(4); // PLEN
        buf.put_u16(match self.op {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        });
        buf.put_slice(self.sender_mac.as_bytes());
        buf.put_slice(&self.sender_ip.octets());
        buf.put_slice(self.target_mac.as_bytes());
        buf.put_slice(&self.target_ip.octets());
        // Pad to the 60-byte minimum captured frame.
        while buf.len() < 60 {
            buf.put_u8(0);
        }
        Frame::new(buf.freeze())
    }

    /// Parse an ARP message from a frame (None when it is not IPv4/Ethernet
    /// ARP).
    pub fn from_frame(frame: &Frame) -> Option<ArpMessage> {
        let eth = EthernetView::new(frame.bytes())?;
        if eth.ethertype() != EtherType::Arp {
            return None;
        }
        let p = eth.payload();
        if p.len() < 28 {
            return None;
        }
        let htype = u16::from_be_bytes([p[0], p[1]]);
        let ptype = u16::from_be_bytes([p[2], p[3]]);
        if htype != 1 || ptype != EtherType::Ipv4.to_u16() || p[4] != 6 || p[5] != 4 {
            return None;
        }
        let op = match u16::from_be_bytes([p[6], p[7]]) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            _ => return None,
        };
        Some(ArpMessage {
            op,
            sender_mac: MacAddr(p[8..14].try_into().ok()?),
            sender_ip: Ipv4Addr::new(p[14], p[15], p[16], p[17]),
            target_mac: MacAddr(p[18..24].try_into().ok()?),
            target_ip: Ipv4Addr::new(p[24], p[25], p[26], p[27]),
        })
    }
}

/// IP→MAC neighbor cache with ageing.
pub struct NeighborTable {
    entries: HashMap<Ipv4Addr, (MacAddr, u64)>,
    ttl_ns: u64,
}

impl NeighborTable {
    /// Entries expire `ttl_ns` after their last learn/confirm.
    pub fn new(ttl_ns: u64) -> NeighborTable {
        NeighborTable { entries: HashMap::new(), ttl_ns }
    }

    /// Learn (or refresh) a binding.
    pub fn learn(&mut self, ip: Ipv4Addr, mac: MacAddr, now_ns: u64) {
        self.entries.insert(ip, (mac, now_ns));
    }

    /// Absorb the sender binding of any ARP message (requests teach too).
    pub fn learn_from(&mut self, msg: &ArpMessage, now_ns: u64) {
        self.learn(msg.sender_ip, msg.sender_mac, now_ns);
    }

    /// Resolve `ip` if a live entry exists.
    pub fn lookup(&self, ip: Ipv4Addr, now_ns: u64) -> Option<MacAddr> {
        match self.entries.get(&ip) {
            Some((mac, seen)) if now_ns.saturating_sub(*seen) <= self.ttl_ns => Some(*mac),
            _ => None,
        }
    }

    /// Drop expired entries (periodic housekeeping).
    pub fn expire(&mut self, now_ns: u64) {
        let ttl = self.ttl_ns;
        self.entries.retain(|_, (_, seen)| now_ns.saturating_sub(*seen) <= ttl);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Rewrite a frame's Ethernet addresses for next-hop delivery (what a router
/// does after the ARP resolution succeeds).
pub fn rewrite_macs(frame: &mut Frame, src: MacAddr, dst: MacAddr) {
    frame.modify_bytes(|b| {
        b[0..6].copy_from_slice(dst.as_bytes());
        b[6..12].copy_from_slice(src.as_bytes());
    });
}

/// Convenience: is this frame an ARP frame at all?
pub fn is_arp(frame: &Frame) -> bool {
    frame.ethernet().map(|e| e.ethertype() == EtherType::Arp).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    #[test]
    fn request_reply_roundtrip() {
        let req = ArpMessage::request(MacAddr::host(1), ip(10, 0, 1, 1), ip(10, 0, 1, 254));
        let f = req.to_frame();
        assert!(is_arp(&f));
        assert_eq!(f.ethernet().unwrap().dst(), MacAddr::BROADCAST);
        let parsed = ArpMessage::from_frame(&f).unwrap();
        assert_eq!(parsed, req);

        let rep = ArpMessage::reply_to(&parsed, MacAddr::host(254));
        let rf = rep.to_frame();
        let parsed_rep = ArpMessage::from_frame(&rf).unwrap();
        assert_eq!(parsed_rep.op, ArpOp::Reply);
        assert_eq!(parsed_rep.sender_ip, ip(10, 0, 1, 254));
        assert_eq!(parsed_rep.target_mac, MacAddr::host(1));
        assert_eq!(rf.ethernet().unwrap().dst(), MacAddr::host(1), "reply is unicast");
    }

    #[test]
    fn frames_meet_minimum_size() {
        let f = ArpMessage::request(MacAddr::host(1), ip(10, 0, 1, 1), ip(10, 0, 1, 2)).to_frame();
        assert!(f.len() >= 60);
        assert_eq!(f.wire_len(), 84);
    }

    #[test]
    fn parse_rejects_non_arp() {
        let mut b = crate::frame::FrameBuilder::new(ip(10, 0, 1, 1), ip(10, 0, 2, 1));
        let f = b.udp(1, 2, &[]);
        assert!(ArpMessage::from_frame(&f).is_none());
        assert!(!is_arp(&f));
    }

    #[test]
    fn neighbor_table_ages_out() {
        let mut t = NeighborTable::new(1_000);
        t.learn(ip(10, 0, 1, 254), MacAddr::host(254), 0);
        assert_eq!(t.lookup(ip(10, 0, 1, 254), 500), Some(MacAddr::host(254)));
        assert_eq!(t.lookup(ip(10, 0, 1, 254), 2_000), None);
        t.expire(2_000);
        assert!(t.is_empty());
    }

    #[test]
    fn requests_teach_the_sender_binding() {
        let mut t = NeighborTable::new(u64::MAX);
        let req = ArpMessage::request(MacAddr::host(7), ip(10, 0, 1, 7), ip(10, 0, 1, 254));
        t.learn_from(&req, 0);
        assert_eq!(t.lookup(ip(10, 0, 1, 7), 1), Some(MacAddr::host(7)));
    }

    #[test]
    fn mac_rewrite_changes_only_addresses() {
        let mut b = crate::frame::FrameBuilder::new(ip(10, 0, 1, 1), ip(10, 0, 2, 1));
        let mut f = b.udp(1, 2, b"payload");
        let payload_before = f.udp().unwrap().payload().to_vec();
        rewrite_macs(&mut f, MacAddr::host(9), MacAddr::host(8));
        let eth = f.ethernet().unwrap();
        assert_eq!(eth.src(), MacAddr::host(9));
        assert_eq!(eth.dst(), MacAddr::host(8));
        assert_eq!(f.udp().unwrap().payload(), &payload_before[..]);
        assert!(f.ipv4().unwrap().checksum_ok(), "IP header untouched");
    }
}
