//! Flow identification for flow-based load balancing (paper §3.3).
//!
//! The paper's flow-based balancer keys its hash table on the classic TCP/IP
//! 5-tuple so that "data frames of the same flow are always forwarded to the
//! same core", avoiding intra-flow reordering.

use std::net::Ipv4Addr;

use crate::frame::Frame;
use crate::headers::{IPPROTO_ICMP, IPPROTO_TCP, IPPROTO_UDP};

/// Transport protocol of a flow.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Protocol {
    Tcp,
    Udp,
    Icmp,
    Other(u8),
}

impl Protocol {
    pub fn from_ip_proto(p: u8) -> Protocol {
        match p {
            IPPROTO_TCP => Protocol::Tcp,
            IPPROTO_UDP => Protocol::Udp,
            IPPROTO_ICMP => Protocol::Icmp,
            other => Protocol::Other(other),
        }
    }

    pub fn to_ip_proto(self) -> u8 {
        match self {
            Protocol::Tcp => IPPROTO_TCP,
            Protocol::Udp => IPPROTO_UDP,
            Protocol::Icmp => IPPROTO_ICMP,
            Protocol::Other(p) => p,
        }
    }
}

/// The 5-tuple identifying a flow.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FlowKey {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub src_port: u16,
    pub dst_port: u16,
    pub proto: Protocol,
}

impl FlowKey {
    /// Extract the 5-tuple from a frame. Non-IPv4 frames and unknown
    /// transports fall back to ports `0` so they still hash consistently.
    pub fn from_frame(frame: &Frame) -> Option<FlowKey> {
        let ip = frame.ipv4().ok()?;
        let proto = Protocol::from_ip_proto(ip.protocol());
        let (src_port, dst_port) = match proto {
            Protocol::Tcp => {
                let t = frame.tcp().ok()?;
                (t.src_port(), t.dst_port())
            }
            Protocol::Udp => {
                let u = frame.udp().ok()?;
                (u.src_port(), u.dst_port())
            }
            _ => (0, 0),
        };
        Some(FlowKey { src: ip.src(), dst: ip.dst(), src_port, dst_port, proto })
    }

    /// The same flow with endpoints swapped (the reverse direction).
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// A fast, stable 64-bit hash of the 5-tuple (FNV-1a). The flow table
    /// uses this instead of `std::hash` so the layout is reproducible across
    /// runs and the hot path avoids hasher construction.
    pub fn hash64(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut mix = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        };
        for b in self.src.octets() {
            mix(b);
        }
        for b in self.dst.octets() {
            mix(b);
        }
        for b in self.src_port.to_be_bytes() {
            mix(b);
        }
        for b in self.dst_port.to_be_bytes() {
            mix(b);
        }
        mix(self.proto.to_ip_proto());
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameBuilder;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    #[test]
    fn key_from_udp_frame() {
        let mut b = FrameBuilder::new(ip(10, 0, 1, 5), ip(10, 0, 2, 9));
        let f = b.udp(40000, 53, b"q");
        let k = FlowKey::from_frame(&f).unwrap();
        assert_eq!(k.src, ip(10, 0, 1, 5));
        assert_eq!(k.dst_port, 53);
        assert_eq!(k.proto, Protocol::Udp);
    }

    #[test]
    fn key_from_tcp_frame() {
        let mut b = FrameBuilder::new(ip(10, 0, 1, 5), ip(10, 0, 2, 9));
        let f = b.tcp(40000, 21, 0, 0, crate::headers::tcp_flags::SYN, 8192, &[]);
        let k = FlowKey::from_frame(&f).unwrap();
        assert_eq!(k.proto, Protocol::Tcp);
        assert_eq!(k.dst_port, 21);
    }

    #[test]
    fn reversed_twice_is_identity() {
        let k = FlowKey {
            src: ip(1, 2, 3, 4),
            dst: ip(5, 6, 7, 8),
            src_port: 10,
            dst_port: 20,
            proto: Protocol::Tcp,
        };
        assert_eq!(k.reversed().reversed(), k);
        assert_ne!(k.reversed(), k);
    }

    #[test]
    fn hash_is_deterministic_and_direction_sensitive() {
        let k = FlowKey {
            src: ip(10, 0, 1, 5),
            dst: ip(10, 0, 2, 9),
            src_port: 40000,
            dst_port: 80,
            proto: Protocol::Tcp,
        };
        assert_eq!(k.hash64(), k.hash64());
        assert_ne!(k.hash64(), k.reversed().hash64());
    }

    #[test]
    fn same_flow_same_hash_across_frames() {
        let mut b = FrameBuilder::new(ip(10, 0, 1, 5), ip(10, 0, 2, 9));
        let f1 = b.udp(1111, 2222, b"a");
        let f2 = b.udp(1111, 2222, b"bbbb");
        assert_eq!(
            FlowKey::from_frame(&f1).unwrap().hash64(),
            FlowKey::from_frame(&f2).unwrap().hash64()
        );
    }
}
