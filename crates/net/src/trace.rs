//! Synthetic in-memory frame traces.
//!
//! Experiment 1c loads "a trace file of 100M minimum-sized frames into main
//! memory" and replays it as fast as possible through LVRM (§4.2). We build
//! the equivalent: a compact set of distinct frames replayed cyclically, so a
//! logical trace of any length costs constant memory (the frames are
//! reference-counted [`bytes::Bytes`], cloning is cheap and allocation-free).

use std::net::Ipv4Addr;

use crate::frame::{Frame, FrameBuilder};

/// Describes a synthetic trace.
#[derive(Clone, Debug)]
pub struct TraceSpec {
    /// Wire size of every frame, bytes (84..=1538).
    pub wire_size: usize,
    /// Number of distinct flows to synthesize.
    pub flows: usize,
    /// Source subnets, one per VR: frames round-robin over these, so a trace
    /// can exercise multi-VR classification.
    pub src_subnets: Vec<(Ipv4Addr, u8)>,
    /// Destination subnet for all flows.
    pub dst_subnet: (Ipv4Addr, u8),
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            wire_size: crate::wire::MIN_FRAME_WIRE,
            flows: 16,
            src_subnets: vec![(Ipv4Addr::new(10, 0, 1, 0), 24)],
            dst_subnet: (Ipv4Addr::new(10, 0, 2, 0), 24),
        }
    }
}

impl TraceSpec {
    /// Single-subnet trace of `flows` flows at `wire_size` bytes.
    pub fn new(wire_size: usize, flows: usize) -> TraceSpec {
        TraceSpec { wire_size, flows, ..TraceSpec::default() }
    }
}

/// A replayable in-memory trace.
#[derive(Clone)]
pub struct Trace {
    frames: Vec<Frame>,
    cursor: usize,
}

/// The `n`-th host address inside `subnet/len` (n starts at 1).
fn host_in(subnet: Ipv4Addr, len: u8, n: u32) -> Ipv4Addr {
    let size = 1u32 << (32 - len as u32);
    let base = u32::from(subnet) & !(size - 1);
    Ipv4Addr::from(base + 1 + (n % (size - 2).max(1)))
}

impl Trace {
    /// Generate the distinct frames described by `spec`.
    pub fn generate(spec: &TraceSpec) -> Trace {
        assert!(!spec.src_subnets.is_empty(), "trace needs at least one source subnet");
        assert!(spec.flows > 0, "trace needs at least one flow");
        let mut frames = Vec::with_capacity(spec.flows);
        for i in 0..spec.flows {
            let (src_net, src_len) = spec.src_subnets[i % spec.src_subnets.len()];
            let src = host_in(src_net, src_len, i as u32);
            let dst = host_in(spec.dst_subnet.0, spec.dst_subnet.1, i as u32);
            let mut b = FrameBuilder::new(src, dst);
            let f = b
                .udp_with_wire_size(10_000 + (i as u16 % 50_000), 20_000, spec.wire_size)
                .expect("spec wire_size validated by caller");
            frames.push(f);
        }
        Trace { frames, cursor: 0 }
    }

    /// Number of distinct frames held in memory.
    pub fn distinct(&self) -> usize {
        self.frames.len()
    }

    /// The distinct frames.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Next frame in cyclic replay order (cheap clone of shared bytes).
    pub fn next_frame(&mut self) -> Frame {
        let f = self.frames[self.cursor].clone();
        self.cursor = (self.cursor + 1) % self.frames.len();
        f
    }

    /// Reset replay to the beginning.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowKey;
    use std::collections::HashSet;

    #[test]
    fn generates_requested_flow_count() {
        let t = Trace::generate(&TraceSpec::new(84, 8));
        assert_eq!(t.distinct(), 8);
        let keys: HashSet<_> = t.frames().iter().map(|f| FlowKey::from_frame(f).unwrap()).collect();
        assert_eq!(keys.len(), 8, "flows must be distinct");
    }

    #[test]
    fn frames_have_requested_wire_size() {
        for &sz in &crate::wire::FRAME_SIZE_SWEEP {
            let t = Trace::generate(&TraceSpec::new(sz, 4));
            for f in t.frames() {
                assert_eq!(f.wire_len(), sz);
            }
        }
    }

    #[test]
    fn replay_is_cyclic() {
        let mut t = Trace::generate(&TraceSpec::new(84, 3));
        let first = t.next_frame().bytes().to_vec();
        let _ = t.next_frame();
        let _ = t.next_frame();
        let again = t.next_frame();
        assert_eq!(again.bytes(), &first[..]);
    }

    #[test]
    fn multi_subnet_trace_round_robins_sources() {
        let spec = TraceSpec {
            wire_size: 84,
            flows: 4,
            src_subnets: vec![(Ipv4Addr::new(10, 0, 1, 0), 24), (Ipv4Addr::new(10, 0, 3, 0), 24)],
            dst_subnet: (Ipv4Addr::new(10, 0, 2, 0), 24),
        };
        let t = Trace::generate(&spec);
        let srcs: Vec<_> = t.frames().iter().map(|f| f.src_ip().unwrap().octets()[2]).collect();
        assert_eq!(srcs, vec![1, 3, 1, 3]);
    }

    #[test]
    fn host_in_skips_network_and_broadcast() {
        let h = host_in(Ipv4Addr::new(10, 0, 1, 0), 24, 0);
        assert_eq!(h, Ipv4Addr::new(10, 0, 1, 1));
        // wraps within the subnet
        let h = host_in(Ipv4Addr::new(10, 0, 1, 0), 24, 254);
        assert_eq!(h, Ipv4Addr::new(10, 0, 1, 1));
    }
}
