//! Zero-copy header views over raw frame bytes.
//!
//! LVRM inspects only a handful of fields on the hot path — the source IPv4
//! address (VR classification, §2.1 step 2) and the TCP/UDP 5-tuple (flow-based
//! load balancing, §3.3) — so the views below borrow the frame buffer instead
//! of deserializing it.

use std::fmt;
use std::net::Ipv4Addr;

/// A 48-bit Ethernet MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// A deterministic locally-administered unicast address for host `n`.
    pub fn host(n: u32) -> MacAddr {
        let b = n.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    pub fn as_bytes(&self) -> &[u8; 6] {
        &self.0
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// EtherType values the workspace cares about.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u16)]
pub enum EtherType {
    Ipv4 = 0x0800,
    Arp = 0x0806,
    /// Anything else, carried verbatim.
    Other(u16),
}

impl EtherType {
    pub fn from_u16(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }

    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }
}

/// IP protocol numbers used by the traffic models.
pub const IPPROTO_ICMP: u8 = 1;
pub const IPPROTO_TCP: u8 = 6;
pub const IPPROTO_UDP: u8 = 17;

/// View over an Ethernet header (14 bytes).
#[derive(Clone, Copy, Debug)]
pub struct EthernetView<'a>(&'a [u8]);

impl<'a> EthernetView<'a> {
    pub const LEN: usize = 14;

    /// Interpret `data` as an Ethernet frame. Returns `None` if too short.
    pub fn new(data: &'a [u8]) -> Option<Self> {
        (data.len() >= Self::LEN).then_some(EthernetView(data))
    }

    pub fn dst(&self) -> MacAddr {
        MacAddr(self.0[0..6].try_into().unwrap())
    }

    pub fn src(&self) -> MacAddr {
        MacAddr(self.0[6..12].try_into().unwrap())
    }

    pub fn ethertype(&self) -> EtherType {
        EtherType::from_u16(u16::from_be_bytes([self.0[12], self.0[13]]))
    }

    /// The bytes after the Ethernet header.
    pub fn payload(&self) -> &'a [u8] {
        &self.0[Self::LEN..]
    }
}

/// View over an IPv4 header (without options support beyond IHL accounting).
#[derive(Clone, Copy, Debug)]
pub struct Ipv4View<'a>(&'a [u8]);

impl<'a> Ipv4View<'a> {
    pub const MIN_LEN: usize = 20;

    /// Interpret `data` as an IPv4 packet. Returns `None` when the version is
    /// not 4 or the buffer is shorter than the declared header.
    pub fn new(data: &'a [u8]) -> Option<Self> {
        if data.len() < Self::MIN_LEN || data[0] >> 4 != 4 {
            return None;
        }
        let ihl = ((data[0] & 0x0f) as usize) * 4;
        if ihl < Self::MIN_LEN || data.len() < ihl {
            return None;
        }
        Some(Ipv4View(data))
    }

    pub fn header_len(&self) -> usize {
        ((self.0[0] & 0x0f) as usize) * 4
    }

    pub fn total_len(&self) -> u16 {
        u16::from_be_bytes([self.0[2], self.0[3]])
    }

    pub fn ttl(&self) -> u8 {
        self.0[8]
    }

    pub fn protocol(&self) -> u8 {
        self.0[9]
    }

    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.0[10], self.0[11]])
    }

    pub fn src(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.0[12], self.0[13], self.0[14], self.0[15])
    }

    pub fn dst(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.0[16], self.0[17], self.0[18], self.0[19])
    }

    /// Verify the header checksum (sums to zero when valid).
    pub fn checksum_ok(&self) -> bool {
        internet_checksum(&self.0[..self.header_len()]) == 0
    }

    /// Bytes after the IPv4 header, clamped to the declared total length.
    pub fn payload(&self) -> &'a [u8] {
        let hl = self.header_len();
        let end = (self.total_len() as usize).min(self.0.len());
        &self.0[hl..end.max(hl)]
    }
}

/// View over a UDP header (8 bytes).
#[derive(Clone, Copy, Debug)]
pub struct UdpView<'a>(&'a [u8]);

impl<'a> UdpView<'a> {
    pub const LEN: usize = 8;

    pub fn new(data: &'a [u8]) -> Option<Self> {
        (data.len() >= Self::LEN).then_some(UdpView(data))
    }

    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.0[0], self.0[1]])
    }

    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.0[2], self.0[3]])
    }

    pub fn len(&self) -> u16 {
        u16::from_be_bytes([self.0[4], self.0[5]])
    }

    pub fn is_empty(&self) -> bool {
        self.len() as usize <= Self::LEN
    }

    pub fn payload(&self) -> &'a [u8] {
        let end = (self.len() as usize).clamp(Self::LEN, self.0.len());
        &self.0[Self::LEN..end]
    }
}

/// View over a TCP header (20+ bytes). Only the fields the flow table and the
/// testbed's TCP model need are exposed.
#[derive(Clone, Copy, Debug)]
pub struct TcpView<'a>(&'a [u8]);

impl<'a> TcpView<'a> {
    pub const MIN_LEN: usize = 20;

    pub fn new(data: &'a [u8]) -> Option<Self> {
        if data.len() < Self::MIN_LEN {
            return None;
        }
        let doff = ((data[12] >> 4) as usize) * 4;
        if doff < Self::MIN_LEN || data.len() < doff {
            return None;
        }
        Some(TcpView(data))
    }

    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.0[0], self.0[1]])
    }

    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.0[2], self.0[3]])
    }

    pub fn seq(&self) -> u32 {
        u32::from_be_bytes([self.0[4], self.0[5], self.0[6], self.0[7]])
    }

    pub fn ack(&self) -> u32 {
        u32::from_be_bytes([self.0[8], self.0[9], self.0[10], self.0[11]])
    }

    pub fn header_len(&self) -> usize {
        ((self.0[12] >> 4) as usize) * 4
    }

    pub fn flags(&self) -> u8 {
        self.0[13]
    }

    pub fn window(&self) -> u16 {
        u16::from_be_bytes([self.0[14], self.0[15]])
    }

    pub fn payload(&self) -> &'a [u8] {
        &self.0[self.header_len()..]
    }
}

/// TCP flag bits.
pub mod tcp_flags {
    pub const FIN: u8 = 0x01;
    pub const SYN: u8 = 0x02;
    pub const RST: u8 = 0x04;
    pub const PSH: u8 = 0x08;
    pub const ACK: u8 = 0x10;
}

/// RFC 1071 internet checksum over `data` (one's-complement sum folded to 16
/// bits, complemented). Over a header whose checksum field is filled in, a
/// valid header sums to `0`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_host_is_unicast_and_unique() {
        let a = MacAddr::host(1);
        let b = MacAddr::host(2);
        assert_ne!(a, b);
        // Locally administered, unicast.
        assert_eq!(a.0[0] & 0x01, 0);
        assert_eq!(a.0[0] & 0x02, 0x02);
        assert_eq!(format!("{a}"), "02:00:00:00:00:01");
    }

    #[test]
    fn ethertype_roundtrip() {
        for v in [0x0800u16, 0x0806, 0x86dd, 0x1234] {
            assert_eq!(EtherType::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn ethernet_view_rejects_short_buffers() {
        assert!(EthernetView::new(&[0u8; 13]).is_none());
        assert!(EthernetView::new(&[0u8; 14]).is_some());
    }

    #[test]
    fn ipv4_view_rejects_bad_version_and_truncation() {
        let mut hdr = [0u8; 20];
        hdr[0] = 0x45;
        assert!(Ipv4View::new(&hdr).is_some());
        hdr[0] = 0x65; // IPv6 version nibble
        assert!(Ipv4View::new(&hdr).is_none());
        hdr[0] = 0x46; // IHL = 24 but only 20 bytes present
        assert!(Ipv4View::new(&hdr).is_none());
    }

    #[test]
    fn checksum_of_rfc1071_example() {
        // Known vector: checksum of this 8-byte sequence is 0x220d.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), 0x220d);
    }

    #[test]
    fn checksum_odd_length() {
        // Odd trailing byte is padded with zero on the right.
        let even = internet_checksum(&[0xab, 0x00]);
        let odd = internet_checksum(&[0xab]);
        assert_eq!(even, odd);
    }

    #[test]
    fn tcp_view_header_len_guard() {
        let mut hdr = [0u8; 20];
        hdr[12] = 0x50; // data offset 5 words = 20 bytes
        assert!(TcpView::new(&hdr).is_some());
        hdr[12] = 0x60; // claims 24 bytes, buffer has 20
        assert!(TcpView::new(&hdr).is_none());
        hdr[12] = 0x40; // below minimum
        assert!(TcpView::new(&hdr).is_none());
    }
}
