//! Frame and packet substrate for LVRM.
//!
//! LVRM (Choi & Lee, ICPP'11 SRMPDS) forwards **raw Ethernet frames** between
//! network interfaces, classifying each frame to a virtual router by its source
//! IP subnet and optionally to a flow by its TCP/UDP 5-tuple. This crate provides
//! everything the rest of the workspace needs to speak that language:
//!
//! * [`Frame`] — an owned raw frame with an ingress timestamp;
//! * zero-copy header views ([`EthernetView`], [`Ipv4View`], [`UdpView`],
//!   [`TcpView`]) plus a [`FrameBuilder`] that assembles valid frames with
//!   correct checksums;
//! * [`FlowKey`] — the 5-tuple used by flow-based load balancing (paper §3.3);
//! * [`wire`] — on-the-wire arithmetic (preamble/IFG accounting, serialization
//!   delay) matching the paper's definition of frame size (84 B minimum frame
//!   *including* preamble, payload and check sequence, §4.1);
//! * [`pool`] — an allocation-free frame buffer pool for the hot path;
//! * [`trace`] — synthetic in-memory frame traces (the paper's "main memory"
//!   socket-adapter variant, §3.1).

pub mod arp;
pub mod flow;
pub mod frame;
pub mod headers;
pub mod pcap;
pub mod pool;
pub mod trace;
pub mod wire;

pub use arp::{ArpMessage, ArpOp, NeighborTable};
pub use flow::{FlowKey, Protocol};
pub use frame::{Frame, FrameBuilder, FrameError};
pub use headers::{EtherType, EthernetView, Ipv4View, MacAddr, TcpView, UdpView};
pub use pcap::{read_pcap, write_pcap, PcapError};
pub use pool::{FramePool, PooledBuf};
pub use trace::{Trace, TraceSpec};
pub use wire::{serialization_ns, wire_bytes, GIGABIT, MAX_FRAME_WIRE, MIN_FRAME_WIRE};
