//! Allocation-free frame buffer pool for the hot path.
//!
//! The runtime's forwarding loop must not allocate per frame (perf-book idiom;
//! also what PF_RING's preallocated ring gives the paper's prototype). The
//! pool hands out fixed-capacity buffers that return themselves on drop.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use crossbeam::queue::ArrayQueue;

/// A pool of fixed-capacity byte buffers.
///
/// `get` pops a recycled buffer or allocates a fresh one if the pool is dry
/// (so the pool never blocks); dropping a [`PooledBuf`] pushes the buffer
/// back, up to the pool's capacity.
pub struct FramePool {
    free: Arc<ArrayQueue<Vec<u8>>>,
    buf_capacity: usize,
}

impl FramePool {
    /// Create a pool of `slots` buffers, each of `buf_capacity` bytes.
    pub fn new(slots: usize, buf_capacity: usize) -> FramePool {
        let free = Arc::new(ArrayQueue::new(slots.max(1)));
        for _ in 0..slots {
            // Pre-fill so steady state never allocates.
            let _ = free.push(Vec::with_capacity(buf_capacity));
        }
        FramePool { free, buf_capacity }
    }

    /// Buffers currently available without allocating.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Capacity of each pooled buffer.
    pub fn buf_capacity(&self) -> usize {
        self.buf_capacity
    }

    /// Take a cleared buffer from the pool (or allocate if empty).
    pub fn get(&self) -> PooledBuf {
        let mut buf = self.free.pop().unwrap_or_else(|| Vec::with_capacity(self.buf_capacity));
        buf.clear();
        PooledBuf { buf: Some(buf), home: Arc::clone(&self.free) }
    }

    /// Take a buffer initialized with `data`.
    pub fn get_with(&self, data: &[u8]) -> PooledBuf {
        let mut b = self.get();
        b.extend_from_slice(data);
        b
    }
}

impl Clone for FramePool {
    fn clone(&self) -> Self {
        FramePool { free: Arc::clone(&self.free), buf_capacity: self.buf_capacity }
    }
}

/// A buffer checked out of a [`FramePool`]; returns to the pool on drop.
pub struct PooledBuf {
    buf: Option<Vec<u8>>,
    home: Arc<ArrayQueue<Vec<u8>>>,
}

impl PooledBuf {
    /// Detach the buffer from the pool (it will be freed normally).
    pub fn into_vec(mut self) -> Vec<u8> {
        self.buf.take().expect("buffer present until drop")
    }
}

impl Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        self.buf.as_ref().expect("buffer present until drop")
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        self.buf.as_mut().expect("buffer present until drop")
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            // If the pool is already full the buffer is simply freed.
            let _ = self.home.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_return_cycles_buffers() {
        let pool = FramePool::new(2, 64);
        assert_eq!(pool.available(), 2);
        let a = pool.get();
        assert_eq!(pool.available(), 1);
        drop(a);
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn exhausted_pool_still_serves() {
        let pool = FramePool::new(1, 64);
        let _a = pool.get();
        let b = pool.get(); // allocates fresh
        assert_eq!(pool.available(), 0);
        drop(b);
        assert_eq!(pool.available(), 1);
    }

    #[test]
    fn buffers_are_cleared_on_reuse() {
        let pool = FramePool::new(1, 64);
        {
            let mut b = pool.get();
            b.extend_from_slice(&[1, 2, 3]);
        }
        let b = pool.get();
        assert!(b.is_empty());
    }

    #[test]
    fn get_with_copies_data() {
        let pool = FramePool::new(1, 64);
        let b = pool.get_with(&[9, 8, 7]);
        assert_eq!(&b[..], &[9, 8, 7]);
    }

    #[test]
    fn into_vec_detaches() {
        let pool = FramePool::new(1, 64);
        let v = pool.get().into_vec();
        assert_eq!(v.capacity(), 64);
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn clone_shares_freelist() {
        let pool = FramePool::new(2, 64);
        let p2 = pool.clone();
        let _a = pool.get();
        assert_eq!(p2.available(), 1);
    }
}
