//! On-the-wire arithmetic.
//!
//! The paper counts frame sizes the way Cisco's PPS methodology does: the
//! 84-byte "minimum frame" *includes* the 7-byte preamble, 1-byte start frame
//! delimiter, 64-byte minimum Ethernet frame (header + payload + FCS) and the
//! 12-byte inter-frame gap (§4.1: "the minimum frame size of an Ethernet frame,
//! which is 84 bytes (including the preamble, payload, and check sequence)").
//! All throughput figures in Chapter 4 are expressed against this wire size, so
//! the whole workspace adopts it.

/// Preamble (7) + start-frame delimiter (1), bytes.
pub const PREAMBLE_SFD: usize = 8;
/// Inter-frame gap, bytes.
pub const IFG: usize = 12;
/// Ethernet header (dst 6 + src 6 + ethertype 2), bytes.
pub const ETH_HEADER: usize = 14;
/// Frame check sequence, bytes.
pub const FCS: usize = 4;
/// Minimum Ethernet frame on the medium (header + payload + FCS), bytes.
pub const MIN_ETH_FRAME: usize = 64;
/// Maximum standard Ethernet frame on the medium, bytes.
pub const MAX_ETH_FRAME: usize = 1518;

/// Minimum *wire* frame size used throughout the paper: 84 bytes.
pub const MIN_FRAME_WIRE: usize = MIN_ETH_FRAME + PREAMBLE_SFD + IFG;
/// Maximum *wire* frame size used throughout the paper: 1538 bytes.
pub const MAX_FRAME_WIRE: usize = MAX_ETH_FRAME + PREAMBLE_SFD + IFG;

/// 1 Gbps in bits per second — the testbed's link rate (§4.1).
pub const GIGABIT: u64 = 1_000_000_000;

/// Convert an in-memory frame length (Ethernet header..FCS, i.e. what a raw
/// socket sees *without* FCS) to its wire footprint in bytes.
///
/// Raw-socket captures exclude preamble, FCS and IFG; the wire adds them back.
/// Sub-minimum frames are padded to the 64-byte Ethernet minimum.
#[inline]
pub fn wire_bytes(captured_len: usize) -> usize {
    let on_medium = (captured_len + FCS).max(MIN_ETH_FRAME);
    on_medium + PREAMBLE_SFD + IFG
}

/// Time to serialize `wire_len` bytes onto a link of `bits_per_sec`, in ns.
#[inline]
pub fn serialization_ns(wire_len: usize, bits_per_sec: u64) -> u64 {
    // bits * 1e9 / bps, computed in u128 to avoid overflow for jumbo sweeps.
    ((wire_len as u128 * 8 * 1_000_000_000) / bits_per_sec as u128) as u64
}

/// Maximum frame rate (frames/second) sustainable by a link at a wire size.
#[inline]
pub fn line_rate_fps(wire_len: usize, bits_per_sec: u64) -> f64 {
    bits_per_sec as f64 / (wire_len as f64 * 8.0)
}

/// The frame-size sweep used by Experiments 1a–1d (wire sizes, bytes).
pub const FRAME_SIZE_SWEEP: [usize; 8] = [84, 128, 256, 512, 768, 1024, 1280, 1538];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_min_and_max_wire_sizes() {
        assert_eq!(MIN_FRAME_WIRE, 84);
        assert_eq!(MAX_FRAME_WIRE, 1538);
    }

    #[test]
    fn wire_bytes_pads_small_frames() {
        // A 60-byte capture (no FCS) becomes exactly the 84-byte minimum.
        assert_eq!(wire_bytes(60), 84);
        // Anything smaller still pads to the minimum.
        assert_eq!(wire_bytes(14), 84);
    }

    #[test]
    fn wire_bytes_adds_overheads_to_large_frames() {
        // 1514-byte capture + 4 FCS + 8 preamble + 12 IFG = 1538.
        assert_eq!(wire_bytes(1514), 1538);
    }

    #[test]
    fn gigabit_line_rate_at_min_frame() {
        // Classic number: ~1.488 Mpps at 84-byte wire frames on 1 GbE.
        let fps = line_rate_fps(MIN_FRAME_WIRE, GIGABIT);
        assert!((fps - 1_488_095.0).abs() < 1.0, "fps = {fps}");
    }

    #[test]
    fn serialization_time_min_frame() {
        // 84 B * 8 = 672 bits -> 672 ns at 1 Gbps.
        assert_eq!(serialization_ns(84, GIGABIT), 672);
    }

    #[test]
    fn serialization_time_max_frame() {
        assert_eq!(serialization_ns(1538, GIGABIT), 12_304);
    }

    #[test]
    fn line_rate_is_inverse_of_serialization() {
        for &sz in &FRAME_SIZE_SWEEP {
            let fps = line_rate_fps(sz, GIGABIT);
            let ns = serialization_ns(sz, GIGABIT) as f64;
            let recomputed = 1e9 / ns;
            assert!((fps - recomputed).abs() / fps < 1e-3);
        }
    }
}
