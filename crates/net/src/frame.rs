//! Owned raw frames and a builder that assembles valid ones.

use std::fmt;
use std::net::Ipv4Addr;

use bytes::{BufMut, Bytes, BytesMut};

use crate::headers::{
    internet_checksum, EtherType, EthernetView, Ipv4View, MacAddr, TcpView, UdpView, IPPROTO_TCP,
    IPPROTO_UDP,
};
use crate::wire;

/// Errors raised while parsing or constructing frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer is too short to contain the requested header.
    Truncated(&'static str),
    /// The frame is not IPv4 where IPv4 was required.
    NotIpv4,
    /// A requested wire size cannot hold the headers + payload.
    SizeTooSmall { requested: usize, minimum: usize },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated(what) => write!(f, "frame truncated at {what} header"),
            FrameError::NotIpv4 => write!(f, "frame is not IPv4"),
            FrameError::SizeTooSmall { requested, minimum } => {
                write!(f, "wire size {requested} below minimum {minimum} for this frame")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// An owned raw Ethernet frame plus the metadata LVRM attaches on ingress.
///
/// The byte buffer holds the *captured* representation (Ethernet header through
/// payload, no preamble/FCS/IFG, exactly what a raw socket or PF_RING delivers).
/// [`Frame::wire_len`] converts to the paper's wire-size accounting.
#[derive(Clone)]
pub struct Frame {
    bytes: Bytes,
    /// Ingress timestamp in nanoseconds (simulation or monotonic clock).
    pub ts_ns: u64,
    /// Ingress interface index, set by the socket adapter.
    pub ingress_if: u16,
    /// Egress interface index, set by the VRI that forwarded the frame.
    /// `u16::MAX` means "not yet routed".
    pub egress_if: u16,
}

impl Frame {
    /// No egress decision yet.
    pub const NO_IF: u16 = u16::MAX;

    /// Wrap captured bytes as a frame.
    pub fn new(bytes: Bytes) -> Frame {
        Frame { bytes, ts_ns: 0, ingress_if: 0, egress_if: Frame::NO_IF }
    }

    /// Wrap captured bytes with an ingress timestamp and interface.
    pub fn with_ingress(bytes: Bytes, ts_ns: u64, ingress_if: u16) -> Frame {
        Frame { bytes, ts_ns, ingress_if, egress_if: Frame::NO_IF }
    }

    /// The captured bytes (Ethernet header onward).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Captured length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Wire footprint per the paper's accounting (preamble + FCS + IFG added,
    /// padded to the Ethernet minimum).
    pub fn wire_len(&self) -> usize {
        wire::wire_bytes(self.len())
    }

    /// Ethernet header view.
    pub fn ethernet(&self) -> Result<EthernetView<'_>, FrameError> {
        EthernetView::new(&self.bytes).ok_or(FrameError::Truncated("ethernet"))
    }

    /// IPv4 view (if this is an IPv4 frame).
    pub fn ipv4(&self) -> Result<Ipv4View<'_>, FrameError> {
        let eth = self.ethernet()?;
        if eth.ethertype() != EtherType::Ipv4 {
            return Err(FrameError::NotIpv4);
        }
        Ipv4View::new(eth.payload()).ok_or(FrameError::Truncated("ipv4"))
    }

    /// Source IPv4 address — the field LVRM uses to pick the owning VR
    /// (workflow step 2, §2.1).
    pub fn src_ip(&self) -> Result<Ipv4Addr, FrameError> {
        Ok(self.ipv4()?.src())
    }

    /// Destination IPv4 address.
    pub fn dst_ip(&self) -> Result<Ipv4Addr, FrameError> {
        Ok(self.ipv4()?.dst())
    }

    /// UDP view, when the frame is IPv4/UDP.
    pub fn udp(&self) -> Result<UdpView<'_>, FrameError> {
        let ip = self.ipv4()?;
        if ip.protocol() != IPPROTO_UDP {
            return Err(FrameError::Truncated("udp"));
        }
        UdpView::new(ip.payload()).ok_or(FrameError::Truncated("udp"))
    }

    /// TCP view, when the frame is IPv4/TCP.
    pub fn tcp(&self) -> Result<TcpView<'_>, FrameError> {
        let ip = self.ipv4()?;
        if ip.protocol() != IPPROTO_TCP {
            return Err(FrameError::Truncated("tcp"));
        }
        TcpView::new(ip.payload()).ok_or(FrameError::Truncated("tcp"))
    }

    /// Consume the frame and return its buffer.
    pub fn into_bytes(self) -> Bytes {
        self.bytes
    }

    /// Mutate the frame's bytes copy-on-write. The buffer may be shared with
    /// a replayed trace (cheap `Bytes` clones), so mutation copies it once,
    /// applies `f`, and re-freezes. Elements that rewrite headers (e.g. a
    /// TTL decrement) pay this copy; pure forwarding never does.
    pub fn modify_bytes(&mut self, f: impl FnOnce(&mut Vec<u8>)) {
        let mut v = self.bytes.to_vec();
        f(&mut v);
        self.bytes = Bytes::from(v);
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("Frame");
        d.field("len", &self.len())
            .field("wire_len", &self.wire_len())
            .field("ts_ns", &self.ts_ns)
            .field("ingress_if", &self.ingress_if);
        if let Ok(ip) = self.ipv4() {
            d.field("src", &ip.src()).field("dst", &ip.dst()).field("proto", &ip.protocol());
        }
        d.finish()
    }
}

/// Builds valid Ethernet/IPv4/{UDP,TCP} frames with correct lengths and
/// checksums. Used by the traffic generators and the test suites.
#[derive(Clone, Debug)]
pub struct FrameBuilder {
    pub src_mac: MacAddr,
    pub dst_mac: MacAddr,
    pub src_ip: Ipv4Addr,
    pub dst_ip: Ipv4Addr,
    pub ttl: u8,
    pub ident: u16,
}

impl FrameBuilder {
    pub fn new(src_ip: Ipv4Addr, dst_ip: Ipv4Addr) -> FrameBuilder {
        FrameBuilder {
            src_mac: MacAddr::host(u32::from(src_ip)),
            dst_mac: MacAddr::host(u32::from(dst_ip)),
            src_ip,
            dst_ip,
            ttl: 64,
            ident: 0,
        }
    }

    pub fn macs(mut self, src: MacAddr, dst: MacAddr) -> FrameBuilder {
        self.src_mac = src;
        self.dst_mac = dst;
        self
    }

    pub fn ttl(mut self, ttl: u8) -> FrameBuilder {
        self.ttl = ttl;
        self
    }

    /// Fixed per-frame overhead of a UDP frame before payload, captured bytes.
    pub const UDP_OVERHEAD: usize = EthernetView::LEN + Ipv4View::MIN_LEN + UdpView::LEN;

    /// Smallest wire size a UDP frame can have (84: minimum Ethernet frame).
    pub const MIN_UDP_WIRE: usize = wire::MIN_FRAME_WIRE;

    /// Build a UDP frame whose *wire* size is exactly `wire_size` bytes, the
    /// way the paper's senders parameterize their traffic (§4.1). The payload
    /// is zero-filled; ports identify the flow.
    pub fn udp_with_wire_size(
        &mut self,
        src_port: u16,
        dst_port: u16,
        wire_size: usize,
    ) -> Result<Frame, FrameError> {
        if wire_size < wire::MIN_FRAME_WIRE {
            return Err(FrameError::SizeTooSmall {
                requested: wire_size,
                minimum: wire::MIN_FRAME_WIRE,
            });
        }
        // wire = captured + FCS + preamble + IFG, captured >= 60 (pad).
        let captured =
            (wire_size - wire::FCS - wire::PREAMBLE_SFD - wire::IFG).max(Self::UDP_OVERHEAD);
        let payload = captured - Self::UDP_OVERHEAD;
        Ok(self.udp(src_port, dst_port, &vec![0u8; payload]))
    }

    /// Build a UDP frame carrying `payload`.
    pub fn udp(&mut self, src_port: u16, dst_port: u16, payload: &[u8]) -> Frame {
        let udp_len = UdpView::LEN + payload.len();
        let mut buf = self.start(IPPROTO_UDP, udp_len);
        buf.put_u16(src_port);
        buf.put_u16(dst_port);
        buf.put_u16(udp_len as u16);
        buf.put_u16(0); // UDP checksum optional over IPv4; 0 = not computed
        buf.put_slice(payload);
        Frame::new(buf.freeze())
    }

    /// Build a TCP frame with the given segment fields and `payload`.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp(
        &mut self,
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: u8,
        window: u16,
        payload: &[u8],
    ) -> Frame {
        let tcp_len = TcpView::MIN_LEN + payload.len();
        let mut buf = self.start(IPPROTO_TCP, tcp_len);
        buf.put_u16(src_port);
        buf.put_u16(dst_port);
        buf.put_u32(seq);
        buf.put_u32(ack);
        buf.put_u8(0x50); // data offset 5 words
        buf.put_u8(flags);
        buf.put_u16(window);
        buf.put_u16(0); // checksum left zero (pseudo-header sum not modeled)
        buf.put_u16(0); // urgent pointer
        buf.put_slice(payload);
        Frame::new(buf.freeze())
    }

    /// Emit Ethernet + IPv4 headers for an L4 payload of `l4_len` bytes and
    /// return the buffer positioned at the L4 header.
    fn start(&mut self, protocol: u8, l4_len: usize) -> BytesMut {
        let total_len = Ipv4View::MIN_LEN + l4_len;
        let mut buf = BytesMut::with_capacity(EthernetView::LEN + total_len);
        // Ethernet
        buf.put_slice(self.dst_mac.as_bytes());
        buf.put_slice(self.src_mac.as_bytes());
        buf.put_u16(EtherType::Ipv4.to_u16());
        // IPv4
        let ip_start = buf.len();
        buf.put_u8(0x45);
        buf.put_u8(0);
        buf.put_u16(total_len as u16);
        buf.put_u16(self.ident);
        self.ident = self.ident.wrapping_add(1);
        buf.put_u16(0x4000); // don't fragment
        buf.put_u8(self.ttl);
        buf.put_u8(protocol);
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&self.src_ip.octets());
        buf.put_slice(&self.dst_ip.octets());
        let csum = internet_checksum(&buf[ip_start..ip_start + Ipv4View::MIN_LEN]);
        buf[ip_start + 10..ip_start + 12].copy_from_slice(&csum.to_be_bytes());
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    #[test]
    fn udp_frame_roundtrips_headers() {
        let mut b = FrameBuilder::new(ip(10, 0, 1, 5), ip(10, 0, 2, 9));
        let f = b.udp(1234, 5678, b"hello");
        assert_eq!(f.src_ip().unwrap(), ip(10, 0, 1, 5));
        assert_eq!(f.dst_ip().unwrap(), ip(10, 0, 2, 9));
        let u = f.udp().unwrap();
        assert_eq!(u.src_port(), 1234);
        assert_eq!(u.dst_port(), 5678);
        assert_eq!(u.payload(), b"hello");
    }

    #[test]
    fn ipv4_checksum_is_valid() {
        let mut b = FrameBuilder::new(ip(10, 0, 1, 5), ip(10, 0, 2, 9));
        let f = b.udp(1, 2, &[0u8; 32]);
        assert!(f.ipv4().unwrap().checksum_ok());
    }

    #[test]
    fn udp_with_wire_size_hits_exact_sizes() {
        let mut b = FrameBuilder::new(ip(10, 0, 1, 5), ip(10, 0, 2, 9));
        for &sz in &wire::FRAME_SIZE_SWEEP {
            let f = b.udp_with_wire_size(1, 2, sz).unwrap();
            assert_eq!(f.wire_len(), sz, "wire size {sz}");
        }
    }

    #[test]
    fn udp_with_wire_size_rejects_sub_minimum() {
        let mut b = FrameBuilder::new(ip(10, 0, 1, 5), ip(10, 0, 2, 9));
        assert!(matches!(b.udp_with_wire_size(1, 2, 83), Err(FrameError::SizeTooSmall { .. })));
    }

    #[test]
    fn tcp_frame_roundtrips_fields() {
        let mut b = FrameBuilder::new(ip(10, 0, 1, 5), ip(10, 0, 2, 9));
        let f = b.tcp(4000, 21, 1000, 2000, crate::headers::tcp_flags::ACK, 65535, b"data");
        let t = f.tcp().unwrap();
        assert_eq!(t.src_port(), 4000);
        assert_eq!(t.dst_port(), 21);
        assert_eq!(t.seq(), 1000);
        assert_eq!(t.ack(), 2000);
        assert_eq!(t.flags(), crate::headers::tcp_flags::ACK);
        assert_eq!(t.window(), 65535);
        assert_eq!(t.payload(), b"data");
    }

    #[test]
    fn ident_increments_per_packet() {
        let mut b = FrameBuilder::new(ip(10, 0, 1, 5), ip(10, 0, 2, 9));
        let _ = b.udp(1, 2, &[]);
        let _ = b.udp(1, 2, &[]);
        assert_eq!(b.ident, 2);
    }

    #[test]
    fn non_ipv4_frame_errors() {
        // An ARP ethertype frame must refuse IPv4 access.
        let mut raw = vec![0u8; 60];
        raw[12] = 0x08;
        raw[13] = 0x06;
        let f = Frame::new(Bytes::from(raw));
        assert_eq!(f.ipv4().unwrap_err(), FrameError::NotIpv4);
    }
}
