//! Classic pcap (libpcap 2.4) trace files.
//!
//! The paper's main-memory socket adapter loads "a trace file of raw frames
//! into main memory" (§3.1). This module reads and writes the classic pcap
//! container so traces can be real files: synthetic workloads can be saved,
//! inspected with standard tools, and replayed through [`crate::Trace`].
//!
//! Scope: the classic fixed-header format only (magic `0xa1b2c3d4`,
//! microsecond timestamps, both endiannesses on read), LINKTYPE_ETHERNET.
//! pcapng is out of scope.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::Bytes;

use crate::frame::Frame;

const MAGIC: u32 = 0xa1b2c3d4;
const MAGIC_SWAPPED: u32 = 0xd4c3b2a1;
const LINKTYPE_ETHERNET: u32 = 1;

/// Errors from pcap parsing.
#[derive(Debug)]
pub enum PcapError {
    Io(io::Error),
    /// Not a classic pcap file.
    BadMagic(u32),
    /// Unsupported link type (only Ethernet is accepted).
    BadLinkType(u32),
    /// A record header describes an impossible length.
    BadRecord {
        declared: u32,
    },
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap i/o error: {e}"),
            PcapError::BadMagic(m) => write!(f, "not a classic pcap file (magic {m:#010x})"),
            PcapError::BadLinkType(t) => write!(f, "unsupported pcap link type {t}"),
            PcapError::BadRecord { declared } => {
                write!(f, "pcap record declares impossible length {declared}")
            }
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

/// Maximum frame we will accept from a file (jumbo + slack).
const MAX_RECORD: u32 = 64 * 1024;

fn u32_at(b: &[u8], off: usize, swap: bool) -> u32 {
    let raw = [b[off], b[off + 1], b[off + 2], b[off + 3]];
    if swap {
        u32::from_be_bytes(raw)
    } else {
        u32::from_le_bytes(raw)
    }
}

/// Write `frames` to `path` as a classic pcap file. Frame timestamps come
/// from `Frame::ts_ns`.
pub fn write_pcap(path: &Path, frames: &[Frame]) -> Result<(), PcapError> {
    let mut w = BufWriter::new(File::create(path)?);
    // Global header: magic, version 2.4, tz 0, sigfigs 0, snaplen, linktype.
    w.write_all(&MAGIC.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?;
    w.write_all(&4u16.to_le_bytes())?;
    w.write_all(&0i32.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;
    w.write_all(&MAX_RECORD.to_le_bytes())?;
    w.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
    for f in frames {
        let ts_sec = (f.ts_ns / 1_000_000_000) as u32;
        let ts_usec = ((f.ts_ns % 1_000_000_000) / 1_000) as u32;
        let len = f.len() as u32;
        w.write_all(&ts_sec.to_le_bytes())?;
        w.write_all(&ts_usec.to_le_bytes())?;
        w.write_all(&len.to_le_bytes())?; // captured
        w.write_all(&len.to_le_bytes())?; // original
        w.write_all(f.bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Read every frame of a classic pcap file. Truncated trailing records are
/// tolerated (common in live captures); anything else malformed errors.
pub fn read_pcap(path: &Path) -> Result<Vec<Frame>, PcapError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut hdr = [0u8; 24];
    r.read_exact(&mut hdr)?;
    let magic_le = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
    let swap = match magic_le {
        MAGIC => false,
        MAGIC_SWAPPED => true,
        other => return Err(PcapError::BadMagic(other)),
    };
    let linktype = u32_at(&hdr, 20, swap);
    if linktype != LINKTYPE_ETHERNET {
        return Err(PcapError::BadLinkType(linktype));
    }
    let mut frames = Vec::new();
    loop {
        let mut rec = [0u8; 16];
        match r.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let ts_sec = u32_at(&rec, 0, swap) as u64;
        let ts_usec = u32_at(&rec, 4, swap) as u64;
        let caplen = u32_at(&rec, 8, swap);
        if caplen > MAX_RECORD {
            return Err(PcapError::BadRecord { declared: caplen });
        }
        let mut data = vec![0u8; caplen as usize];
        match r.read_exact(&mut data) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break, // truncated tail
            Err(e) => return Err(e.into()),
        }
        let mut f = Frame::new(Bytes::from(data));
        f.ts_ns = ts_sec * 1_000_000_000 + ts_usec * 1_000;
        frames.push(f);
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Trace, TraceSpec};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lvrm-pcap-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_frames_and_stamps() {
        let mut trace = Trace::generate(&TraceSpec::new(84, 8));
        let mut frames = Vec::new();
        for i in 0..32u64 {
            let mut f = trace.next_frame();
            f.ts_ns = 1_000_000_000 + i * 10_000; // microsecond-aligned
            frames.push(f);
        }
        let path = tmp("roundtrip");
        write_pcap(&path, &frames).unwrap();
        let back = read_pcap(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), frames.len());
        for (a, b) in frames.iter().zip(&back) {
            assert_eq!(a.bytes(), b.bytes());
            assert_eq!(a.ts_ns, b.ts_ns);
        }
    }

    #[test]
    fn rejects_garbage_files() {
        let path = tmp("garbage");
        std::fs::write(&path, b"this is not a pcap file at all........").unwrap();
        let err = read_pcap(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, PcapError::BadMagic(_)));
    }

    #[test]
    fn rejects_wrong_linktype() {
        let path = tmp("linktype");
        let mut hdr = Vec::new();
        hdr.extend_from_slice(&MAGIC.to_le_bytes());
        hdr.extend_from_slice(&2u16.to_le_bytes());
        hdr.extend_from_slice(&4u16.to_le_bytes());
        hdr.extend_from_slice(&[0u8; 12]); // tz + sigfigs + snaplen
        hdr.extend_from_slice(&101u32.to_le_bytes()); // LINKTYPE_RAW
        std::fs::write(&path, &hdr).unwrap();
        let err = read_pcap(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, PcapError::BadLinkType(101)));
    }

    #[test]
    fn tolerates_truncated_tail_record() {
        let mut trace = Trace::generate(&TraceSpec::new(84, 2));
        let frames = vec![trace.next_frame(), trace.next_frame()];
        let path = tmp("truncated");
        write_pcap(&path, &frames).unwrap();
        // Chop the last 10 bytes off.
        let mut data = std::fs::read(&path).unwrap();
        data.truncate(data.len() - 10);
        std::fs::write(&path, &data).unwrap();
        let back = read_pcap(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), 1, "whole first record survives, partial tail skipped");
    }

    #[test]
    fn bounds_absurd_record_lengths() {
        let path = tmp("absurd");
        let mut data = Vec::new();
        data.extend_from_slice(&MAGIC.to_le_bytes());
        data.extend_from_slice(&2u16.to_le_bytes());
        data.extend_from_slice(&4u16.to_le_bytes());
        data.extend_from_slice(&[0u8; 8]);
        data.extend_from_slice(&MAX_RECORD.to_le_bytes());
        data.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        // One record claiming 2 GB.
        data.extend_from_slice(&[0u8; 8]);
        data.extend_from_slice(&(2_000_000_000u32).to_le_bytes());
        data.extend_from_slice(&(2_000_000_000u32).to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        let err = read_pcap(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, PcapError::BadRecord { .. }));
    }
}
