//! Property tests: frame construction and parsing are inverses, checksums
//! hold, and wire-size accounting behaves for arbitrary inputs.

use std::net::Ipv4Addr;

use lvrm_net::{wire, FlowKey, FrameBuilder};
use proptest::prelude::*;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    (any::<u32>()).prop_map(Ipv4Addr::from)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn udp_build_parse_roundtrip(
        src in arb_ip(),
        dst in arb_ip(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..1400),
    ) {
        let mut b = FrameBuilder::new(src, dst);
        let f = b.udp(sport, dport, &payload);
        prop_assert_eq!(f.src_ip().unwrap(), src);
        prop_assert_eq!(f.dst_ip().unwrap(), dst);
        let u = f.udp().unwrap();
        prop_assert_eq!(u.src_port(), sport);
        prop_assert_eq!(u.dst_port(), dport);
        prop_assert_eq!(u.payload(), &payload[..]);
        prop_assert!(f.ipv4().unwrap().checksum_ok());
    }

    #[test]
    fn tcp_build_parse_roundtrip(
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in any::<u8>(),
        window in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..1400),
    ) {
        let mut b = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 2, 1));
        let f = b.tcp(40_000, 21, seq, ack, flags, window, &payload);
        let t = f.tcp().unwrap();
        prop_assert_eq!(t.seq(), seq);
        prop_assert_eq!(t.ack(), ack);
        prop_assert_eq!(t.flags(), flags);
        prop_assert_eq!(t.window(), window);
        prop_assert_eq!(t.payload(), &payload[..]);
    }

    #[test]
    fn wire_size_exact_for_valid_requests(size in 84usize..=1538) {
        let mut b = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 2, 1));
        let f = b.udp_with_wire_size(1, 2, size).unwrap();
        prop_assert_eq!(f.wire_len(), size);
    }

    #[test]
    fn wire_bytes_monotonic(a in 0usize..3000, b in 0usize..3000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(wire::wire_bytes(lo) <= wire::wire_bytes(hi));
        prop_assert!(wire::wire_bytes(lo) >= wire::MIN_FRAME_WIRE);
    }

    #[test]
    fn flow_key_stable_under_payload_changes(
        p1 in prop::collection::vec(any::<u8>(), 0..500),
        p2 in prop::collection::vec(any::<u8>(), 0..500),
    ) {
        let mut b = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 2, 1));
        let f1 = b.udp(1111, 2222, &p1);
        let f2 = b.udp(1111, 2222, &p2);
        prop_assert_eq!(FlowKey::from_frame(&f1), FlowKey::from_frame(&f2));
    }

    #[test]
    fn serialization_scales_linearly(size in 64usize..10_000) {
        let one = wire::serialization_ns(size, wire::GIGABIT);
        let two = wire::serialization_ns(size * 2, wire::GIGABIT);
        // Integer rounding allows 1 ns slack.
        prop_assert!((two as i64 - 2 * one as i64).abs() <= 1);
    }
}
