//! SysV shared-memory IPC — the paper's actual queue substrate.
//!
//! "LVRM allocates a shared memory segment for each IPC queue (via the
//! function call `shmget()`). The shared memory segment is associated with a
//! shared memory identifier, through which LVRM and VRIs can access" (§3.8).
//! This module provides exactly that: a [`ShmRegion`] wrapping
//! `shmget`/`shmat`, and [`ShmFrameQueue`], a Lamport SPSC ring laid out as
//! plain data *inside* the segment so two **processes** (not just threads)
//! can exchange raw frames through it. The cross-`fork()` integration test
//! in `tests/shm_fork.rs` proves the process-to-process path.
//!
//! Layout of a queue segment:
//!
//! ```text
//! [ head: AtomicU32 | pad to 64 | tail: AtomicU32 | pad to 64 |
//!   slot 0: { len: u32, bytes: [u8; SLOT_BYTES] } | slot 1 | ... ]
//! ```
//!
//! The control protocol is Lamport's (one writer per index, payload
//! published with Release before the index). Frames are copied in and out
//! of fixed slots — unlike the in-process queues, reference-counted buffers
//! cannot cross an address-space boundary.

#![cfg(target_os = "linux")]

use std::sync::atomic::{AtomicU32, Ordering};

use bytes::Bytes;
use lvrm_net::Frame;

/// Maximum frame bytes a slot can carry (jumbo-free Ethernet capture).
pub const SLOT_BYTES: usize = 1514;

const CACHE_LINE: usize = 64;

/// Errors from the SysV shm syscalls.
#[derive(Debug)]
pub struct ShmError {
    pub op: &'static str,
    pub errno: i32,
}

impl std::fmt::Display for ShmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} failed (errno {})", self.op, self.errno)
    }
}

impl std::error::Error for ShmError {}

fn errno() -> i32 {
    std::io::Error::last_os_error().raw_os_error().unwrap_or(-1)
}

/// An attached System V shared-memory segment.
///
/// Created private (`IPC_PRIVATE`): the id is inherited by forked children
/// or passed "via the main arguments to VRIs" exactly as the paper does.
/// The creator marks the segment for destruction on drop; it lives until
/// the last attachment detaches.
pub struct ShmRegion {
    id: i32,
    addr: *mut u8,
    len: usize,
    owner: bool,
}

// SAFETY: the raw pointer refers to shared memory valid for the lifetime of
// the attachment; concurrent access is governed by the queue protocol.
unsafe impl Send for ShmRegion {}

impl ShmRegion {
    /// Allocate and attach a fresh segment of at least `len` bytes.
    pub fn create(len: usize) -> Result<ShmRegion, ShmError> {
        // SAFETY: plain syscalls; flags request a new private segment.
        let id = unsafe { libc::shmget(libc::IPC_PRIVATE, len, libc::IPC_CREAT | 0o600) };
        if id < 0 {
            return Err(ShmError { op: "shmget", errno: errno() });
        }
        let addr = unsafe { libc::shmat(id, std::ptr::null(), 0) };
        if addr as isize == -1 {
            unsafe { libc::shmctl(id, libc::IPC_RMID, std::ptr::null_mut()) };
            return Err(ShmError { op: "shmat", errno: errno() });
        }
        // SAFETY: fresh attachment; zero it so queue indices start clean.
        unsafe { std::ptr::write_bytes(addr as *mut u8, 0, len) };
        Ok(ShmRegion { id, addr: addr as *mut u8, len, owner: true })
    }

    /// Attach an existing segment by id (the identifier LVRM hands a VRI).
    pub fn attach(id: i32, len: usize) -> Result<ShmRegion, ShmError> {
        let addr = unsafe { libc::shmat(id, std::ptr::null(), 0) };
        if addr as isize == -1 {
            return Err(ShmError { op: "shmat", errno: errno() });
        }
        Ok(ShmRegion { id, addr: addr as *mut u8, len, owner: false })
    }

    /// The shared-memory identifier (pass to the peer process).
    pub fn id(&self) -> i32 {
        self.id
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn base(&self) -> *mut u8 {
        self.addr
    }
}

impl Drop for ShmRegion {
    fn drop(&mut self) {
        // SAFETY: detach our mapping; the owner also marks the segment for
        // removal (it persists until every attachment is gone).
        unsafe {
            libc::shmdt(self.addr as *const libc::c_void);
            if self.owner {
                libc::shmctl(self.id, libc::IPC_RMID, std::ptr::null_mut());
            }
        }
    }
}

#[repr(C)]
struct SlotHeader {
    len: u32,
}

// Stride rounded up so every slot header stays 4-byte aligned.
const SLOT_STRIDE: usize = (std::mem::size_of::<SlotHeader>() + SLOT_BYTES + 3) & !3;

/// Bytes of shared memory needed for a queue of `capacity` slots.
pub fn queue_region_len(capacity: usize) -> usize {
    2 * CACHE_LINE + (capacity + 1) * SLOT_STRIDE
}

/// A Lamport SPSC frame ring living inside a [`ShmRegion`].
///
/// Exactly one producer and one consumer — typically in different processes.
/// Both sides construct an `ShmFrameQueue` over their own attachment of the
/// same segment; the type is a view, not an owner.
pub struct ShmFrameQueue<'a> {
    region: &'a ShmRegion,
    slots: usize,
}

impl<'a> ShmFrameQueue<'a> {
    /// View `region` as a queue with `capacity` usable slots. The region
    /// must have been sized with [`queue_region_len`] for the same capacity.
    pub fn new(region: &'a ShmRegion, capacity: usize) -> ShmFrameQueue<'a> {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(
            region.len() >= queue_region_len(capacity),
            "region too small for {capacity} slots"
        );
        ShmFrameQueue { region, slots: capacity + 1 }
    }

    fn head(&self) -> &AtomicU32 {
        // SAFETY: offset 0 is within the region and aligned; AtomicU32 is
        // valid for any bit pattern and the region outlives `self`.
        unsafe { &*(self.region.base() as *const AtomicU32) }
    }

    fn tail(&self) -> &AtomicU32 {
        // SAFETY: as above, one cache line in.
        unsafe { &*(self.region.base().add(CACHE_LINE) as *const AtomicU32) }
    }

    /// Raw pointer to slot `i`'s header.
    fn slot_ptr(&self, i: usize) -> *mut u8 {
        debug_assert!(i < self.slots);
        // SAFETY: bounds asserted at construction.
        unsafe { self.region.base().add(2 * CACHE_LINE + i * SLOT_STRIDE) }
    }

    /// Try to enqueue a frame's bytes. Fails when the ring is full or the
    /// frame exceeds [`SLOT_BYTES`].
    pub fn try_send(&self, frame: &Frame) -> bool {
        let data = frame.bytes();
        if data.len() > SLOT_BYTES {
            return false;
        }
        let tail = self.tail().load(Ordering::Relaxed) as usize;
        let next = (tail + 1) % self.slots;
        if next == self.head().load(Ordering::Acquire) as usize {
            return false; // full
        }
        let p = self.slot_ptr(tail);
        // SAFETY: the Lamport protocol gives the producer exclusive
        // ownership of slot `tail` until the Release store below.
        unsafe {
            (*(p as *mut SlotHeader)).len = data.len() as u32;
            std::ptr::copy_nonoverlapping(
                data.as_ptr(),
                p.add(std::mem::size_of::<SlotHeader>()),
                data.len(),
            );
        }
        self.tail().store(next as u32, Ordering::Release);
        true
    }

    /// Try to dequeue one frame (copies the bytes out of the segment).
    pub fn try_recv(&self) -> Option<Frame> {
        let head = self.head().load(Ordering::Relaxed) as usize;
        if head == self.tail().load(Ordering::Acquire) as usize {
            return None;
        }
        let p = self.slot_ptr(head);
        // SAFETY: head != tail, so the producer published this slot with
        // Release; our Acquire load pairs with it.
        let frame = unsafe {
            let len = (*(p as *const SlotHeader)).len as usize;
            let len = len.min(SLOT_BYTES);
            let bytes = std::slice::from_raw_parts(p.add(std::mem::size_of::<SlotHeader>()), len);
            Frame::new(Bytes::copy_from_slice(bytes))
        };
        self.head().store(((head + 1) % self.slots) as u32, Ordering::Release);
        Some(frame)
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        let head = self.head().load(Ordering::Acquire) as usize;
        let tail = self.tail().load(Ordering::Acquire) as usize;
        (tail + self.slots - head) % self.slots
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvrm_net::FrameBuilder;
    use std::net::Ipv4Addr;

    fn frame(tag: u8, payload: usize) -> Frame {
        FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 2, 1)).udp(
            100,
            200,
            &vec![tag; payload],
        )
    }

    #[test]
    fn same_process_roundtrip() {
        let region = ShmRegion::create(queue_region_len(8)).expect("shm available");
        let q = ShmFrameQueue::new(&region, 8);
        assert!(q.is_empty());
        assert!(q.try_send(&frame(7, 100)));
        assert!(q.try_send(&frame(8, 100)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_recv().unwrap().udp().unwrap().payload()[0], 7);
        assert_eq!(q.try_recv().unwrap().udp().unwrap().payload()[0], 8);
        assert!(q.try_recv().is_none());
    }

    #[test]
    fn full_ring_refuses() {
        let region = ShmRegion::create(queue_region_len(2)).expect("shm available");
        let q = ShmFrameQueue::new(&region, 2);
        assert!(q.try_send(&frame(1, 10)));
        assert!(q.try_send(&frame(2, 10)));
        assert!(!q.try_send(&frame(3, 10)), "third send exceeds capacity");
        q.try_recv();
        assert!(q.try_send(&frame(3, 10)));
    }

    #[test]
    fn oversized_frames_rejected() {
        let region = ShmRegion::create(queue_region_len(2)).expect("shm available");
        let q = ShmFrameQueue::new(&region, 2);
        assert!(!q.try_send(&frame(1, SLOT_BYTES)), "payload pushes past the slot");
        assert!(q.is_empty());
    }

    #[test]
    fn second_attachment_sees_the_same_data() {
        let region = ShmRegion::create(queue_region_len(4)).expect("shm available");
        let peer = ShmRegion::attach(region.id(), region.len()).expect("attach by id");
        let tx = ShmFrameQueue::new(&region, 4);
        let rx = ShmFrameQueue::new(&peer, 4);
        assert!(tx.try_send(&frame(42, 64)));
        let got = rx.try_recv().expect("visible through the other mapping");
        assert_eq!(got.udp().unwrap().payload()[0], 42);
    }

    #[test]
    fn wraparound_preserves_content() {
        let region = ShmRegion::create(queue_region_len(3)).expect("shm available");
        let q = ShmFrameQueue::new(&region, 3);
        for round in 0..50u8 {
            assert!(q.try_send(&frame(round, 32)));
            let f = q.try_recv().unwrap();
            assert_eq!(f.udp().unwrap().payload(), &[round; 32][..]);
        }
    }
}
