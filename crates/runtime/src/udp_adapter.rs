//! A live socket adapter over UDP loopback.
//!
//! The paper's raw-socket variant needs `AF_PACKET` and real NICs; inside a
//! container we substitute a kernel **UDP socket pair on loopback**, which
//! preserves the property the raw-socket path is measured for: every frame
//! crosses the kernel with a syscall and two copies in each direction (see
//! DESIGN.md). The adapter carries whole Ethernet frames as UDP payloads.

use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};

use bytes::Bytes;
use lvrm_core::socket::{SocketAdapter, SocketKind};
use lvrm_net::Frame;

/// A `SocketAdapter` backed by a pair of non-blocking UDP sockets.
pub struct UdpAdapter {
    rx: UdpSocket,
    tx: UdpSocket,
    peer: SocketAddr,
    buf: Vec<u8>,
    rx_count: u64,
    tx_count: u64,
    /// Sends refused by the kernel (buffer full), frames dropped.
    pub tx_drops: u64,
}

impl UdpAdapter {
    /// Bind a receive socket on `127.0.0.1:0` and aim transmissions at
    /// `peer`. Returns the adapter and its own listening address (give it to
    /// whoever should send frames here).
    pub fn bind(peer: SocketAddr) -> std::io::Result<(UdpAdapter, SocketAddr)> {
        let rx = UdpSocket::bind("127.0.0.1:0")?;
        rx.set_nonblocking(true)?;
        let tx = UdpSocket::bind("127.0.0.1:0")?;
        tx.set_nonblocking(true)?;
        let local = rx.local_addr()?;
        Ok((
            UdpAdapter {
                rx,
                tx,
                peer,
                buf: vec![0u8; 65536],
                rx_count: 0,
                tx_count: 0,
                tx_drops: 0,
            },
            local,
        ))
    }

    /// Create a connected loopback pair: frames sent by one side arrive at
    /// the other (a two-NIC gateway in miniature).
    pub fn pair() -> std::io::Result<(UdpAdapter, UdpAdapter)> {
        // Bind both first with throwaway peers, then cross-wire.
        let (mut a, a_addr) = UdpAdapter::bind("127.0.0.1:1".parse().unwrap())?;
        let (b, b_addr) = UdpAdapter::bind(a_addr)?;
        a.peer = b_addr;
        Ok((a, b))
    }
}

impl SocketAdapter for UdpAdapter {
    fn poll(&mut self) -> Option<Frame> {
        match self.rx.recv_from(&mut self.buf) {
            Ok((n, _)) => {
                self.rx_count += 1;
                Some(Frame::new(Bytes::copy_from_slice(&self.buf[..n])))
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => None,
            Err(_) => None,
        }
    }

    fn poll_batch(&mut self, out: &mut Vec<Frame>, budget: usize) -> usize {
        // One syscall per frame is unavoidable on a plain UDP socket (no
        // recvmmsg in the shimmed libc); the native impl still skips the
        // per-frame Option plumbing of the default loop.
        let mut n = 0;
        while n < budget {
            match self.rx.recv_from(&mut self.buf) {
                Ok((len, _)) => {
                    self.rx_count += 1;
                    out.push(Frame::new(Bytes::copy_from_slice(&self.buf[..len])));
                    n += 1;
                }
                Err(_) => break,
            }
        }
        n
    }

    fn send(&mut self, frame: Frame) {
        match self.tx.send_to(frame.bytes(), self.peer) {
            Ok(_) => self.tx_count += 1,
            Err(_) => self.tx_drops += 1,
        }
    }

    fn send_batch(&mut self, frames: &mut Vec<Frame>) {
        for frame in frames.drain(..) {
            match self.tx.send_to(frame.bytes(), self.peer) {
                Ok(_) => self.tx_count += 1,
                Err(_) => self.tx_drops += 1,
            }
        }
    }

    fn kind(&self) -> SocketKind {
        SocketKind::RawSocket
    }

    fn rx_count(&self) -> u64 {
        self.rx_count
    }

    fn tx_count(&self) -> u64 {
        self.tx_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvrm_net::FrameBuilder;
    use std::net::Ipv4Addr;

    fn frame(tag: u8) -> Frame {
        FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 2, 1))
            .udp(100, 200, &[tag; 8])
    }

    #[test]
    fn pair_roundtrips_frames() {
        let (mut a, mut b) = UdpAdapter::pair().unwrap();
        a.send(frame(7));
        // Loopback delivery is fast but asynchronous; poll with a deadline.
        let t0 = std::time::Instant::now();
        let got = loop {
            if let Some(f) = b.poll() {
                break Some(f);
            }
            if t0.elapsed().as_secs() > 5 {
                break None;
            }
        };
        let f = got.expect("frame over loopback");
        assert_eq!(f.udp().unwrap().payload(), &[7u8; 8]);
        assert_eq!(a.tx_count(), 1);
        assert_eq!(b.rx_count(), 1);
    }

    #[test]
    fn poll_is_nonblocking_when_idle() {
        let (mut a, _b) = UdpAdapter::pair().unwrap();
        let t0 = std::time::Instant::now();
        assert!(a.poll().is_none());
        assert!(t0.elapsed().as_millis() < 100);
    }

    #[test]
    fn kind_reports_raw_socket_profile() {
        let (a, _b) = UdpAdapter::pair().unwrap();
        assert_eq!(a.kind(), SocketKind::RawSocket);
    }
}
