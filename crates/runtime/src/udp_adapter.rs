//! A live socket adapter over UDP loopback.
//!
//! The paper's raw-socket variant needs `AF_PACKET` and real NICs; inside a
//! container we substitute a kernel **UDP socket pair on loopback**, which
//! preserves the property the raw-socket path is measured for: every frame
//! crosses the kernel with a syscall and two copies in each direction (see
//! DESIGN.md). The adapter carries whole Ethernet frames as UDP payloads.
//!
//! Errors surface through the fallible [`SocketAdapter`] contract:
//! `EWOULDBLOCK`/`EAGAIN` *and* `EINTR` are the idle case ([`AdapterError::
//! WouldBlock`]) — an interrupted syscall lost nothing and must not skew the
//! receive counters — while everything else is a real fault for the adapter
//! supervisor to act on. Refused sends hand the frame back instead of
//! dropping it.

use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};

use bytes::Bytes;
use lvrm_core::socket::{AdapterError, SendRejected, SocketAdapter, SocketKind};
use lvrm_net::Frame;

/// Map a raw socket error to the adapter taxonomy. `EWOULDBLOCK`/`EAGAIN`
/// and `EINTR` are not faults — conflating EINTR with an error (or worse,
/// with a received frame) is precisely the bug class the fallible surface
/// exists to prevent.
pub(crate) fn classify_io_error(e: std::io::Error) -> AdapterError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::Interrupted => AdapterError::WouldBlock,
        _ => AdapterError::Transient(e),
    }
}

/// A `SocketAdapter` backed by a pair of non-blocking UDP sockets.
pub struct UdpAdapter {
    rx: UdpSocket,
    tx: UdpSocket,
    local: SocketAddr,
    peer: SocketAddr,
    buf: Vec<u8>,
    rx_count: u64,
    tx_count: u64,
}

impl UdpAdapter {
    /// Bind a receive socket on `127.0.0.1:0` and aim transmissions at
    /// `peer`. Returns the adapter and its own listening address (give it to
    /// whoever should send frames here).
    pub fn bind(peer: SocketAddr) -> std::io::Result<(UdpAdapter, SocketAddr)> {
        let rx = UdpSocket::bind("127.0.0.1:0")?;
        rx.set_nonblocking(true)?;
        let tx = UdpSocket::bind("127.0.0.1:0")?;
        tx.set_nonblocking(true)?;
        let local = rx.local_addr()?;
        Ok((
            UdpAdapter { rx, tx, local, peer, buf: vec![0u8; 65536], rx_count: 0, tx_count: 0 },
            local,
        ))
    }

    /// Create a connected loopback pair: frames sent by one side arrive at
    /// the other (a two-NIC gateway in miniature).
    pub fn pair() -> std::io::Result<(UdpAdapter, UdpAdapter)> {
        // Bind both first with throwaway peers, then cross-wire.
        let (mut a, a_addr) = UdpAdapter::bind("127.0.0.1:1".parse().unwrap())?;
        let (b, b_addr) = UdpAdapter::bind(a_addr)?;
        a.peer = b_addr;
        Ok((a, b))
    }
}

impl SocketAdapter for UdpAdapter {
    fn poll(&mut self) -> Result<Frame, AdapterError> {
        match self.rx.recv_from(&mut self.buf) {
            Ok((n, _)) => {
                self.rx_count += 1;
                Ok(Frame::new(Bytes::copy_from_slice(&self.buf[..n])))
            }
            Err(e) => Err(classify_io_error(e)),
        }
    }

    fn send(&mut self, frame: Frame) -> Result<(), SendRejected> {
        match self.tx.send_to(frame.bytes(), self.peer) {
            Ok(_) => {
                self.tx_count += 1;
                Ok(())
            }
            Err(e) => Err(SendRejected { frame, error: classify_io_error(e) }),
        }
    }

    /// Rebind both sockets, keeping the same receive port so peers need no
    /// re-discovery. The old receive descriptor must be released before the
    /// port can be bound again, hence the placeholder swap.
    fn reopen(&mut self) -> Result<(), AdapterError> {
        let placeholder = UdpSocket::bind("127.0.0.1:0").map_err(AdapterError::Transient)?;
        drop(std::mem::replace(&mut self.rx, placeholder));
        let rx = UdpSocket::bind(self.local).map_err(AdapterError::Transient)?;
        rx.set_nonblocking(true).map_err(AdapterError::Transient)?;
        let tx = UdpSocket::bind("127.0.0.1:0").map_err(AdapterError::Transient)?;
        tx.set_nonblocking(true).map_err(AdapterError::Transient)?;
        self.rx = rx;
        self.tx = tx;
        Ok(())
    }

    fn kind(&self) -> SocketKind {
        SocketKind::RawSocket
    }

    fn rx_count(&self) -> u64 {
        self.rx_count
    }

    fn tx_count(&self) -> u64 {
        self.tx_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvrm_net::FrameBuilder;
    use std::net::Ipv4Addr;

    fn frame(tag: u8) -> Frame {
        FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 2, 1))
            .udp(100, 200, &[tag; 8])
    }

    fn poll_with_deadline(b: &mut UdpAdapter) -> Option<Frame> {
        let t0 = std::time::Instant::now();
        loop {
            match b.poll() {
                Ok(f) => break Some(f),
                Err(AdapterError::WouldBlock) => {}
                Err(e) => panic!("unexpected poll fault: {e}"),
            }
            if t0.elapsed().as_secs() > 5 {
                break None;
            }
        }
    }

    #[test]
    fn pair_roundtrips_frames() {
        let (mut a, mut b) = UdpAdapter::pair().unwrap();
        a.send(frame(7)).unwrap();
        // Loopback delivery is fast but asynchronous; poll with a deadline.
        let f = poll_with_deadline(&mut b).expect("frame over loopback");
        assert_eq!(f.udp().unwrap().payload(), &[7u8; 8]);
        assert_eq!(a.tx_count(), 1);
        assert_eq!(b.rx_count(), 1);
    }

    #[test]
    fn poll_is_nonblocking_when_idle() {
        let (mut a, _b) = UdpAdapter::pair().unwrap();
        let t0 = std::time::Instant::now();
        assert!(matches!(a.poll(), Err(AdapterError::WouldBlock)));
        assert!(t0.elapsed().as_millis() < 100);
    }

    #[test]
    fn eintr_and_eagain_classify_as_would_block_not_faults() {
        // Regression for the error-swallowing bug: EINTR used to fall into
        // the same arm as real faults (frame silently "absent"), skewing
        // supervision. Both idle kinds must map to WouldBlock; anything
        // else stays a Transient carrying the original error.
        for kind in [ErrorKind::WouldBlock, ErrorKind::Interrupted] {
            let e = std::io::Error::new(kind, "sig");
            assert!(classify_io_error(e).is_would_block(), "{kind:?}");
        }
        match classify_io_error(std::io::Error::new(ErrorKind::ConnectionRefused, "icmp")) {
            AdapterError::Transient(e) => assert_eq!(e.kind(), ErrorKind::ConnectionRefused),
            other => panic!("expected Transient, got {other}"),
        }
    }

    #[test]
    fn reopen_keeps_port_and_counters() {
        let (mut a, mut b) = UdpAdapter::pair().unwrap();
        a.send(frame(1)).unwrap();
        assert!(poll_with_deadline(&mut b).is_some());
        b.reopen().expect("rebind same port");
        a.send(frame(2)).unwrap();
        let f = poll_with_deadline(&mut b).expect("frame after reopen");
        assert_eq!(f.udp().unwrap().payload(), &[2u8; 8]);
        assert_eq!(b.rx_count(), 2, "counters survive the reopen");
    }

    #[test]
    fn kind_reports_raw_socket_profile() {
        let (a, _b) = UdpAdapter::pair().unwrap();
        assert_eq!(a.kind(), SocketKind::RawSocket);
    }
}
