//! VRIs as OS threads: the real [`VriHost`].
//!
//! The paper forks a process per VRI and binds it to its core; we spawn a
//! thread per VRI (see DESIGN.md's substitution table — the isolation the
//! experiments rely on is *core* isolation, which threads give us equally).
//! Each thread runs the canonical VRI loop: `fromLVRM()` (control before
//! data), optional synthetic per-frame load, route, `toLVRM()`.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use lvrm_core::clock::{Clock, MonotonicClock};
use lvrm_core::fault::FaultInjectable;
use lvrm_core::host::{VriHost, VriSpec};
use lvrm_core::repl::{decode_batch, is_state_update, ReplicaLedger};
use lvrm_core::vri::{LvrmAdapter, LVRM_CTRL_ID};
use lvrm_core::{VrId, VriId};
use lvrm_ipc::channels::ControlEvent;
use lvrm_ipc::VriEndpoint;
use lvrm_net::{FlowKey, Frame};
use lvrm_router::{RouterAction, VirtualRouter};
use parking_lot::Mutex;

use crate::affinity::{pin_to_core, spin_for_ns};

/// What a VRI does with control events (Experiment 1e roles).
pub enum CtrlRole {
    /// Ignore control events (default).
    None,
    /// Every `period_ns`, emit a control event of `payload` bytes to `dst`,
    /// timestamped for latency measurement.
    Emitter { dst: VriId, payload: usize, period_ns: u64 },
    /// Record one-way latency of received control events into the shared
    /// histogram.
    Recorder { sink: Arc<Mutex<lvrm_metrics::LatencyHistogram>> },
}

struct VriThread {
    vr: VrId,
    vri: VriId,
    stop: Arc<AtomicBool>,
    /// Fault injection: exit abruptly, abandoning queued frames.
    crash: Arc<AtomicBool>,
    /// Fault injection: wedge the service loop (no frames, no heartbeats).
    stall: Arc<AtomicBool>,
    /// Fault injection: suppress heartbeats while servicing normally.
    ctrl_loss: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Spawns one thread per VRI. Roles for Experiment 1e are assigned to VRIs
/// in spawn order via [`ThreadHost::queue_role`].
pub struct ThreadHost {
    clock: MonotonicClock,
    threads: Vec<VriThread>,
    pending_roles: Vec<CtrlRole>,
    /// How many data frames a VRI pulls per `fromLVRM()` burst (>= 1).
    /// Matches the monitor's `LvrmConfig::batch_size` in the batched
    /// pipeline; 1 reproduces the per-frame service loop.
    pub batch_size: usize,
    /// Frames processed across all VRIs (shared counter for reports).
    pub processed: Arc<AtomicU64>,
    /// Whether any pin attempt failed (diagnostic).
    pub pin_failures: Arc<AtomicU64>,
    /// Endpoints of exited VRI threads, awaiting [`VriHost::reap_endpoint`].
    /// Every thread stashes its endpoint here *before* detaching, so by the
    /// time the supervisor observes a detached endpoint the frames are
    /// already recoverable (no reap race).
    reaped: ReapedEndpoints,
    /// State-compute replication (DESIGN.md §14): each VRI thread keeps a
    /// per-flow [`ReplicaLedger`], flushes `LVSU` batches upstream after
    /// every service burst, and folds sibling batches it receives.
    replicate: bool,
}

type ReapedEndpoints = Arc<Mutex<Vec<(VriId, VriEndpoint<Frame>)>>>;

impl ThreadHost {
    pub fn new(clock: MonotonicClock) -> ThreadHost {
        ThreadHost {
            clock,
            threads: Vec::new(),
            pending_roles: Vec::new(),
            batch_size: 1,
            processed: Arc::new(AtomicU64::new(0)),
            pin_failures: Arc::new(AtomicU64::new(0)),
            reaped: Arc::new(Mutex::new(Vec::new())),
            replicate: false,
        }
    }

    /// Enable the VRI-side replica ledgers (replicated-dispatch VRs need
    /// them; pinned-only hosts skip the per-frame flow accounting).
    pub fn with_replication(mut self) -> ThreadHost {
        self.replicate = true;
        self
    }

    /// Builder-style batch-size override for the batched pipeline.
    pub fn with_batch_size(mut self, batch_size: usize) -> ThreadHost {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Queue a control role for the next spawned VRI.
    pub fn queue_role(&mut self, role: CtrlRole) {
        self.pending_roles.push(role);
    }

    /// Live VRI threads.
    pub fn live(&self) -> usize {
        self.threads.len()
    }

    /// Stop every VRI and join.
    pub fn shutdown(&mut self) {
        for t in &self.threads {
            t.stop.store(true, Ordering::Release);
        }
        for mut t in self.threads.drain(..) {
            if let Some(h) = t.handle.take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for ThreadHost {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl VriHost for ThreadHost {
    fn spawn_vri(
        &mut self,
        spec: VriSpec,
        endpoint: VriEndpoint<Frame>,
        mut router: Box<dyn VirtualRouter>,
    ) {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let crash = Arc::new(AtomicBool::new(false));
        let crash2 = Arc::clone(&crash);
        let stall = Arc::new(AtomicBool::new(false));
        let stall2 = Arc::clone(&stall);
        let ctrl_loss = Arc::new(AtomicBool::new(false));
        let ctrl_loss2 = Arc::clone(&ctrl_loss);
        let reaped = Arc::clone(&self.reaped);
        let clock = self.clock.clone();
        let processed = Arc::clone(&self.processed);
        let pin_failures = Arc::clone(&self.pin_failures);
        let role = if self.pending_roles.is_empty() {
            CtrlRole::None
        } else {
            self.pending_roles.remove(0)
        };
        let core = spec.core.0 as usize;
        let vri = spec.vri;
        let batch = self.batch_size.max(1);
        let replicate = self.replicate;
        let handle = std::thread::Builder::new()
            .name(format!("{}-{}", spec.vr, spec.vri))
            .spawn(move || {
                if !pin_to_core(core) {
                    pin_failures.fetch_add(1, Ordering::Relaxed);
                }
                // Keep a detach handle outside the adapter so the endpoint
                // can be stashed for reaping *before* the flag flips.
                let attachment = endpoint.attachment();
                let mut adapter = LvrmAdapter::new(vri, endpoint);
                // The service loop runs under `catch_unwind` so a panicking
                // router ends this VRI like a crash — endpoint reapable,
                // supervisor respawns — instead of poisoning the process.
                let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let dummy = router.dummy_load_ns();
                    let mut next_emit_ns = 0u64;
                    let mut ledger = replicate.then(|| ReplicaLedger::new(vri.0));
                    let mut ctrl: Vec<ControlEvent> = Vec::new();
                    let mut data: Vec<Frame> = Vec::with_capacity(batch);
                    let mut outq: Vec<Frame> = Vec::with_capacity(batch);
                    loop {
                        if stop2.load(Ordering::Acquire) || crash2.load(Ordering::Acquire) {
                            break;
                        }
                        if stall2.load(Ordering::Acquire) {
                            // Wedged: no servicing, no heartbeats — exactly
                            // what the supervisor's dead-man timer watches.
                            std::hint::spin_loop();
                            continue;
                        }
                        adapter.set_heartbeats(!ctrl_loss2.load(Ordering::Acquire));
                        let now = clock.now_ns();
                        // Emitter role: originate a timestamped control event.
                        if let CtrlRole::Emitter { dst, payload, period_ns } = &role {
                            if now >= next_emit_ns {
                                let mut ev = ControlEvent::new(vri.0, dst.0, vec![0u8; *payload]);
                                ev.ts_ns = clock.now_ns();
                                let _ = adapter.send_control(ev);
                                next_emit_ns = now + period_ns;
                            }
                        }
                        // Control first (strict priority, §2.1), then a data
                        // burst pulled with one index publication.
                        let n = adapter.from_lvrm_batch(&mut ctrl, &mut data, batch, now);
                        for ev in ctrl.drain(..) {
                            if let Some(ledger) = ledger.as_mut() {
                                if is_state_update(&ev.payload) {
                                    if let Ok((origin, updates)) = decode_batch(&ev.payload) {
                                        ledger.fold_batch(origin, &updates);
                                    }
                                    continue;
                                }
                            }
                            if let CtrlRole::Recorder { sink } = &role {
                                let latency = clock.now_ns().saturating_sub(ev.ts_ns);
                                sink.lock().record(latency);
                            }
                        }
                        if n == 0 {
                            std::hint::spin_loop();
                            continue;
                        }
                        for mut frame in data.drain(..) {
                            spin_for_ns(dummy);
                            if let Some(ledger) = ledger.as_mut() {
                                if let Some(key) = FlowKey::from_frame(&frame) {
                                    ledger.observe(key, frame.len() as u64, clock.now_ns());
                                }
                            }
                            if let RouterAction::Forward { .. } = router.process(&mut frame) {
                                outq.push(frame);
                            }
                            // Per-frame departure times keep the service-rate
                            // estimate honest even though the dequeue was bulk.
                            adapter.note_departure(clock.now_ns());
                            processed.fetch_add(1, Ordering::Relaxed);
                        }
                        // Flush this burst's per-flow deltas upstream. A full
                        // control queue drops the batch: LVRM charges identity
                        // E on receipt, so nothing is double-counted.
                        if let Some(ledger) = ledger.as_mut() {
                            if let Some(buf) = ledger.flush() {
                                let _ = adapter.send_control(ControlEvent::new(
                                    vri.0,
                                    LVRM_CTRL_ID,
                                    buf,
                                ));
                            }
                        }
                        // Bulk return; retry until the outgoing queue accepts
                        // everything (LVRM drains it continuously).
                        while !outq.is_empty() {
                            if adapter.to_lvrm_batch(&mut outq) == 0 {
                                if stop2.load(Ordering::Acquire) || crash2.load(Ordering::Acquire) {
                                    return;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }
                }));
                // Stash-then-detach: whoever observes the detached endpoint
                // can already reap the in-flight frames.
                reaped.lock().push((vri, adapter.into_endpoint()));
                attachment.detach();
            })
            .expect("thread spawn");
        self.threads.push(VriThread {
            vr: spec.vr,
            vri: spec.vri,
            stop,
            crash,
            stall,
            ctrl_loss,
            handle: Some(handle),
        });
    }

    fn kill_vri(&mut self, vr: VrId, vri: VriId) {
        if let Some(i) = self.threads.iter().position(|t| t.vr == vr && t.vri == vri) {
            let mut t = self.threads.remove(i);
            t.stop.store(true, Ordering::Release);
            // A stalled thread ignores everything except stop/crash, so it
            // still honors the kill.
            if let Some(h) = t.handle.take() {
                let _ = h.join();
            }
        }
    }

    fn reap_endpoint(&mut self, vri: VriId) -> Option<VriEndpoint<Frame>> {
        let mut reaped = self.reaped.lock();
        let pos = reaped.iter().position(|(id, _)| *id == vri)?;
        Some(reaped.remove(pos).1)
    }
}

impl FaultInjectable for ThreadHost {
    fn inject_crash(&mut self, vri: VriId) {
        if let Some(i) = self.threads.iter().position(|t| t.vri == vri) {
            let mut t = self.threads.remove(i);
            t.crash.store(true, Ordering::Release);
            if let Some(h) = t.handle.take() {
                let _ = h.join();
            }
        }
    }

    fn inject_stall(&mut self, vri: VriId, on: bool) {
        if let Some(t) = self.threads.iter().find(|t| t.vri == vri) {
            t.stall.store(on, Ordering::Release);
        }
    }

    fn inject_ctrl_loss(&mut self, vri: VriId, on: bool) {
        if let Some(t) = self.threads.iter().find(|t| t.vri == vri) {
            t.ctrl_loss.store(on, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvrm_core::topology::{AffinityMode, CoreId, CoreMap, CoreTopology};
    use lvrm_core::{Lvrm, LvrmConfig};
    use lvrm_net::FrameBuilder;
    use std::net::Ipv4Addr;

    fn routed_vr() -> Box<dyn VirtualRouter> {
        let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
        Box::new(lvrm_router::FastVr::new("t", routes))
    }

    #[test]
    fn threaded_vri_forwards_frames() {
        let clock = MonotonicClock::new();
        let cores = CoreMap::new(CoreTopology::single_package(1), CoreId(0), AffinityMode::Same);
        let mut lvrm = Lvrm::new(LvrmConfig::default(), cores, clock.clone());
        let mut host = ThreadHost::new(clock);
        let _vr = lvrm.add_vr("t", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr(), &mut host);
        assert_eq!(host.live(), 1);
        for _ in 0..100 {
            let f = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 5), Ipv4Addr::new(10, 0, 2, 1))
                .udp(1, 2, &[0u8; 10]);
            lvrm.ingress(f, &mut host);
        }
        // Collect with a deadline: the VRI thread races us.
        let mut out = Vec::new();
        let t0 = std::time::Instant::now();
        while out.len() < 100 && t0.elapsed().as_secs() < 10 {
            lvrm.poll_egress(&mut out);
            std::hint::spin_loop();
        }
        assert_eq!(out.len(), 100);
        assert!(out.iter().all(|f| f.egress_if == 1));
        host.shutdown();
    }

    #[test]
    fn crashed_thread_is_reaped_and_respawned() {
        let clock = MonotonicClock::new();
        let cores = CoreMap::new(CoreTopology::single_package(2), CoreId(0), AffinityMode::Same);
        let config = LvrmConfig {
            supervision: true,
            // Real time: generous windows so the test is not flaky under
            // load, tight enough to finish quickly.
            suspect_after_ns: 200_000_000,
            dead_after_ns: 400_000_000,
            allocation_period_ns: 50_000_000,
            ..LvrmConfig::default()
        };
        let mut lvrm = Lvrm::new(config, cores, clock.clone());
        let mut host = ThreadHost::new(clock.clone());
        let _vr = lvrm.add_vr("t", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr(), &mut host);
        assert_eq!(host.live(), 1);
        let victim = host.threads[0].vri;

        // Park frames in the victim's inbound queue while it is wedged, then
        // crash it: the frames must survive into the respawned instance.
        host.inject_stall(victim, true);
        std::thread::sleep(std::time::Duration::from_millis(20));
        for _ in 0..50 {
            let f = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 5), Ipv4Addr::new(10, 0, 2, 1))
                .udp(1, 2, &[0u8; 10]);
            lvrm.ingress(f, &mut host);
        }
        host.inject_crash(victim);
        assert_eq!(host.live(), 0);

        // Drive the supervisor until it notices the detached endpoint,
        // respawns, and re-dispatches; then collect the frames.
        let mut out = Vec::new();
        let t0 = std::time::Instant::now();
        while out.len() < 50 && t0.elapsed().as_secs() < 20 {
            lvrm.process_control();
            lvrm.maybe_reallocate(clock.now_ns(), &mut host);
            lvrm.poll_egress(&mut out);
            std::hint::spin_loop();
        }
        assert_eq!(out.len(), 50, "reclaimed frames flow through the respawn");
        assert_eq!(host.live(), 1, "supervisor respawned the VRI");
        let s = &lvrm.stats();
        assert_eq!(s.vri_deaths, 1);
        assert_eq!(s.respawns, 1);
        assert_eq!(s.crash_lost, 0, "endpoint was reapable; nothing lost");
        assert!(s.redispatched >= 50, "queued frames were re-balanced");
        host.shutdown();
    }

    #[test]
    fn kill_vri_joins_the_thread() {
        let clock = MonotonicClock::new();
        let cores = CoreMap::new(CoreTopology::single_package(1), CoreId(0), AffinityMode::Same);
        let mut lvrm = Lvrm::new(LvrmConfig::default(), cores, clock.clone());
        let mut host = ThreadHost::new(clock);
        let vr = lvrm.add_vr("t", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr(), &mut host);
        assert_eq!(host.live(), 1);
        // Find the VriId via the host's bookkeeping and kill it directly.
        let vri = host.threads[0].vri;
        host.kill_vri(vr, vri);
        assert_eq!(host.live(), 0);
    }
}
