//! The "LVRM only" measurement pipeline (Experiments 1c and 1d).
//!
//! "We load a trace file of … minimum-sized frames into main memory within
//! the gateway. We add an input interface to LVRM to read the raw frames
//! from RAM, and add an output interface to LVRM to simply discard the
//! frames. Then LVRM reads the frames from RAM as fast as possible, relays
//! the frames to a hosted VR, and forwards the frames to the output
//! interface" (§4.2). This driver measures exactly that, on real threads,
//! with real queues and the real monitor.

use std::net::Ipv4Addr;

use lvrm_core::clock::{Clock, MonotonicClock};
use lvrm_core::topology::{AffinityMode, CoreId, CoreMap, CoreTopology};
use lvrm_core::{Lvrm, LvrmConfig, MemTraceAdapter, SocketAdapter};
use lvrm_metrics::LatencyHistogram;
use lvrm_net::{Frame, Trace, TraceSpec};
use lvrm_router::VirtualRouter;

use crate::threads::ThreadHost;

/// Which VR implementation to host.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PipelineVr {
    Cpp,
    Click,
}

/// Result of one LVRM-only run.
#[derive(Debug)]
pub struct PipelineReport {
    /// Frames pushed through the pipeline.
    pub frames: u64,
    pub elapsed_ns: u64,
    /// Ingress-to-egress latency per frame.
    pub latency: LatencyHistogram,
    /// Frames dropped because a VRI queue was full (backpressure) or the
    /// VR had no usable VRI.
    pub dropped: u64,
    /// Frames whose source matched no VR subnet (not a queue drop — kept
    /// separate so backpressure numbers stay meaningful).
    pub unclassified: u64,
}

impl PipelineReport {
    pub fn fps(&self) -> f64 {
        self.frames as f64 * 1e9 / self.elapsed_ns as f64
    }

    /// Throughput in Gbps at `wire_size`-byte frames.
    pub fn gbps(&self, wire_size: usize) -> f64 {
        self.fps() * wire_size as f64 * 8.0 / 1e9
    }
}

fn build_vr(kind: PipelineVr) -> Box<dyn VirtualRouter> {
    match kind {
        PipelineVr::Cpp => {
            let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
            Box::new(lvrm_router::FastVr::new("cpp", routes))
        }
        PipelineVr::Click => Box::new(
            lvrm_click::ClickVr::minimal_forwarding("click", 0, 1).expect("static config compiles"),
        ),
    }
}

/// Run the LVRM-only pipeline: replay `total_frames` frames of `wire_size`
/// bytes from RAM through LVRM and `vris` VRI thread(s), discarding at the
/// output. Returns measured throughput and latency. Per-frame dataplane
/// (batch size 1); see [`run_lvrm_only_batched`].
pub fn run_lvrm_only(
    vr: PipelineVr,
    wire_size: usize,
    total_frames: u64,
    vris: usize,
) -> PipelineReport {
    run_lvrm_only_batched(vr, wire_size, total_frames, vris, 1)
}

/// As [`run_lvrm_only`], with an explicit dataplane burst size: the main
/// loop polls up to `batch_size` frames from RAM, pushes them through
/// [`Lvrm::ingress_batch`], and the VRI threads service their queues in
/// bursts of the same size. `batch_size == 1` is the classic per-frame
/// pipeline.
pub fn run_lvrm_only_batched(
    vr: PipelineVr,
    wire_size: usize,
    total_frames: u64,
    vris: usize,
    batch_size: usize,
) -> PipelineReport {
    assert!(vris >= 1);
    let batch_size = batch_size.max(1);
    let clock = MonotonicClock::new();
    let config = LvrmConfig {
        allocator: lvrm_core::config::AllocatorKind::Fixed { cores: vris },
        // Tight queues keep the latency measurement honest (1d): a deep
        // queue would measure queueing, not the relay path.
        data_queue_capacity: 256,
        batch_size,
        ..LvrmConfig::default()
    };
    let n_cores = crate::affinity::available_cores().max(2) as u16;
    let cores = CoreMap::new(
        CoreTopology::single_package(n_cores),
        CoreId(0),
        if n_cores > 1 { AffinityMode::SiblingFirst } else { AffinityMode::Same },
    );
    let mut lvrm = Lvrm::new(config, cores, clock.clone());
    let mut host = ThreadHost::new(clock.clone()).with_batch_size(batch_size);
    let vr_id = lvrm.add_vr("vr0", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], build_vr(vr), &mut host);
    // Fixed allocation beyond the first VRI happens on reallocation passes;
    // force them now so all VRIs exist before the clock starts.
    for _ in 1..vris {
        lvrm.maybe_reallocate(clock.now_ns() + 2_000_000_000, &mut host);
    }
    assert_eq!(lvrm.vri_count(vr_id), vris.min(n_cores as usize), "VRIs spawned");

    let trace = Trace::generate(&TraceSpec::new(wire_size, 64));
    let mut adapter = MemTraceAdapter::new(trace, total_frames);
    let mut latency = LatencyHistogram::new();
    let mut ingress: Vec<Frame> = Vec::with_capacity(batch_size);
    let mut egress: Vec<Frame> = Vec::with_capacity(1024);
    let mut forwarded = 0u64;
    let t0 = clock.now_ns();
    let drops_before = lvrm.stats().dispatch_drops + lvrm.stats().no_vri_drops;
    let unclassified_before = lvrm.stats().unclassified;

    // The LVRM main loop: poll RAM -> ingress -> collect -> discard,
    // a burst at a time.
    let mut last_drops = drops_before;
    while forwarded < total_frames {
        if adapter.poll_batch(&mut ingress, batch_size).unwrap_or(0) > 0 {
            let now = clock.now_ns();
            for f in ingress.iter_mut() {
                f.ts_ns = now;
            }
            lvrm.ingress_batch(&mut ingress, &mut host);
        }
        egress.clear();
        lvrm.poll_egress(&mut egress);
        let now = clock.now_ns();
        for f in egress.iter() {
            latency.record(now.saturating_sub(f.ts_ns));
        }
        forwarded += egress.len() as u64;
        let _ = adapter.send_batch(&mut egress); // discard never fails
                                                 // Backpressure means the VRI threads are starved for CPU (on boxes
                                                 // with fewer cores than VRIs); yield our timeslice to them instead
                                                 // of spinning the queue full.
        let drops_now = lvrm.stats().dispatch_drops + lvrm.stats().no_vri_drops;
        if drops_now > last_drops {
            last_drops = drops_now;
            std::thread::yield_now();
        }
        let lost = (drops_now - drops_before) + (lvrm.stats().unclassified - unclassified_before);
        if adapter.exhausted() && forwarded + lost >= total_frames {
            break;
        }
    }
    let elapsed_ns = clock.now_ns() - t0;
    host.shutdown();
    let dropped = lvrm.stats().dispatch_drops + lvrm.stats().no_vri_drops - drops_before;
    let unclassified = lvrm.stats().unclassified - unclassified_before;
    PipelineReport { frames: forwarded, elapsed_ns, latency, dropped, unclassified }
}

/// Run the LVRM-only pipeline with the VRI serviced *inline* on the calling
/// thread (no VRI threads at all). On machines with fewer cores than the
/// paper's eight this is the honest measure of the per-frame software cost:
/// no scheduler timeslices, just the monitor + queues + router path.
pub fn run_lvrm_only_inline(vr: PipelineVr, wire_size: usize, total_frames: u64) -> PipelineReport {
    run_lvrm_only_inline_batched(vr, wire_size, total_frames, 1)
}

/// As [`run_lvrm_only_inline`], with an explicit dataplane burst size.
pub fn run_lvrm_only_inline_batched(
    vr: PipelineVr,
    wire_size: usize,
    total_frames: u64,
    batch_size: usize,
) -> PipelineReport {
    use lvrm_core::host::RecordingHost;
    let batch_size = batch_size.max(1);
    let clock = MonotonicClock::new();
    let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
    let config = LvrmConfig { batch_size, ..LvrmConfig::default() };
    let mut lvrm = Lvrm::new(config, cores, clock.clone());
    let mut host = RecordingHost::default();
    let _ = lvrm.add_vr("vr0", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], build_vr(vr), &mut host);
    let trace = Trace::generate(&TraceSpec::new(wire_size, 64));
    let mut adapter = MemTraceAdapter::new(trace, total_frames);
    let mut latency = LatencyHistogram::new();
    let mut ingress: Vec<Frame> = Vec::with_capacity(batch_size);
    let mut egress: Vec<Frame> = Vec::with_capacity(64);
    let mut forwarded = 0u64;
    let t0 = clock.now_ns();
    while adapter.poll_batch(&mut ingress, batch_size).unwrap_or(0) > 0 {
        let now = clock.now_ns();
        for f in ingress.iter_mut() {
            f.ts_ns = now;
        }
        lvrm.ingress_batch(&mut ingress, &mut host);
        host.pump();
        egress.clear();
        lvrm.poll_egress(&mut egress);
        let now = clock.now_ns();
        for f in egress.iter() {
            latency.record(now.saturating_sub(f.ts_ns));
        }
        forwarded += egress.len() as u64;
        let _ = adapter.send_batch(&mut egress);
    }
    let elapsed_ns = clock.now_ns() - t0;
    // Account drops from the monitor's own counters: `total - forwarded`
    // would silently fold unclassified frames into backpressure drops.
    let dropped = lvrm.stats().dispatch_drops + lvrm.stats().no_vri_drops;
    let unclassified = lvrm.stats().unclassified;
    PipelineReport { frames: forwarded, elapsed_ns, latency, dropped, unclassified }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests verify *correctness* (conservation, plumbing); absolute
    // throughput depends on how many cores the test box has and is reported
    // by the bench harness instead.

    #[test]
    fn cpp_pipeline_conserves_frames() {
        let r = run_lvrm_only(PipelineVr::Cpp, 84, 20_000, 1);
        assert_eq!(r.frames + r.dropped, 20_000, "every frame forwarded or counted dropped");
        assert_eq!(r.unclassified, 0, "trace frames all match the VR subnet");
        assert!(r.frames > 0, "at least some frames must flow");
        assert_eq!(r.latency.count(), r.frames);
        assert!(r.fps() > 0.0);
    }

    #[test]
    fn batched_pipeline_conserves_frames() {
        let r = run_lvrm_only_batched(PipelineVr::Cpp, 84, 20_000, 1, 32);
        assert_eq!(r.frames + r.dropped, 20_000);
        assert_eq!(r.unclassified, 0);
        assert!(r.frames > 0);
    }

    #[test]
    fn inline_batched_is_lossless() {
        for batch in [8u64, 32, 256] {
            let r = run_lvrm_only_inline_batched(PipelineVr::Cpp, 84, 50_000, batch as usize);
            assert_eq!(r.frames, 50_000, "batch {batch}");
            assert_eq!(r.dropped, 0, "batch {batch}");
            assert_eq!(r.unclassified, 0, "batch {batch}");
        }
    }

    #[test]
    fn click_pipeline_conserves_frames() {
        let r = run_lvrm_only(PipelineVr::Click, 84, 20_000, 1);
        assert_eq!(r.frames + r.dropped, 20_000);
        assert!(r.frames > 0);
    }

    #[test]
    fn inline_pipeline_is_fast_and_lossless() {
        let r = run_lvrm_only_inline(PipelineVr::Cpp, 84, 50_000);
        assert_eq!(r.frames, 50_000);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.unclassified, 0);
        // Inline there are no timeslices: six figures of fps even in debug.
        assert!(r.fps() > 50_000.0, "inline fps {}", r.fps());
    }

    #[test]
    fn larger_frames_do_not_panic() {
        let r = run_lvrm_only(PipelineVr::Cpp, 1538, 5_000, 1);
        assert_eq!(r.frames + r.dropped, 5_000);
        assert!(r.gbps(1538) > 0.0);
    }
}
