//! Control-message-passing latency (Experiment 1e).
//!
//! "We have LVRM host a C++ VR, which has two VRIs. Then we have one of the
//! VRIs send a control event to another VRI through the control queues.
//! Then we measure the latency of such message passing" (§4.2), with and
//! without data load ("full load" raises the latency because a VRI is
//! usually mid-frame when the event arrives).

use std::net::Ipv4Addr;
use std::sync::Arc;

use lvrm_core::clock::{Clock, MonotonicClock};
use lvrm_core::topology::{AffinityMode, CoreId, CoreMap, CoreTopology};
use lvrm_core::{Lvrm, LvrmConfig};
use lvrm_metrics::LatencyHistogram;
use lvrm_net::{Trace, TraceSpec};
use parking_lot::Mutex;

use crate::affinity::available_cores;
use crate::threads::{CtrlRole, ThreadHost};

/// Result of one message-passing run.
#[derive(Debug)]
pub struct MsgLatencyReport {
    /// One-way VRI→VRI latency (through LVRM's relay).
    pub latency: LatencyHistogram,
    /// Control events dropped by the relay.
    pub control_drops: u64,
    /// Data frames pushed during the run (0 in the no-load setting).
    pub data_frames: u64,
}

/// Measure VRI→VRI control latency with `payload` bytes per event for
/// roughly `duration_ms`. `full_load` floods the VRIs with minimum-size
/// data frames for the paper's "full load" setting.
pub fn measure_control_latency(
    payload: usize,
    duration_ms: u64,
    full_load: bool,
) -> MsgLatencyReport {
    let clock = MonotonicClock::new();
    let config = LvrmConfig {
        allocator: lvrm_core::config::AllocatorKind::Fixed { cores: 2 },
        ..LvrmConfig::default()
    };
    let n_cores = available_cores().max(3) as u16;
    let cores = CoreMap::new(
        CoreTopology::single_package(n_cores),
        CoreId(0),
        if available_cores() >= 3 { AffinityMode::SiblingFirst } else { AffinityMode::Same },
    );
    let mut lvrm = Lvrm::new(config, cores, clock.clone());
    let mut host = ThreadHost::new(clock.clone());
    let sink = Arc::new(Mutex::new(LatencyHistogram::new()));

    // VRI #1 (spawned by add_vr) emits; VRI #2 (second allocation) records.
    // The emitter needs the recorder's id, which is deterministic: LVRM
    // numbers VRIs sequentially from 0.
    host.queue_role(CtrlRole::Emitter {
        dst: lvrm_core::VriId(1),
        payload,
        period_ns: 200_000, // 5 kHz probe rate
    });
    host.queue_role(CtrlRole::Recorder { sink: Arc::clone(&sink) });

    let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
    let vr = lvrm.add_vr(
        "vr0",
        &[(Ipv4Addr::new(10, 0, 1, 0), 24)],
        Box::new(lvrm_router::FastVr::new("cpp", routes)),
        &mut host,
    );
    lvrm.maybe_reallocate(clock.now_ns() + 2_000_000_000, &mut host);
    assert_eq!(lvrm.vri_count(vr), 2, "experiment needs two VRIs");

    let mut trace = Trace::generate(&TraceSpec::new(84, 16));
    let mut egress = Vec::new();
    let mut data_frames = 0u64;
    let deadline = clock.now_ns() + duration_ms * 1_000_000;
    while clock.now_ns() < deadline {
        if full_load {
            let mut f = trace.next_frame();
            f.ts_ns = clock.now_ns();
            lvrm.ingress(f, &mut host);
            data_frames += 1;
        }
        // The LVRM main loop relays control events between the VRIs.
        lvrm.process_control();
        egress.clear();
        lvrm.poll_egress(&mut egress);
        if !full_load {
            std::hint::spin_loop();
        }
    }
    host.shutdown();
    let latency =
        Arc::try_unwrap(sink).map(|m| m.into_inner()).unwrap_or_else(|arc| arc.lock().clone());
    MsgLatencyReport { latency, control_drops: lvrm.stats().control_drops, data_frames }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_load_latency_is_measured() {
        let r = measure_control_latency(64, 300, false);
        assert!(r.latency.count() > 50, "events recorded: {}", r.latency.count());
        assert_eq!(r.data_frames, 0);
        // On a multi-core box this is single-digit microseconds; on a
        // one-core CI box it degrades to scheduler timeslices. Bound it by
        // something that catches real plumbing bugs (e.g. seconds-long
        // stalls) without failing on core-starved machines.
        assert!(
            r.latency.percentile_ns(0.5) < 100_000_000,
            "median {} ns is implausibly high",
            r.latency.percentile_ns(0.5)
        );
    }

    #[test]
    fn full_load_still_delivers_events() {
        let r = measure_control_latency(64, 300, true);
        assert!(r.latency.count() > 10, "events recorded: {}", r.latency.count());
        assert!(r.data_frames > 1_000);
    }
}
