//! A PF_RING-style shared-ring socket adapter.
//!
//! PF_RING's essence (the paper's §3.1): a memory-mapped ring the
//! application polls directly, with zero per-frame kernel allocation and —
//! since PF_RING 3.7.5 / LVRM 1.1 — a send path through the same mechanism
//! (`pfring_send`). Our stand-in is an in-process pair of lock-free rings
//! built on the same Lamport queues LVRM uses for IPC: polling is a plain
//! memory read, sending is a ring push, and no syscall or copy-into-kernel
//! happens per frame (contrast with [`crate::UdpAdapter`], the raw-socket
//! stand-in).
//!
//! A full transmit ring is back-pressure, not loss: `send` hands the frame
//! back as a [`SendRejected`] with `WouldBlock`, and `send_batch` leaves the
//! refused tail in the caller's vector. The drop decision belongs to the
//! layer above (the adapter supervisor's retry deadline).

use lvrm_core::socket::{AdapterError, SendRejected, SocketAdapter, SocketKind};
use lvrm_ipc::{queue, QueueKind, Receiver, Sender};
use lvrm_net::Frame;

/// One endpoint of a zero-copy ring pair.
pub struct RingAdapter {
    rx: Receiver<Frame>,
    tx: Sender<Frame>,
    rx_count: u64,
    tx_count: u64,
}

impl RingAdapter {
    /// Create a cross-wired pair of ring endpoints with `capacity` slots per
    /// direction: frames sent on one side arrive at the other.
    pub fn pair(capacity: usize) -> (RingAdapter, RingAdapter) {
        let (a_tx, b_rx) = queue::<Frame>(QueueKind::Lamport, capacity);
        let (b_tx, a_rx) = queue::<Frame>(QueueKind::Lamport, capacity);
        (
            RingAdapter { rx: a_rx, tx: a_tx, rx_count: 0, tx_count: 0 },
            RingAdapter { rx: b_rx, tx: b_tx, rx_count: 0, tx_count: 0 },
        )
    }

    /// Frames waiting in the receive ring.
    pub fn rx_pending(&self) -> usize {
        self.rx.len()
    }
}

impl SocketAdapter for RingAdapter {
    fn poll(&mut self) -> Result<Frame, AdapterError> {
        match self.rx.try_recv() {
            Some(f) => {
                self.rx_count += 1;
                Ok(f)
            }
            None => Err(AdapterError::WouldBlock),
        }
    }

    fn poll_batch(&mut self, out: &mut Vec<Frame>, budget: usize) -> Result<usize, AdapterError> {
        // Native bulk drain: one consumer-index publication per burst. An
        // empty ring is the ordinary idle case, `Ok(0)`.
        let n = self.rx.try_recv_batch(out, budget);
        self.rx_count += n as u64;
        Ok(n)
    }

    fn send(&mut self, frame: Frame) -> Result<(), SendRejected> {
        match self.tx.try_send(frame) {
            Ok(()) => {
                self.tx_count += 1;
                Ok(())
            }
            Err(lvrm_ipc::Full(frame)) => {
                Err(SendRejected { frame, error: AdapterError::WouldBlock })
            }
        }
    }

    fn send_batch(&mut self, frames: &mut Vec<Frame>) -> Result<usize, AdapterError> {
        // Native bulk push; the refused tail stays in `frames`, in order.
        let accepted = self.tx.try_send_batch(frames);
        self.tx_count += accepted as u64;
        Ok(accepted)
    }

    /// Re-attaching a process-local ring is a no-op — the mapping is intact
    /// and nothing was torn down — so a reopen always succeeds. (What this
    /// buys in practice: a fault-injection wrapper above clears its injected
    /// crash/stall on reopen, modeling a ring re-map after a NIC reset.)
    fn reopen(&mut self) -> Result<(), AdapterError> {
        Ok(())
    }

    fn kind(&self) -> SocketKind {
        SocketKind::PfRing
    }

    fn rx_count(&self) -> u64 {
        self.rx_count
    }

    fn tx_count(&self) -> u64 {
        self.tx_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvrm_net::FrameBuilder;
    use std::net::Ipv4Addr;

    fn frame(tag: u8) -> Frame {
        FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 2, 1))
            .udp(100, 200, &[tag; 4])
    }

    #[test]
    fn pair_roundtrips_without_syscalls() {
        let (mut a, mut b) = RingAdapter::pair(64);
        a.send(frame(1)).unwrap();
        a.send(frame(2)).unwrap();
        assert_eq!(b.rx_pending(), 2);
        assert_eq!(b.poll().unwrap().udp().unwrap().payload(), &[1u8; 4]);
        assert_eq!(b.poll().unwrap().udp().unwrap().payload(), &[2u8; 4]);
        assert!(matches!(b.poll(), Err(AdapterError::WouldBlock)));
        assert_eq!(a.tx_count(), 2);
        assert_eq!(b.rx_count(), 2);
    }

    #[test]
    fn both_directions_work() {
        let (mut a, mut b) = RingAdapter::pair(8);
        a.send(frame(1)).unwrap();
        b.send(frame(2)).unwrap();
        assert!(b.poll().is_ok());
        assert!(a.poll().is_ok());
    }

    #[test]
    fn full_ring_hands_the_frame_back() {
        let (mut a, _b) = RingAdapter::pair(2);
        a.send(frame(1)).unwrap();
        a.send(frame(2)).unwrap();
        let SendRejected { frame: back, error } = a.send(frame(3)).unwrap_err();
        assert!(error.is_would_block(), "full ring is back-pressure, not a fault");
        assert_eq!(back.udp().unwrap().payload(), &[3u8; 4], "refused frame survives");
        assert_eq!(a.tx_count(), 2);
    }

    #[test]
    fn batch_ops_match_per_frame_counters() {
        let (mut a, mut b) = RingAdapter::pair(8);
        let mut burst: Vec<Frame> = (0..12).map(|i| frame(i as u8)).collect();
        assert_eq!(a.send_batch(&mut burst).unwrap(), 8, "ring capacity caps the burst");
        assert_eq!(burst.len(), 4, "refused tail stays with the caller");
        assert_eq!(burst[0].udp().unwrap().payload(), &[8u8; 4], "tail is in order");
        assert_eq!(a.tx_count(), 8);
        let mut out = Vec::new();
        assert_eq!(b.poll_batch(&mut out, 5).unwrap(), 5);
        assert_eq!(b.poll_batch(&mut out, 5).unwrap(), 3);
        assert_eq!(b.rx_count(), 8);
        for (i, f) in out.iter().enumerate() {
            assert_eq!(f.udp().unwrap().payload(), &[i as u8; 4], "FIFO order");
        }
    }

    #[test]
    fn kind_reports_pfring_profile() {
        let (a, _b) = RingAdapter::pair(4);
        assert_eq!(a.kind(), SocketKind::PfRing);
    }

    #[test]
    fn works_cross_thread() {
        let (mut a, mut b) = RingAdapter::pair(128);
        let t = std::thread::spawn(move || {
            for i in 0..1000u32 {
                let mut f = frame((i % 256) as u8);
                loop {
                    match a.send(f) {
                        Ok(()) => break,
                        Err(SendRejected { frame: back, .. }) => {
                            f = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
            a.tx_count()
        });
        let mut got = 0u64;
        while got < 1000 {
            if b.poll().is_ok() {
                got += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        assert_eq!(t.join().unwrap(), 1000);
    }
}
