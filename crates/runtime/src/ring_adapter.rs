//! A PF_RING-style shared-ring socket adapter.
//!
//! PF_RING's essence (the paper's §3.1): a memory-mapped ring the
//! application polls directly, with zero per-frame kernel allocation and —
//! since PF_RING 3.7.5 / LVRM 1.1 — a send path through the same mechanism
//! (`pfring_send`). Our stand-in is an in-process pair of lock-free rings
//! built on the same Lamport queues LVRM uses for IPC: polling is a plain
//! memory read, sending is a ring push, and no syscall or copy-into-kernel
//! happens per frame (contrast with [`crate::UdpAdapter`], the raw-socket
//! stand-in).

use lvrm_core::socket::{SocketAdapter, SocketKind};
use lvrm_ipc::{queue, QueueKind, Receiver, Sender};
use lvrm_net::Frame;

/// One endpoint of a zero-copy ring pair.
pub struct RingAdapter {
    rx: Receiver<Frame>,
    tx: Sender<Frame>,
    rx_count: u64,
    tx_count: u64,
    /// Frames refused because the transmit ring was full.
    pub tx_drops: u64,
}

impl RingAdapter {
    /// Create a cross-wired pair of ring endpoints with `capacity` slots per
    /// direction: frames sent on one side arrive at the other.
    pub fn pair(capacity: usize) -> (RingAdapter, RingAdapter) {
        let (a_tx, b_rx) = queue::<Frame>(QueueKind::Lamport, capacity);
        let (b_tx, a_rx) = queue::<Frame>(QueueKind::Lamport, capacity);
        (
            RingAdapter { rx: a_rx, tx: a_tx, rx_count: 0, tx_count: 0, tx_drops: 0 },
            RingAdapter { rx: b_rx, tx: b_tx, rx_count: 0, tx_count: 0, tx_drops: 0 },
        )
    }

    /// Frames waiting in the receive ring.
    pub fn rx_pending(&self) -> usize {
        self.rx.len()
    }
}

impl SocketAdapter for RingAdapter {
    fn poll(&mut self) -> Option<Frame> {
        let f = self.rx.try_recv()?;
        self.rx_count += 1;
        Some(f)
    }

    fn poll_batch(&mut self, out: &mut Vec<Frame>, budget: usize) -> usize {
        // Native bulk drain: one consumer-index publication per burst.
        let n = self.rx.try_recv_batch(out, budget);
        self.rx_count += n as u64;
        n
    }

    fn send(&mut self, frame: Frame) {
        match self.tx.try_send(frame) {
            Ok(()) => self.tx_count += 1,
            Err(_) => self.tx_drops += 1,
        }
    }

    fn send_batch(&mut self, frames: &mut Vec<Frame>) {
        // Native bulk push; like `send`, overflow drops rather than blocks.
        let accepted = self.tx.try_send_batch(frames);
        self.tx_count += accepted as u64;
        self.tx_drops += frames.len() as u64;
        frames.clear();
    }

    fn kind(&self) -> SocketKind {
        SocketKind::PfRing
    }

    fn rx_count(&self) -> u64 {
        self.rx_count
    }

    fn tx_count(&self) -> u64 {
        self.tx_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvrm_net::FrameBuilder;
    use std::net::Ipv4Addr;

    fn frame(tag: u8) -> Frame {
        FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 2, 1))
            .udp(100, 200, &[tag; 4])
    }

    #[test]
    fn pair_roundtrips_without_syscalls() {
        let (mut a, mut b) = RingAdapter::pair(64);
        a.send(frame(1));
        a.send(frame(2));
        assert_eq!(b.rx_pending(), 2);
        assert_eq!(b.poll().unwrap().udp().unwrap().payload(), &[1u8; 4]);
        assert_eq!(b.poll().unwrap().udp().unwrap().payload(), &[2u8; 4]);
        assert!(b.poll().is_none());
        assert_eq!(a.tx_count(), 2);
        assert_eq!(b.rx_count(), 2);
    }

    #[test]
    fn both_directions_work() {
        let (mut a, mut b) = RingAdapter::pair(8);
        a.send(frame(1));
        b.send(frame(2));
        assert!(b.poll().is_some());
        assert!(a.poll().is_some());
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let (mut a, _b) = RingAdapter::pair(2);
        a.send(frame(1));
        a.send(frame(2));
        a.send(frame(3));
        assert_eq!(a.tx_count(), 2);
        assert_eq!(a.tx_drops, 1);
    }

    #[test]
    fn batch_ops_match_per_frame_counters() {
        let (mut a, mut b) = RingAdapter::pair(8);
        let mut burst: Vec<Frame> = (0..12).map(|i| frame(i as u8)).collect();
        a.send_batch(&mut burst);
        assert!(burst.is_empty());
        assert_eq!(a.tx_count(), 8, "ring capacity caps the burst");
        assert_eq!(a.tx_drops, 4);
        let mut out = Vec::new();
        assert_eq!(b.poll_batch(&mut out, 5), 5);
        assert_eq!(b.poll_batch(&mut out, 5), 3);
        assert_eq!(b.rx_count(), 8);
        for (i, f) in out.iter().enumerate() {
            assert_eq!(f.udp().unwrap().payload(), &[i as u8; 4], "FIFO order");
        }
    }

    #[test]
    fn kind_reports_pfring_profile() {
        let (a, _b) = RingAdapter::pair(4);
        assert_eq!(a.kind(), SocketKind::PfRing);
    }

    #[test]
    fn works_cross_thread() {
        let (mut a, mut b) = RingAdapter::pair(128);
        let t = std::thread::spawn(move || {
            for i in 0..1000u32 {
                loop {
                    let before = a.tx_drops;
                    a.send(frame((i % 256) as u8));
                    if a.tx_drops == before {
                        break;
                    }
                    std::hint::spin_loop();
                }
            }
            a.tx_count()
        });
        let mut got = 0u64;
        while got < 1000 {
            if b.poll().is_some() {
                got += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        assert_eq!(t.join().unwrap(), 1000);
    }
}
