//! UDP transport for the HA peer link.
//!
//! [`UdpPeerLink`] carries [`lvrm_core::ha::HaMsg`] wire bytes between two
//! `lvrmd` processes over a pair of non-blocking UDP sockets — the natural
//! transport for VRRP-style adverts, which are *designed* to tolerate loss
//! (the master-down timer absorbs up to two missed adverts; checkpoint
//! deltas ride the same lossy channel and resynchronize via `SyncReq`).
//!
//! UDP caps a datagram well below a worst-case `Snapshot`, so every message
//! travels as one or more fragments under an 8-byte header
//! `(msg_id u32, frag_idx u16, frag_total u16)`, little-endian. The
//! receiver reassembles by `msg_id` and delivers only complete messages;
//! partially received messages are abandoned when newer traffic arrives
//! (bounded buffer), which degrades to exactly the loss the HA protocol
//! already tolerates.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};

use lvrm_core::ha::PeerLink;

/// Payload bytes per fragment (header excluded); comfortably under the
/// 65 507-byte UDP maximum with headroom for odd MTUs.
const FRAG_PAYLOAD: usize = 60_000;
const FRAG_HEADER: usize = 8;
/// Partial reassemblies kept around before the oldest is abandoned.
const MAX_PARTIAL: usize = 8;

/// A [`PeerLink`] over UDP: binds locally, sends to one fixed peer.
pub struct UdpPeerLink {
    socket: UdpSocket,
    peer: SocketAddr,
    next_msg_id: u32,
    /// In-progress reassemblies: msg_id -> (frags received, buffers).
    partial: HashMap<u32, Vec<Option<Vec<u8>>>>,
    /// Arrival order of partial msg_ids, for bounded eviction.
    partial_order: Vec<u32>,
    recv_buf: Vec<u8>,
    /// Datagrams dropped by the kernel send path (link treated as lossy).
    pub send_errors: u64,
}

impl UdpPeerLink {
    /// Bind `bind_addr` and aim at `peer_addr`. Both are `ip:port`.
    pub fn connect(bind_addr: &str, peer_addr: &str) -> std::io::Result<UdpPeerLink> {
        let socket = UdpSocket::bind(bind_addr)?;
        socket.set_nonblocking(true)?;
        let peer = peer_addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "peer did not resolve"))?;
        Ok(UdpPeerLink {
            socket,
            peer,
            next_msg_id: 1,
            partial: HashMap::new(),
            partial_order: Vec::new(),
            recv_buf: vec![0u8; FRAG_HEADER + FRAG_PAYLOAD],
            send_errors: 0,
        })
    }

    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.socket.local_addr().ok()
    }

    fn evict_to_cap(&mut self) {
        while self.partial_order.len() > MAX_PARTIAL {
            let oldest = self.partial_order.remove(0);
            self.partial.remove(&oldest);
        }
    }
}

impl PeerLink for UdpPeerLink {
    fn send(&mut self, _now_ns: u64, bytes: &[u8]) {
        let msg_id = self.next_msg_id;
        self.next_msg_id = self.next_msg_id.wrapping_add(1);
        let total = bytes.len().div_ceil(FRAG_PAYLOAD).max(1) as u16;
        let mut frame = Vec::with_capacity(FRAG_HEADER + bytes.len().min(FRAG_PAYLOAD));
        for (idx, chunk) in bytes.chunks(FRAG_PAYLOAD).enumerate().take(total as usize) {
            frame.clear();
            frame.extend_from_slice(&msg_id.to_le_bytes());
            frame.extend_from_slice(&(idx as u16).to_le_bytes());
            frame.extend_from_slice(&total.to_le_bytes());
            frame.extend_from_slice(chunk);
            if self.socket.send_to(&frame, self.peer).is_err() {
                self.send_errors += 1; // lossy link: the protocol re-syncs
                return;
            }
        }
        if bytes.is_empty() {
            // A zero-length message still needs its one (empty) fragment.
            frame.clear();
            frame.extend_from_slice(&msg_id.to_le_bytes());
            frame.extend_from_slice(&0u16.to_le_bytes());
            frame.extend_from_slice(&1u16.to_le_bytes());
            if self.socket.send_to(&frame, self.peer).is_err() {
                self.send_errors += 1;
            }
        }
    }

    fn recv(&mut self, _now_ns: u64, out: &mut Vec<Vec<u8>>) {
        loop {
            let (n, from) = match self.socket.recv_from(&mut self.recv_buf) {
                Ok(v) => v,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(_) => return,
            };
            // Only the configured peer may drive the election.
            if from.ip() != self.peer.ip() || n < FRAG_HEADER {
                continue;
            }
            let d = &self.recv_buf[..n];
            let msg_id = u32::from_le_bytes(d[0..4].try_into().expect("4 bytes"));
            let idx = u16::from_le_bytes(d[4..6].try_into().expect("2 bytes")) as usize;
            let total = u16::from_le_bytes(d[6..8].try_into().expect("2 bytes")) as usize;
            if total == 0 || idx >= total {
                continue;
            }
            let payload = d[FRAG_HEADER..].to_vec();
            if total == 1 && idx == 0 {
                out.push(payload);
                continue;
            }
            let slots = self.partial.entry(msg_id).or_insert_with(|| {
                self.partial_order.push(msg_id);
                vec![None; total]
            });
            if slots.len() != total {
                continue; // inconsistent peer; drop the fragment
            }
            slots[idx] = Some(payload);
            if slots.iter().all(|s| s.is_some()) {
                let slots = self.partial.remove(&msg_id).expect("present");
                self.partial_order.retain(|id| *id != msg_id);
                let mut whole = Vec::new();
                for s in slots {
                    whole.extend_from_slice(&s.expect("all present"));
                }
                out.push(whole);
            }
            self.evict_to_cap();
        }
    }
}

/// One `--fleet-peer` argument: `<shard>,<bind ip:port>,<peer ip:port>`.
/// A fleet member carries one such spec per remote shard (DESIGN.md §15);
/// parsing is here so the daemon and tests share it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetPeerSpec {
    pub shard: u32,
    pub bind: String,
    pub peer: String,
}

impl std::str::FromStr for FleetPeerSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<FleetPeerSpec, String> {
        let mut it = s.splitn(3, ',');
        let shard = it
            .next()
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| format!("bad shard id in fleet peer spec {s:?}"))?;
        let bind = it.next().ok_or_else(|| format!("missing bind addr in {s:?}"))?.to_string();
        let peer = it.next().ok_or_else(|| format!("missing peer addr in {s:?}"))?.to_string();
        if bind.is_empty() || peer.is_empty() {
            return Err(format!("empty addr in fleet peer spec {s:?}"));
        }
        Ok(FleetPeerSpec { shard, bind, peer })
    }
}

/// Fan-out of the UDP peer link to N fleet peers: one bound socket per
/// remote shard, each aimed at that shard's fleet port. The directory
/// wants per-peer links (`Lvrm::attach_fleet` takes `(shard, link)`
/// pairs), so this is a constructor, not a mux: it opens every link and
/// hands them over, failing atomically if any bind/resolve fails.
pub struct UdpFanout;

impl UdpFanout {
    pub fn connect(specs: &[FleetPeerSpec]) -> std::io::Result<Vec<(u32, Box<dyn PeerLink>)>> {
        let mut links: Vec<(u32, Box<dyn PeerLink>)> = Vec::with_capacity(specs.len());
        for spec in specs {
            let link = UdpPeerLink::connect(&spec.bind, &spec.peer)?;
            links.push((spec.shard, Box::new(link)));
        }
        Ok(links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (UdpPeerLink, UdpPeerLink) {
        // Bind both ends on ephemeral ports, then re-aim each at the other.
        let a = UdpSocket::bind("127.0.0.1:0").expect("bind a");
        let b = UdpSocket::bind("127.0.0.1:0").expect("bind b");
        let (aa, ba) = (a.local_addr().unwrap(), b.local_addr().unwrap());
        drop(a);
        drop(b);
        let la = UdpPeerLink::connect(&aa.to_string(), &ba.to_string()).expect("link a");
        let lb = UdpPeerLink::connect(&ba.to_string(), &aa.to_string()).expect("link b");
        (la, lb)
    }

    fn recv_until(link: &mut UdpPeerLink, want: usize) -> Vec<Vec<u8>> {
        let mut got = Vec::new();
        for _ in 0..200 {
            link.recv(0, &mut got);
            if got.len() >= want {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        got
    }

    #[test]
    fn small_messages_round_trip() {
        let (mut a, mut b) = pair();
        a.send(0, b"advert");
        a.send(0, b"delta");
        let got = recv_until(&mut b, 2);
        assert_eq!(got, vec![b"advert".to_vec(), b"delta".to_vec()]);
    }

    #[test]
    fn oversize_message_fragments_and_reassembles() {
        let (mut a, mut b) = pair();
        let big: Vec<u8> = (0..150_000usize).map(|i| (i * 7 % 251) as u8).collect();
        a.send(0, &big);
        let got = recv_until(&mut b, 1);
        assert_eq!(got.len(), 1, "reassembled exactly one message");
        assert_eq!(got[0], big);
    }

    #[test]
    fn both_directions_work() {
        let (mut a, mut b) = pair();
        a.send(0, b"ping");
        assert_eq!(recv_until(&mut b, 1), vec![b"ping".to_vec()]);
        b.send(0, b"pong");
        assert_eq!(recv_until(&mut a, 1), vec![b"pong".to_vec()]);
    }

    #[test]
    fn fleet_peer_spec_parses_and_rejects() {
        let spec: FleetPeerSpec = "2,127.0.0.1:7002,127.0.0.1:8002".parse().unwrap();
        assert_eq!(
            spec,
            FleetPeerSpec {
                shard: 2,
                bind: "127.0.0.1:7002".into(),
                peer: "127.0.0.1:8002".into()
            }
        );
        assert!("x,127.0.0.1:1,127.0.0.1:2".parse::<FleetPeerSpec>().is_err());
        assert!("1,127.0.0.1:1".parse::<FleetPeerSpec>().is_err());
        assert!("1,,127.0.0.1:2".parse::<FleetPeerSpec>().is_err());
    }

    #[test]
    fn udp_fanout_opens_one_link_per_peer() {
        // Reserve two ephemeral bind points, then fan out to (fake) peers.
        let a = UdpSocket::bind("127.0.0.1:0").expect("bind a");
        let b = UdpSocket::bind("127.0.0.1:0").expect("bind b");
        let (aa, ba) = (a.local_addr().unwrap(), b.local_addr().unwrap());
        drop(a);
        drop(b);
        let specs = vec![
            FleetPeerSpec { shard: 1, bind: aa.to_string(), peer: "127.0.0.1:9".into() },
            FleetPeerSpec { shard: 2, bind: ba.to_string(), peer: "127.0.0.1:9".into() },
        ];
        let links = UdpFanout::connect(&specs).expect("fanout binds");
        assert_eq!(links.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![1, 2]);
    }
}
