//! The real threaded runtime.
//!
//! Where `lvrm-testbed` *models* the gateway, this crate actually runs LVRM:
//! VRIs are OS threads (best-effort pinned to cores, as the paper pins
//! processes with `sched_setaffinity`), frames move through the same
//! lock-free queues, and time is the monotonic wall clock. The paper's
//! "LVRM only" experiments — 1c (throughput from a RAM trace), 1d
//! (per-frame latency) and 1e (control-message-passing latency) — are
//! *measured*, not simulated, by the drivers in [`pipeline`] and [`msglat`].
//!
//! [`affinity`] wraps `sched_setaffinity`; on machines with too few cores
//! (or non-Linux hosts) pinning degrades gracefully to unpinned threads.
//! [`udp_adapter`] provides a live loopback socket adapter so the examples
//! can push real datagrams through a real kernel socket path.

pub mod affinity;
pub mod ha_link;
pub mod metrics_server;
pub mod msglat;
pub mod pipeline;
pub mod ring_adapter;
#[cfg(target_os = "linux")]
pub mod shm;
pub mod signal;
pub mod threads;
pub mod udp_adapter;

pub use ha_link::{FleetPeerSpec, UdpFanout, UdpPeerLink};
pub use metrics_server::MetricsServer;
pub use msglat::{measure_control_latency, MsgLatencyReport};
pub use pipeline::{
    run_lvrm_only, run_lvrm_only_batched, run_lvrm_only_inline, run_lvrm_only_inline_batched,
    PipelineReport,
};
pub use ring_adapter::RingAdapter;
pub use threads::{CtrlRole, ThreadHost};
pub use udp_adapter::UdpAdapter;
