//! Best-effort CPU core pinning.
//!
//! The paper binds LVRM and each VRI to dedicated cores and shows that
//! letting the kernel float them ("default") costs throughput (Experiment
//! 2a). On Linux we pin with `sched_setaffinity`; anywhere else — or when
//! the requested core does not exist — pinning is a no-op and the caller is
//! told so.

/// Number of logical CPUs visible to this process.
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Pin the calling thread to `core`. Returns `true` on success.
#[cfg(target_os = "linux")]
pub fn pin_to_core(core: usize) -> bool {
    if core >= available_cores() {
        return false;
    }
    // SAFETY: cpu_set_t is POD; CPU_ZERO/CPU_SET only touch the local set.
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_ZERO(&mut set);
        libc::CPU_SET(core, &mut set);
        libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) == 0
    }
}

#[cfg(not(target_os = "linux"))]
pub fn pin_to_core(_core: usize) -> bool {
    false
}

/// The core the calling thread currently runs on, if the OS tells us.
#[cfg(target_os = "linux")]
pub fn current_core() -> Option<usize> {
    // SAFETY: sched_getcpu has no preconditions.
    let c = unsafe { libc::sched_getcpu() };
    (c >= 0).then_some(c as usize)
}

#[cfg(not(target_os = "linux"))]
pub fn current_core() -> Option<usize> {
    None
}

/// Spin for approximately `ns` nanoseconds (the experiments' synthetic
/// per-frame "dummy processing load"; busy-wait like the paper's prototype,
/// not sleep, so the core genuinely burns).
#[inline]
pub fn spin_for_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = std::time::Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_one_core() {
        assert!(available_cores() >= 1);
    }

    #[test]
    fn pin_to_core_zero_works_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(pin_to_core(0), "pinning to core 0 must succeed");
            if let Some(c) = current_core() {
                assert_eq!(c, 0);
            }
        }
    }

    #[test]
    fn pin_to_absurd_core_fails_gracefully() {
        assert!(!pin_to_core(100_000));
    }

    #[test]
    fn spin_burns_roughly_the_requested_time() {
        let t0 = std::time::Instant::now();
        spin_for_ns(2_000_000); // 2 ms
        let took = t0.elapsed().as_nanos() as u64;
        assert!(took >= 2_000_000, "spun only {took} ns");
        assert!(took < 200_000_000, "spun way too long: {took} ns");
    }
}
