//! Minimal async-signal-safe shutdown flag.
//!
//! `lvrmd` quiesces on SIGINT/SIGTERM instead of dying mid-burst: the
//! handler only flips an `AtomicBool` (the one operation that is legal in a
//! handler), and the main loop polls [`requested`] to begin the graceful
//! drain (`Lvrm::shutdown`). Installation is idempotent; a second signal
//! while a drain is in progress falls through to the default disposition,
//! so a stuck daemon can still be killed with a repeated Ctrl-C.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static INSTALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(signum: libc::c_int) {
    SHUTDOWN.store(true, Ordering::Release);
    // Restore default disposition: the next signal of this kind terminates.
    unsafe {
        libc::signal(signum, 0);
    }
}

/// Install SIGINT and SIGTERM handlers that set the shutdown flag. Safe to
/// call more than once; only the first call installs. Returns `false` if
/// the OS refused either registration (the flag still works if set by
/// [`request`]).
pub fn install_shutdown_handlers() -> bool {
    if INSTALLED.swap(true, Ordering::AcqRel) {
        return true;
    }
    let handler = on_signal as extern "C" fn(libc::c_int) as libc::sighandler_t;
    let mut ok = true;
    unsafe {
        ok &= libc::signal(libc::SIGINT, handler) != libc::SIG_ERR;
        ok &= libc::signal(libc::SIGTERM, handler) != libc::SIG_ERR;
    }
    ok
}

/// Whether a shutdown has been requested (by a signal or [`request`]).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::Acquire)
}

/// Request shutdown programmatically (tests, a duration expiring).
pub fn request() {
    SHUTDOWN.store(true, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_flag_and_handlers_install() {
        assert!(install_shutdown_handlers());
        assert!(install_shutdown_handlers(), "second install is a no-op");
        request();
        assert!(requested());
    }
}
