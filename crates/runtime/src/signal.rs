//! Minimal async-signal-safe shutdown and checkpoint flags.
//!
//! `lvrmd` quiesces on SIGINT/SIGTERM instead of dying mid-burst: the
//! handler only flips an `AtomicBool` (the one operation that is legal in a
//! handler), and the main loop polls [`requested`] to begin the graceful
//! drain (`Lvrm::shutdown`). Installation is idempotent; a second signal
//! while a drain is in progress falls through to the default disposition,
//! so a stuck daemon can still be killed with a repeated Ctrl-C.
//!
//! SIGHUP follows the same pattern with a separate flag: it requests an
//! **on-demand checkpoint** (plus a conservation report) rather than a
//! shutdown, and — unlike the shutdown handler — stays installed, because
//! operators checkpoint repeatedly.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static INSTALLED: AtomicBool = AtomicBool::new(false);
static CHECKPOINT: AtomicBool = AtomicBool::new(false);
static HUP_INSTALLED: AtomicBool = AtomicBool::new(false);
static HANDOFF: AtomicBool = AtomicBool::new(false);
static USR1_INSTALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(signum: libc::c_int) {
    SHUTDOWN.store(true, Ordering::Release);
    // Restore default disposition: the next signal of this kind terminates.
    unsafe {
        libc::signal(signum, 0);
    }
}

/// Install SIGINT and SIGTERM handlers that set the shutdown flag. Safe to
/// call more than once; only the first call installs. Returns `false` if
/// the OS refused either registration (the flag still works if set by
/// [`request`]).
pub fn install_shutdown_handlers() -> bool {
    if INSTALLED.swap(true, Ordering::AcqRel) {
        return true;
    }
    let handler = on_signal as extern "C" fn(libc::c_int) as libc::sighandler_t;
    let mut ok = true;
    unsafe {
        ok &= libc::signal(libc::SIGINT, handler) != libc::SIG_ERR;
        ok &= libc::signal(libc::SIGTERM, handler) != libc::SIG_ERR;
    }
    ok
}

/// Whether a shutdown has been requested (by a signal or [`request`]).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::Acquire)
}

/// Request shutdown programmatically (tests, a duration expiring).
pub fn request() {
    SHUTDOWN.store(true, Ordering::Release);
}

extern "C" fn on_hup(_signum: libc::c_int) {
    // No disposition reset: checkpointing is a repeatable request.
    CHECKPOINT.store(true, Ordering::Release);
}

/// Install the SIGHUP handler that requests an on-demand checkpoint. Safe
/// to call more than once; only the first call installs.
pub fn install_checkpoint_handler() -> bool {
    if HUP_INSTALLED.swap(true, Ordering::AcqRel) {
        return true;
    }
    let handler = on_hup as extern "C" fn(libc::c_int) as libc::sighandler_t;
    unsafe { libc::signal(libc::SIGHUP, handler) != libc::SIG_ERR }
}

/// Consume a pending checkpoint request: `true` at most once per SIGHUP (or
/// [`request_checkpoint`]), so one signal yields one checkpoint.
pub fn take_checkpoint_request() -> bool {
    CHECKPOINT.swap(false, Ordering::AcqRel)
}

/// Request a checkpoint programmatically (tests, admin endpoints).
pub fn request_checkpoint() {
    CHECKPOINT.store(true, Ordering::Release);
}

extern "C" fn on_usr1(_signum: libc::c_int) {
    // Repeatable, like SIGHUP: operators may hand off more than once.
    HANDOFF.store(true, Ordering::Release);
}

/// Install the SIGUSR1 handler that requests a **manual HA handoff**: the
/// active monitor resigns mastership (priority-0 advert) so its standby
/// takes over without waiting out the master-down timer. Safe to call more
/// than once; only the first call installs.
pub fn install_handoff_handler() -> bool {
    if USR1_INSTALLED.swap(true, Ordering::AcqRel) {
        return true;
    }
    let handler = on_usr1 as extern "C" fn(libc::c_int) as libc::sighandler_t;
    unsafe { libc::signal(libc::SIGUSR1, handler) != libc::SIG_ERR }
}

/// Consume a pending handoff request: `true` at most once per SIGUSR1 (or
/// [`request_handoff`]).
pub fn take_handoff_request() -> bool {
    HANDOFF.swap(false, Ordering::AcqRel)
}

/// Request a handoff programmatically (tests, admin endpoints).
pub fn request_handoff() {
    HANDOFF.store(true, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_flag_and_handlers_install() {
        assert!(install_shutdown_handlers());
        assert!(install_shutdown_handlers(), "second install is a no-op");
        request();
        assert!(requested());
    }

    #[test]
    fn checkpoint_request_is_consumed_once() {
        assert!(install_checkpoint_handler());
        assert!(install_checkpoint_handler(), "second install is a no-op");
        assert!(!take_checkpoint_request(), "no request pending yet");
        request_checkpoint();
        assert!(take_checkpoint_request(), "one request, one checkpoint");
        assert!(!take_checkpoint_request(), "request was consumed");
    }

    #[test]
    fn handoff_request_is_consumed_once() {
        assert!(install_handoff_handler());
        assert!(install_handoff_handler(), "second install is a no-op");
        assert!(!take_handoff_request(), "no request pending yet");
        request_handoff();
        assert!(take_handoff_request(), "one request, one handoff");
        assert!(!take_handoff_request(), "request was consumed");
        unsafe {
            libc::raise(libc::SIGUSR1);
        }
        assert!(take_handoff_request(), "raised SIGUSR1 lands in the flag");
    }

    #[test]
    fn sighup_raised_by_hand_sets_the_flag() {
        assert!(install_checkpoint_handler());
        unsafe {
            libc::raise(libc::SIGHUP);
        }
        assert!(take_checkpoint_request(), "raised SIGHUP lands in the flag");
        unsafe {
            libc::raise(libc::SIGHUP);
        }
        assert!(take_checkpoint_request(), "handler survives repeated signals");
    }
}
