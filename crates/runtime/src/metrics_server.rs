//! Minimal non-blocking Prometheus scrape endpoint.
//!
//! `lvrmd` runs a single-threaded polling loop; a blocking HTTP server would
//! stall the dataplane for the duration of every scrape (or need a thread
//! and a shared-state story). Instead [`MetricsServer`] owns a non-blocking
//! `TcpListener` and is driven from the existing loop: each
//! [`MetricsServer::poll`] accepts any pending connections, reads request
//! bytes that have already arrived, and answers complete requests with the
//! text exposition the caller renders on demand. One poll per loop iteration
//! bounds the time spent on observability regardless of scraper behavior.
//!
//! The protocol support is deliberately tiny: any complete HTTP/1.x request
//! gets a `200` with `text/plain; version=0.0.4` and the connection is
//! closed (`Connection: close`), which every Prometheus-compatible scraper
//! and `curl` handles. Requests bigger than [`MAX_REQUEST_BYTES`] or older
//! than [`CONN_TTL_POLLS`] polls are dropped — a scrape endpoint has no
//! business buffering unbounded input from the network.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

/// Cap on buffered request bytes per connection.
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Polls a connection may stay open without completing a request.
const CONN_TTL_POLLS: u32 = 10_000;

struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    age_polls: u32,
}

/// Non-blocking scrape endpoint; see the module docs.
pub struct MetricsServer {
    listener: TcpListener,
    conns: Vec<Conn>,
    local_addr: SocketAddr,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9100`; port 0 picks a free port).
    pub fn bind(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        Ok(MetricsServer { listener, conns: Vec::new(), local_addr })
    }

    /// The bound address (useful when the port was 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Accept pending connections, progress reads, and answer complete
    /// requests with `render()`'s output. Never blocks. Returns how many
    /// scrapes were served this poll; `render` runs once per served scrape,
    /// so an idle endpoint costs one `accept` syscall per loop.
    pub fn poll<F: FnMut() -> String>(&mut self, mut render: F) -> usize {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_ok() {
                        self.conns.push(Conn { stream, buf: Vec::new(), age_polls: 0 });
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        let mut served = 0;
        let mut i = 0;
        while i < self.conns.len() {
            match Self::progress(&mut self.conns[i]) {
                ConnState::Pending => i += 1,
                ConnState::Ready => {
                    let mut conn = self.conns.swap_remove(i);
                    let body = render();
                    let header = format!(
                        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; \
                         charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                        body.len()
                    );
                    // Best-effort write; a scraper that vanished mid-scrape
                    // costs nothing but this attempt.
                    let _ = conn.stream.write_all(header.as_bytes());
                    let _ = conn.stream.write_all(body.as_bytes());
                    served += 1;
                }
                ConnState::Dead => {
                    self.conns.swap_remove(i);
                }
            }
        }
        served
    }
}

enum ConnState {
    Pending,
    Ready,
    Dead,
}

impl MetricsServer {
    fn progress(conn: &mut Conn) -> ConnState {
        conn.age_polls += 1;
        if conn.age_polls > CONN_TTL_POLLS {
            return ConnState::Dead;
        }
        let mut chunk = [0u8; 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => return ConnState::Dead, // peer closed before a full request
                Ok(n) => {
                    conn.buf.extend_from_slice(&chunk[..n]);
                    if conn.buf.len() > MAX_REQUEST_BYTES {
                        return ConnState::Dead;
                    }
                    if conn.buf.windows(4).any(|w| w == b"\r\n\r\n")
                        || conn.buf.windows(2).any(|w| w == b"\n\n")
                    {
                        return ConnState::Ready;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return ConnState::Pending,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return ConnState::Dead,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn scrape(addr: SocketAddr) -> std::thread::JoinHandle<String> {
        std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        })
    }

    fn poll_until<F: FnMut() -> String>(
        srv: &mut MetricsServer,
        mut render: F,
        want: usize,
    ) -> usize {
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut served = 0;
        while served < want && Instant::now() < deadline {
            served += srv.poll(&mut render);
            std::thread::sleep(Duration::from_millis(1));
        }
        served
    }

    #[test]
    fn serves_rendered_text_to_a_blocking_client() {
        let mut srv = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let addr = srv.local_addr();
        let client = scrape(addr);
        let served = poll_until(&mut srv, || "lvrm_frames_in_total 42\n".to_string(), 1);
        assert_eq!(served, 1);
        let response = client.join().unwrap();
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"), "{response}");
        assert!(response.ends_with("lvrm_frames_in_total 42\n"), "{response}");
    }

    #[test]
    fn handles_multiple_scrapes_and_render_runs_per_scrape() {
        let mut srv = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let addr = srv.local_addr();
        let c1 = scrape(addr);
        let c2 = scrape(addr);
        let mut renders = 0;
        let served = poll_until(
            &mut srv,
            || {
                renders += 1;
                format!("render {renders}\n")
            },
            2,
        );
        assert_eq!(served, 2);
        let mut bodies = vec![c1.join().unwrap(), c2.join().unwrap()];
        bodies.sort();
        assert!(bodies[0].ends_with("render 1\n"), "{bodies:?}");
        assert!(bodies[1].ends_with("render 2\n"), "{bodies:?}");
        assert_eq!(renders, 2, "render must run once per served scrape");
    }

    #[test]
    fn poll_never_blocks_when_idle() {
        let mut srv = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let t0 = Instant::now();
        for _ in 0..100 {
            assert_eq!(srv.poll(String::new), 0);
        }
        assert!(t0.elapsed() < Duration::from_secs(1), "idle polls must be near-free");
    }

    #[test]
    fn oversized_requests_are_dropped_without_reply() {
        let mut srv = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let addr = srv.local_addr();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            let junk = vec![b'a'; MAX_REQUEST_BYTES + 1024];
            let _ = s.write_all(&junk); // no terminator, too big
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            out
        });
        let served = {
            // Give the client time to push its junk; the server must never
            // serve it.
            let deadline = Instant::now() + Duration::from_millis(500);
            let mut served = 0;
            while Instant::now() < deadline {
                served += srv.poll(|| "nope\n".to_string());
                std::thread::sleep(Duration::from_millis(1));
            }
            served
        };
        assert_eq!(served, 0);
        assert_eq!(client.join().unwrap(), "", "connection dropped with no response");
    }
}
