//! Cross-PROCESS IPC: frames travel through a SysV shared-memory queue
//! between a parent and a forked child — the paper's actual deployment
//! shape ("LVRM allocates a shared memory segment for each IPC queue via
//! shmget()", §3.8), with real address-space separation.
#![cfg(target_os = "linux")]

use lvrm_net::{Frame, FrameBuilder};
use lvrm_runtime::shm::{queue_region_len, ShmFrameQueue, ShmRegion};
use std::net::Ipv4Addr;

fn frame(tag: u8) -> Frame {
    FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 2, 1))
        .udp(100, 200, &[tag; 32])
}

/// The single test in this binary (so no other test threads exist when we
/// fork — fork() in a multithreaded process must only run async-signal-safe
/// code, and the child below sticks to raw memory ops and `_exit`).
#[test]
fn frames_cross_a_fork_boundary() {
    const N: u8 = 100;
    let to_child = ShmRegion::create(queue_region_len(8)).expect("shm available");
    let from_child = ShmRegion::create(queue_region_len(8)).expect("shm available");

    // SAFETY: single-threaded at this point (one #[test] in this binary);
    // the child only touches the shared mappings and exits with _exit.
    let pid = unsafe { libc::fork() };
    assert!(pid >= 0, "fork failed");
    if pid == 0 {
        // Child: echo N frames from to_child into from_child, bumping the
        // first payload byte so the parent can verify real processing.
        let rx = ShmFrameQueue::new(&to_child, 8);
        let tx = ShmFrameQueue::new(&from_child, 8);
        let mut echoed = 0u32;
        let mut spins: u64 = 0;
        while echoed < N as u32 {
            if let Some(f) = rx.try_recv() {
                let mut bytes = f.bytes().to_vec();
                let payload_at = 14 + 20 + 8; // eth + ip + udp
                bytes[payload_at] = bytes[payload_at].wrapping_add(1);
                let f2 = Frame::new(bytes::Bytes::from(bytes));
                while !tx.try_send(&f2) {
                    std::hint::spin_loop();
                }
                echoed += 1;
            } else {
                std::hint::spin_loop();
                spins += 1;
                if spins > 20_000_000_000 {
                    unsafe { libc::_exit(3) };
                }
            }
        }
        unsafe { libc::_exit(0) };
    }

    // Parent: send N tagged frames and check each comes back incremented.
    let tx = ShmFrameQueue::new(&to_child, 8);
    let rx = ShmFrameQueue::new(&from_child, 8);
    let mut received = 0u32;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let mut sent = 0u8;
    while received < N as u32 {
        assert!(std::time::Instant::now() < deadline, "cross-process echo timed out");
        if sent < N && tx.try_send(&frame(sent)) {
            sent += 1;
        }
        if let Some(f) = rx.try_recv() {
            let payload = f.udp().unwrap().payload();
            assert_eq!(
                payload[0],
                (received as u8).wrapping_add(1),
                "child really processed frame {received} in its own address space"
            );
            received += 1;
        }
    }
    // Reap the child and check it exited cleanly.
    let mut status = 0;
    let waited = unsafe { libc::waitpid(pid, &mut status, 0) };
    assert_eq!(waited, pid);
    assert!(libc::WIFEXITED(status) && libc::WEXITSTATUS(status) == 0, "child exit {status}");
}
