//! Experiment 1d (Fig. 4.6): round-trip latency with LVRM only.
//!
//! Same REAL pipeline as 1c, measuring each frame's latency from the input
//! interface (RAM) to the output interface (discard). Paper: within 15 µs
//! for the C++ VR, 25–35 µs for Click — i.e. LVRM itself contributes little
//! versus the ~70–120 µs network RTT of Experiment 1b.

use lvrm_bench::{full_scale, us, Table};
use lvrm_runtime::pipeline::{run_lvrm_only, run_lvrm_only_inline, PipelineVr};

fn main() {
    let sizes = lvrm_bench::scenarios::frame_sizes();
    let frames: u64 = if full_scale() { 500_000 } else { 50_000 };
    let mut table = Table::new(
        "exp1d",
        "Fig 4.6",
        "LVRM-only per-frame latency (REAL threads, frames from RAM)",
        &["vr", "mode", "frame B", "mean us", "p50 us", "p99 us"],
        "paper (8 cores): C++ within 15 us across sizes; Click 25-35 us; both \
         small next to the network path of Exp 1b. On fewer cores the figures \
         inflate by scheduler timeslices",
    );
    println!("running on {} core(s); paper used 8", lvrm_runtime::affinity::available_cores());
    for vr in [PipelineVr::Cpp, PipelineVr::Click] {
        for &size in &sizes {
            eprintln!("[exp1d] {vr:?} {size}B ...");
            for (mode, r) in [
                ("threaded", run_lvrm_only(vr, size, frames, 1)),
                ("inline", run_lvrm_only_inline(vr, size, frames)),
            ] {
                table.row(vec![
                    format!("{vr:?}"),
                    mode.into(),
                    size.to_string(),
                    us(r.latency.mean_ns()),
                    us(r.latency.percentile_ns(0.5) as f64),
                    us(r.latency.percentile_ns(0.99) as f64),
                ]);
            }
        }
    }
    table.finish();
}
