//! Overload sweep (beyond the paper; DESIGN.md §8): per-VR goodput
//! fairness vs offered load under weighted early shedding.
//!
//! Two VRs share one monitor core with an expensive dispatch stage (the
//! classification/dispatch budget is the contended resource). A compliant
//! tenant (weight 9) offers a constant 30 Kfps while an aggressor
//! (weight 1) sweeps from idle to ~33× its fair share. Reported per load
//! point, with shedding on and off: the tenant's goodput as a fraction of
//! its no-contention baseline, the aggressor's goodput, and the frames
//! shed at ingress classification.

use lvrm_bench::{full_scale, Table};
use lvrm_core::config::AllocatorKind;
use lvrm_core::SocketKind;
use lvrm_testbed::cost::StageCost;
use lvrm_testbed::scenario::Scenario;
use lvrm_testbed::{ForwardingMech, VrSpec, VrType};

fn scenario(aggressor_fps: f64, shedding: bool, dur: u64) -> Scenario {
    let mut sc = Scenario::new(ForwardingMech::Lvrm);
    sc.duration_ns = dur;
    sc.warmup_ns = 200_000_000;
    sc.socket = SocketKind::MemTrace;
    sc.cost.dispatch = StageCost::new(2_000, 0.0);
    sc.lvrm.allocator = AllocatorKind::Fixed { cores: 1 };
    sc.lvrm.overload_shedding = shedding;
    sc.vrs = vec![
        VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 16_667 }).with_shed_weight(1.0),
        VrSpec::numbered(1, VrType::Cpp { dummy_load_ns: 16_667 }).with_shed_weight(9.0),
    ];
    let mut sc = sc.with_udp_load(1, 84, 30_000.0, 8);
    if aggressor_fps > 0.0 {
        sc = sc.with_udp_load(0, 84, aggressor_fps, 8);
    }
    sc
}

fn main() {
    let dur: u64 = if full_scale() { 4_000_000_000 } else { 2_000_000_000 };
    // Tenant-alone baseline fixes the 100% goodput mark.
    let base = scenario(0.0, true, dur).run().per_vr_received[1] as f64;

    let mut table = Table::new(
        "exp_overload",
        "DESIGN.md §8",
        "Per-VR goodput vs aggressor offered load (tenant fixed at 30 Kfps, \
         weights 1:9, one monitor core)",
        &["aggressor Kfps", "shedding", "tenant goodput %", "aggressor Kfps out", "shed Kframes"],
        "with shedding on, the weight-9 tenant holds ~100% of its \
         no-contention goodput while the weight-1 aggressor is clipped to \
         its quota; with shedding off, the aggressor's excess burns the \
         shared dispatch budget and the tenant collapses with it",
    );
    for &fps in &[0.0, 30_000.0, 60_000.0, 125_000.0, 250_000.0, 500_000.0, 1_000_000.0] {
        for shedding in [true, false] {
            eprintln!("[overload] aggressor {fps} fps, shedding {shedding} ...");
            let r = scenario(fps, shedding, dur).run();
            let s = r.lvrm_stats.clone().unwrap();
            table.row(vec![
                format!("{:.0}", fps / 1e3),
                if shedding { "on" } else { "off" }.to_string(),
                format!("{:.1}", 100.0 * r.per_vr_received[1] as f64 / base),
                format!("{:.1}", r.per_vr_received[0] as f64 / (dur as f64 / 1e9) / 1e3),
                format!("{:.1}", s.shed_early as f64 / 1e3),
            ]);
        }
    }
    table.finish();
}
