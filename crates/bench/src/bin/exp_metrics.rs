//! Observability overhead: metrics registry + latency histograms + scraping.
//!
//! The observability layer rides the hot path — every dispatched frame
//! bumps lock-free counters, and with `latency-histograms on` every departed
//! frame lands in a per-VR histogram. This binary measures what that costs
//! against the batched inline pipeline at the dataplane's default burst of
//! 32, in three configurations:
//!
//!   * `hist off` — counters only (registry cannot be disabled; it *is* the
//!     stats surface now);
//!   * `hist on`  — counters + per-frame latency recording (the default);
//!   * `hist on + scrape` — as above, plus a full Prometheus render every
//!     ~100k frames, standing in for an aggressive 1 Hz scraper.
//!
//! Budget (EXPERIMENTS.md): `hist on` within 3% of `hist off` at batch 32.
//! Each configuration runs several trials and reports the best, since a
//! shared CI box jitters more than the deltas being measured.

use std::net::Ipv4Addr;

use lvrm_bench::{full_scale, kfps, Table};
use lvrm_core::clock::{Clock, MonotonicClock};
use lvrm_core::host::RecordingHost;
use lvrm_core::topology::{AffinityMode, CoreId, CoreMap, CoreTopology};
use lvrm_core::{Lvrm, LvrmConfig, MemTraceAdapter, SocketAdapter};
use lvrm_net::{Frame, Trace, TraceSpec};

const BATCH: usize = 32;
const WIRE_SIZE: usize = 84;
const TRIALS: usize = 3;
/// Frames between renders in the scrape configuration (~1 Hz at ~100 Kfps).
const SCRAPE_EVERY: u64 = 100_000;

fn routed_vr() -> Box<dyn lvrm_router::VirtualRouter> {
    let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
    Box::new(lvrm_router::FastVr::new("cpp", routes))
}

/// One inline-batched run; returns (fps, forwarded).
fn run(total_frames: u64, histograms: bool, scrape: bool) -> (f64, u64) {
    let clock = MonotonicClock::new();
    let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
    let config =
        LvrmConfig { batch_size: BATCH, latency_histograms: histograms, ..LvrmConfig::default() };
    let mut lvrm = Lvrm::new(config, cores, clock.clone());
    let mut host = RecordingHost::default();
    let _ = lvrm.add_vr("vr0", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr(), &mut host);
    let trace = Trace::generate(&TraceSpec::new(WIRE_SIZE, 64));
    let mut adapter = MemTraceAdapter::new(trace, total_frames);
    let mut ingress: Vec<Frame> = Vec::with_capacity(BATCH);
    let mut egress: Vec<Frame> = Vec::with_capacity(64);
    let mut forwarded = 0u64;
    let mut since_scrape = 0u64;
    let mut scrape_bytes = 0usize;
    let t0 = clock.now_ns();
    while adapter.poll_batch(&mut ingress, BATCH).unwrap_or(0) > 0 {
        let now = clock.now_ns();
        for f in ingress.iter_mut() {
            f.ts_ns = now;
        }
        since_scrape += ingress.len() as u64;
        lvrm.ingress_batch(&mut ingress, &mut host);
        host.pump();
        egress.clear();
        lvrm.poll_egress(&mut egress);
        forwarded += egress.len() as u64;
        let _ = adapter.send_batch(&mut egress);
        if scrape && since_scrape >= SCRAPE_EVERY {
            since_scrape = 0;
            scrape_bytes = lvrm.render_prometheus().len();
        }
    }
    let elapsed_ns = clock.now_ns() - t0;
    // Keep the render observable so the optimizer can't delete the scrapes.
    if scrape {
        assert!(scrape_bytes > 0, "scrape configuration must have rendered");
    }
    (forwarded as f64 * 1e9 / elapsed_ns as f64, forwarded)
}

fn best_fps(total_frames: u64, histograms: bool, scrape: bool) -> f64 {
    (0..TRIALS).map(|_| run(total_frames, histograms, scrape).0).fold(0.0, f64::max)
}

fn main() {
    let frames: u64 = if full_scale() { 2_000_000 } else { 400_000 };
    let mut table = Table::new(
        "exp_metrics",
        "DESIGN §9",
        "observability overhead on the batched inline pipeline (batch 32, 84 B frames)",
        &["config", "Kfps", "vs hist-off"],
        "budget: latency histograms within 3% of counters-only at batch 32; \
         scraping adds a bounded render every ~100k frames",
    );
    println!(
        "running on {} core(s), {} frames/trial, best of {TRIALS}",
        lvrm_runtime::affinity::available_cores(),
        frames
    );
    let base = best_fps(frames, false, false);
    for (label, histograms, scrape) in
        [("hist off", false, false), ("hist on", true, false), ("hist on + scrape", true, true)]
    {
        let fps = if (histograms, scrape) == (false, false) {
            base
        } else {
            best_fps(frames, histograms, scrape)
        };
        table.row(vec![label.into(), kfps(fps), format!("{:+.2}%", (fps - base) / base * 100.0)]);
    }
    table.finish();
}
