//! Experiment 2b (Fig. 4.9): throughput versus a fixed number of cores.
//!
//! A 1/60 ms dummy load makes each VRI worth ~60 Kfps; offered load is
//! 360 Kfps. The paper's shape: throughput scales ~60c Kfps with c
//! allocated cores (slightly below the "max" ideal), up to the 7 cores the
//! gateway can spare; allocating *more* VRIs than physical cores causes
//! contention and the throughput drops.

use lvrm_bench::scenarios::probe_times;
use lvrm_bench::{kfps, Table};
use lvrm_core::config::AllocatorKind;
use lvrm_core::topology::AffinityMode;
use lvrm_testbed::scenario::Scenario;
use lvrm_testbed::{ForwardingMech, VrSpec, VrType};

fn main() {
    let (dur, _warm, _) = probe_times();
    let mut table = Table::new(
        "exp2b",
        "Fig 4.9",
        "Delivered throughput vs fixed core allocation (360 Kfps offered, 1/60ms dummy load)",
        &["vr", "cores", "delivered Kfps", "ideal Kfps"],
        "scales ~60 Kfps per core, slightly under ideal, up to the 7 spare \
         cores; over-allocating beyond physical cores loses throughput to \
         contention",
    );
    for vr_type in [VrType::Cpp { dummy_load_ns: 16_667 }, VrType::Click { dummy_load_ns: 16_667 }]
    {
        for cores in 1..=8usize {
            eprintln!("[exp2b] {} cores={cores} ...", vr_type.name());
            let mut sc = Scenario::new(ForwardingMech::Lvrm);
            sc.vrs = vec![VrSpec::numbered(0, vr_type)];
            sc.lvrm.allocator = AllocatorKind::Fixed { cores };
            // Requesting an 8th VRI exceeds the 7 spare cores: model the
            // paper's contention case by stacking on LVRM's core.
            if cores > 7 {
                sc.lvrm.affinity = AffinityMode::Same;
            }
            sc.duration_ns = dur * 4 + 200_000_000;
            sc.warmup_ns = 200_000_000;
            let sc = sc.with_udp_load(0, 84, 360_000.0, 8);
            let r = sc.run();
            let ideal = (60_000 * cores.min(6)).min(360_000);
            table.row(vec![
                vr_type.name().to_string(),
                cores.to_string(),
                kfps(r.delivered_fps()),
                kfps(ideal as f64),
            ]);
        }
    }
    table.finish();
}
