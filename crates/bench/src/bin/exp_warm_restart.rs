//! Warm-restart cost: periodic checkpoints on the hot path, restore latency.
//!
//! Checkpointing rides the lazy reallocation tick (DESIGN.md §10): at most
//! once per `checkpoint_interval_ns` the monitor serialises its control
//! plane — cumulative stats, per-VR balancer state, and (when flow-based)
//! the flow table — and atomically renames it into place. This binary
//! measures two things against the batched inline pipeline:
//!
//!   * the end-to-end throughput cost of enabling checkpoints at the
//!     default 1 s cadence (and at an aggressive 100 ms cadence, a 10×
//!     upper bound on the default);
//!   * the per-write blob size and encode+write cost, and the restore
//!     (decode+import) cost, as the exported flow table grows — from which
//!     the steady-state overhead at any cadence follows directly.
//!
//! Budget (EXPERIMENTS.md): checkpointing at 1 s cadence within 3% of
//! checkpoints-off at batch 32. Each configuration runs several trials and
//! reports the best, since a shared CI box jitters more than the deltas.

use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::time::Instant;

use lvrm_bench::{full_scale, kfps, Table};
use lvrm_core::clock::{Clock, ManualClock, MonotonicClock};
use lvrm_core::host::RecordingHost;
use lvrm_core::topology::{AffinityMode, CoreId, CoreMap, CoreTopology};
use lvrm_core::{Lvrm, LvrmConfig, MemTraceAdapter, SocketAdapter};
use lvrm_net::{Frame, Trace, TraceSpec};

const BATCH: usize = 32;
const WIRE_SIZE: usize = 84;
const TRIALS: usize = 3;
/// Writes per flow-scaling measurement (best-of).
const WRITES: usize = 32;

fn routed_vr() -> Box<dyn lvrm_router::VirtualRouter> {
    let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
    Box::new(lvrm_router::FastVr::new("cpp", routes))
}

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("lvrm-exp-warm-restart");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}.ck", std::process::id()))
}

/// One inline-batched run; returns (fps, checkpoint writes). The lazy tick
/// (`maybe_reallocate`) runs every batch in *every* configuration so the
/// baseline carries the same gate check and only the writes differ.
fn run(total_frames: u64, checkpoint_interval_ns: Option<u64>) -> (f64, u64) {
    let clock = MonotonicClock::new();
    let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
    let path = temp_path("pipeline");
    let config = LvrmConfig {
        batch_size: BATCH,
        checkpoint_path: checkpoint_interval_ns.map(|_| path.clone()),
        checkpoint_interval_ns: checkpoint_interval_ns.unwrap_or(1_000_000_000),
        ..LvrmConfig::default()
    };
    let mut lvrm = Lvrm::new(config, cores, clock.clone());
    let mut host = RecordingHost::default();
    let _ = lvrm.add_vr("vr0", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr(), &mut host);
    let trace = Trace::generate(&TraceSpec::new(WIRE_SIZE, 64));
    let mut adapter = MemTraceAdapter::new(trace, total_frames);
    let mut ingress: Vec<Frame> = Vec::with_capacity(BATCH);
    let mut egress: Vec<Frame> = Vec::with_capacity(64);
    let mut forwarded = 0u64;
    let t0 = clock.now_ns();
    while adapter.poll_batch(&mut ingress, BATCH).unwrap_or(0) > 0 {
        let now = clock.now_ns();
        for f in ingress.iter_mut() {
            f.ts_ns = now;
        }
        lvrm.ingress_batch(&mut ingress, &mut host);
        host.pump();
        lvrm.maybe_reallocate(clock.now_ns(), &mut host);
        egress.clear();
        lvrm.poll_egress(&mut egress);
        forwarded += egress.len() as u64;
        let _ = adapter.send_batch(&mut egress);
    }
    let elapsed_ns = clock.now_ns() - t0;
    let writes = lvrm.metrics_snapshot().counter("lvrm_checkpoint_writes_total", &[]).unwrap_or(0);
    if checkpoint_interval_ns.is_some() {
        std::fs::remove_file(&path).ok();
    }
    (forwarded as f64 * 1e9 / elapsed_ns as f64, writes)
}

/// Per-write and restore cost with `flows` live entries in the flow table;
/// returns (blob bytes, best write µs, best restore µs).
fn checkpoint_cost(flows: usize) -> (usize, f64, f64) {
    let clock = ManualClock::new();
    let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
    let config = LvrmConfig {
        batch_size: BATCH,
        flow_based: true,
        flow_table_capacity: flows.next_power_of_two() * 2,
        ..LvrmConfig::default()
    };
    let mut lvrm = Lvrm::new(config.clone(), cores.clone(), clock.clone());
    let mut host = RecordingHost::default();
    let _ = lvrm.add_vr("vr0", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr(), &mut host);
    // Touch every flow once so the table holds `flows` live entries.
    let mut trace = Trace::generate(&TraceSpec::new(WIRE_SIZE, flows));
    let mut egress: Vec<Frame> = Vec::with_capacity(64);
    for _ in 0..flows {
        lvrm.ingress(trace.next_frame(), &mut host);
        host.pump();
        egress.clear();
        lvrm.poll_egress(&mut egress);
    }
    let path = temp_path(&format!("flows-{flows}"));
    let mut write_us = f64::INFINITY;
    for i in 0..WRITES {
        let t = Instant::now();
        assert!(lvrm.checkpoint_to(&path, 1_000 + i as u64), "checkpoint write must succeed");
        write_us = write_us.min(t.elapsed().as_secs_f64() * 1e6);
    }
    let bytes = std::fs::metadata(&path).unwrap().len() as usize;
    let mut restore_us = f64::INFINITY;
    for _ in 0..TRIALS {
        let mut fresh = Lvrm::new(config.clone(), cores.clone(), clock.clone());
        let mut fresh_host = RecordingHost::default();
        let _ =
            fresh.add_vr("vr0", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], routed_vr(), &mut fresh_host);
        let t = Instant::now();
        let restored = fresh.restore_from(&path, &mut fresh_host).expect("restore must succeed");
        restore_us = restore_us.min(t.elapsed().as_secs_f64() * 1e6);
        assert_eq!(restored, 1, "the checkpointed VR must be matched");
    }
    std::fs::remove_file(&path).ok();
    (bytes, write_us, restore_us)
}

fn main() {
    let frames: u64 = if full_scale() { 2_000_000 } else { 400_000 };
    let rounds = if full_scale() { 7 } else { TRIALS };
    println!(
        "running on {} core(s), {} frames/trial, best of {rounds}",
        lvrm_runtime::affinity::available_cores(),
        frames
    );

    let mut pipeline = Table::new(
        "exp_warm_restart",
        "DESIGN §10",
        "checkpoint overhead on the batched inline pipeline (batch 32, 84 B frames)",
        &["config", "Kfps", "writes", "vs off"],
        "budget: checkpointing at the default 1 s cadence within 3% of \
         checkpoints-off at batch 32; the A/B delta sits below shared-box \
         noise — the write-cost table below is the authoritative number",
    );
    let configs: [(&str, Option<u64>); 3] = [
        ("checkpoint off", None),
        ("checkpoint 1 s", Some(1_000_000_000)),
        ("checkpoint 100 ms", Some(100_000_000)),
    ];
    // Interleave the configurations round-robin so slow drift on a shared
    // box lands on all of them instead of biasing whole blocks.
    let mut best = [0.0f64; 3];
    let mut writes = [0u64; 3];
    for _ in 0..rounds {
        for (i, (_, interval)) in configs.iter().enumerate() {
            let (fps, w) = run(frames, *interval);
            if fps > best[i] {
                best[i] = fps;
            }
            writes[i] = w;
        }
    }
    let base = best[0];
    for (i, (label, _)) in configs.iter().enumerate() {
        pipeline.row(vec![
            (*label).into(),
            kfps(best[i]),
            writes[i].to_string(),
            format!("{:+.2}%", (best[i] - base) / base * 100.0),
        ]);
    }
    pipeline.finish();

    let mut cost = Table::new(
        "exp_warm_restart",
        "DESIGN §10",
        "per-write and restore cost vs exported flow-table size (flow-based dispatch)",
        &["flows", "blob KiB", "write us", "restore us", "at 1 s cadence"],
        "steady-state overhead at 1 s cadence = write cost / 1 s; restore is a \
         one-off paid before the restarted monitor admits traffic",
    );
    let flow_rows: &[usize] = if full_scale() { &[64, 4096, 16384] } else { &[64, 1024] };
    for &flows in flow_rows {
        let (bytes, write_us, restore_us) = checkpoint_cost(flows);
        cost.row(vec![
            flows.to_string(),
            format!("{:.1}", bytes as f64 / 1024.0),
            format!("{write_us:.1}"),
            format!("{restore_us:.1}"),
            format!("{:.4}%", write_us / 1e6 * 100.0),
        ]);
    }
    cost.finish();
}
