//! Run every experiment binary in sequence (Chapter 4, end to end).
//!
//! ```sh
//! cargo run --release -p lvrm-bench --bin all_experiments
//! LVRM_EXP_FULL=1 cargo run --release -p lvrm-bench --bin all_experiments  # paper-scale
//! ```
//!
//! Tables print to stdout and are saved as JSON under `target/experiments/`.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp1a",
    "exp1a_cpu",
    "exp1b",
    "exp1c",
    "exp1d",
    "exp1e",
    "exp2a",
    "exp2b",
    "exp2c",
    "exp2d",
    "exp2e",
    "exp3a",
    "exp3b",
    "exp3c",
    "exp4",
    "exp_ablation_alloc",
];

fn main() {
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir").to_path_buf();
    let mut failures = Vec::new();
    let t0 = std::time::Instant::now();
    for exp in EXPERIMENTS {
        let path = bin_dir.join(exp);
        eprintln!("\n########## {exp} ##########");
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{exp} exited with {s}");
                failures.push(*exp);
            }
            Err(e) => {
                eprintln!("{exp} failed to launch ({e}); build with `cargo build --release -p lvrm-bench --bins` first");
                failures.push(*exp);
            }
        }
    }
    eprintln!(
        "\nall experiments done in {:.1} s; results under {}",
        t0.elapsed().as_secs_f64(),
        lvrm_bench::out_dir().display()
    );
    if !failures.is_empty() {
        eprintln!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
