//! Experiment 1b (Fig. 4.4): round-trip latency in data forwarding.
//!
//! ICMP-echo-style probes through each forwarding mechanism. The paper's
//! shape: native and every LVRM variant sit together in the ~70–120 µs band
//! (differences are measurement variance); the hypervisors are markedly
//! higher.

use lvrm_bench::scenarios::{exp1_mechs, frame_sizes, probe_times};
use lvrm_bench::{us, Table};
use lvrm_testbed::scenario::{Scenario, SourceSpec};
use lvrm_testbed::traffic::{RateSchedule, SourceKind};
use lvrm_testbed::VrSpec;

fn main() {
    let (dur, warm, _) = probe_times();
    let sizes = frame_sizes();
    let mut cols: Vec<String> = vec!["mechanism".into()];
    cols.extend(sizes.iter().map(|s| format!("{s}B RTT (us)")));
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "exp1b",
        "Fig 4.4",
        "Ping round-trip latency vs frame size",
        &col_refs,
        "native and all LVRM variants cluster in ~70-120 us; QEMU-KVM and \
         VMware Server remarkably higher",
    );

    for (label, mech, socket, vr_type) in exp1_mechs() {
        eprintln!("[exp1b] {label} ...");
        let mut row = vec![label.to_string()];
        for &size in &sizes {
            let mut sc = Scenario::new(mech);
            sc.socket = socket;
            sc.vrs = vec![VrSpec::numbered(0, vr_type)];
            sc.duration_ns = dur * 2;
            sc.warmup_ns = warm;
            sc.sources.push(SourceSpec {
                vr: 0,
                host: 1,
                kind: SourceKind::Ping { wire_size: size, interval_ns: 500_000 },
                schedule: RateSchedule::constant(0.0),
            });
            let r = sc.run();
            row.push(us(r.rtt.mean_ns()));
        }
        table.row(row);
    }
    table.finish();
}
