//! Ablation (paper §3.2 claim): "We expect that the dynamic approach is
//! more resource-efficient than the fixed approach, since it allocates
//! cores based on the traffic load and hence avoids over-provisioning."
//!
//! A bursty diurnal-style load (mostly 60 Kfps with a 300 Kfps burst in the
//! middle) runs against three policies: fixed at peak (6 cores), fixed at
//! mean (2 cores), and the two dynamic allocators. Reported: delivery
//! ratio and **core-seconds** consumed (integrated live-VRI count), i.e.
//! how much CPU reservation each policy needed for the service it gave.

use lvrm_bench::{full_scale, Table};
use lvrm_core::config::AllocatorKind;
use lvrm_testbed::scenario::{Scenario, SourceSpec, VriSample};
use lvrm_testbed::traffic::{RateSchedule, SourceKind};
use lvrm_testbed::{ForwardingMech, VrSpec, VrType};

fn core_seconds(samples: &[VriSample], duration_ns: u64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for w in samples.windows(2) {
        let dt = (w[1].t_ns - w[0].t_ns) as f64 / 1e9;
        total += w[0].vris_per_vr[0] as f64 * dt;
    }
    // Tail segment to the end of the run.
    let last = samples.last().unwrap();
    total += last.vris_per_vr[0] as f64 * (duration_ns.saturating_sub(last.t_ns)) as f64 / 1e9;
    total
}

fn main() {
    let dur: u64 = if full_scale() { 60_000_000_000 } else { 24_000_000_000 };
    let policies: Vec<(&str, AllocatorKind)> = vec![
        ("fixed-peak (6)", AllocatorKind::Fixed { cores: 6 }),
        ("fixed-mean (2)", AllocatorKind::Fixed { cores: 2 }),
        ("dynamic-fixed", AllocatorKind::DynamicFixed { per_core_rate: 60_000.0 }),
        ("dynamic-svc-rate", AllocatorKind::DynamicServiceRate { bootstrap_rate: 60_000.0 }),
    ];
    let mut table = Table::new(
        "exp_ablation_alloc",
        "§3.2 claim",
        "Resource efficiency: bursty load (60 Kfps base, 300 Kfps burst for 3/8 of the run)",
        &["policy", "delivery ratio", "core-seconds", "core-s per delivered Mframe"],
        "dynamic policies approach fixed-at-peak delivery at a fraction of \
         the core-seconds; fixed-at-mean saves cores but drops the whole \
         burst. The residual dynamic loss is the ramp: one grow per 1 s \
         period (the paper's setting) while the burst front passes",
    );
    for (name, allocator) in policies {
        eprintln!("[ablation-alloc] {name} ...");
        let mut sc = Scenario::new(ForwardingMech::Lvrm);
        sc.duration_ns = dur;
        sc.warmup_ns = 200_000_000;
        sc.sample_period_ns = 250_000_000;
        sc.vrs = vec![VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 16_667 })];
        sc.lvrm.allocator = allocator;
        sc.sources.push(SourceSpec {
            vr: 0,
            host: 1,
            kind: SourceKind::UdpCbr { wire_size: 84, flows: 16 },
            schedule: RateSchedule::piecewise(vec![
                (0, 60_000.0),
                (dur / 4, 300_000.0),
                (5 * dur / 8, 60_000.0),
            ]),
        });
        let r = sc.run();
        let cs = core_seconds(&r.samples, dur);
        let delivered_mframes = r.udp_received as f64 / 1e6;
        table.row(vec![
            name.to_string(),
            format!("{:.3}", r.delivery_ratio()),
            format!("{cs:.1}"),
            format!("{:.1}", cs / delivered_mframes.max(1e-9)),
        ]);
    }
    table.finish();
}
