//! Experiment 1c (Fig. 4.5): achievable throughput with LVRM only.
//!
//! Frames replayed from main memory, forwarded through the *real* threaded
//! LVRM (no simulation), and discarded at the output — network excluded, so
//! the numbers are the monitor's own overhead. The paper's anchors on a
//! 2×quad-core Xeon: C++ VR reaches 3.7 Mfps at 84 B and 922 Kfps (11 Gbps)
//! at 1538 B; Click VR is far lower.
//!
//! Absolute numbers scale with the host — this binary prints the measured
//! core count so EXPERIMENTS.md can contextualize (a single-core container
//! time-slices LVRM and its VRIs and lands well below the paper).

use lvrm_bench::{full_scale, kfps, Table};
use lvrm_runtime::pipeline::{run_lvrm_only, run_lvrm_only_inline, PipelineVr};

fn main() {
    let sizes = lvrm_bench::scenarios::frame_sizes();
    let frames: u64 = if full_scale() { 2_000_000 } else { 200_000 };
    let mut table = Table::new(
        "exp1c",
        "Fig 4.5",
        "LVRM-only achievable throughput (REAL threads, frames from RAM)",
        &["vr", "mode", "frame B", "Kfps", "Gbps", "dropped"],
        "paper (8 cores): C++ 3.7 Mfps @84B falling to 922 Kfps (11 Gbps) @1538B; \
         Click VR substantially lower at every size",
    );
    println!(
        "running on {} core(s); paper used 8 — expect proportionally lower absolute rates",
        lvrm_runtime::affinity::available_cores()
    );
    for vr in [PipelineVr::Cpp, PipelineVr::Click] {
        for &size in &sizes {
            eprintln!("[exp1c] {vr:?} {size}B ...");
            // Threaded: the paper's architecture verbatim (timeslice-bound on
            // few-core hosts). Inline: the per-frame software cost with the
            // VRI serviced on the same thread — the honest throughput bound.
            let threaded = run_lvrm_only(vr, size, frames, 1);
            let inline = run_lvrm_only_inline(vr, size, frames);
            table.row(vec![
                format!("{vr:?}"),
                "threaded".into(),
                size.to_string(),
                kfps(threaded.fps()),
                format!("{:.2}", threaded.gbps(size)),
                threaded.dropped.to_string(),
            ]);
            table.row(vec![
                format!("{vr:?}"),
                "inline".into(),
                size.to_string(),
                kfps(inline.fps()),
                format!("{:.2}", inline.gbps(size)),
                inline.dropped.to_string(),
            ]);
        }
    }
    table.finish();
}
