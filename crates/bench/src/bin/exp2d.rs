//! Experiment 2d (Fig. 4.12): dynamic core allocation with two VRs.
//!
//! Each sender drives its own VR with a staircase peaking at 180 Kfps
//! (step 30 Kfps); the flows start at different times. Core allocation
//! condition as in 2c: one core per 60 Kfps. The paper: each VR is
//! allocated cores in the expected manner, with small reaction time.

use lvrm_bench::{full_scale, Table};
use lvrm_core::config::AllocatorKind;
use lvrm_testbed::scenario::{Scenario, SourceSpec};
use lvrm_testbed::traffic::{RateSchedule, SourceKind};
use lvrm_testbed::{ForwardingMech, VrSpec, VrType};

fn main() {
    let dwell: u64 = if full_scale() { 5_000_000_000 } else { 2_000_000_000 };
    // 30 -> 180 -> 30 Kfps staircase per VR; VR1 starts two dwells later.
    let stair = RateSchedule::staircase(30_000.0, 180_000.0, dwell);
    let stagger = 2 * dwell;
    let duration = stair.last_change_ns() + dwell + stagger;

    let mut sc = Scenario::new(ForwardingMech::Lvrm);
    sc.duration_ns = duration;
    sc.warmup_ns = 100_000_000;
    sc.sample_period_ns = dwell / 2;
    sc.vrs = vec![
        VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 16_667 }),
        VrSpec::numbered(1, VrType::Cpp { dummy_load_ns: 16_667 }),
    ];
    sc.lvrm.allocator = AllocatorKind::DynamicFixed { per_core_rate: 60_000.0 };
    sc.sources.push(SourceSpec {
        vr: 0,
        host: 1,
        kind: SourceKind::UdpCbr { wire_size: 84, flows: 8 },
        schedule: stair.clone(),
    });
    sc.sources.push(SourceSpec {
        vr: 1,
        host: 1,
        kind: SourceKind::UdpCbr { wire_size: 84, flows: 8 },
        schedule: stair.delayed(stagger),
    });

    eprintln!("[exp2d] running ...");
    let r = sc.run();
    let mut table = Table::new(
        "exp2d",
        "Fig 4.12",
        "Dynamic core allocation, two VRs with staggered staircases",
        &["t (s)", "vr0 Kfps", "vr0 cores", "vr1 Kfps", "vr1 cores"],
        "each VR independently tracks ceil(rate/60K); allocations reflect the \
         stagger; the shared pool never exceeds 7 cores",
    );
    for s in &r.samples {
        table.row(vec![
            format!("{:.1}", s.t_ns as f64 / 1e9),
            format!("{:.0}", s.offered_fps_per_vr[0] / 1e3),
            s.vris_per_vr[0].to_string(),
            format!("{:.0}", s.offered_fps_per_vr[1] / 1e3),
            s.vris_per_vr[1].to_string(),
        ]);
    }
    table.finish();
    let max_total: usize =
        r.samples.iter().map(|s| s.vris_per_vr.iter().sum::<usize>()).max().unwrap_or(0);
    println!("peak total cores in use: {max_total} (7 available)");
}
