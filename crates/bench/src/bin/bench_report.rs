//! `bench-report`: the machine-readable perf trajectory for the queue-kind
//! sweep. Runs a fixed matrix of benches over every [`QueueKind`] and writes
//! one flat JSON array of rows, schema
//! `{bench, queue_kind, batch, metric, value, unit}`, to `BENCH_10.json` at
//! the repo root (override with `--out <path>`). The schema, its
//! validation, and the cross-report regression gate live in
//! [`lvrm_bench::trajectory`]; `bench-diff` compares two reports.
//!
//! Benches:
//!
//! - `queue_ops` — raw ring transfer between two real threads, per batch
//!   size (wall clock, Mops/s).
//! - `relay` — end-to-end ingress→VRI→egress relay through `Lvrm` with an
//!   in-process host (wall clock, kfps).
//! - `dispatch_uniform` / `dispatch_skew` — *deterministic simulated*
//!   dispatch goodput over repeated burst-drain cycles under a quota-paced
//!   host: every VRI services a fixed frame quota per simulated
//!   millisecond, and the `skew` profile slows one VRI 10×. Classic kinds
//!   commit each frame to one VRI's SPSC queue at dispatch time, so a
//!   backlog queued behind the slowed instance drains at its pace; under
//!   `vlink` the burst sits in the shared ring and the fast instances
//!   steal through it (see `dispatch_goodput`).
//! - `overload` — goodput fraction at 2× offered load with early shedding,
//!   batch 32 (simulated, deterministic).
//! - `scenario_million_flows` / `scenario_flash_crowd` /
//!   `scenario_syn_flood` — the fixed declarative-scenario set on the full
//!   simulated testbed (`lvrm_testbed::scenarios`): flow-census tracking
//!   percentage, tenant goodput under overload, and a conservation flag
//!   that must stay 1.
//! - `ha_failover` — active/standby pair on the manual clock: elect,
//!   stream checkpoint deltas under traffic, kill the master; emits the
//!   simulated promotion latency (`failover_time`, ms) and the worst
//!   observed replication lag (`delta_lag`, unacked stream positions).
//!   Both are deterministic functions of the election timers and gate
//!   lower-is-better.
//! - `repl_scaling` — the elephant-flow scenario under pinned vs
//!   `replicated` dispatch (state-compute replication, DESIGN.md §14): one
//!   bulk TCP flow through a compute-bound VR, goodput speedup over the
//!   pinned baseline at 2 and 4 VRIs (`speedup_vs_pinned`, batch column =
//!   VRI count; targets ≥ 1.7× and ≥ 3×), plus a conservation flag over
//!   all five identities. Deterministic simulated time, identical rows in
//!   smoke and full profiles.
//! - `shard_takeover` — three-shard fleet on the manual clock (DESIGN.md
//!   §15): warm the directory under traffic, kill one shard mid-epoch, and
//!   measure the simulated time until every orphaned VR is owned by its
//!   rendezvous successor (`failover_time`, ms, lower-is-better), plus a
//!   conservation flag over global/replication conservation and the fleet
//!   identity (every VR exactly one owner) after convergence.
//! - `repl_scaling_threads` — the elephant flow on *real* VRI threads
//!   (`lvrm_runtime::ThreadHost` with the replica-ledger path): pinned vs
//!   replicated wall-clock throughput and their ratio. Machine-dependent,
//!   so these rows are excluded from the regression gate and from the
//!   smoke profile.
//!
//! Derived rows pin the PR's acceptance targets: `speedup_vs_lamport` under
//! skew (target ≥ 1.3× at batch 32) and `delta_vs_lamport_pct` under
//! uniform load (target within ±5 %).
//!
//! `--smoke` shrinks every bench to a seconds-long sanity run with the same
//! row set (CI validates the schema from it).

use std::net::Ipv4Addr;

use lvrm_bench::trajectory::{rows_to_json, validate_rows, Row};
use lvrm_core::clock::Clock as _;
use lvrm_core::{
    rendezvous_owner, AffinityMode, AllocatorKind, ChannelLink, CoreId, CoreMap, CoreTopology,
    DispatchMode, HaConfig, Lvrm, LvrmConfig, ManualClock, MonotonicClock, PeerLink, RecordingHost,
    ShardConfig, VriHost, VriSpec,
};
use lvrm_ipc::channels::Work;
use lvrm_ipc::{queue, Full, QueueKind, VriEndpoint};
use lvrm_net::{Frame, FrameBuilder};
use lvrm_router::{RouterAction, VirtualRouter};

const BATCHES: &[usize] = &[1, 32, 256];

// ------------------------------------------------------------ queue_ops

/// Push `total` u64s through one queue between two real threads, in bursts
/// of `batch`; returns Mops/s of wall time.
fn queue_ops(kind: QueueKind, batch: usize, total: u64) -> f64 {
    let (mut tx, mut rx) = queue::<u64>(kind, 1024);
    let start = std::time::Instant::now();
    let t = std::thread::spawn(move || {
        if batch == 1 {
            for i in 0..total {
                let mut v = i;
                loop {
                    match tx.try_send(v) {
                        Ok(()) => break,
                        Err(Full(b)) => {
                            v = b;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        } else {
            let mut pending: Vec<u64> = Vec::with_capacity(batch);
            let mut next = 0u64;
            while next < total || !pending.is_empty() {
                while pending.len() < batch && next < total {
                    pending.push(next);
                    next += 1;
                }
                if tx.try_send_batch(&mut pending) == 0 {
                    std::thread::yield_now();
                }
            }
        }
    });
    let mut got = 0u64;
    let mut out: Vec<u64> = Vec::with_capacity(batch);
    while got < total {
        if batch == 1 {
            if rx.try_recv().is_some() {
                got += 1;
            } else {
                std::thread::yield_now();
            }
        } else {
            out.clear();
            let n = rx.try_recv_batch(&mut out, batch);
            if n == 0 {
                std::thread::yield_now();
            }
            got += n as u64;
        }
    }
    t.join().unwrap();
    total as f64 / start.elapsed().as_secs_f64() / 1e6
}

// ------------------------------------------------------------ relay

/// Fixed flow population for the dispatch sims: a realistic recurring mix
/// (IP/port 5-tuples repeat every few bursts) that spreads evenly over the
/// instances.
const FLOWS: u32 = 96;

fn frame_for_flow(flow: u32) -> Frame {
    let last = 1 + (flow % 200) as u8;
    FrameBuilder::new(Ipv4Addr::new(10, 0, 1, last), Ipv4Addr::new(10, 0, 2, 1)).udp(
        1000 + (flow % 512) as u16,
        2,
        &[],
    )
}

fn routed_vr(name: &str) -> Box<dyn VirtualRouter> {
    let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
    Box::new(lvrm_router::FastVr::new(name, routes))
}

fn subnet() -> [(Ipv4Addr, u8); 1] {
    [(Ipv4Addr::new(10, 0, 1, 0), 24)]
}

fn new_lvrm(clock: ManualClock, config: LvrmConfig) -> Lvrm<ManualClock> {
    let cores = CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
    Lvrm::new(config, cores, clock)
}

/// End-to-end relay of `total` frames through the monitor and an in-process
/// host, in bursts of `batch`; returns kfps of wall time.
fn relay(kind: QueueKind, batch: usize, total: usize) -> f64 {
    let clock = ManualClock::new();
    let config = LvrmConfig {
        queue_kind: kind,
        allocator: AllocatorKind::Fixed { cores: 2 },
        ..Default::default()
    };
    let mut lvrm = new_lvrm(clock.clone(), config);
    let mut host = RecordingHost::default();
    let _vr = lvrm.add_vr("bench", &subnet(), routed_vr("bench"), &mut host);
    let mut out = Vec::new();
    let mut burst: Vec<Frame> = Vec::with_capacity(batch);
    let start = std::time::Instant::now();
    let mut sent = 0usize;
    while sent < total {
        let n = batch.min(total - sent);
        burst.extend((0..n).map(|i| frame_for_flow((sent + i) as u32)));
        sent += n;
        lvrm.ingress_batch(&mut burst, &mut host);
        burst.clear();
        host.pump();
        lvrm.poll_egress(&mut out);
        out.clear();
    }
    loop {
        let moved = host.pump() + lvrm.poll_egress(&mut out);
        out.clear();
        if moved == 0 {
            break;
        }
    }
    lvrm.stats().frames_out as f64 / start.elapsed().as_secs_f64() / 1e3
}

// ------------------------------------------------------------ dispatch sim

/// A host whose instances service a fixed frame quota per simulated step:
/// the deterministic stand-in for "this VRI's core is N× slower".
#[derive(Default)]
struct PacedHost {
    slots: Vec<(VriSpec, VriEndpoint<Frame>, Box<dyn VirtualRouter>)>,
}

impl VriHost for PacedHost {
    fn spawn_vri(
        &mut self,
        spec: VriSpec,
        endpoint: VriEndpoint<Frame>,
        router: Box<dyn VirtualRouter>,
    ) {
        self.slots.push((spec, endpoint, router));
    }

    fn kill_vri(&mut self, _vr: lvrm_core::VrId, vri: lvrm_core::VriId) {
        self.slots.retain(|(spec, _, _)| spec.vri != vri);
    }
}

impl PacedHost {
    /// Run one step: slot `i` services at most `quotas[i]` data frames.
    fn service(&mut self, quotas: &[usize]) {
        for (i, (_, endpoint, router)) in self.slots.iter_mut().enumerate() {
            let mut quota = quotas.get(i).copied().unwrap_or(0);
            while quota > 0 {
                match endpoint.next_work() {
                    Some(Work::Data(mut frame)) => {
                        quota -= 1;
                        if let RouterAction::Forward { .. } = router.process(&mut frame) {
                            let _ = endpoint.data_tx.try_send(frame);
                        }
                    }
                    Some(Work::Control(_)) => {}
                    None => break,
                }
            }
        }
    }
}

const VRIS: usize = 3;
/// Frames one healthy VRI services per simulated millisecond step.
const FAST_QUOTA: usize = 40;
/// The skew profile: one VRI at a 10× slowdown.
const SLOW_QUOTA: usize = FAST_QUOTA / 10;
/// Frames per burst-drain cycle: fills each per-VRI queue (capacity 256) to
/// 232 under an even JSQ spread, and fits the VLink ring (4 × 256) whole.
/// 232 / 40 = 5.8 keeps the uniform makespan clear of a step boundary, so
/// the ±1-frame wobble of a burst spread cannot flip a whole step.
const CYCLE_FRAMES: usize = VRIS * 232;

/// Simulated dispatch goodput (kfps of *simulated* time) over repeated
/// burst-drain cycles: each cycle ingests `CYCLE_FRAMES` in bursts of
/// `batch`, then the paced host services 1 ms steps until the cycle is
/// fully delivered. `slow_first` applies the 10× slowdown to the
/// first-spawned VRI.
///
/// This is where dispatch policy earns its keep. The classic kinds commit
/// every frame to one VRI's SPSC queue at dispatch time, so the burst's
/// share queued behind the slowed instance drains at one-tenth speed while
/// its siblings sit idle — JSQ spreads by queue length *at dispatch*, and
/// cannot migrate what it already enqueued. Under the VLink fabric the
/// burst sits in the shared ring and the fast VRIs steal through it, so
/// the cycle's makespan tracks aggregate service capacity instead of the
/// slowest instance's backlog.
fn dispatch_goodput(kind: QueueKind, batch: usize, cycles: u64, slow_first: bool) -> f64 {
    let clock = ManualClock::new();
    let config = LvrmConfig {
        queue_kind: kind,
        data_queue_capacity: 256,
        allocator: AllocatorKind::Fixed { cores: VRIS },
        batch_size: batch,
        ..Default::default()
    };
    let mut lvrm = new_lvrm(clock.clone(), config);
    let mut host = PacedHost::default();
    let _vr = lvrm.add_vr("bench", &subnet(), routed_vr("bench"), &mut host);
    assert_eq!(host.slots.len(), VRIS);

    let mut quotas = vec![FAST_QUOTA; VRIS];
    if slow_first {
        quotas[0] = SLOW_QUOTA;
    }

    let step_ns = 1_000_000u64;
    let mut flow = 0u32;
    let mut burst: Vec<Frame> = Vec::with_capacity(batch);
    let mut out = Vec::new();
    let mut t = 0u64;
    let mut delivered = 0u64;
    for cycle in 0..cycles {
        let mut left = CYCLE_FRAMES;
        while left > 0 {
            let n = batch.min(left);
            left -= n;
            burst.extend((0..n).map(|i| frame_for_flow(flow.wrapping_add(i as u32) % FLOWS)));
            flow = flow.wrapping_add(n as u32);
            lvrm.ingress_batch(&mut burst, &mut host);
            burst.clear();
        }
        let target = delivered + CYCLE_FRAMES as u64;
        // Every frame fits a queue, so nothing should drop; the step cap
        // turns an accounting surprise into a loud failure, not a hang.
        let mut steps_left = 64 * CYCLE_FRAMES / SLOW_QUOTA;
        while lvrm.stats().frames_out < target {
            assert!(steps_left > 0, "cycle {cycle} failed to drain: {:?}", lvrm.stats());
            steps_left -= 1;
            t += step_ns;
            clock.set_ns(t);
            host.service(&quotas);
            lvrm.process_control();
            lvrm.poll_egress(&mut out);
            out.clear();
        }
        delivered = target;
    }
    assert_eq!(lvrm.stats().dispatch_drops, 0, "makespan cycles must not drop");
    let sim_secs = t as f64 / 1e9;
    delivered as f64 / sim_secs / 1e3
}

// ------------------------------------------------------------ overload

/// Goodput fraction (delivered / offered, %) at 2× aggregate capacity with
/// early shedding on; deterministic.
fn overload_goodput_pct(kind: QueueKind, steps: u64) -> f64 {
    let clock = ManualClock::new();
    let config = LvrmConfig {
        queue_kind: kind,
        data_queue_capacity: 256,
        allocator: AllocatorKind::Fixed { cores: VRIS },
        batch_size: 32,
        overload_shedding: true,
        ..Default::default()
    };
    let mut lvrm = new_lvrm(clock.clone(), config);
    let mut host = PacedHost::default();
    let _vr = lvrm.add_vr("bench", &subnet(), routed_vr("bench"), &mut host);
    let offered = 2 * VRIS * FAST_QUOTA;
    let quotas = vec![FAST_QUOTA; VRIS];
    let step_ns = 1_000_000u64;
    let mut flow = 0u32;
    let mut burst: Vec<Frame> = Vec::with_capacity(32);
    let mut out = Vec::new();
    let mut t = 0u64;
    for _ in 0..steps + 32 {
        t += step_ns;
        clock.set_ns(t);
        let mut left = if t <= steps * step_ns { offered } else { 0 };
        while left > 0 {
            let n = 32.min(left);
            left -= n;
            burst.extend((0..n).map(|i| frame_for_flow(flow.wrapping_add(i as u32) % FLOWS)));
            flow = flow.wrapping_add(n as u32);
            lvrm.ingress_batch(&mut burst, &mut host);
            burst.clear();
        }
        host.service(&quotas);
        lvrm.process_control();
        lvrm.poll_egress(&mut out);
        out.clear();
    }
    let s = lvrm.stats();
    100.0 * s.frames_out as f64 / s.frames_in as f64
}

// ------------------------------------------------------------ ha failover

/// One monitor of the HA bench pair: own clock and host, HA attached over
/// the given link half.
struct HaBenchNode {
    clock: ManualClock,
    lvrm: Lvrm<ManualClock>,
    host: RecordingHost,
}

impl HaBenchNode {
    fn new(kind: QueueKind, priority: u8, node_id: u64, link: Box<dyn PeerLink>) -> HaBenchNode {
        let config = LvrmConfig {
            queue_kind: kind,
            allocator: AllocatorKind::Fixed { cores: 2 },
            supervision: true,
            flow_based: true,
            ha: Some(HaConfig {
                priority,
                node_id,
                delta_interval_ns: 200_000_000,
                ..Default::default()
            }),
            ..Default::default()
        };
        let clock = ManualClock::new();
        let mut lvrm = new_lvrm(clock.clone(), config);
        let mut host = RecordingHost::with_heartbeats();
        let _vr = lvrm.add_vr("bench", &subnet(), routed_vr("bench"), &mut host);
        assert!(lvrm.attach_ha(link), "config carries ha");
        HaBenchNode { clock, lvrm, host }
    }

    fn step(&mut self, t: u64, out: &mut Vec<Frame>) {
        self.clock.set_ns(t);
        self.host.pump();
        self.lvrm.process_control();
        self.lvrm.maybe_reallocate(t, &mut self.host);
        self.lvrm.poll_egress(out);
        out.clear();
    }
}

/// Deterministic simulated failover on the manual clock: elect an
/// active/standby pair over an in-process link, stream deltas under
/// traffic, then kill the master. Returns `(failover_ms, max_delta_lag)` —
/// pure functions of the election timers and stream cadence, so the gate
/// sees no machine noise.
fn ha_failover(kind: QueueKind, warm_steps: u64) -> (f64, f64) {
    const STEP_NS: u64 = 10_000_000; // 10 ms host-loop cadence
    let (la, lb) = ChannelLink::pair();
    let mut a = HaBenchNode::new(kind, 200, 1, Box::new(la));
    let mut b = HaBenchNode::new(kind, 100, 2, Box::new(lb));
    let mut out = Vec::new();

    // Election: step until the higher-priority node owns the dataplane.
    let mut t = 0u64;
    for _ in 0..400 {
        a.step(t, &mut out);
        b.step(t, &mut out);
        t += STEP_NS;
        if a.lvrm.ha_accepting() {
            break;
        }
    }
    assert!(a.lvrm.ha_accepting(), "ha_failover bench: no master elected");

    // Warm replication: traffic on the master, deltas streaming to the
    // standby; track the worst unacked stream position.
    let mut max_lag = 0u64;
    for step in 0..warm_steps {
        for i in 0..8u32 {
            a.lvrm.ingress(frame_for_flow(step as u32 * 8 + i), &mut a.host);
        }
        a.step(t, &mut out);
        b.step(t, &mut out);
        max_lag = max_lag.max(a.lvrm.ha().expect("attached").delta_lag());
        t += STEP_NS;
    }

    // The kill: master vanishes; measure simulated time to promotion.
    drop(a);
    let t_kill = t;
    while t < t_kill + 2_000_000_000 && !b.lvrm.ha_accepting() {
        t += STEP_NS;
        b.step(t, &mut out);
    }
    assert!(b.lvrm.ha_accepting(), "ha_failover bench: standby never promoted");
    ((t - t_kill) as f64 / 1e6, max_lag as f64)
}

// ------------------------------------------------------------ shard takeover

const FLEET_SHARDS: u32 = 3;
const FLEET_VRS: u32 = 6;

/// One fleet member of the shard-takeover bench: a solo monitor declaring
/// the full six-VR universe, serving its rendezvous share.
struct ShardBenchNode {
    clock: ManualClock,
    lvrm: Lvrm<ManualClock>,
    host: RecordingHost,
}

impl ShardBenchNode {
    fn new(kind: QueueKind, shard_id: u32, links: Vec<(u32, Box<dyn PeerLink>)>) -> ShardBenchNode {
        let config = LvrmConfig {
            queue_kind: kind,
            allocator: AllocatorKind::Fixed { cores: 1 },
            supervision: true,
            flow_based: true,
            shard: Some(ShardConfig {
                shard_id,
                shards: FLEET_SHARDS,
                advert_interval_ns: 100_000_000,
                snapshot_interval_ns: 200_000_000,
            }),
            ..Default::default()
        };
        let clock = ManualClock::new();
        let mut lvrm = new_lvrm(clock.clone(), config);
        let mut host = RecordingHost::with_heartbeats();
        for i in 0..FLEET_VRS {
            let name = fleet_vr_name(i);
            let net = [(Ipv4Addr::new(10, 0, 1 + i as u8, 0), 24)];
            lvrm.add_vr(name.clone(), &net, routed_vr(&name), &mut host);
        }
        assert!(lvrm.attach_fleet(links), "config carries shard");
        ShardBenchNode { clock, lvrm, host }
    }

    fn step(&mut self, t: u64, out: &mut Vec<Frame>) {
        self.clock.set_ns(t);
        self.host.pump();
        self.lvrm.process_control();
        self.lvrm.maybe_reallocate(t, &mut self.host);
        self.lvrm.poll_egress(out);
        out.clear();
    }

    fn owns(&self, vr: u32) -> bool {
        self.lvrm.vr_owned_by_name(&fleet_vr_name(vr))
    }
}

fn fleet_vr_name(i: u32) -> String {
    format!("dept{}", i + 1)
}

/// Global + replication conservation on every survivor, and the fleet
/// identity: every declared VR owned by exactly one shard.
fn fleet_conservation_ok(nodes: &[&ShardBenchNode]) -> bool {
    let mut ok = true;
    for n in nodes {
        let s = n.lvrm.stats();
        ok &= s.frames_in
            == s.frames_out
                + s.unclassified
                + s.dispatch_drops
                + s.no_vri_drops
                + s.shrink_lost
                + s.crash_lost
                + s.quarantined_drops
                + s.shed_early;
        ok &= s.updates_emitted == s.updates_folded + s.updates_lost;
    }
    for vr in 0..FLEET_VRS {
        ok &= nodes.iter().filter(|n| n.owns(vr)).count() == 1;
    }
    ok
}

/// Deterministic simulated shard takeover on the manual clock (DESIGN.md
/// §15): warm a three-shard fleet under traffic for a second, kill shard 0
/// mid-epoch, and return `(rehome_ms, conservation_ok)` — the simulated
/// time until every orphaned VR is owned by its rendezvous successor, and
/// the conservation flag after a settling interval. Both are pure
/// functions of the gossip timers, so the gate sees no machine noise.
fn shard_takeover(kind: QueueKind) -> (f64, bool) {
    const STEP_NS: u64 = 10_000_000; // 10 ms host-loop cadence
    let (l01, l10) = ChannelLink::pair();
    let (l02, l20) = ChannelLink::pair();
    let (l12, l21) = ChannelLink::pair();
    let links: [Vec<(u32, Box<dyn PeerLink>)>; 3] = [
        vec![(1, Box::new(l01) as Box<dyn PeerLink>), (2, Box::new(l02))],
        vec![(0, Box::new(l10) as Box<dyn PeerLink>), (2, Box::new(l12))],
        vec![(0, Box::new(l20) as Box<dyn PeerLink>), (1, Box::new(l21))],
    ];
    let mut shards: Vec<Option<ShardBenchNode>> = links
        .into_iter()
        .enumerate()
        .map(|(id, l)| Some(ShardBenchNode::new(kind, id as u32, l)))
        .collect();
    let mut out = Vec::new();

    // Warm: adverts and snapshots flowing, traffic on every VR at its
    // current owner.
    let mut t = 0u64;
    while t < 1_000_000_000 {
        for vr in 0..FLEET_VRS {
            let frame = FrameBuilder::new(
                Ipv4Addr::new(10, 0, 1 + vr as u8, 20),
                Ipv4Addr::new(10, 0, 100, 1),
            )
            .udp(4000, 80, &[]);
            if let Some(owner) = shards.iter_mut().flatten().find(|s| s.owns(vr)) {
                owner.lvrm.ingress(frame, &mut owner.host);
            }
        }
        for s in shards.iter_mut().flatten() {
            s.step(t, &mut out);
        }
        t += STEP_NS;
    }

    // The kill: shard 0 vanishes, no goodbye; poll until its VRs land on
    // their rendezvous successors.
    let victim_vrs: Vec<u32> =
        (0..FLEET_VRS).filter(|&vr| shards[0].as_ref().unwrap().owns(vr)).collect();
    assert!(!victim_vrs.is_empty(), "shard_takeover bench: rendezvous left shard 0 empty");
    shards[0] = None;
    let survivors = [1u32, 2];
    let t_kill = t;
    loop {
        assert!(t < t_kill + 2_000_000_000, "shard_takeover bench: VRs never re-homed");
        for s in shards.iter_mut().flatten() {
            s.step(t, &mut out);
        }
        let done = victim_vrs.iter().all(|&vr| {
            let successor = rendezvous_owner(&fleet_vr_name(vr), &survivors).unwrap();
            shards[successor as usize].as_ref().unwrap().owns(vr)
        });
        if done {
            break;
        }
        t += STEP_NS;
    }
    let rehome_ms = (t - t_kill) as f64 / 1e6;

    // Let the claim/ack exchange settle before auditing the books.
    let t_end = t + 500_000_000;
    while t < t_end {
        for s in shards.iter_mut().flatten() {
            s.step(t, &mut out);
        }
        t += STEP_NS;
    }
    let live: Vec<&ShardBenchNode> = shards.iter().flatten().collect();
    (rehome_ms, fleet_conservation_ok(&live))
}

// ------------------------------------------------------------ repl threads

/// The elephant flow on real VRI threads: wall-clock kfps under pinned vs
/// replicated dispatch through `lvrm_runtime::ThreadHost`. Returns
/// `(pinned_kfps, replicated_kfps, conservation_ok)`. Machine-dependent —
/// these rows never enter the regression gate.
fn repl_scaling_threads(kind: QueueKind, frames: u64) -> (f64, f64, bool) {
    use lvrm_runtime::ThreadHost;

    const VRIS: usize = 4;
    let mut conservation_ok = true;
    let mut run = |mode: DispatchMode| -> f64 {
        let clock = MonotonicClock::new();
        let config = LvrmConfig {
            queue_kind: kind,
            allocator: AllocatorKind::Fixed { cores: VRIS },
            flow_based: true,
            data_queue_capacity: 1024,
            ..Default::default()
        };
        let cores =
            CoreMap::new(CoreTopology::single_package(8), CoreId(0), AffinityMode::SiblingFirst);
        let mut lvrm = Lvrm::new(config, cores, clock.clone());
        let mut host = ThreadHost::new(clock.clone());
        if mode == DispatchMode::Replicated {
            host = host.with_replication();
        }
        let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
        // Compute-bound service (10 us/frame) so one VRI is the bottleneck
        // under pinned dispatch.
        let router = Box::new(lvrm_router::FastVr::new("vr0", routes).with_dummy_load_ns(10_000));
        let vr = lvrm.add_vr("vr0", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], router, &mut host);
        lvrm.set_vr_dispatch(vr, mode);
        for _ in 1..VRIS {
            lvrm.maybe_reallocate(clock.now_ns() + 2_000_000_000, &mut host);
        }

        // One elephant: every frame the same 5-tuple.
        let frame = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 20), Ipv4Addr::new(10, 0, 2, 1))
            .udp(4000, 80, &[0u8; 46]);
        let mut egress = Vec::with_capacity(1024);
        let mut sent = 0u64;
        let mut out = 0u64;
        let t0 = clock.now_ns();
        let deadline = t0 + 30_000_000_000;
        while clock.now_ns() < deadline {
            if sent < frames {
                for _ in 0..32.min(frames - sent) {
                    lvrm.ingress(frame.clone(), &mut host);
                    sent += 1;
                }
            }
            egress.clear();
            lvrm.poll_egress(&mut egress);
            out += egress.len() as u64;
            let s = lvrm.stats();
            let lost = s.dispatch_drops + s.no_vri_drops + s.queue_lost;
            if sent == frames && out + lost >= frames {
                break;
            }
            std::thread::yield_now();
        }
        let elapsed_ns = clock.now_ns() - t0;
        let s = lvrm.stats();
        conservation_ok &= s.frames_in
            == s.frames_out + s.dispatch_drops + s.no_vri_drops + s.unclassified + s.shed_early;
        host.shutdown();
        out as f64 / (elapsed_ns as f64 / 1e9) / 1e3
    };
    let pinned = run(DispatchMode::Pinned);
    let replicated = run(DispatchMode::Replicated);
    (pinned, replicated, conservation_ok)
}

// ------------------------------------------------------------ scenarios

/// The fixed declarative-scenario bench set (deterministic simulated
/// testbed, per queue kind). Absolute flow counts scale with the profile;
/// the gated rows (`tracked_pct`, `goodput_pct`, `conservation_ok`) are
/// scale-invariant so a smoke report diffs cleanly against a committed
/// full one.
fn scenario_rows(smoke: bool, rows: &mut Vec<Row>) {
    use lvrm_testbed::scenarios::{flash_crowd, million_flows, syn_flood};

    let flows: u32 = if smoke { 20_000 } else { 1_000_000 };
    for kind in QueueKind::ALL {
        let mut spec = million_flows(flows, 0x0131);
        spec.queue_kind = kind;
        let report = spec.run();
        let tracked = report.tracked_flows();
        let tracked_pct = 100.0 * tracked as f64 / flows as f64;
        let goodput_pct = 100.0 * report.tenants[0].goodput();
        let ok = report.conservation.all_hold();
        println!(
            "scenario       {:>11} million_flows: {tracked} tracked ({tracked_pct:5.1}%), \
             goodput {goodput_pct:5.1}%, conservation {}",
            kind.name(),
            if ok { "ok" } else { "VIOLATED" },
        );
        let q = kind.as_str();
        rows.push(Row::new(
            "scenario_million_flows",
            q,
            1,
            "tracked_flows",
            tracked as f64,
            "flows",
        ));
        rows.push(Row::new("scenario_million_flows", q, 1, "tracked_pct", tracked_pct, "pct"));
        rows.push(Row::new("scenario_million_flows", q, 1, "goodput_pct", goodput_pct, "pct"));
        rows.push(Row::new(
            "scenario_million_flows",
            q,
            1,
            "conservation_ok",
            if ok { 1.0 } else { 0.0 },
            "bool",
        ));

        // The adversarial pair runs the same spec in both profiles: the
        // protected tenant's goodput is the figure of merit.
        for (bench, spec) in [
            ("scenario_flash_crowd", flash_crowd(0xF1A5)),
            ("scenario_syn_flood", syn_flood(0x5EED)),
        ] {
            let mut spec = spec;
            spec.queue_kind = kind;
            let report = spec.run();
            let goodput_pct = 100.0 * report.tenants[0].goodput();
            let ok = report.conservation.all_hold();
            println!(
                "scenario       {:>11} {}: protected goodput {goodput_pct:5.1}%, \
                 shed {} frames, conservation {}",
                kind.name(),
                &bench["scenario_".len()..],
                report.shed_early(),
                if ok { "ok" } else { "VIOLATED" },
            );
            rows.push(Row::new(bench, q, 1, "goodput_pct", goodput_pct, "pct"));
            rows.push(Row::new(bench, q, 1, "conservation_ok", if ok { 1.0 } else { 0.0 }, "bool"));
        }
    }
}

// ------------------------------------------------------------ repl scaling

/// Elephant-flow scaling under state-compute replication, per queue kind:
/// pinned at 2 VRIs is the baseline; replicated at 2 and 4 VRIs must beat
/// it by the PR's acceptance ratios. Simulated time only, so smoke and
/// full profiles emit identical rows.
fn repl_scaling_rows(rows: &mut Vec<Row>) {
    use lvrm_testbed::scenarios::elephant_flow;

    const SEED: u64 = 42;
    for kind in QueueKind::ALL {
        let mut ok = true;
        let mut run = |cores: usize, replicated: bool| {
            let mut spec = elephant_flow(cores, replicated, SEED);
            spec.queue_kind = kind;
            let report = spec.run();
            ok &= report.conservation.all_hold();
            report.tcp_mbps()
        };
        let base = run(2, false);
        let x2 = run(2, true) / base;
        let x4 = run(4, true) / base;
        println!(
            "repl_scaling   {:>11}: pinned {base:6.1} Mbps, replicated {x2:4.2}x @2 VRIs, \
             {x4:4.2}x @4 VRIs, conservation {}",
            kind.name(),
            if ok { "ok" } else { "VIOLATED" },
        );
        let q = kind.as_str();
        rows.push(Row::new("repl_scaling", q, 2, "speedup_vs_pinned", x2, "x"));
        rows.push(Row::new("repl_scaling", q, 4, "speedup_vs_pinned", x4, "x"));
        rows.push(Row::new(
            "repl_scaling",
            q,
            2,
            "conservation_ok",
            if ok { 1.0 } else { 0.0 },
            "bool",
        ));
    }
}

// ------------------------------------------------------------ main

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_10.json".to_string());
    for a in &args {
        if a != "--smoke" && a != "--out" && !out_path.eq(a) {
            eprintln!("usage: bench-report [--smoke] [--out <path>]");
            std::process::exit(2);
        }
    }

    let (ops_total, relay_total, cycles, overload_steps) = if smoke {
        (200_000u64, 20_000usize, 5u64, 60u64)
    } else {
        (2_000_000, 200_000, 40, 1_000)
    };

    let mut rows: Vec<Row> = Vec::new();
    for kind in QueueKind::ALL {
        for &batch in BATCHES {
            let mops = queue_ops(kind, batch, ops_total);
            println!("queue_ops      {:>11} batch {batch:>3}: {mops:8.2} Mops/s", kind.name());
            rows.push(Row::new("queue_ops", kind.as_str(), batch, "throughput", mops, "mops"));
        }
    }
    for kind in QueueKind::ALL {
        for &batch in BATCHES {
            let kfps = relay(kind, batch, relay_total);
            println!("relay          {:>11} batch {batch:>3}: {kfps:8.0} kfps", kind.name());
            rows.push(Row::new("relay", kind.as_str(), batch, "throughput", kfps, "kfps"));
        }
    }
    let mut uniform = std::collections::HashMap::new();
    let mut skew = std::collections::HashMap::new();
    for kind in QueueKind::ALL {
        for &batch in BATCHES {
            let u = dispatch_goodput(kind, batch, cycles, false);
            let s = dispatch_goodput(kind, batch, cycles, true);
            println!(
                "dispatch       {:>11} batch {batch:>3}: uniform {u:8.1} kfps   skew {s:8.1} kfps",
                kind.name()
            );
            uniform.insert((kind, batch), u);
            skew.insert((kind, batch), s);
            rows.push(Row::new("dispatch_uniform", kind.as_str(), batch, "goodput", u, "kfps"));
            rows.push(Row::new("dispatch_skew", kind.as_str(), batch, "goodput", s, "kfps"));
        }
    }
    for kind in QueueKind::ALL {
        let pct = overload_goodput_pct(kind, overload_steps);
        println!("overload       {:>11} batch  32: {pct:8.1} % goodput", kind.name());
        rows.push(Row::new("overload", kind.as_str(), 32, "goodput_pct", pct, "pct"));
    }

    // Derived acceptance rows: the fabric against the Lamport baseline.
    for &batch in BATCHES {
        let speedup = skew[&(QueueKind::VLink, batch)] / skew[&(QueueKind::Lamport, batch)];
        let delta = 100.0
            * (uniform[&(QueueKind::VLink, batch)] / uniform[&(QueueKind::Lamport, batch)] - 1.0);
        println!(
            "targets        vlink vs lamport batch {batch:>3}: skew speedup {speedup:5.2}x, \
             uniform delta {delta:+5.2} %"
        );
        rows.push(Row::new("dispatch_skew", "vlink", batch, "speedup_vs_lamport", speedup, "x"));
        rows.push(Row::new(
            "dispatch_uniform",
            "vlink",
            batch,
            "delta_vs_lamport_pct",
            delta,
            "pct",
        ));
    }

    // Fixed warm length in both profiles: the promotion latency depends on
    // the advert phase at the kill instant, so smoke and full must kill at
    // the same simulated time to produce identical (gateable) rows.
    for kind in QueueKind::ALL {
        let (ms, lag) = ha_failover(kind, 200);
        println!(
            "ha_failover    {:>11}: promoted in {ms:6.1} ms (sim), max delta lag {lag:.0}",
            kind.name()
        );
        rows.push(Row::new("ha_failover", kind.as_str(), 1, "failover_time", ms, "ms"));
        rows.push(Row::new("ha_failover", kind.as_str(), 1, "delta_lag", lag, "deltas"));
    }

    for kind in QueueKind::ALL {
        let (ms, ok) = shard_takeover(kind);
        println!(
            "shard_takeover {:>11}: re-homed in {ms:6.1} ms (sim), conservation {}",
            kind.name(),
            if ok { "ok" } else { "VIOLATED" },
        );
        rows.push(Row::new("shard_takeover", kind.as_str(), 1, "failover_time", ms, "ms"));
        rows.push(Row::new(
            "shard_takeover",
            kind.as_str(),
            1,
            "conservation_ok",
            if ok { 1.0 } else { 0.0 },
            "bool",
        ));
    }

    scenario_rows(smoke, &mut rows);
    repl_scaling_rows(&mut rows);

    // Real threads measure this machine's wall clock: full profile only,
    // never gated.
    if !smoke {
        for kind in QueueKind::ALL {
            let (pinned, replicated, ok) = repl_scaling_threads(kind, 20_000);
            println!(
                "repl_threads   {:>11}: pinned {pinned:6.1} kfps, replicated {replicated:6.1} kfps \
                 ({:.2}x), conservation {}",
                kind.name(),
                replicated / pinned,
                if ok { "ok" } else { "VIOLATED" },
            );
            let q = kind.as_str();
            rows.push(Row::new("repl_scaling_threads", q, 1, "throughput", pinned, "kfps"));
            rows.push(Row::new("repl_scaling_threads", q, 4, "throughput", replicated, "kfps"));
            rows.push(Row::new(
                "repl_scaling_threads",
                q,
                4,
                "speedup_vs_pinned",
                replicated / pinned,
                "x",
            ));
            rows.push(Row::new(
                "repl_scaling_threads",
                q,
                4,
                "conservation_ok",
                if ok { 1.0 } else { 0.0 },
                "bool",
            ));
        }
    }

    // The report validates against its own schema before it is written:
    // a NaN, a negative throughput, or a typo'd metric/unit never reaches
    // disk (CI re-checks the written file independently).
    let errs = validate_rows(&rows);
    if !errs.is_empty() {
        eprintln!("bench-report: generated rows violate the schema:");
        for e in &errs {
            eprintln!("  {e}");
        }
        std::process::exit(1);
    }

    std::fs::write(&out_path, rows_to_json(&rows)).expect("write report");
    println!("wrote {} rows to {out_path}", rows.len());
}
