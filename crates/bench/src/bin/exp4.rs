//! Experiment 4 (Figs. 4.19–4.22): scalability with the number of TCP
//! flows.
//!
//! FTP/TCP at full blast (no dummy load), sweeping the number of flow
//! pairs. Paper: aggregate forward rate stays just below the 1000 Mbps
//! ideal and LVRM (frame-based) matches native; max-min fairness > 0.8;
//! Jain > 0.99; the Fig. 4.22 timeline hovers around ~700 Mbps for 100
//! pairs.

use lvrm_bench::{full_scale, mbps, Table};
use lvrm_core::config::{AllocatorKind, BalancerKind};
use lvrm_metrics::{jain_index, max_min_fairness};
use lvrm_testbed::scenario::{Scenario, TcpFlowSpec};
use lvrm_testbed::tcp::TcpConfig;
use lvrm_testbed::{ForwardingMech, VrSpec, VrType};

fn scenario(mech: ForwardingMech, flow_based: bool, pairs: usize, duration: u64) -> Scenario {
    let mut sc = Scenario::new(mech);
    sc.vrs = vec![VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 0 })];
    sc.lvrm.allocator = AllocatorKind::Fixed { cores: 6 };
    sc.lvrm.balancer = BalancerKind::Jsq;
    sc.lvrm.flow_based = flow_based;
    sc.duration_ns = duration;
    sc.warmup_ns = duration / 4;
    for i in 0..pairs {
        // Stagger logins across the first half second: the paper's clients
        // "login at the same moment" only at human timescales, and lockstep
        // slow-starts would synchronize losses unrealistically.
        let start_ns = (i as u64 % 100) * 5_000_000;
        sc.tcp_flows.push(TcpFlowSpec { vr: 0, cfg: TcpConfig::default(), start_ns });
        sc.tcp_flows.push(TcpFlowSpec {
            vr: 0,
            cfg: TcpConfig { mss: 256, pacing_ns: Some(20_000_000), ..TcpConfig::default() },
            start_ns,
        });
    }
    sc
}

fn main() {
    let duration: u64 = if full_scale() { 60_000_000_000 } else { 10_000_000_000 };
    let sweeps: &[usize] = if full_scale() { &[10, 25, 50, 75, 100] } else { &[10, 30, 60, 100] };
    let mut table = Table::new(
        "exp4",
        "Figs 4.19-4.21",
        "Aggregate forward rate and fairness vs number of FTP pairs",
        &["mechanism", "pairs", "aggregate Mbps", "max-min", "jain"],
        "aggregate slightly below the 1000 Mbps ideal at every flow count, \
         LVRM frame-based ~ native; max-min > 0.8; Jain > 0.99",
    );
    let mechs = [
        ("native-linux", ForwardingMech::Native, false),
        ("lvrm-frame-jsq", ForwardingMech::Lvrm, false),
        ("lvrm-flow-jsq", ForwardingMech::Lvrm, true),
    ];
    for (label, mech, flow_based) in mechs {
        for &pairs in sweeps {
            eprintln!("[exp4] {label} pairs={pairs} ...");
            let r = scenario(mech, flow_based, pairs, duration).run();
            let rates: Vec<f64> = r
                .tcp_goodput_mbps()
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == 0)
                .map(|(_, v)| *v)
                .collect();
            table.row(vec![
                label.to_string(),
                pairs.to_string(),
                mbps(r.tcp_aggregate_mbps()),
                format!("{:.3}", max_min_fairness(&rates)),
                format!("{:.3}", jain_index(&rates)),
            ]);
        }
    }
    table.finish();

    // Fig 4.22: aggregate rate over time at 100 pairs.
    eprintln!("[exp4] timeline at 100 pairs ...");
    let mut sc = scenario(ForwardingMech::Lvrm, false, 100, duration.max(6_000_000_000));
    sc.sample_period_ns = 500_000_000;
    let r = sc.run();
    let mut timeline = Table::new(
        "exp4_timeline",
        "Fig 4.22",
        "Aggregate forward rate vs elapsed time, 100 FTP pairs (LVRM frame-jsq)",
        &["t (s)", "Mbps"],
        "mostly around ~700 Mbps with small dips; LVRM tracks native",
    );
    for s in &r.samples {
        timeline.row(vec![format!("{:.1}", s.t_ns as f64 / 1e9), mbps(s.delivered_mbps)]);
    }
    timeline.finish();
}
