//! Experiment 2c (Figs. 4.10 & 4.11): dynamic core allocation for one VR.
//!
//! Offered load climbs 60→360 Kfps and back down in 60 Kfps steps; the
//! dynamic fixed-threshold allocator should track it with one core per
//! 60 Kfps (Fig. 4.10). Fig. 4.11's reaction latencies — allocations within
//! ~900 µs, deallocations within ~700 µs — are reported twice here: the
//! modeled values inside the simulation, and REAL spawn/kill latencies
//! measured by growing and shrinking thread-backed VRIs on this machine.

use lvrm_bench::{full_scale, us, Table};
use lvrm_core::clock::{Clock, MonotonicClock};
use lvrm_core::config::AllocatorKind;
use lvrm_core::topology::{AffinityMode, CoreId, CoreMap, CoreTopology};
use lvrm_core::{AllocDecision, Lvrm, LvrmConfig};
use lvrm_testbed::scenario::Scenario;
use lvrm_testbed::traffic::RateSchedule;
use lvrm_testbed::{ForwardingMech, VrSpec, VrType};

fn staircase_run() {
    let dwell: u64 = if full_scale() { 5_000_000_000 } else { 2_000_000_000 };
    let schedule = RateSchedule::staircase(60_000.0, 360_000.0, dwell);
    let mut sc = Scenario::new(ForwardingMech::Lvrm);
    sc.duration_ns = schedule.last_change_ns() + dwell;
    sc.warmup_ns = 100_000_000;
    sc.sample_period_ns = dwell / 4;
    sc.vrs = vec![VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 16_667 })];
    sc.lvrm.allocator = AllocatorKind::DynamicFixed { per_core_rate: 60_000.0 };
    for host in [1u8, 2u8] {
        let half: Vec<(u64, f64)> = (0..)
            .map_while(|k| {
                let t = k * dwell;
                (t <= schedule.last_change_ns()).then(|| (t, schedule.rate_at(t) / 2.0))
            })
            .collect();
        sc.sources.push(lvrm_testbed::scenario::SourceSpec {
            vr: 0,
            host,
            kind: lvrm_testbed::traffic::SourceKind::UdpCbr { wire_size: 84, flows: 8 },
            schedule: RateSchedule::piecewise(half),
        });
    }
    let r = sc.run();

    let mut series = Table::new(
        "exp2c_alloc",
        "Fig 4.10",
        "Cores allocated vs offered staircase load (one VR)",
        &["t (s)", "offered Kfps", "cores"],
        "cores track ceil(rate / 60 Kfps): 1..6..1 staircase, small reaction time",
    );
    for s in &r.samples {
        series.row(vec![
            format!("{:.1}", s.t_ns as f64 / 1e9),
            format!("{:.0}", s.offered_fps_per_vr[0] / 1e3),
            s.vris_per_vr[0].to_string(),
        ]);
    }
    series.finish();

    let mut modeled = Table::new(
        "exp2c_reaction_sim",
        "Fig 4.11 (modeled)",
        "Reallocation events in the simulated run (latency from the cost model)",
        &["t (s)", "decision", "vris after"],
        "allocations within ~900 us, deallocations within ~700 us (modeled \
         constants; see exp2c_reaction_real for measured values)",
    );
    for e in &r.realloc {
        modeled.row(vec![
            format!("{:.2}", e.ts_ns as f64 / 1e9),
            format!("{:?}", e.decision),
            e.vris_after.to_string(),
        ]);
    }
    modeled.finish();
}

/// Measure REAL spawn/kill latency with thread-backed VRIs.
fn real_reaction_latency() {
    let clock = MonotonicClock::new();
    let n = lvrm_runtime::affinity::available_cores().max(2) as u16;
    let cores = CoreMap::new(CoreTopology::single_package(n), CoreId(0), AffinityMode::Same);
    let config =
        LvrmConfig { allocator: AllocatorKind::Fixed { cores: 1 }, ..LvrmConfig::default() };
    let mut lvrm = Lvrm::new(config, cores, clock.clone());
    let mut host = lvrm_runtime::ThreadHost::new(clock.clone());
    let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
    let vr = lvrm.add_vr(
        "vr0",
        &[(std::net::Ipv4Addr::new(10, 0, 1, 0), 24)],
        Box::new(lvrm_router::FastVr::new("cpp", routes)),
        &mut host,
    );
    // Drive grows and shrinks through the production reallocation path by
    // swapping the target via explicit passes.
    let rounds = if full_scale() { 50 } else { 10 };
    let mut grow = lvrm_metrics::Summary::new();
    let mut shrink = lvrm_metrics::Summary::new();
    let mut t = clock.now_ns();
    for _ in 0..rounds {
        // Force a grow pass, then a shrink pass (allocator target flips by
        // feeding synthetic arrival counts through direct reallocation).
        t += 2_000_000_000;
        let before = lvrm.realloc_log.len();
        lvrm.force_resize_for_bench(vr, 2, t, &mut host);
        t += 2_000_000_000;
        lvrm.force_resize_for_bench(vr, 1, t, &mut host);
        for e in &lvrm.realloc_log[before..] {
            match e.decision {
                AllocDecision::Grow => grow.add(e.latency_ns as f64),
                AllocDecision::Shrink => shrink.add(e.latency_ns as f64),
                AllocDecision::Hold => {}
            }
        }
    }
    host.shutdown();
    let mut table = Table::new(
        "exp2c_reaction_real",
        "Fig 4.11 (measured)",
        "REAL VRI spawn/kill reaction latency (thread-backed, this machine)",
        &["event", "count", "mean us", "min us", "max us"],
        "paper (process-backed, 8 cores): allocations <= ~900 us, \
         deallocations <= ~700 us, allocations the more expensive",
    );
    table.row(vec![
        "allocate".into(),
        grow.count().to_string(),
        us(grow.mean()),
        us(grow.min()),
        us(grow.max()),
    ]);
    table.row(vec![
        "deallocate".into(),
        shrink.count().to_string(),
        us(shrink.mean()),
        us(shrink.min()),
        us(shrink.max()),
    ]);
    table.finish();
}

fn main() {
    eprintln!("[exp2c] staircase simulation ...");
    staircase_run();
    eprintln!("[exp2c] real spawn/kill latency ...");
    real_reaction_latency();
}
