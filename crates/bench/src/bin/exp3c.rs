//! Experiment 3c (Figs. 4.16–4.18): frame-based vs flow-based load
//! balancing under FTP/TCP traffic.
//!
//! Pairs of FTP flows (a bulk data connection plus a small paced control
//! connection, §4.1) through a single VR with up to six VRIs. Reported per
//! variant: aggregate throughput (Fig. 4.16), normalized max-min fairness
//! (Fig. 4.17, all > 0.6) and Jain's index (Fig. 4.18, all > 0.9). Paper's
//! ordering: native and frame-based JSQ highest; flow-based slightly below
//! frame-based (connection tracking costs; coarser granularity also dents
//! max-min fairness).

use lvrm_bench::{full_scale, mbps, Table};
use lvrm_core::config::{AllocatorKind, BalancerKind};
use lvrm_metrics::{jain_index, max_min_fairness};
use lvrm_testbed::scenario::{Scenario, TcpFlowSpec};
use lvrm_testbed::tcp::TcpConfig;
use lvrm_testbed::{ForwardingMech, VrSpec, VrType};

/// One FTP pair: the bulk data connection + a paced control connection.
/// Pairs stagger their logins over the first half second (lockstep
/// slow-starts would synchronize losses unrealistically).
fn push_ftp_pair(sc: &mut Scenario, vr: usize, pair_idx: usize) {
    let start_ns = (pair_idx as u64 % 100) * 5_000_000;
    sc.tcp_flows.push(TcpFlowSpec { vr, cfg: TcpConfig::default(), start_ns });
    sc.tcp_flows.push(TcpFlowSpec {
        vr,
        cfg: TcpConfig {
            mss: 256,
            pacing_ns: Some(20_000_000), // ~100 Kbps of control chatter
            ..TcpConfig::default()
        },
        start_ns,
    });
}

fn run_variant(
    mech: ForwardingMech,
    balancer: BalancerKind,
    flow_based: bool,
    pairs: usize,
    duration_ns: u64,
) -> (f64, f64, f64) {
    let mut sc = Scenario::new(mech);
    sc.vrs = vec![VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 0 })];
    sc.lvrm.allocator = AllocatorKind::Fixed { cores: 6 };
    sc.lvrm.balancer = balancer;
    sc.lvrm.flow_based = flow_based;
    sc.duration_ns = duration_ns;
    sc.warmup_ns = duration_ns / 4;
    for i in 0..pairs {
        push_ftp_pair(&mut sc, 0, i);
    }
    let r = sc.run();
    // Fairness over the bulk (data) connections, as the paper plots flows.
    let rates: Vec<f64> = r
        .tcp_goodput_mbps()
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .map(|(_, v)| *v)
        .collect();
    (r.tcp_aggregate_mbps(), max_min_fairness(&rates), jain_index(&rates))
}

fn main() {
    let pairs = if full_scale() { 100 } else { 30 };
    let duration: u64 = if full_scale() { 60_000_000_000 } else { 10_000_000_000 };
    let mut table = Table::new(
        "exp3c",
        "Figs 4.16-4.18",
        &format!("{pairs} FTP pairs through 6 VRIs: throughput and fairness by balancing variant"),
        &["variant", "aggregate Mbps", "max-min", "jain"],
        "native & frame-jsq highest aggregate; flow-based slightly below \
         frame-based; max-min all > 0.6 (flow-based lowest); Jain all > 0.9",
    );
    let variants: Vec<(String, ForwardingMech, BalancerKind, bool)> = {
        let mut v =
            vec![("native-linux".to_string(), ForwardingMech::Native, BalancerKind::Jsq, false)];
        for balancer in lvrm_core::config::BalancerKind::ALL {
            for flow_based in [false, true] {
                let mode = if flow_based { "flow" } else { "frame" };
                v.push((
                    format!("lvrm-{mode}-{}", balancer.name()),
                    ForwardingMech::Lvrm,
                    balancer,
                    flow_based,
                ));
            }
        }
        v
    };
    for (label, mech, balancer, flow_based) in variants {
        eprintln!("[exp3c] {label} ...");
        let (agg, mm, jain) = run_variant(mech, balancer, flow_based, pairs, duration);
        table.row(vec![label, mbps(agg), format!("{mm:.3}"), format!("{jain:.3}")]);
    }
    table.finish();
}
