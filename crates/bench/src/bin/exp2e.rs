//! Experiment 2e (Fig. 4.13): dynamic core allocation with dynamic
//! thresholds.
//!
//! Two VRs whose *service rates* differ 1:2 (VR0's per-frame work is twice
//! VR1's), both offered the same load from t=0. Fixed thresholds would give
//! them the same cores; the dynamic-threshold allocator measures each VR's
//! departure rate (reported by the LVRM adapters, §3.6) and allocates
//! "proportionally to the service times with a small error".

use lvrm_bench::{full_scale, Table};
use lvrm_core::config::AllocatorKind;
use lvrm_testbed::scenario::{Scenario, SourceSpec};
use lvrm_testbed::traffic::{RateSchedule, SourceKind};
use lvrm_testbed::{ForwardingMech, VrSpec, VrType};

fn main() {
    let dur: u64 = if full_scale() { 20_000_000_000 } else { 8_000_000_000 };
    let mut sc = Scenario::new(ForwardingMech::Lvrm);
    sc.duration_ns = dur;
    sc.warmup_ns = 100_000_000;
    sc.sample_period_ns = 1_000_000_000;
    // VR0 needs 1/30ms per frame (30 Kfps/core); VR1 1/60ms (60 Kfps/core):
    // service-rate ratio 1:2.
    sc.vrs = vec![
        VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 33_333 }),
        VrSpec::numbered(1, VrType::Cpp { dummy_load_ns: 16_667 }),
    ];
    sc.lvrm.allocator = AllocatorKind::DynamicServiceRate { bootstrap_rate: 60_000.0 };
    for vr in 0..2 {
        sc.sources.push(SourceSpec {
            vr,
            host: 1,
            kind: SourceKind::UdpCbr { wire_size: 84, flows: 8 },
            schedule: RateSchedule::constant(90_000.0),
        });
    }

    eprintln!("[exp2e] running ...");
    let r = sc.run();
    let mut table = Table::new(
        "exp2e",
        "Fig 4.13",
        "Dynamic thresholds: equal load (90 Kfps each), service rates 1:2",
        &["t (s)", "vr0 cores (slow VR)", "vr1 cores (fast VR)"],
        "the slow VR earns ~2x the cores of the fast one (3 vs 2 here: \
         90K/30K=3, 90K/60K=2 at steady state), proportional to service times",
    );
    for s in &r.samples {
        table.row(vec![
            format!("{:.1}", s.t_ns as f64 / 1e9),
            s.vris_per_vr[0].to_string(),
            s.vris_per_vr[1].to_string(),
        ]);
    }
    table.finish();
    if let Some(last) = r.samples.last() {
        println!(
            "steady state: slow VR {} cores, fast VR {} cores (delivery ratio {:.3})",
            last.vris_per_vr[0],
            last.vris_per_vr[1],
            r.delivery_ratio()
        );
    }
}
