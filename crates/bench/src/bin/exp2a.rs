//! Experiment 2a (Fig. 4.8): throughput analysis on core affinity.
//!
//! One VR, one VRI, four placement policies: sibling core, non-sibling
//! core, kernel default (unpinned), and the same core as LVRM. Paper:
//! sibling best for the C++ VR; sibling ≈ non-sibling for Click (its own
//! processing dominates); default below non-sibling (migrations); same-core
//! clearly worst.

use lvrm_bench::scenarios::probe_times;
use lvrm_bench::{kfps, Table};
use lvrm_core::topology::AffinityMode;
use lvrm_core::SocketKind;
use lvrm_testbed::scenario::{search_achievable, Scenario};
use lvrm_testbed::{ForwardingMech, VrSpec, VrType};

fn achievable_with_affinity(vr_type: VrType, affinity: AffinityMode) -> f64 {
    let (dur, warm, iters) = probe_times();
    let hi = lvrm_net::wire::line_rate_fps(84, lvrm_net::wire::GIGABIT);
    search_achievable(
        |rate| {
            let mut sc = Scenario::new(ForwardingMech::Lvrm);
            sc.socket = SocketKind::PfRing;
            sc.vrs = vec![VrSpec::numbered(0, vr_type)];
            sc.lvrm.affinity = affinity;
            // Single VRI throughout: fix the allocation at one core.
            sc.lvrm.allocator = lvrm_core::config::AllocatorKind::Fixed { cores: 1 };
            sc.duration_ns = dur;
            sc.warmup_ns = warm;
            sc.with_udp_load(0, 84, rate, 8)
        },
        hi / 100.0,
        hi,
        iters,
    )
}

fn main() {
    let mut table = Table::new(
        "exp2a",
        "Fig 4.8",
        "Achievable throughput (84B) by core-affinity policy, single VRI",
        &["vr", "sibling", "non-sibling", "default", "same", "(Kfps)"],
        "sibling highest for C++; sibling ~ non-sibling for Click (VR-bound); \
         default below non-sibling (migration); same-core poorest",
    );
    for vr_type in [VrType::Cpp { dummy_load_ns: 0 }, VrType::Click { dummy_load_ns: 0 }] {
        eprintln!("[exp2a] {} ...", vr_type.name());
        let mut row = vec![vr_type.name().to_string()];
        for mode in AffinityMode::ALL {
            row.push(kfps(achievable_with_affinity(vr_type, mode)));
        }
        row.push(String::new());
        table.row(row);
    }
    table.finish();
}
