//! `bench-diff`: the CI perf-trajectory gate.
//!
//! Compares a freshly generated report against the last committed
//! `BENCH_*.json` and exits non-zero if any gated row regressed beyond
//! tolerance:
//!
//! ```text
//! bench-diff <old.json> <new.json> [--tolerance 0.10]
//! ```
//!
//! Only deterministic, scale-invariant rows participate (simulated
//! dispatch/overload/scenario goodput, ratios, the conservation flag);
//! wall-clock rows measure the host machine and are reported but never
//! gated. See `lvrm_bench::trajectory` for the exact gate predicate.

use lvrm_bench::trajectory::{diff, is_gated, parse_rows, validate_rows};

fn load(path: &str) -> Vec<lvrm_bench::trajectory::Row> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench-diff: cannot read {path}: {e}"));
    let rows = parse_rows(&text).unwrap_or_else(|e| panic!("bench-diff: cannot parse {path}: {e}"));
    let errs = validate_rows(&rows);
    if !errs.is_empty() {
        eprintln!("bench-diff: {path} violates the report schema:");
        for e in &errs {
            eprintln!("  {e}");
        }
        std::process::exit(2);
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.10f64;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance" {
            tolerance = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("bench-diff: --tolerance needs a number"));
        } else {
            paths.push(a.clone());
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("usage: bench-diff <old.json> <new.json> [--tolerance 0.10]");
        std::process::exit(2);
    };

    let old = load(old_path);
    let new = load(new_path);
    let gated = old.iter().filter(|r| is_gated(r)).count();
    println!(
        "bench-diff: {old_path} ({} rows) vs {new_path} ({} rows); \
         {gated} gated rows, tolerance {:.0}%",
        old.len(),
        new.len(),
        tolerance * 100.0
    );

    let regressions = diff(&old, &new, tolerance);
    if regressions.is_empty() {
        println!("bench-diff: OK — no gated row regressed");
        return;
    }
    eprintln!("bench-diff: {} regression(s):", regressions.len());
    for r in &regressions {
        let (bench, queue, batch, metric) = &r.key;
        if r.new.is_nan() {
            eprintln!(
                "  {bench}/{queue}/b{batch}/{metric}: row missing from new report (old {:.4})",
                r.old
            );
        } else {
            eprintln!(
                "  {bench}/{queue}/b{batch}/{metric}: {:.4} -> {:.4} ({:+.1}%)",
                r.old,
                r.new,
                100.0 * (r.new / r.old - 1.0)
            );
        }
    }
    std::process::exit(1);
}
