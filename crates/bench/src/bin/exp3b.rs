//! Experiment 3b (Fig. 4.15): load balancing among VRs.
//!
//! Two VRs, 180 Kfps each. The paper's fairness proxy: measure each VR's
//! achievable throughput T1, T2 and report T = 2·min(T1, T2) against the
//! 360 Kfps ideal — close means both VRs got fair shares of processing.

use lvrm_bench::scenarios::probe_times;
use lvrm_bench::{kfps, Table};
use lvrm_core::config::{AllocatorKind, BalancerKind};
use lvrm_testbed::scenario::{Scenario, SourceSpec};
use lvrm_testbed::traffic::{RateSchedule, SourceKind};
use lvrm_testbed::{ForwardingMech, VrSpec, VrType};

fn main() {
    let (dur, _, _) = probe_times();
    let mut table = Table::new(
        "exp3b",
        "Fig 4.15",
        "Two VRs at 180 Kfps each: T = 2*min(T1,T2) vs ideal 360 Kfps",
        &["vr", "balancer", "T1 Kfps", "T2 Kfps", "T=2*min Kfps"],
        "C++ VR: T very close to the 360 Kfps ideal for every scheme, JSQ \
         slightly ahead; Click lower due to its processing load",
    );
    for vr_type in [VrType::Cpp { dummy_load_ns: 16_667 }, VrType::Click { dummy_load_ns: 16_667 }]
    {
        for balancer in BalancerKind::ALL {
            eprintln!("[exp3b] {} {} ...", vr_type.name(), balancer.name());
            let mut sc = Scenario::new(ForwardingMech::Lvrm);
            sc.vrs = vec![VrSpec::numbered(0, vr_type), VrSpec::numbered(1, vr_type)];
            sc.lvrm.allocator = AllocatorKind::DynamicFixed { per_core_rate: 60_000.0 };
            sc.lvrm.balancer = balancer;
            sc.duration_ns = dur * 6 + 4_000_000_000;
            sc.warmup_ns = 4_000_000_000; // allow dynamic allocation to settle
            for vr in 0..2 {
                sc.sources.push(SourceSpec {
                    vr,
                    host: 1,
                    kind: SourceKind::UdpCbr { wire_size: 84, flows: 16 },
                    schedule: RateSchedule::constant(180_000.0),
                });
            }
            let r = sc.run();
            let w = r.window_ns() as f64;
            let t1 = r.per_vr_received[0] as f64 * 1e9 / w;
            let t2 = r.per_vr_received[1] as f64 * 1e9 / w;
            let t = 2.0 * t1.min(t2);
            table.row(vec![
                vr_type.name().to_string(),
                balancer.name().to_string(),
                kfps(t1),
                kfps(t2),
                kfps(t),
            ]);
        }
    }
    table.finish();
}
