//! Experiment 1a, CPU part (Fig. 4.3): per-core CPU usage in data
//! forwarding, bucketed like `top` into user (us), system (sy) and software
//! interrupts (si).
//!
//! The paper runs `top -b` while forwarding minimum-size frames and shows:
//! native spends the least CPU (softirq only, idle between frames); LVRM
//! variants burn more because of the non-blocking busy polls; the raw-socket
//! variant shows more kernel (sy) time than PF_RING; user-space time is
//! always the minority.

use lvrm_bench::scenarios::{exp1_scenario, frame_sizes, probe_times};
use lvrm_bench::Table;
use lvrm_core::SocketKind;
use lvrm_testbed::{ForwardingMech, VrType};

fn main() {
    let (dur, warm, _) = probe_times();
    let _ = warm;
    let sizes = frame_sizes();
    let mut table = Table::new(
        "exp1a_cpu",
        "Fig 4.3",
        "Per-core CPU usage (%) at 200 Kfps offered, by bucket",
        &["mechanism", "frame B", "us %", "sy %", "si %", "busy-poll %"],
        "native lowest (si only); LVRM higher overall because the non-blocking \
         polls spin; raw socket shows more sy than PF_RING; user time is the \
         minority everywhere",
    );

    let conditions = [
        ("native-linux", ForwardingMech::Native, SocketKind::PfRing),
        ("lvrm-cpp-raw", ForwardingMech::Lvrm, SocketKind::RawSocket),
        ("lvrm-cpp-pfring", ForwardingMech::Lvrm, SocketKind::PfRing),
    ];
    for (label, mech, socket) in conditions {
        eprintln!("[exp1a_cpu] {label} ...");
        for &size in &sizes {
            let sc = exp1_scenario(mech, socket, VrType::Cpp { dummy_load_ns: 0 }, size, 200_000.0);
            let r = sc.run();
            // Aggregate busy time across cores, normalized by the run length
            // on the busiest core (the paper reports per-core percentages;
            // we report the whole-gateway totals scaled to one core).
            let (us, sy, si) = r
                .cpu_busy
                .iter()
                .fold((0u64, 0u64, 0u64), |a, c| (a.0 + c.0, a.1 + c.1, a.2 + c.2));
            let f = 100.0 / dur as f64;
            // The LVRM process busy-polls between frames: whatever the cost
            // model did not charge on LVRM's core is spin time, attributed
            // to the socket's polling mechanism (sy for raw-socket syscall
            // polls, si for PF_RING ring checks).
            let busy_poll = match mech {
                ForwardingMech::Lvrm => {
                    let (u0, s0, i0) = r.cpu_busy[0];
                    100.0f64 - (u0 + s0 + i0) as f64 * f
                }
                _ => 0.0,
            }
            .max(0.0);
            table.row(vec![
                label.to_string(),
                size.to_string(),
                format!("{:.1}", us as f64 * f),
                format!("{:.1}", sy as f64 * f),
                format!("{:.1}", si as f64 * f),
                format!("{busy_poll:.1}"),
            ]);
        }
    }
    table.finish();
}
