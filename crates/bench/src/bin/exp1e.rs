//! Experiment 1e (Fig. 4.7): latency of message passing between VRIs.
//!
//! Two REAL VRI threads of one C++ VR exchange control events through the
//! control queues (relayed by LVRM), with and without data load. Paper:
//! 5–7 µs one-way with no load, 10–12 µs under full load (the receiving VRI
//! is usually mid-frame when the event lands).

use lvrm_bench::{full_scale, us, Table};
use lvrm_runtime::measure_control_latency;

fn main() {
    let payloads = [64usize, 128, 256, 512, 1024];
    let duration_ms = if full_scale() { 3_000 } else { 400 };
    let mut table = Table::new(
        "exp1e",
        "Fig 4.7",
        "Control-event passing latency between two VRIs (REAL threads)",
        &["payload B", "load", "events", "mean us", "p50 us", "p99 us", "drops"],
        "paper (8 cores): 5-7 us one-way with no load; 10-12 us at full load; \
         weak dependence on event size. Scheduler timeslices inflate this on \
         core-starved hosts",
    );
    println!("running on {} core(s); paper used 8", lvrm_runtime::affinity::available_cores());
    for &payload in &payloads {
        for full_load in [false, true] {
            let label = if full_load { "full" } else { "none" };
            eprintln!("[exp1e] payload={payload} load={label} ...");
            let r = measure_control_latency(payload, duration_ms, full_load);
            table.row(vec![
                payload.to_string(),
                label.to_string(),
                r.latency.count().to_string(),
                us(r.latency.mean_ns()),
                us(r.latency.percentile_ns(0.5) as f64),
                us(r.latency.percentile_ns(0.99) as f64),
                r.control_drops.to_string(),
            ]);
        }
    }
    table.finish();
}
