//! Experiment 3a (Fig. 4.14): load balancing among the VRIs of one VR.
//!
//! 360 Kfps offered, 1/60 ms dummy load, six VRIs; compare JSQ, round-robin
//! and random. Paper: all three come close to the 360 Kfps ideal; JSQ
//! slightly best because it reacts to each VRI's current load; Click below
//! C++ overall.

use lvrm_bench::scenarios::probe_times;
use lvrm_bench::{kfps, Table};
use lvrm_core::config::{AllocatorKind, BalancerKind};
use lvrm_metrics::jain_index;
use lvrm_testbed::scenario::Scenario;
use lvrm_testbed::{ForwardingMech, VrSpec, VrType};

fn main() {
    let (dur, _, _) = probe_times();
    let mut table = Table::new(
        "exp3a",
        "Fig 4.14",
        "Balancing 360 Kfps across 6 VRIs of one VR (ideal = 360 Kfps)",
        &["vr", "balancer", "delivered Kfps", "per-VRI Jain"],
        "all schemes near the ideal; JSQ slightly ahead of RR and random; \
         Click below C++ due to its internal processing",
    );
    for vr_type in [VrType::Cpp { dummy_load_ns: 16_667 }, VrType::Click { dummy_load_ns: 16_667 }]
    {
        for balancer in BalancerKind::ALL {
            eprintln!("[exp3a] {} {} ...", vr_type.name(), balancer.name());
            let mut sc = Scenario::new(ForwardingMech::Lvrm);
            sc.vrs = vec![VrSpec::numbered(0, vr_type)];
            sc.lvrm.allocator = AllocatorKind::Fixed { cores: 6 };
            sc.lvrm.balancer = balancer;
            sc.duration_ns = dur * 6 + 200_000_000;
            sc.warmup_ns = 200_000_000;
            let sc = sc.with_udp_load(0, 84, 360_000.0, 16);
            let r = sc.run();
            let dispatch: Vec<f64> = r.per_vri_dispatches[0].iter().map(|d| *d as f64).collect();
            table.row(vec![
                vr_type.name().to_string(),
                balancer.name().to_string(),
                kfps(r.delivered_fps()),
                format!("{:.3}", jain_index(&dispatch)),
            ]);
        }
    }
    table.finish();
}
