//! Experiment 1a (Fig. 4.2): achievable throughput in data forwarding.
//!
//! Achievable throughput (2 % loss criterion) versus frame size for native
//! Linux IP forwarding, four LVRM variants, and two hypervisors.

use lvrm_bench::scenarios::{achievable, exp1_mechs, frame_sizes};
use lvrm_bench::{kfps, Table};

fn main() {
    let sizes = frame_sizes();
    let mut cols: Vec<String> = vec!["mechanism".into()];
    cols.extend(sizes.iter().map(|s| format!("{s}B (Kfps)")));
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "exp1a",
        "Fig 4.2",
        "Achievable throughput vs frame size",
        &col_refs,
        "native highest (~448 Kfps @84B); LVRM/PF_RING+C++ tracks native closely; \
         raw socket ~50% slower at small frames; Click below C++; \
         VMware well below native; QEMU-KVM worst by far; all converge toward \
         line rate (81 Kfps) at 1538B except the hypervisors",
    );

    for (label, mech, socket, vr_type) in exp1_mechs() {
        eprintln!("[exp1a] {label} ...");
        let mut row = vec![label.to_string()];
        for &size in &sizes {
            let fps = achievable(mech, socket, vr_type, size);
            row.push(kfps(fps));
        }
        table.row(row);
    }
    table.finish();
}
