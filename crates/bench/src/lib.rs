//! Shared harness for the experiment binaries.
//!
//! Every figure of the paper's Chapter 4 has a binary in `src/bin/` that
//! regenerates it: it runs the relevant scenarios, prints the same
//! rows/series the paper plots, and writes a JSON copy under
//! `target/experiments/` for EXPERIMENTS.md. `all_experiments` runs the lot.
//!
//! Scale: binaries default to a **quick** profile sized for a laptop-class
//! machine (shorter flows, fewer trials than the paper's 60 s × 10). Set
//! `LVRM_EXP_FULL=1` for paper-scale runs.

use std::fs;
use std::path::PathBuf;

/// Whether to run paper-scale experiments (default: quick profile).
pub fn full_scale() -> bool {
    std::env::var("LVRM_EXP_FULL").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Where JSON results are written.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()))
        .join("experiments");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// A printable, serializable result table.
pub struct Table {
    pub experiment: String,
    pub figure: String,
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// What the paper reports for this figure, for the EXPERIMENTS.md diff.
    pub paper_expectation: String,
}

impl Table {
    pub fn new(
        experiment: &str,
        figure: &str,
        title: &str,
        columns: &[&str],
        paper_expectation: &str,
    ) -> Table {
        Table {
            experiment: experiment.to_string(),
            figure: figure.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            paper_expectation: paper_expectation.to_string(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity");
        self.rows.push(cells);
    }

    /// Print as an aligned text table.
    pub fn print(&self) {
        println!("\n=== {} ({}) — {}", self.experiment, self.figure, self.title);
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.columns));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
        println!("paper: {}", self.paper_expectation);
    }

    /// Serialize as pretty-printed JSON (hand-rolled: the workspace builds
    /// without serde, see shims/README.md).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn arr(items: &[String]) -> String {
            format!("[{}]", items.iter().map(|s| esc(s)).collect::<Vec<_>>().join(", "))
        }
        let rows =
            self.rows.iter().map(|r| format!("    {}", arr(r))).collect::<Vec<_>>().join(",\n");
        format!(
            "{{\n  \"experiment\": {},\n  \"figure\": {},\n  \"title\": {},\n  \
             \"columns\": {},\n  \"rows\": [\n{}\n  ],\n  \"paper_expectation\": {}\n}}\n",
            esc(&self.experiment),
            esc(&self.figure),
            esc(&self.title),
            arr(&self.columns),
            rows,
            esc(&self.paper_expectation),
        )
    }

    /// Write JSON next to the other experiment outputs.
    pub fn save(&self) {
        let path = out_dir().join(format!("{}.json", self.experiment));
        if let Err(e) = fs::write(&path, self.to_json()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }

    /// Print and save.
    pub fn finish(&self) {
        self.print();
        self.save();
    }
}

/// Format helpers used across the binaries.
pub fn kfps(fps: f64) -> String {
    format!("{:.0}", fps / 1e3)
}

pub fn mbps(v: f64) -> String {
    format!("{v:.1}")
}

pub fn us(ns: f64) -> String {
    format!("{:.1}", ns / 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("exp0", "Fig 0.0", "smoke", &["a", "b"], "n/a");
        t.row(vec!["1".into(), "2".into()]);
        t.print();
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("exp0", "Fig 0.0", "smoke", &["a", "b"], "n/a");
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(kfps(448_000.0), "448");
        assert_eq!(mbps(701.23), "701.2");
        assert_eq!(us(12_345.0), "12.3");
    }
}

pub mod trajectory;

/// Scenario-building helpers shared by the experiment binaries.
pub mod scenarios {
    use lvrm_core::SocketKind;
    use lvrm_testbed::scenario::{search_achievable, Scenario};
    use lvrm_testbed::{ForwardingMech, HypervisorKind, VrSpec, VrType};

    /// `(probe_duration_ns, warmup_ns, search_iterations)` for achievable-
    /// throughput searches, scaled by the quick/full profile.
    pub fn probe_times() -> (u64, u64, u32) {
        if super::full_scale() {
            (1_000_000_000, 250_000_000, 7)
        } else {
            (150_000_000, 50_000_000, 5)
        }
    }

    /// The six forwarding mechanisms of Experiment 1a, in paper order:
    /// `(label, mech, socket, vr_type)`.
    pub fn exp1_mechs() -> Vec<(&'static str, ForwardingMech, SocketKind, VrType)> {
        let cpp = VrType::Cpp { dummy_load_ns: 0 };
        let click = VrType::Click { dummy_load_ns: 0 };
        vec![
            ("native-linux", ForwardingMech::Native, SocketKind::PfRing, cpp),
            ("lvrm-cpp-raw", ForwardingMech::Lvrm, SocketKind::RawSocket, cpp),
            ("lvrm-cpp-pfring", ForwardingMech::Lvrm, SocketKind::PfRing, cpp),
            ("lvrm-click-pfring", ForwardingMech::Lvrm, SocketKind::PfRing, click),
            (
                "vmware-server",
                ForwardingMech::Hypervisor(HypervisorKind::VmwareServer),
                SocketKind::PfRing,
                cpp,
            ),
            (
                "qemu-kvm",
                ForwardingMech::Hypervisor(HypervisorKind::QemuKvm),
                SocketKind::PfRing,
                cpp,
            ),
        ]
    }

    /// A scenario for one Experiment-1 condition at an offered `rate_fps`.
    pub fn exp1_scenario(
        mech: ForwardingMech,
        socket: SocketKind,
        vr_type: VrType,
        wire_size: usize,
        rate_fps: f64,
    ) -> Scenario {
        let (dur, warm, _) = probe_times();
        let mut sc = Scenario::new(mech);
        sc.socket = socket;
        sc.vrs = vec![VrSpec::numbered(0, vr_type)];
        sc.duration_ns = dur;
        sc.warmup_ns = warm;
        sc.with_udp_load(0, wire_size, rate_fps, 8)
    }

    /// Achievable throughput (fps) for one condition, via the paper's 2 %
    /// loss criterion.
    pub fn achievable(
        mech: ForwardingMech,
        socket: SocketKind,
        vr_type: VrType,
        wire_size: usize,
    ) -> f64 {
        let (_, _, iters) = probe_times();
        let hi = lvrm_net::wire::line_rate_fps(wire_size, lvrm_net::wire::GIGABIT);
        search_achievable(
            |r| exp1_scenario(mech, socket, vr_type, wire_size, r),
            hi / 100.0,
            hi,
            iters,
        )
    }

    /// The frame-size sweep the figures use (quick profile trims it).
    pub fn frame_sizes() -> Vec<usize> {
        if super::full_scale() {
            lvrm_net::wire::FRAME_SIZE_SWEEP.to_vec()
        } else {
            vec![84, 256, 512, 1024, 1538]
        }
    }
}
