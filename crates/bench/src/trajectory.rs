//! The perf-trajectory schema: `BENCH_N.json` rows, their validation, and
//! the regression gate that diffs a fresh report against the last
//! committed one.
//!
//! Every `bench-report` run emits a flat JSON array of
//! `{bench, queue_kind, batch, metric, value, unit}` rows. This module is
//! the single source of truth for what those rows may contain: the metric
//! and unit vocabularies are closed sets, values must be finite, and only
//! the explicitly signed metrics may go negative. `bench-diff` then
//! compares the *deterministic, scale-invariant* subset of rows across two
//! reports and fails on any regression beyond tolerance — wall-clock rows
//! (`queue_ops`, `relay`) are excluded because they measure the machine,
//! not the code.

use std::fmt::Write as _;

/// One report row. Owned strings so parsed and generated reports share a
/// type.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    pub bench: String,
    pub queue_kind: String,
    pub batch: usize,
    pub metric: String,
    pub value: f64,
    pub unit: String,
}

impl Row {
    pub fn new(
        bench: &str,
        queue_kind: &str,
        batch: usize,
        metric: &str,
        value: f64,
        unit: &str,
    ) -> Row {
        Row {
            bench: bench.to_string(),
            queue_kind: queue_kind.to_string(),
            batch,
            metric: metric.to_string(),
            value,
            unit: unit.to_string(),
        }
    }

    /// The identity a row is matched by across reports.
    pub fn key(&self) -> (String, String, usize, String) {
        (self.bench.clone(), self.queue_kind.clone(), self.batch, self.metric.clone())
    }
}

/// The closed metric vocabulary. A typo'd metric is a schema break, not a
/// new data point.
pub const KNOWN_METRICS: &[&str] = &[
    "throughput",
    "goodput",
    "goodput_pct",
    "speedup_vs_lamport",
    "speedup_vs_pinned",
    "delta_vs_lamport_pct",
    "tracked_flows",
    "tracked_pct",
    "conservation_ok",
    "failover_time",
    "delta_lag",
];

/// The closed unit vocabulary.
pub const KNOWN_UNITS: &[&str] = &["mops", "kfps", "pct", "x", "flows", "bool", "ms", "deltas"];

/// Metrics allowed to be negative (deltas against a baseline).
pub const SIGNED_METRICS: &[&str] = &["delta_vs_lamport_pct"];

/// Metrics where smaller is the improvement: latency-shaped rows. The gate
/// inverts its comparison for these — a regression is the value *rising*
/// past tolerance.
pub const LOWER_IS_BETTER: &[&str] = &["failover_time", "delta_lag"];

/// Validate a full report: finite values, non-negative unless signed,
/// metric/unit strings from the closed vocabularies, no duplicate keys.
/// Returns every violation (empty = valid).
pub fn validate_rows(rows: &[Row]) -> Vec<String> {
    let mut errs = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (i, r) in rows.iter().enumerate() {
        let ctx = format!("row {i} ({}/{}/b{}/{})", r.bench, r.queue_kind, r.batch, r.metric);
        if !r.value.is_finite() {
            errs.push(format!("{ctx}: non-finite value {}", r.value));
        }
        if r.value < 0.0 && !SIGNED_METRICS.contains(&r.metric.as_str()) {
            errs.push(format!("{ctx}: negative value {} for unsigned metric", r.value));
        }
        if !KNOWN_METRICS.contains(&r.metric.as_str()) {
            errs.push(format!("{ctx}: unknown metric {:?}", r.metric));
        }
        if !KNOWN_UNITS.contains(&r.unit.as_str()) {
            errs.push(format!("{ctx}: unknown unit {:?}", r.unit));
        }
        if !seen.insert(r.key()) {
            errs.push(format!("{ctx}: duplicate row key"));
        }
    }
    errs
}

/// Serialize rows in the canonical flat-JSON report format.
pub fn rows_to_json(rows: &[Row]) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {{\"bench\": \"{}\", \"queue_kind\": \"{}\", \"batch\": {}, \
             \"metric\": \"{}\", \"value\": {:.4}, \"unit\": \"{}\"}}{}",
            esc(&r.bench),
            esc(&r.queue_kind),
            r.batch,
            esc(&r.metric),
            r.value,
            esc(&r.unit),
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    out.push_str("]\n");
    out
}

/// Parse a flat report: a JSON array of objects whose values are strings or
/// numbers. Hand-rolled for exactly this shape (the repo takes no JSON
/// dependency); nested structures are a parse error.
pub fn parse_rows(json: &str) -> Result<Vec<Row>, String> {
    let mut p = Parser { b: json.as_bytes(), i: 0 };
    p.ws();
    p.expect(b'[')?;
    let mut rows = Vec::new();
    p.ws();
    if p.peek() == Some(b']') {
        return Ok(rows);
    }
    loop {
        p.ws();
        rows.push(p.object()?);
        p.ws();
        match p.next() {
            Some(b',') => continue,
            Some(b']') => break,
            other => return Err(format!("expected ',' or ']' at byte {}, got {other:?}", p.i)),
        }
    }
    Ok(rows)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        Some(c)
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        match self.next() {
            Some(got) if got == c => Ok(()),
            got => Err(format!("expected {:?} at byte {}, got {got:?}", c as char, self.i)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.next() {
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.next() {
                    Some(c @ (b'"' | b'\\' | b'/')) => s.push(c as char),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    other => {
                        return Err(format!("unsupported escape {other:?} at byte {}", self.i))
                    }
                },
                Some(c) => s.push(c as char),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    /// One `{...}` of string/number fields, mapped onto a [`Row`].
    fn object(&mut self) -> Result<Row, String> {
        self.expect(b'{')?;
        let (mut bench, mut queue_kind, mut metric, mut unit) = (None, None, None, None);
        let (mut batch, mut value) = (None, None);
        loop {
            self.ws();
            if self.peek() == Some(b'}') {
                self.i += 1;
                break;
            }
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            match (key.as_str(), self.peek()) {
                ("bench", _) => bench = Some(self.string()?),
                ("queue_kind", _) => queue_kind = Some(self.string()?),
                ("metric", _) => metric = Some(self.string()?),
                ("unit", _) => unit = Some(self.string()?),
                ("batch", _) => batch = Some(self.number()?),
                ("value", _) => value = Some(self.number()?),
                (k, _) => return Err(format!("unknown field {k:?}")),
            }
            self.ws();
            match self.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => {
                    return Err(format!("expected ',' or '}}' at byte {}, got {other:?}", self.i))
                }
            }
        }
        Ok(Row {
            bench: bench.ok_or("row missing 'bench'")?,
            queue_kind: queue_kind.ok_or("row missing 'queue_kind'")?,
            batch: batch.ok_or("row missing 'batch'")? as usize,
            metric: metric.ok_or("row missing 'metric'")?,
            value: value.ok_or("row missing 'value'")?,
            unit: unit.ok_or("row missing 'unit'")?,
        })
    }
}

/// Whether a row participates in the cross-report regression gate. Only
/// deterministic, scale-invariant rows qualify:
///
/// * simulated dispatch/overload/scenario/failover benches (never
///   `queue_ops` or `relay`, which measure the host machine's wall clock);
/// * ratio/percentage/speedup metrics plus the conservation flag (never
///   `tracked_flows`, whose absolute value scales with the smoke-vs-full
///   profile).
///
/// Gated metrics are higher-is-better except those in
/// [`LOWER_IS_BETTER`] (simulated failover time and replication lag, which
/// run on the manual clock and are therefore deterministic).
pub fn is_gated(row: &Row) -> bool {
    let bench_ok = row.bench.starts_with("scenario_")
        || matches!(
            row.bench.as_str(),
            "dispatch_uniform"
                | "dispatch_skew"
                | "overload"
                | "ha_failover"
                | "repl_scaling"
                | "shard_takeover"
        );
    let metric_ok = matches!(
        row.metric.as_str(),
        "goodput"
            | "goodput_pct"
            | "speedup_vs_lamport"
            | "speedup_vs_pinned"
            | "tracked_pct"
            | "conservation_ok"
            | "failover_time"
            | "delta_lag"
    );
    bench_ok && metric_ok
}

/// One gate violation.
#[derive(Clone, Debug)]
pub struct Regression {
    pub key: (String, String, usize, String),
    pub old: f64,
    pub new: f64,
}

/// Diff two reports over the gated rows: a regression is a gated key
/// present in both whose new value fell below `old * (1 - tolerance)` —
/// or, for [`LOWER_IS_BETTER`] metrics, rose above `old * (1 + tolerance)`.
/// `conservation_ok` is exempt from tolerance — any drop below 1 fails.
/// Gated keys that disappeared from `new` are regressions too (a silently
/// dropped bench must not pass the gate).
pub fn diff(old: &[Row], new: &[Row], tolerance: f64) -> Vec<Regression> {
    let new_by_key: std::collections::HashMap<_, f64> =
        new.iter().map(|r| (r.key(), r.value)).collect();
    let mut out = Vec::new();
    for o in old.iter().filter(|r| is_gated(r)) {
        let key = o.key();
        match new_by_key.get(&key) {
            None => out.push(Regression { key, old: o.value, new: f64::NAN }),
            Some(&n) => {
                let regressed = if LOWER_IS_BETTER.contains(&o.metric.as_str()) {
                    n > o.value * (1.0 + tolerance)
                } else if o.metric == "conservation_ok" {
                    n < o.value
                } else {
                    n < o.value * (1.0 - tolerance)
                };
                if regressed {
                    out.push(Regression { key, old: o.value, new: n });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(bench: &str, metric: &str, value: f64, unit: &str) -> Row {
        Row::new(bench, "vlink", 32, metric, value, unit)
    }

    #[test]
    fn validate_accepts_a_clean_report() {
        let rows = vec![
            row("dispatch_skew", "goodput", 103.2, "kfps"),
            row("scenario_syn_flood", "goodput_pct", 99.1, "pct"),
            Row::new("dispatch_uniform", "vlink", 32, "delta_vs_lamport_pct", -2.4, "pct"),
        ];
        assert!(validate_rows(&rows).is_empty());
    }

    #[test]
    fn validate_rejects_nan_negative_and_unknown_strings() {
        let bad = vec![
            row("dispatch_skew", "goodput", f64::NAN, "kfps"),
            row("dispatch_skew", "goodput_pct", -1.0, "pct"),
            row("dispatch_skew", "framez_per_fortnight", 1.0, "kfps"),
            row("overload", "goodput", 1.0, "furlongs"),
        ];
        let errs = validate_rows(&bad);
        assert_eq!(errs.len(), 4, "{errs:?}");
        assert!(errs[0].contains("non-finite"));
        assert!(errs[1].contains("negative"));
        assert!(errs[2].contains("unknown metric"));
        assert!(errs[3].contains("unknown unit"));
    }

    #[test]
    fn validate_rejects_duplicate_keys() {
        let rows = vec![row("overload", "goodput_pct", 50.0, "pct"); 2];
        let errs = validate_rows(&rows);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("duplicate"));
    }

    #[test]
    fn json_round_trips() {
        let rows = vec![
            row("dispatch_skew", "goodput", 103.25, "kfps"),
            Row::new("scenario_million_flows", "lamport", 1, "tracked_pct", 100.0, "pct"),
        ];
        let parsed = parse_rows(&rows_to_json(&rows)).unwrap();
        assert_eq!(parsed.len(), rows.len());
        for (p, r) in parsed.iter().zip(&rows) {
            assert_eq!(p.key(), r.key());
            assert!((p.value - r.value).abs() < 1e-4);
            assert_eq!(p.unit, r.unit);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_rows("not json").is_err());
        assert!(parse_rows("[{\"bench\": \"x\"}]").is_err(), "missing fields");
        assert!(parse_rows("[{\"bench\": [1,2]}]").is_err(), "nested value");
    }

    #[test]
    fn gate_skips_wall_clock_rows() {
        assert!(is_gated(&row("dispatch_skew", "goodput", 1.0, "kfps")));
        assert!(is_gated(&row("scenario_flash_crowd", "goodput_pct", 1.0, "pct")));
        assert!(!is_gated(&row("queue_ops", "throughput", 1.0, "mops")));
        assert!(!is_gated(&row("relay", "throughput", 1.0, "kfps")));
        assert!(!is_gated(&row("scenario_million_flows", "tracked_flows", 1e6, "flows")));
    }

    #[test]
    fn diff_flags_regressions_beyond_tolerance_only() {
        let old = vec![
            row("dispatch_skew", "goodput", 100.0, "kfps"),
            row("overload", "goodput_pct", 50.0, "pct"),
            row("relay", "throughput", 1000.0, "kfps"), // wall clock: ignored
        ];
        let ok = vec![
            row("dispatch_skew", "goodput", 91.0, "kfps"), // -9%: inside tolerance
            row("overload", "goodput_pct", 55.0, "pct"),
            row("relay", "throughput", 1.0, "kfps"),
        ];
        assert!(diff(&old, &ok, 0.10).is_empty());

        let bad = vec![
            row("dispatch_skew", "goodput", 89.0, "kfps"), // -11%: regression
            row("overload", "goodput_pct", 55.0, "pct"),
        ];
        let regs = diff(&old, &bad, 0.10);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key.0, "dispatch_skew");
    }

    #[test]
    fn gate_includes_replication_scaling_rows() {
        assert!(is_gated(&row("repl_scaling", "speedup_vs_pinned", 1.9, "x")));
        assert!(is_gated(&row("repl_scaling", "conservation_ok", 1.0, "bool")));
        assert!(!is_gated(&row("repl_scaling", "throughput", 1.0, "kfps")));
        assert!(validate_rows(&[row("repl_scaling", "speedup_vs_pinned", 1.9, "x")]).is_empty());
    }

    #[test]
    fn gate_includes_failover_rows() {
        assert!(is_gated(&row("ha_failover", "failover_time", 320.0, "ms")));
        assert!(is_gated(&row("ha_failover", "delta_lag", 1.0, "deltas")));
        assert!(!is_gated(&row("ha_failover", "throughput", 1.0, "kfps")));
    }

    #[test]
    fn gate_includes_shard_takeover_rows() {
        assert!(is_gated(&row("shard_takeover", "failover_time", 700.0, "ms")));
        assert!(is_gated(&row("shard_takeover", "conservation_ok", 1.0, "bool")));
        assert!(!is_gated(&row("shard_takeover", "throughput", 1.0, "kfps")));
        // The real-thread replication rows measure the host machine's wall
        // clock and must stay outside the gate.
        assert!(!is_gated(&row("repl_scaling_threads", "speedup_vs_pinned", 1.0, "x")));
        assert!(validate_rows(&[row("shard_takeover", "failover_time", 700.0, "ms")]).is_empty());
    }

    #[test]
    fn diff_inverts_for_lower_is_better_metrics() {
        let old = vec![
            row("ha_failover", "failover_time", 300.0, "ms"),
            row("ha_failover", "delta_lag", 2.0, "deltas"),
        ];
        // Dropping is an improvement, never a regression...
        let faster = vec![
            row("ha_failover", "failover_time", 150.0, "ms"),
            row("ha_failover", "delta_lag", 1.0, "deltas"),
        ];
        assert!(diff(&old, &faster, 0.10).is_empty());
        // ...a rise inside tolerance passes...
        let wobble = vec![
            row("ha_failover", "failover_time", 320.0, "ms"),
            row("ha_failover", "delta_lag", 2.0, "deltas"),
        ];
        assert!(diff(&old, &wobble, 0.10).is_empty());
        // ...and a rise past tolerance fails.
        let slower = vec![
            row("ha_failover", "failover_time", 400.0, "ms"),
            row("ha_failover", "delta_lag", 2.0, "deltas"),
        ];
        let regs = diff(&old, &slower, 0.10);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key.3, "failover_time");
    }

    #[test]
    fn diff_fails_conservation_and_missing_rows_strictly() {
        let old = vec![
            row("scenario_syn_flood", "conservation_ok", 1.0, "bool"),
            row("scenario_flash_crowd", "goodput_pct", 99.0, "pct"),
        ];
        // conservation_ok gets no tolerance...
        let broken = vec![
            row("scenario_syn_flood", "conservation_ok", 0.99, "bool"),
            row("scenario_flash_crowd", "goodput_pct", 99.0, "pct"),
        ];
        assert_eq!(diff(&old, &broken, 0.10).len(), 1);
        // ...and a vanished gated bench is itself a regression.
        let missing = vec![row("scenario_syn_flood", "conservation_ok", 1.0, "bool")];
        let regs = diff(&old, &missing, 0.10);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].new.is_nan());
    }
}
