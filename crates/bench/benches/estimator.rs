//! Ablation: update cost of the load estimators (paper §3.4) — these run on
//! LVRM's hot dispatch path once per frame.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lvrm_core::estimate::{EwmaInterArrival, EwmaQueueLength, LoadEstimator};
use lvrm_metrics::RateEstimator;

fn estimators(c: &mut Criterion) {
    let mut g = c.benchmark_group("estimator/update");
    g.throughput(Throughput::Elements(1));
    let mut t = 0u64;
    let mut ql = EwmaQueueLength::new(7.0);
    g.bench_with_input(BenchmarkId::from_parameter("ewma-queue-length"), &(), |b, _| {
        b.iter(|| {
            t += 1_000;
            ql.on_dispatch(std::hint::black_box(5), t);
            std::hint::black_box(ql.estimate())
        });
    });
    let mut ia = EwmaInterArrival::new(7.0);
    g.bench_with_input(BenchmarkId::from_parameter("ewma-inter-arrival"), &(), |b, _| {
        b.iter(|| {
            t += 1_000;
            ia.on_dispatch(std::hint::black_box(5), t);
            std::hint::black_box(ia.estimate())
        });
    });
    let mut rate = RateEstimator::new(100_000_000, 1.0);
    g.bench_with_input(BenchmarkId::from_parameter("arrival-rate"), &(), |b, _| {
        b.iter(|| {
            t += 1_000;
            rate.record(t);
            std::hint::black_box(rate.rate_per_sec())
        });
    });
    g.finish();
}

criterion_group!(benches, estimators);
criterion_main!(benches);
