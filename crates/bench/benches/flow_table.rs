//! Ablation: hash-table connection tracking vs a linear scan — the paper
//! replaced "the dynamic arrays" with hash tables "for the performance
//! issues in the connection tracking functions, which are called for each
//! incoming data frames" (§3.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lvrm_core::flowtable::FlowTable;
use lvrm_core::VriId;
use lvrm_net::flow::{FlowKey, Protocol};
use std::net::Ipv4Addr;

fn keys(n: u16) -> Vec<FlowKey> {
    (0..n)
        .map(|i| FlowKey {
            src: Ipv4Addr::new(10, 0, 1, (i % 250) as u8 + 1),
            dst: Ipv4Addr::new(10, 0, 2, 1),
            src_port: 10_000 + i,
            dst_port: 80,
            proto: Protocol::Tcp,
        })
        .collect()
}

/// The "dynamic array" the paper moved away from.
struct LinearTable(Vec<(FlowKey, VriId)>);

impl LinearTable {
    fn find(&self, k: &FlowKey) -> Option<VriId> {
        self.0.iter().find(|(key, _)| key == k).map(|(_, v)| *v)
    }
}

fn lookup(c: &mut Criterion) {
    for n in [64u16, 512, 2048] {
        let ks = keys(n);
        let mut g = c.benchmark_group(format!("flow_table/lookup_{n}_flows"));
        g.throughput(Throughput::Elements(1));

        let mut hash = FlowTable::new(n as usize * 2, u64::MAX);
        for (i, k) in ks.iter().enumerate() {
            hash.insert(*k, VriId(i as u32 % 6), 0);
        }
        let mut i = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter("hash"), &(), |b, _| {
            b.iter(|| {
                let k = &ks[i % ks.len()];
                i += 1;
                std::hint::black_box(hash.find_and_touch(k, 1))
            });
        });

        let linear =
            LinearTable(ks.iter().enumerate().map(|(i, k)| (*k, VriId(i as u32 % 6))).collect());
        let mut j = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter("linear"), &(), |b, _| {
            b.iter(|| {
                let k = &ks[j % ks.len()];
                j += 1;
                std::hint::black_box(linear.find(k))
            });
        });
        g.finish();
    }
}

criterion_group!(benches, lookup);
criterion_main!(benches);
