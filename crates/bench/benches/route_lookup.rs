//! Ablation: LPM trie vs linear route list for the VR route tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lvrm_router::{Route, RouteTable};
use std::net::Ipv4Addr;

fn routes(n: u32) -> Vec<Route> {
    (0..n)
        .map(|i| Route {
            prefix: Ipv4Addr::new(10, (i >> 8) as u8, (i & 0xff) as u8, 0),
            len: 24,
            iface: (i % 4) as u16,
            next_hop: None,
        })
        .collect()
}

fn linear_lookup(routes: &[Route], dst: Ipv4Addr) -> Option<u16> {
    let d = u32::from(dst);
    routes
        .iter()
        .filter(|r| {
            let mask = if r.len == 0 { 0 } else { u32::MAX << (32 - r.len) };
            u32::from(r.prefix) & mask == d & mask
        })
        .max_by_key(|r| r.len)
        .map(|r| r.iface)
}

fn lookup(c: &mut Criterion) {
    for n in [8u32, 64, 512] {
        let rs = routes(n);
        let mut g = c.benchmark_group(format!("route_lookup/{n}_routes"));
        g.throughput(Throughput::Elements(1));

        let mut trie = RouteTable::new();
        for r in &rs {
            trie.insert(*r);
        }
        let mut i = 0u32;
        g.bench_with_input(BenchmarkId::from_parameter("trie"), &(), |b, _| {
            b.iter(|| {
                let dst = Ipv4Addr::new(10, ((i >> 8) % 4) as u8, (i & 0xff) as u8, 9);
                i = i.wrapping_add(1);
                std::hint::black_box(trie.lookup(dst).map(|r| r.iface))
            });
        });
        let mut j = 0u32;
        g.bench_with_input(BenchmarkId::from_parameter("linear"), &(), |b, _| {
            b.iter(|| {
                let dst = Ipv4Addr::new(10, ((j >> 8) % 4) as u8, (j & 0xff) as u8, 9);
                j = j.wrapping_add(1);
                std::hint::black_box(linear_lookup(&rs, dst))
            });
        });
        g.finish();
    }
}

criterion_group!(benches, lookup);
criterion_main!(benches);
