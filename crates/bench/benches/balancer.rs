//! Ablation: per-frame decision cost of each load-balancing policy
//! (paper §3.3), frame-based and flow-based.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lvrm_core::balance::{BalanceCtx, FlowBased, Jsq, LoadBalancer, RandomBalancer, RoundRobin};
use lvrm_core::VriId;
use lvrm_net::FrameBuilder;
use std::net::Ipv4Addr;

fn frames() -> Vec<lvrm_net::Frame> {
    let mut b = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 5), Ipv4Addr::new(10, 0, 2, 9));
    (0..256u16).map(|i| b.udp(10_000 + i, 80, &[0u8; 26])).collect()
}

fn bench_policy(c: &mut Criterion) {
    let vris: Vec<VriId> = (0..6).map(VriId).collect();
    let loads = [3.0, 1.0, 4.0, 1.0, 5.0, 2.0];
    let valid = [true; 6];
    let frames = frames();
    let mut g = c.benchmark_group("balancer/pick");
    g.throughput(Throughput::Elements(1));

    let mut run = |name: &str, bal: &mut dyn LoadBalancer| {
        let mut i = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                let ctx =
                    BalanceCtx { vris: &vris, loads: &loads, valid: &valid, now_ns: i as u64 };
                let f = &frames[i % frames.len()];
                i += 1;
                std::hint::black_box(bal.pick(f, &ctx))
            });
        });
    };
    run("jsq", &mut Jsq);
    run("rr", &mut RoundRobin::default());
    run("random", &mut RandomBalancer::new(7));
    run("flow-jsq", &mut FlowBased::new(Jsq, 4096, u64::MAX));
    run("flow-rr", &mut FlowBased::new(RoundRobin::default(), 4096, u64::MAX));
    g.finish();
}

criterion_group!(benches, bench_policy);
criterion_main!(benches);
