//! Ablation: lock-free vs lock-based IPC queues (paper §3.5).
//!
//! The paper asserts lock-free synchronization "is more efficient than the
//! lock-based synchronization"; this bench quantifies it for the three
//! shipped implementations, same-thread (pure queue cost) and cross-thread
//! (cache-coherence cost included).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lvrm_ipc::{queue, Full, QueueKind};

fn same_thread(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipc_queue/same_thread");
    g.throughput(Throughput::Elements(1));
    for kind in QueueKind::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            let (mut tx, mut rx) = queue::<u64>(kind, 1024);
            b.iter(|| {
                tx.try_send(std::hint::black_box(42)).unwrap();
                std::hint::black_box(rx.try_recv().unwrap());
            });
        });
    }
    g.finish();
}

fn cross_thread(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipc_queue/cross_thread_100k");
    g.sample_size(10);
    g.throughput(Throughput::Elements(100_000));
    for kind in QueueKind::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                let (mut tx, mut rx) = queue::<u64>(kind, 1024);
                let producer = std::thread::spawn(move || {
                    for i in 0..100_000u64 {
                        let mut v = i;
                        loop {
                            match tx.try_send(v) {
                                Ok(()) => break,
                                Err(Full(back)) => {
                                    v = back;
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    }
                });
                let mut got = 0u64;
                while got < 100_000 {
                    if rx.try_recv().is_some() {
                        got += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
                producer.join().unwrap();
            });
        });
    }
    g.finish();
}

/// Same-thread batch-size sweep: send a burst, then drain it, in bursts of
/// 1/8/32/256 through `try_send_batch`/`try_recv_batch`. Per-element cost —
/// burst size 1 prices the batch-API overhead itself; larger bursts
/// amortize the atomic index publication to one per burst. Free of
/// scheduler noise, so it isolates exactly what batching buys.
fn batch_same_thread(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipc_queue/batch_same_thread");
    for kind in QueueKind::ALL {
        for batch in [1usize, 8, 32, 256] {
            g.throughput(Throughput::Elements(batch as u64));
            let id = format!("{}/b{batch}", kind.name());
            g.bench_with_input(
                BenchmarkId::from_parameter(id),
                &(kind, batch),
                |b, &(kind, batch)| {
                    let (mut tx, mut rx) = queue::<u64>(kind, 1024);
                    let mut pending: Vec<u64> = Vec::with_capacity(batch);
                    let mut out: Vec<u64> = Vec::with_capacity(batch);
                    b.iter(|| {
                        pending.clear();
                        pending.extend(0..batch as u64);
                        let sent = tx.try_send_batch(std::hint::black_box(&mut pending));
                        out.clear();
                        let got = rx.try_recv_batch(&mut out, batch);
                        assert_eq!((sent, got), (batch, batch));
                        std::hint::black_box(out.last().copied())
                    });
                },
            );
        }
    }
    g.finish();
}

/// Batch-size sweep for the bulk entry points: the same 100k cross-thread
/// transfer as `cross_thread`, but moved in bursts of 1/8/32/256 through
/// `try_send_batch`/`try_recv_batch`. Burst size 1 prices the batch-API
/// overhead itself; larger bursts amortize the index publication and the
/// cache-line handover to one per burst. (Meaningful only on multi-core
/// hosts; on one core the spin loops measure the scheduler.)
fn batch_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipc_queue/batch_cross_thread_100k");
    g.sample_size(10);
    g.throughput(Throughput::Elements(100_000));
    for kind in QueueKind::ALL {
        for batch in [1usize, 8, 32, 256] {
            let id = format!("{}/b{batch}", kind.name());
            g.bench_with_input(
                BenchmarkId::from_parameter(id),
                &(kind, batch),
                |b, &(kind, batch)| {
                    b.iter(|| {
                        let (mut tx, mut rx) = queue::<u64>(kind, 1024);
                        let producer = std::thread::spawn(move || {
                            let mut pending: Vec<u64> = Vec::with_capacity(batch);
                            let mut next = 0u64;
                            while next < 100_000 || !pending.is_empty() {
                                while pending.len() < batch && next < 100_000 {
                                    pending.push(next);
                                    next += 1;
                                }
                                if tx.try_send_batch(&mut pending) == 0 {
                                    std::hint::spin_loop();
                                }
                            }
                        });
                        let mut out: Vec<u64> = Vec::with_capacity(batch);
                        let mut got = 0usize;
                        while got < 100_000 {
                            out.clear();
                            let n = rx.try_recv_batch(&mut out, batch);
                            if n == 0 {
                                std::hint::spin_loop();
                            } else {
                                got += n;
                            }
                        }
                        producer.join().unwrap();
                    });
                },
            );
        }
    }
    g.finish();
}

/// Two-thread ping-pong: the microcosm of Experiment 1e's control-message
/// latency. One round trip = two queue traversals + two cache handovers.
fn ping_pong(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipc_queue/ping_pong_1k_roundtrips");
    g.sample_size(10);
    g.throughput(Throughput::Elements(1_000));
    for kind in QueueKind::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                let (mut ping_tx, mut ping_rx) = queue::<u64>(kind, 16);
                let (mut pong_tx, mut pong_rx) = queue::<u64>(kind, 16);
                let echo = std::thread::spawn(move || {
                    for _ in 0..1_000u32 {
                        loop {
                            if let Some(v) = ping_rx.try_recv() {
                                while pong_tx.try_send(v).is_err() {
                                    std::hint::spin_loop();
                                }
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                });
                for i in 0..1_000u64 {
                    while ping_tx.try_send(i).is_err() {
                        std::hint::spin_loop();
                    }
                    loop {
                        if let Some(v) = pong_rx.try_recv() {
                            assert_eq!(v, i);
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
                echo.join().unwrap();
            });
        });
    }
    g.finish();
}

criterion_group!(benches, same_thread, batch_same_thread, cross_thread, batch_sweep, ping_pong);
criterion_main!(benches);
