//! End-to-end micro-benchmark of the LVRM-only pipeline (the measured side
//! of Experiments 1c/1d): frames from RAM through the real monitor, one
//! in-process VRI, and back — per-frame cost of the whole relay path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lvrm_core::clock::ManualClock;
use lvrm_core::host::RecordingHost;
use lvrm_core::topology::{AffinityMode, CoreId, CoreMap, CoreTopology};
use lvrm_core::{Lvrm, LvrmConfig};
use lvrm_net::{Trace, TraceSpec};
use std::net::Ipv4Addr;

fn pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("lvrm_pipeline/relay");
    g.throughput(Throughput::Elements(1));
    for (name, wire) in [("84B", 84usize), ("1538B", 1538)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &wire, |b, &wire| {
            let clock = ManualClock::new();
            let cores = CoreMap::new(
                CoreTopology::dual_quad_xeon(),
                CoreId(0),
                AffinityMode::SiblingFirst,
            );
            let mut lvrm = Lvrm::new(LvrmConfig::default(), cores, clock.clone());
            let mut host = RecordingHost::default();
            let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
            let _ = lvrm.add_vr(
                "vr0",
                &[(Ipv4Addr::new(10, 0, 1, 0), 24)],
                Box::new(lvrm_router::FastVr::new("cpp", routes)),
                &mut host,
            );
            let mut trace = Trace::generate(&TraceSpec::new(wire, 64));
            let mut out = Vec::with_capacity(16);
            b.iter(|| {
                clock.advance_ns(1_000);
                lvrm.ingress(trace.next_frame(), &mut host);
                host.pump();
                out.clear();
                lvrm.poll_egress(&mut out);
                std::hint::black_box(out.len())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, pipeline);
criterion_main!(benches);
