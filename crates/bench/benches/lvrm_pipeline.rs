//! End-to-end micro-benchmark of the LVRM-only pipeline (the measured side
//! of Experiments 1c/1d): frames from RAM through the real monitor, one
//! in-process VRI, and back — per-frame cost of the whole relay path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lvrm_core::clock::ManualClock;
use lvrm_core::host::RecordingHost;
use lvrm_core::topology::{AffinityMode, CoreId, CoreMap, CoreTopology};
use lvrm_core::{Lvrm, LvrmConfig};
use lvrm_net::{Trace, TraceSpec};
use std::net::Ipv4Addr;

fn pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("lvrm_pipeline/relay");
    g.throughput(Throughput::Elements(1));
    for (name, wire) in [("84B", 84usize), ("1538B", 1538)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &wire, |b, &wire| {
            let clock = ManualClock::new();
            let cores =
                CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
            let mut lvrm = Lvrm::new(LvrmConfig::default(), cores, clock.clone());
            let mut host = RecordingHost::default();
            let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
            let _ = lvrm.add_vr(
                "vr0",
                &[(Ipv4Addr::new(10, 0, 1, 0), 24)],
                Box::new(lvrm_router::FastVr::new("cpp", routes)),
                &mut host,
            );
            let mut trace = Trace::generate(&TraceSpec::new(wire, 64));
            let mut out = Vec::with_capacity(16);
            b.iter(|| {
                clock.advance_ns(1_000);
                lvrm.ingress(trace.next_frame(), &mut host);
                host.pump();
                out.clear();
                lvrm.poll_egress(&mut out);
                std::hint::black_box(out.len())
            });
        });
    }
    g.finish();
}

/// The same relay measured through `ingress_batch` at burst sizes 1/8/32/256
/// (per-frame cost, so lines are directly comparable with `relay` above).
/// A burst shares one clock read, one load-view refresh, and one bulk
/// enqueue per VRI across all its frames.
fn pipeline_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("lvrm_pipeline/relay_batch");
    for (name, wire) in [("84B", 84usize), ("1538B", 1538)] {
        for batch in [1usize, 8, 32, 256] {
            g.throughput(Throughput::Elements(batch as u64));
            let id = format!("{name}/b{batch}");
            g.bench_with_input(
                BenchmarkId::from_parameter(id),
                &(wire, batch),
                |b, &(wire, batch)| {
                    let clock = ManualClock::new();
                    let cores = CoreMap::new(
                        CoreTopology::dual_quad_xeon(),
                        CoreId(0),
                        AffinityMode::SiblingFirst,
                    );
                    let config = LvrmConfig { batch_size: batch, ..LvrmConfig::default() };
                    let mut lvrm = Lvrm::new(config, cores, clock.clone());
                    let mut host = RecordingHost::default();
                    let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
                    let _ = lvrm.add_vr(
                        "vr0",
                        &[(Ipv4Addr::new(10, 0, 1, 0), 24)],
                        Box::new(lvrm_router::FastVr::new("cpp", routes)),
                        &mut host,
                    );
                    let mut trace = Trace::generate(&TraceSpec::new(wire, 64));
                    let mut burst = Vec::with_capacity(batch);
                    let mut out = Vec::with_capacity(batch);
                    b.iter(|| {
                        clock.advance_ns(1_000);
                        burst.clear();
                        for _ in 0..batch {
                            burst.push(trace.next_frame());
                        }
                        lvrm.ingress_batch(&mut burst, &mut host);
                        host.pump();
                        out.clear();
                        lvrm.poll_egress(&mut out);
                        std::hint::black_box(out.len())
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, pipeline, pipeline_batch);
criterion_main!(benches);
