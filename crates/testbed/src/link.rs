//! 1-Gbps links with serialization, propagation and a drop-tail buffer.
//!
//! A link is a FIFO server at `rate_bps`: each frame occupies the wire for
//! its serialization time (using the paper's wire-size accounting, which
//! includes preamble and IFG), then arrives `prop_ns` later. A bounded byte
//! buffer models the switch queue; frames that would overflow it are
//! dropped (drop-tail), which is what turns overload into loss for the
//! achievable-throughput criterion and TCP's congestion signal.

use std::collections::VecDeque;

use lvrm_net::{wire, Frame};

/// One unidirectional link.
pub struct Link {
    pub rate_bps: u64,
    pub prop_ns: u64,
    /// Switch buffer in bytes of queued wire data.
    pub buffer_bytes: usize,
    /// Wire is busy until this time.
    busy_until_ns: u64,
    /// Frames in flight or queued: `(arrival_time, frame)`, arrival order.
    in_flight: VecDeque<(u64, Frame)>,
    /// Bytes currently queued (not yet begun serialization are included).
    queued_wire_bytes: usize,
    /// Statistics.
    pub offered: u64,
    pub delivered: u64,
    pub dropped: u64,
}

impl Link {
    pub fn new(rate_bps: u64, prop_ns: u64, buffer_bytes: usize) -> Link {
        Link {
            rate_bps,
            prop_ns,
            buffer_bytes,
            busy_until_ns: 0,
            in_flight: VecDeque::new(),
            queued_wire_bytes: 0,
            offered: 0,
            delivered: 0,
            dropped: 0,
        }
    }

    /// A 1-Gbps testbed link with 5 µs propagation (host–switch–gateway)
    /// and a 1-MB switch buffer (store-and-forward GigE switches of the
    /// paper's era shipped 0.5–8 MB of shared packet memory).
    pub fn gigabit() -> Link {
        Link::new(wire::GIGABIT, 5_000, 1024 * 1024)
    }

    /// Offer a frame to the link at `now_ns`. On acceptance, returns the
    /// arrival time at the far end (schedule a `LinkDeliver` for it). On
    /// buffer overflow the frame is dropped and `None` returned.
    pub fn offer(&mut self, now_ns: u64, frame: Frame) -> Option<u64> {
        self.offered += 1;
        let wire_len = frame.wire_len();
        // Backlog = wire time already committed beyond `now`.
        let backlog_ns = self.busy_until_ns.saturating_sub(now_ns);
        let backlog_bytes =
            (backlog_ns as u128 * self.rate_bps as u128 / 8 / 1_000_000_000) as usize;
        if backlog_bytes + wire_len > self.buffer_bytes {
            self.dropped += 1;
            return None;
        }
        let start = now_ns.max(self.busy_until_ns);
        let done = start + wire::serialization_ns(wire_len, self.rate_bps);
        self.busy_until_ns = done;
        let arrival = done + self.prop_ns;
        self.queued_wire_bytes += wire_len;
        self.in_flight.push_back((arrival, frame));
        Some(arrival)
    }

    /// Take the frame that arrives at `now_ns` (the head; callers pop in
    /// `LinkDeliver` order, which matches FIFO service).
    pub fn deliver(&mut self) -> Option<(u64, Frame)> {
        let (t, f) = self.in_flight.pop_front()?;
        self.queued_wire_bytes -= f.wire_len();
        self.delivered += 1;
        Some((t, f))
    }

    /// Frames currently queued or in flight.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Loss fraction so far.
    pub fn loss_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvrm_net::FrameBuilder;
    use std::net::Ipv4Addr;

    fn frame(wire_size: usize) -> Frame {
        FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 2, 1))
            .udp_with_wire_size(1, 2, wire_size)
            .unwrap()
    }

    #[test]
    fn serialization_plus_propagation() {
        let mut l = Link::new(wire::GIGABIT, 5_000, 1 << 20);
        // 84-byte frame: 672 ns serialization + 5000 ns propagation.
        let arrival = l.offer(0, frame(84)).unwrap();
        assert_eq!(arrival, 5_672);
    }

    #[test]
    fn back_to_back_frames_queue_on_the_wire() {
        let mut l = Link::new(wire::GIGABIT, 0, 1 << 20);
        let a1 = l.offer(0, frame(84)).unwrap();
        let a2 = l.offer(0, frame(84)).unwrap();
        assert_eq!(a1, 672);
        assert_eq!(a2, 1_344);
    }

    #[test]
    fn line_rate_throughput_bound() {
        // Offer 2x line rate for a while; delivered rate caps at line rate.
        let mut l = Link::new(wire::GIGABIT, 0, 16 * 1024);
        let mut now = 0u64;
        let interval = 336; // 2x the 672 ns service time
        for _ in 0..10_000 {
            let _ = l.offer(now, frame(84));
            now += interval;
        }
        let loss = l.loss_ratio();
        assert!((0.45..0.55).contains(&loss), "expected ~50% loss, got {loss}");
    }

    #[test]
    fn buffer_overflow_drops() {
        // Tiny buffer: only ~2 frames of backlog allowed.
        let mut l = Link::new(wire::GIGABIT, 0, 200);
        assert!(l.offer(0, frame(84)).is_some());
        assert!(l.offer(0, frame(84)).is_some());
        assert!(l.offer(0, frame(84)).is_none(), "third frame exceeds the buffer");
        assert_eq!(l.dropped, 1);
    }

    #[test]
    fn deliver_returns_fifo_order() {
        let mut l = Link::new(wire::GIGABIT, 100, 1 << 20);
        let mut b = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 2, 1));
        let f1 = b.udp(1, 2, &[1]);
        let f2 = b.udp(3, 4, &[2]);
        l.offer(0, f1);
        l.offer(0, f2);
        let (t1, d1) = l.deliver().unwrap();
        let (t2, d2) = l.deliver().unwrap();
        assert!(t1 < t2);
        assert_eq!(d1.udp().unwrap().src_port(), 1);
        assert_eq!(d2.udp().unwrap().src_port(), 3);
        assert!(l.deliver().is_none());
    }

    #[test]
    fn buffer_drains_over_time() {
        let mut l = Link::new(wire::GIGABIT, 0, 200);
        l.offer(0, frame(84));
        l.offer(0, frame(84));
        assert!(l.offer(0, frame(84)).is_none());
        // After both serialize (1344 ns), there is room again.
        assert!(l.offer(2_000, frame(84)).is_some());
    }
}
