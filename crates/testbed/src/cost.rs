//! The per-frame CPU cost model.
//!
//! Absolute per-frame costs on the authors' Xeon E5530 gateway are not
//! published, but Chapter 4 pins down enough anchors to calibrate a simple
//! affine model `cost = fixed + per_byte × captured_len` per pipeline stage:
//!
//! * native Linux IP forwarding saturates at **448 Kfps** with 84-byte
//!   frames (§4.1) → ≈2.2 µs of kernel work per minimum frame;
//! * PF_RING-based LVRM with the C++ VR achieves "very similar throughput
//!   as … native Linux IP forwarding" (Fig. 4.2), while the raw-socket
//!   variant is ~50 % slower at 84 B → raw-socket I/O ≈1.5× PF_RING I/O;
//! * LVRM-only (frames from RAM) reaches **3.7 Mfps** at 84 B and 922 Kfps
//!   (11 Gbps) at 1538 B (Fig. 4.5) → the monitor+VR path alone costs
//!   ≈270 ns + ≈0.55 ns/B;
//! * hypervisors are "significantly worse", QEMU-KVM "significantly poor"
//!   (Fig. 4.2), and add 10× RTT (Fig. 4.4).
//!
//! All knobs are public so ablation benches can sweep them.

use lvrm_core::topology::{CoreId, CoreTopology};
use lvrm_core::SocketKind;

/// Affine per-frame cost: `fixed_ns + per_byte_ns × bytes`.
#[derive(Clone, Copy, Debug)]
pub struct StageCost {
    pub fixed_ns: u64,
    pub per_byte_ns: f64,
}

impl StageCost {
    pub const fn new(fixed_ns: u64, per_byte_ns: f64) -> StageCost {
        StageCost { fixed_ns, per_byte_ns }
    }

    /// Cost of one frame of `bytes` captured length.
    #[inline]
    pub fn of(&self, bytes: usize) -> u64 {
        self.fixed_ns + (self.per_byte_ns * bytes as f64) as u64
    }
}

/// The full cost model.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Kernel IP-forwarding path (native baseline), per frame, all-in.
    pub native: StageCost,
    /// VMware-Server-like guest forwarding, per frame, all-in.
    pub hv_vmware: StageCost,
    /// QEMU-KVM-like guest forwarding, per frame, all-in.
    pub hv_kvm: StageCost,

    /// LVRM receive via non-blocking raw-socket `recvfrom` (kernel copy +
    /// syscall).
    pub raw_rx: StageCost,
    /// LVRM send via raw-socket `send`.
    pub raw_tx: StageCost,
    /// LVRM receive via the PF_RING zero-copy ring.
    pub pfring_rx: StageCost,
    /// LVRM send via PF_RING (`pfring_send`, LVRM 1.1).
    pub pfring_tx: StageCost,
    /// Reading a frame from the in-memory trace (Experiments 1c/1d).
    pub mem_rx: StageCost,
    /// Discarding a frame to the null output.
    pub mem_tx: StageCost,

    /// LVRM's classify + balance + enqueue work per frame (user space).
    pub dispatch: StageCost,
    /// LVRM's egress dequeue + hand-to-socket work per frame (user space).
    pub egress: StageCost,
    /// Classify-then-drop work for a frame shed by overload admission
    /// control: the classification share of `dispatch` plus a counter
    /// bump, with no balance or enqueue. Length-independent — the payload
    /// is never touched.
    pub shed_ns: u64,

    /// Extra per-frame cost when a VRI's core is in LVRM's package
    /// (cache-line handover over the shared L3).
    pub sibling_penalty_ns: u64,
    /// Extra per-frame cost when the VRI is on the other package (QPI hop).
    pub non_sibling_penalty_ns: u64,
    /// "Default" (unpinned) placement: amortized migration/cache-refill
    /// cost added on top of the non-sibling penalty.
    pub default_migration_ns: u64,

    /// One-way wire/switch/host-stack latency between a host and the
    /// gateway, excluding serialization (per direction).
    pub path_latency_ns: u64,
    /// Time for the gateway to spawn a VRI (Fig. 4.11: allocations complete
    /// within ~900 µs, dominated by process creation).
    pub vri_spawn_ns: u64,
    /// Time to tear a VRI down (within ~700 µs; "deallocations are simpler
    /// than the allocations").
    pub vri_kill_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            // 448 Kfps at 84 B wire (60 B captured) => ~2.23 us/frame.
            native: StageCost::new(2_180, 0.35),
            // "Significantly worse" than native; below line rate even at
            // 1538 B.
            hv_vmware: StageCost::new(14_000, 4.5),
            // "Significantly poor performance".
            hv_kvm: StageCost::new(55_000, 9.0),

            // PF_RING rx ~1.1 us fixed; raw socket ~1.8 us plus an extra
            // kernel copy per byte. Calibrated so LVRM/PF_RING tracks
            // native and LVRM/raw trails it by ~50% at 84 B.
            raw_rx: StageCost::new(2_000, 0.55),
            raw_tx: StageCost::new(1_550, 0.45),
            pfring_rx: StageCost::new(1_250, 0.18),
            pfring_tx: StageCost::new(1_100, 0.18),
            // 3.7 Mfps @84 B and 922 Kfps @1538 B for the *whole* LVRM-only
            // path: rx+dispatch+VR+egress+tx ~= 270 ns + 0.55 ns/B.
            mem_rx: StageCost::new(25, 0.30),
            mem_tx: StageCost::new(10, 0.0),

            dispatch: StageCost::new(50, 0.12),
            egress: StageCost::new(30, 0.08),
            shed_ns: 35,

            sibling_penalty_ns: 60,
            non_sibling_penalty_ns: 190,
            default_migration_ns: 260,

            // Fig. 4.4: ~70-120 us RTT through two switches and two host
            // stacks => ~30 us one-way fixed path latency.
            path_latency_ns: 30_000,
            vri_spawn_ns: 820_000,
            vri_kill_ns: 610_000,
        }
    }
}

impl CostModel {
    /// Socket receive cost for one frame under `kind`.
    pub fn rx(&self, kind: SocketKind, bytes: usize) -> u64 {
        match kind {
            SocketKind::RawSocket => self.raw_rx.of(bytes),
            SocketKind::PfRing => self.pfring_rx.of(bytes),
            SocketKind::MemTrace => self.mem_rx.of(bytes),
        }
    }

    /// Socket send cost for one frame under `kind`.
    pub fn tx(&self, kind: SocketKind, bytes: usize) -> u64 {
        match kind {
            SocketKind::RawSocket => self.raw_tx.of(bytes),
            SocketKind::PfRing => self.pfring_tx.of(bytes),
            SocketKind::MemTrace => self.mem_tx.of(bytes),
        }
    }

    /// Inter-core handover penalty for a VRI on `vri_core` with LVRM on
    /// `lvrm_core` (0 when they share the core — contention is modeled by
    /// the shared busy timeline instead).
    pub fn core_penalty(
        &self,
        topo: &CoreTopology,
        lvrm_core: CoreId,
        vri_core: CoreId,
        unpinned: bool,
    ) -> u64 {
        let base = if vri_core == lvrm_core {
            0
        } else if topo.siblings(lvrm_core, vri_core) {
            self.sibling_penalty_ns
        } else {
            self.non_sibling_penalty_ns
        };
        base + if unpinned { self.default_migration_ns } else { 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIN_CAPTURED: usize = 60; // 84-byte wire frame as seen by sockets

    #[test]
    fn native_anchor_448kfps() {
        let m = CostModel::default();
        let per_frame = m.native.of(MIN_CAPTURED) as f64;
        let kfps = 1e9 / per_frame / 1e3;
        assert!(
            (430.0..470.0).contains(&kfps),
            "native small-frame rate {kfps} Kfps should be ~448"
        );
    }

    #[test]
    fn lvrm_only_anchor_3_7mfps() {
        let m = CostModel::default();
        // Whole LVRM-only pipeline on one core: rx + dispatch + VR + egress + tx.
        let vr = 120; // C++ VR nominal
        let per_frame = (m.mem_rx.of(MIN_CAPTURED)
            + m.dispatch.of(MIN_CAPTURED)
            + vr
            + m.egress.of(MIN_CAPTURED)
            + m.mem_tx.of(MIN_CAPTURED)) as f64;
        let mfps = 1e9 / per_frame / 1e6;
        assert!((3.2..4.2).contains(&mfps), "LVRM-only 84B rate {mfps} Mfps should be ~3.7");
    }

    #[test]
    fn lvrm_only_anchor_11gbps_at_max_frame() {
        let m = CostModel::default();
        let captured = 1514; // 1538-byte wire frame
        let vr = 120;
        let per_frame = (m.mem_rx.of(captured)
            + m.dispatch.of(captured)
            + vr
            + m.egress.of(captured)
            + m.mem_tx.of(captured)) as f64;
        let kfps = 1e9 / per_frame / 1e3;
        // Paper: 922 Kfps (11 Gbps) at 1538 B.
        assert!((800.0..1100.0).contains(&kfps), "LVRM-only 1538B rate {kfps} Kfps");
    }

    #[test]
    fn pfring_beats_raw_socket_by_about_half_at_min_frames() {
        let m = CostModel::default();
        let pf = (m.pfring_rx.of(MIN_CAPTURED) + m.pfring_tx.of(MIN_CAPTURED)) as f64;
        let raw = (m.raw_rx.of(MIN_CAPTURED) + m.raw_tx.of(MIN_CAPTURED)) as f64;
        let ratio = raw / pf;
        assert!((1.3..1.8).contains(&ratio), "raw/pfring I/O ratio {ratio} should be ~1.5");
    }

    #[test]
    fn hypervisors_order_native_gt_vmware_gt_kvm() {
        let m = CostModel::default();
        assert!(m.native.of(MIN_CAPTURED) < m.hv_vmware.of(MIN_CAPTURED));
        assert!(m.hv_vmware.of(MIN_CAPTURED) < m.hv_kvm.of(MIN_CAPTURED));
    }

    #[test]
    fn affinity_penalties_ordered() {
        let m = CostModel::default();
        let topo = CoreTopology::dual_quad_xeon();
        let same = m.core_penalty(&topo, CoreId(0), CoreId(0), false);
        let sib = m.core_penalty(&topo, CoreId(0), CoreId(1), false);
        let non = m.core_penalty(&topo, CoreId(0), CoreId(5), false);
        let unpinned = m.core_penalty(&topo, CoreId(0), CoreId(5), true);
        assert_eq!(same, 0);
        assert!(sib < non && non < unpinned);
    }

    #[test]
    fn shedding_is_cheaper_than_dispatching() {
        let m = CostModel::default();
        assert!(m.shed_ns < m.dispatch.of(MIN_CAPTURED));
    }

    #[test]
    fn stage_cost_is_affine() {
        let c = StageCost::new(100, 2.0);
        assert_eq!(c.of(0), 100);
        assert_eq!(c.of(50), 200);
    }
}
