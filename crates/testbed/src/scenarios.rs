//! Composable scenario DSL: declarative multi-tenant load scenarios.
//!
//! [`crate::scenario::Scenario`] is the low-level experimental condition —
//! mechanism, VR specs, raw source attachments. This module layers a
//! declarative spec on top: a [`ScenarioSpec`] composes tenants (weighted
//! VRs) with [`WorkloadSpec`] traffic shapes — constant-rate, seeded
//! heavy-tailed flow mixes, diurnal ramps, flash crowds, SYN/UDP floods —
//! and lowers to a runnable `Scenario`. Every run returns a structured
//! [`ScenarioReport`]: the five conservation identities evaluated on
//! the final metrics snapshot, per-tenant goodput, and flow-table
//! occupancy. "Benchmarking NFV Software Dataplanes" (arXiv 1605.05843)
//! shows dataplane rankings invert with the traffic *profile*, not just the
//! rate — this is the profile knob.
//!
//! Everything is deterministic for a fixed `(spec, seed)`: generators are
//! seeded per `(tenant, workload)` by a splitmix derivation of the scenario
//! seed, so two runs of the same spec produce identical flow traces and
//! identical reports (property-tested in `scenario_determinism.rs`).

use lvrm_core::{DispatchMode, SocketKind};
use lvrm_ipc::QueueKind;
use lvrm_metrics::MetricsSnapshot;

use crate::cost::StageCost;
use crate::gateway::{ForwardingMech, VrSpec, VrType};
use crate::scenario::{Scenario, ScenarioResult, SourceSpec, TcpFlowSpec};
use crate::tcp::TcpConfig;
use crate::traffic::{RateSchedule, SourceKind};

/// One traffic shape attached to a tenant.
#[derive(Clone, Debug)]
pub enum WorkloadSpec {
    /// Constant-rate UDP data over `flows` fixed port pairs.
    Cbr { wire_size: usize, fps: f64, flows: u16 },
    /// Seeded bounded-Pareto flow mix: elephants and mice over up to
    /// `flows` distinct 5-tuples at a constant aggregate rate.
    HeavyTailed { wire_size: usize, fps: f64, flows: u32, alpha: f64 },
    /// Day/night ramp: rate staircases from `trough_fps` up to `peak_fps`
    /// and back down over one `period_ns`, on a heavy-tailed flow mix.
    Diurnal {
        wire_size: usize,
        flows: u32,
        alpha: f64,
        trough_fps: f64,
        peak_fps: f64,
        period_ns: u64,
    },
    /// Flash crowd: `base_fps` until `at_ns`, then a surge to `peak_fps`
    /// for `hold_ns`, then back to base — the load-spike shape that drives
    /// the PR 3 shedding path.
    FlashCrowd {
        wire_size: usize,
        flows: u32,
        alpha: f64,
        base_fps: f64,
        peak_fps: f64,
        at_ns: u64,
        hold_ns: u64,
    },
    /// TCP SYN flood from `sources` spoofed in-subnet tuples at `fps`.
    SynFlood { fps: f64, sources: u32 },
    /// UDP flood to the discard port from `sources` spoofed tuples.
    UdpFlood { fps: f64, sources: u32 },
}

/// One tenant: a weighted VR plus its traffic.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    pub name: String,
    /// Weighted-DRR shed weight (see DESIGN.md §8).
    pub weight: f64,
    /// Per-frame dummy routing load, modelling VR processing cost.
    pub dummy_load_ns: u64,
    /// Per-byte VRI service cost, modelling compute-bound per-frame work —
    /// what makes one elephant flow saturate a single core.
    pub per_byte_load_ns: u64,
    /// Per-VR dispatch override (`None` keeps the config's global mode;
    /// `Replicated` enables state-compute replication, DESIGN.md §14).
    pub dispatch: Option<DispatchMode>,
    pub workloads: Vec<WorkloadSpec>,
    /// Bulk TCP flows through this tenant's VR (started at t = 0).
    pub tcp_flows: Vec<TcpConfig>,
}

impl TenantSpec {
    pub fn new(name: &str, weight: f64) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            weight,
            dummy_load_ns: 0,
            per_byte_load_ns: 0,
            dispatch: None,
            workloads: Vec::new(),
            tcp_flows: Vec::new(),
        }
    }

    pub fn with_load(mut self, dummy_load_ns: u64) -> TenantSpec {
        self.dummy_load_ns = dummy_load_ns;
        self
    }

    pub fn with_per_byte_load(mut self, per_byte_load_ns: u64) -> TenantSpec {
        self.per_byte_load_ns = per_byte_load_ns;
        self
    }

    pub fn dispatch(mut self, mode: DispatchMode) -> TenantSpec {
        self.dispatch = Some(mode);
        self
    }

    pub fn workload(mut self, w: WorkloadSpec) -> TenantSpec {
        self.workloads.push(w);
        self
    }

    pub fn tcp(mut self, cfg: TcpConfig) -> TenantSpec {
        self.tcp_flows.push(cfg);
        self
    }
}

/// A declarative scenario: topology + tenants + traffic, lowered to a
/// [`Scenario`] by [`ScenarioSpec::build`].
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    pub name: String,
    /// Master seed; per-generator seeds derive from it.
    pub seed: u64,
    pub queue_kind: QueueKind,
    pub duration_ns: u64,
    pub warmup_ns: u64,
    pub flow_table_capacity: usize,
    pub flow_timeout_ns: u64,
    /// Incremental-aging budget (0 = auto).
    pub flow_age_budget: usize,
    pub overload_shedding: bool,
    /// Fixed VRI cores per VR.
    pub vri_cores: usize,
    pub batch_size: usize,
    /// Dispatch-stage cost override (None keeps the calibrated default;
    /// overload scenarios make dispatch expensive so the monitor core is
    /// the contended resource, as in `exp_overload`).
    pub dispatch_cost: Option<StageCost>,
    /// Drain the monitor at run end so the books close with zero in-flight.
    pub drain_shutdown: bool,
    pub tenants: Vec<TenantSpec>,
}

impl ScenarioSpec {
    /// A spec skeleton: flow-based JSQ, Lamport queues, 1 s run with 200 ms
    /// warmup, shedding off, drained shutdown.
    pub fn new(name: &str, seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            name: name.to_string(),
            seed,
            queue_kind: QueueKind::Lamport,
            duration_ns: 1_000_000_000,
            warmup_ns: 200_000_000,
            flow_table_capacity: 4096,
            flow_timeout_ns: 30_000_000_000,
            flow_age_budget: 0,
            overload_shedding: false,
            vri_cores: 2,
            // The testbed gateway drives the per-frame ingress path, and
            // the weighted-DRR shed quantum is `batch_size * weight /
            // total_weight` per burst: a batch_size above 1 would hand
            // every 1-frame burst a quota it can never exceed and disable
            // shedding entirely. Keep the dataplane per-frame.
            batch_size: 1,
            dispatch_cost: None,
            drain_shutdown: true,
            tenants: Vec::new(),
        }
    }

    pub fn tenant(mut self, t: TenantSpec) -> ScenarioSpec {
        self.tenants.push(t);
        self
    }

    pub fn queue(mut self, kind: QueueKind) -> ScenarioSpec {
        self.queue_kind = kind;
        self
    }

    /// Derived per-generator seed, stable across runs of the same spec.
    fn derived_seed(&self, tenant: usize, workload: usize) -> u64 {
        let mut x = self
            .seed
            .wrapping_add((tenant as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add((workload as u64 + 1).wrapping_mul(0xbf58_476d_1ce4_e5b9));
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Lower one workload to a source kind + schedule.
    fn lower(&self, w: &WorkloadSpec, seed: u64) -> (SourceKind, RateSchedule) {
        match *w {
            WorkloadSpec::Cbr { wire_size, fps, flows } => {
                (SourceKind::UdpCbr { wire_size, flows }, RateSchedule::constant(fps))
            }
            WorkloadSpec::HeavyTailed { wire_size, fps, flows, alpha } => {
                (SourceKind::UdpMix { wire_size, flows, alpha, seed }, RateSchedule::constant(fps))
            }
            WorkloadSpec::Diurnal { wire_size, flows, alpha, trough_fps, peak_fps, period_ns } => {
                // 8-step staircase up then down across one period.
                const STEPS: u64 = 8;
                let dwell = period_ns / (2 * STEPS);
                let mut segs = Vec::new();
                let mut t = 0u64;
                for k in 0..STEPS {
                    let frac = k as f64 / (STEPS - 1) as f64;
                    segs.push((t, trough_fps + frac * (peak_fps - trough_fps)));
                    t += dwell;
                }
                for k in (0..STEPS).rev() {
                    let frac = k as f64 / (STEPS - 1) as f64;
                    segs.push((t, trough_fps + frac * (peak_fps - trough_fps)));
                    t += dwell;
                }
                (
                    SourceKind::UdpMix { wire_size, flows, alpha, seed },
                    RateSchedule::piecewise(segs),
                )
            }
            WorkloadSpec::FlashCrowd {
                wire_size,
                flows,
                alpha,
                base_fps,
                peak_fps,
                at_ns,
                hold_ns,
            } => (
                SourceKind::UdpMix { wire_size, flows, alpha, seed },
                RateSchedule::piecewise(vec![
                    (0, base_fps),
                    (at_ns, peak_fps),
                    (at_ns + hold_ns, base_fps),
                ]),
            ),
            WorkloadSpec::SynFlood { fps, sources } => {
                (SourceKind::SynFlood { wire_size: 84, sources, seed }, RateSchedule::constant(fps))
            }
            WorkloadSpec::UdpFlood { fps, sources } => {
                (SourceKind::UdpFlood { wire_size: 84, sources, seed }, RateSchedule::constant(fps))
            }
        }
    }

    /// Lower the declarative spec to a runnable [`Scenario`].
    pub fn build(&self) -> Scenario {
        assert!(!self.tenants.is_empty(), "scenario spec needs at least one tenant");
        let mut sc = Scenario::new(ForwardingMech::Lvrm);
        sc.socket = SocketKind::MemTrace;
        sc.duration_ns = self.duration_ns;
        sc.warmup_ns = self.warmup_ns;
        sc.drain_shutdown = self.drain_shutdown;
        sc.lvrm.queue_kind = self.queue_kind;
        sc.lvrm.flow_based = true;
        sc.lvrm.flow_table_capacity = self.flow_table_capacity;
        sc.lvrm.flow_timeout_ns = self.flow_timeout_ns;
        sc.lvrm.flow_age_budget = self.flow_age_budget;
        sc.lvrm.overload_shedding = self.overload_shedding;
        sc.lvrm.batch_size = self.batch_size;
        sc.lvrm.allocator = lvrm_core::AllocatorKind::Fixed { cores: self.vri_cores };
        sc.lvrm.seed = self.seed as u32 as u64 | 1;
        if let Some(c) = self.dispatch_cost {
            sc.cost.dispatch = c;
        }
        sc.vrs = self
            .tenants
            .iter()
            .enumerate()
            .map(|(k, t)| {
                let mut v = VrSpec::numbered(k, VrType::Cpp { dummy_load_ns: t.dummy_load_ns })
                    .with_shed_weight(t.weight)
                    .with_per_byte_load_ns(t.per_byte_load_ns);
                if let Some(mode) = t.dispatch {
                    v = v.with_dispatch(mode);
                }
                v
            })
            .collect();
        sc.sources = self
            .tenants
            .iter()
            .enumerate()
            .flat_map(|(k, t)| {
                t.workloads.iter().enumerate().map(move |(j, w)| {
                    let (kind, schedule) = self.lower(w, self.derived_seed(k, j));
                    SourceSpec { vr: k, host: (j + 1) as u8, kind, schedule }
                })
            })
            .collect();
        sc.tcp_flows = self
            .tenants
            .iter()
            .enumerate()
            .flat_map(|(k, t)| {
                t.tcp_flows.iter().map(move |cfg| TcpFlowSpec { vr: k, cfg: *cfg, start_ns: 0 })
            })
            .collect();
        sc
    }

    /// Build, run, and report.
    pub fn run(&self) -> ScenarioReport {
        let result = self.build().run();
        ScenarioReport::from_result(self, result)
    }
}

// ---------------------------------------------------------------------------
// Structured results

/// One conservation identity: `lhs` must equal `rhs` exactly.
#[derive(Clone, Debug)]
pub struct Identity {
    pub label: String,
    pub lhs: u64,
    pub rhs: u64,
}

impl Identity {
    pub fn holds(&self) -> bool {
        self.lhs == self.rhs
    }
}

/// The five conservation identities (DESIGN.md §9 and §14,
/// `metrics_invariants` suite) evaluated on one metrics snapshot.
#[derive(Clone, Debug)]
pub struct ConservationReport {
    /// (A) per VR: `frames_in == admitted + shed`.
    pub admission: Vec<Identity>,
    /// (B) global: `frames_in` fully accounted by outputs, drops, and
    /// queued gauges.
    pub global: Identity,
    /// (C) per VRI: `Σ dispatched == Σ returned + queued + reclaimed +
    /// queue_lost` (sums include retired series).
    pub dispatch: Identity,
    /// (D) `dispatch_drops == Σ vri_dispatch_drops`.
    pub drops: Identity,
    /// (E) replication: `updates_emitted == updates_folded + updates_lost`.
    pub replication: Identity,
    /// Sibling-book staleness at snapshot time (not an identity):
    /// records carried by the most recent state-update fan-out.
    pub repl_lag_updates: u64,
    /// Age of that fan-out in nanoseconds (0 = fanned out this tick or
    /// never fanned out).
    pub repl_lag_ns: u64,
}

impl ConservationReport {
    pub fn from_snapshot(snap: &MetricsSnapshot) -> ConservationReport {
        let c = |name: &str| snap.counter(name, &[]).unwrap_or(0);
        let g = |name: &str| snap.gauge(name, &[]).unwrap_or(0.0).round() as u64;

        let global = Identity {
            label: "global".to_string(),
            lhs: c("lvrm_frames_in_total"),
            rhs: c("lvrm_frames_out_total")
                + c("lvrm_unclassified_total")
                + c("lvrm_shed_early_total")
                + c("lvrm_dispatch_drops_total")
                + c("lvrm_no_vri_drops_total")
                + c("lvrm_shrink_lost_total")
                + c("lvrm_crash_lost_total")
                + c("lvrm_quarantined_drops_total")
                + g("lvrm_data_queued")
                + g("lvrm_egress_queued"),
        };

        let mut admission = Vec::new();
        if let Some(fam) = snap.family("lvrm_vr_frames_in_total") {
            for series in &fam.series {
                let labels: Vec<(&str, &str)> =
                    series.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                let vr = labels
                    .iter()
                    .find(|(k, _)| *k == "vr")
                    .map(|(_, v)| (*v).to_string())
                    .unwrap_or_default();
                admission.push(Identity {
                    label: format!("admission[{vr}]"),
                    lhs: series.as_counter().unwrap_or(0),
                    rhs: snap.counter("lvrm_vr_admitted_total", &labels).unwrap_or(0)
                        + snap.counter("lvrm_vr_shed_total", &labels).unwrap_or(0),
                });
            }
        }

        let dispatch = Identity {
            label: "dispatch".to_string(),
            lhs: snap.counter_sum("lvrm_vri_dispatched_total"),
            rhs: snap.counter_sum("lvrm_vri_returned_total")
                + g("lvrm_data_queued")
                + g("lvrm_egress_queued")
                + c("lvrm_reclaimed_total")
                + c("lvrm_queue_lost_total"),
        };

        let drops = Identity {
            label: "drops".to_string(),
            lhs: c("lvrm_dispatch_drops_total"),
            rhs: snap.counter_sum("lvrm_vri_dispatch_drops_total"),
        };

        let replication = Identity {
            label: "replication".to_string(),
            lhs: c("lvrm_repl_updates_emitted_total"),
            rhs: c("lvrm_repl_updates_folded_total") + c("lvrm_repl_updates_lost_total"),
        };

        ConservationReport {
            admission,
            global,
            dispatch,
            drops,
            replication,
            repl_lag_updates: g("lvrm_repl_lag_updates"),
            repl_lag_ns: g("lvrm_repl_lag_ns"),
        }
    }

    /// Every identity, admission ones included.
    pub fn all(&self) -> impl Iterator<Item = &Identity> {
        [&self.global, &self.dispatch, &self.drops, &self.replication]
            .into_iter()
            .chain(self.admission.iter())
    }

    pub fn all_hold(&self) -> bool {
        self.all().all(Identity::holds)
    }

    /// Panic with a precise message on the first violated identity.
    pub fn assert_all(&self, ctx: &str) {
        for id in self.all() {
            assert_eq!(id.lhs, id.rhs, "conservation identity '{}' violated {ctx}", id.label);
        }
    }
}

/// Per-tenant delivery summary.
#[derive(Clone, Debug)]
pub struct TenantReport {
    pub name: String,
    pub weight: f64,
    pub sent: u64,
    pub received: u64,
}

impl TenantReport {
    /// Received / sent inside the measurement window (1.0 when idle).
    pub fn goodput(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.received as f64 / self.sent as f64
        }
    }
}

/// Everything a declarative scenario run produced.
pub struct ScenarioReport {
    pub name: String,
    pub seed: u64,
    pub conservation: ConservationReport,
    pub tenants: Vec<TenantReport>,
    /// The raw low-level result, for deep inspection.
    pub result: ScenarioResult,
}

impl ScenarioReport {
    fn from_result(spec: &ScenarioSpec, result: ScenarioResult) -> ScenarioReport {
        let snap = result.metrics.as_ref().expect("declarative scenarios run the LVRM mechanism");
        let conservation = ConservationReport::from_snapshot(snap);
        let tenants = spec
            .tenants
            .iter()
            .enumerate()
            .map(|(k, t)| TenantReport {
                name: t.name.clone(),
                weight: t.weight,
                sent: result.per_vr_sent.get(k).copied().unwrap_or(0),
                received: result.per_vr_received.get(k).copied().unwrap_or(0),
            })
            .collect();
        ScenarioReport { name: spec.name.clone(), seed: spec.seed, conservation, tenants, result }
    }

    /// Concurrently tracked flows at end of run (pre-drain), summed over
    /// the tenants' flow tables.
    pub fn tracked_flows(&self) -> u64 {
        self.result.vr_snapshots.iter().filter_map(|v| v.flow).map(|f| f.len as u64).sum()
    }

    /// Aggregate flow-table stats (evictions, overflows, sweep slots).
    pub fn flow_stats(&self) -> lvrm_core::FlowTableStats {
        let mut agg = lvrm_core::FlowTableStats::default();
        for f in self.result.vr_snapshots.iter().filter_map(|v| v.flow) {
            agg.len += f.len;
            agg.capacity += f.capacity;
            agg.evictions += f.evictions;
            agg.overflows += f.overflows;
            agg.age_sweep_slots += f.age_sweep_slots;
        }
        agg
    }

    /// Frames shed at ingress (the PR 3 overload path), from the stats.
    pub fn shed_early(&self) -> u64 {
        self.result.lvrm_stats.as_ref().map_or(0, |s| s.shed_early)
    }

    /// State updates emitted toward sibling replicas (identity E's
    /// left-hand side).
    pub fn updates_emitted(&self) -> u64 {
        self.result.lvrm_stats.as_ref().map_or(0, |s| s.updates_emitted)
    }

    /// Aggregate TCP goodput inside the measurement window, Mbps.
    pub fn tcp_mbps(&self) -> f64 {
        self.result.tcp_aggregate_mbps()
    }
}

// ---------------------------------------------------------------------------
// Canned scenarios (the fixed bench set; also used by the regression suite)

/// Million-flow census: one tenant pushes a heavy-tailed mix over `flows`
/// distinct 5-tuples at just under link rate, long enough for the census
/// cursor to touch every flow, with a 30 s timeout so nothing expires
/// mid-run. Sized so the flow table sustains `flows` concurrent entries.
pub fn million_flows(flows: u32, seed: u64) -> ScenarioSpec {
    let fps = 1_200_000.0; // under the 1 Gbps / 84 B cap of ~1.49 Mfps
                           // The census cursor advances on every second emission; add 25% margin
                           // over the minimum coverage time, plus warmup.
    let warmup = 100_000_000u64;
    let coverage_ns = (2.0 * flows as f64 / fps * 1.25e9) as u64;
    let mut spec = ScenarioSpec::new("million_flows", seed);
    spec.duration_ns = warmup + coverage_ns.max(400_000_000);
    spec.warmup_ns = warmup;
    spec.flow_table_capacity = (flows as usize * 2).next_power_of_two();
    spec.vri_cores = 4;
    spec.tenants = vec![TenantSpec::new("census", 1.0).workload(WorkloadSpec::HeavyTailed {
        wire_size: 84,
        fps,
        flows,
        alpha: 1.3,
    })];
    spec
}

/// Flash crowd: a weight-9 tenant at a steady 30 Kfps shares one expensive
/// dispatch core with a weight-1 tenant whose load surges 10× mid-run.
/// With shedding on, the surge is clipped to its quota and the steady
/// tenant's goodput holds (`exp_overload`'s contention shape, driven by a
/// time-varying profile).
pub fn flash_crowd(seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("flash_crowd", seed);
    spec.duration_ns = 900_000_000;
    spec.warmup_ns = 100_000_000;
    spec.overload_shedding = true;
    spec.vri_cores = 1;
    spec.dispatch_cost = Some(StageCost::new(2_000, 0.0));
    spec.tenants = vec![
        TenantSpec::new("steady", 9.0).with_load(16_667).workload(WorkloadSpec::Cbr {
            wire_size: 84,
            fps: 30_000.0,
            flows: 8,
        }),
        TenantSpec::new("crowd", 1.0).with_load(16_667).workload(WorkloadSpec::FlashCrowd {
            wire_size: 84,
            flows: 2_000,
            alpha: 1.3,
            base_fps: 30_000.0,
            // Past the ~500 Kfps dispatch budget: the surge saturates the
            // monitor core, so shedding must clip it to its 1/10 quota.
            peak_fps: 700_000.0,
            at_ns: 300_000_000,
            hold_ns: 300_000_000,
        }),
    ];
    spec
}

/// SYN flood: a weight-9 victim tenant with steady UDP data, a weight-1
/// attacker tenant spraying SYNs from spoofed in-subnet sources. The flood
/// classifies into the attacker's VR and is shed there; the victim's
/// goodput floor is the assertion.
pub fn syn_flood(seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("syn_flood", seed);
    spec.duration_ns = 900_000_000;
    spec.warmup_ns = 100_000_000;
    spec.overload_shedding = true;
    spec.vri_cores = 1;
    spec.dispatch_cost = Some(StageCost::new(2_000, 0.0));
    spec.tenants = vec![
        TenantSpec::new("victim", 9.0).with_load(16_667).workload(WorkloadSpec::Cbr {
            wire_size: 84,
            fps: 30_000.0,
            flows: 8,
        }),
        TenantSpec::new("attacker", 1.0)
            .with_load(16_667)
            // Combined ~680 Kfps, past the dispatch budget, so the flood
            // saturates the monitor core and must be shed at ingress.
            .workload(WorkloadSpec::SynFlood { fps: 600_000.0, sources: 4_096 })
            .workload(WorkloadSpec::UdpFlood { fps: 80_000.0, sources: 1_024 }),
    ];
    spec
}

/// Diurnal ramp: two tenants with phase-shifted day/night load curves on
/// heavy-tailed mixes — the determinism-suite workhorse (every generator
/// feature exercised: ramps, Pareto sampling, census coverage).
pub fn diurnal(seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("diurnal", seed);
    spec.duration_ns = 800_000_000;
    spec.warmup_ns = 100_000_000;
    spec.flow_table_capacity = 16_384;
    spec.tenants = vec![
        TenantSpec::new("day", 1.0).workload(WorkloadSpec::Diurnal {
            wire_size: 84,
            flows: 4_000,
            alpha: 1.3,
            trough_fps: 20_000.0,
            peak_fps: 120_000.0,
            period_ns: 700_000_000,
        }),
        TenantSpec::new("night", 1.0).workload(WorkloadSpec::Diurnal {
            wire_size: 128,
            flows: 2_000,
            alpha: 1.1,
            trough_fps: 60_000.0,
            peak_fps: 10_000.0, // inverted phase: starts high via trough>peak
            period_ns: 700_000_000,
        }),
    ];
    spec
}

/// Elephant flow: one bulk TCP transfer through a compute-bound VR
/// (`per_byte_load_ns` makes each 1460-byte data segment cost ~100 µs of
/// core time, while its ACKs stay cheap), plus a seeded trickle of
/// heavy-tailed mice for replication-trace seed sensitivity.
///
/// Under pinned dispatch the flow's 5-tuple rides one VRI and goodput caps
/// at a single core's service rate no matter how many VRIs the VR owns.
/// Under `replicated` dispatch every VRI serves the flow and goodput
/// scales with `vri_cores` — the state-compute replication headline. The
/// raised `dupack_threshold` (TCP-NCR style) absorbs the cross-replica
/// reordering that any-VRI dispatch introduces.
pub fn elephant_flow(vri_cores: usize, replicated: bool, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("elephant_flow", seed);
    spec.duration_ns = 1_200_000_000;
    spec.warmup_ns = 200_000_000;
    spec.vri_cores = vri_cores;
    let mut tenant = TenantSpec::new("elephant", 1.0)
        .with_per_byte_load(65)
        .tcp(TcpConfig { dupack_threshold: 64, ..TcpConfig::default() })
        .workload(WorkloadSpec::HeavyTailed { wire_size: 84, fps: 2_000.0, flows: 64, alpha: 1.3 });
    if replicated {
        tenant = tenant.dispatch(DispatchMode::Replicated);
    }
    spec.tenants = vec![tenant];
    spec
}

/// Lower one multi-tenant spec onto an N-shard fleet (DESIGN.md §15):
/// each returned spec keeps only the tenants the rendezvous hash assigns
/// to that shard — the same hash `ShardMap::partition` uses, so a testbed
/// split and a live fleet agree on placement. Names, seeds, and every
/// other knob are preserved; a shard with no tenants still gets a spec
/// (it serves nothing but participates in the directory).
pub fn shard_split(spec: &ScenarioSpec, shards: u32) -> Vec<ScenarioSpec> {
    assert!(shards >= 1, "a fleet has at least one shard");
    let ids: Vec<u32> = (0..shards).collect();
    (0..shards)
        .map(|shard| {
            let mut part = spec.clone();
            part.name = format!("{}-shard{shard}", spec.name);
            part.tenants = spec
                .tenants
                .iter()
                .filter(|t| lvrm_core::rendezvous_owner(&t.name, &ids) == Some(shard))
                .cloned()
                .collect();
            part
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let spec = ScenarioSpec::new("x", 42);
        let a = spec.derived_seed(0, 0);
        assert_eq!(a, ScenarioSpec::new("y", 42).derived_seed(0, 0), "same seed, same derivation");
        assert_ne!(a, spec.derived_seed(0, 1));
        assert_ne!(a, spec.derived_seed(1, 0));
        assert_ne!(spec.derived_seed(0, 0), ScenarioSpec::new("x", 43).derived_seed(0, 0));
    }

    #[test]
    fn build_lowers_tenants_to_vrs_and_sources() {
        let sc = syn_flood(7).build();
        assert_eq!(sc.vrs.len(), 2);
        assert_eq!(sc.sources.len(), 3, "victim CBR + attacker SYN + attacker UDP flood");
        assert!(sc.lvrm.flow_based);
        assert!(sc.lvrm.overload_shedding);
        assert_eq!(sc.vrs[0].shed_weight, Some(9.0));
        sc.lvrm.validate().expect("lowered config must validate");
    }

    #[test]
    fn diurnal_schedule_ramps_up_and_down() {
        let spec = ScenarioSpec::new("d", 1);
        let (_, sched) = spec.lower(
            &WorkloadSpec::Diurnal {
                wire_size: 84,
                flows: 10,
                alpha: 1.3,
                trough_fps: 100.0,
                peak_fps: 900.0,
                period_ns: 160,
            },
            0,
        );
        assert_eq!(sched.rate_at(0), 100.0);
        assert!(sched.rate_at(75) > 800.0, "peak near mid-period");
        assert_eq!(sched.rate_at(10_000), 100.0, "back to trough");
    }

    #[test]
    fn million_flows_spec_covers_census_window() {
        let spec = million_flows(1_000_000, 1);
        // Duration must allow the census cursor (every 2nd emission) to
        // touch every flow: 2 * flows / fps plus margin.
        let min_ns = spec.warmup_ns + (2.0 * 1_000_000.0 / 1_200_000.0 * 1e9) as u64;
        assert!(spec.duration_ns > min_ns);
        assert!(spec.flow_table_capacity >= 2 * 1_000_000);
    }

    /// Every tenant of a split spec lands on exactly one shard, the union
    /// covers the original tenant set, and the assignment matches what a
    /// live [`lvrm_core::ShardMap`] would compute for the same names.
    #[test]
    fn shard_split_partitions_tenants_exactly_once() {
        let mut spec = ScenarioSpec::new("fleet", 3);
        for i in 0..12 {
            spec.tenants.push(
                TenantSpec::new(&format!("tenant{i}"), 1.0).workload(WorkloadSpec::Cbr {
                    wire_size: 84,
                    fps: 1_000.0,
                    flows: 4,
                }),
            );
        }
        let shards = 3u32;
        let parts = shard_split(&spec, shards);
        assert_eq!(parts.len(), shards as usize);
        let total: usize = parts.iter().map(|p| p.tenants.len()).sum();
        assert_eq!(total, spec.tenants.len(), "no tenant lost or duplicated");
        let ids: Vec<u32> = (0..shards).collect();
        for (shard, part) in parts.iter().enumerate() {
            assert_eq!(part.name, format!("fleet-shard{shard}"));
            assert_eq!(part.seed, spec.seed, "derived seeds must stay stable per tenant");
            for t in &part.tenants {
                assert_eq!(
                    lvrm_core::rendezvous_owner(&t.name, &ids),
                    Some(shard as u32),
                    "{} placed off its rendezvous shard",
                    t.name
                );
            }
        }
        // More than one shard gets work for this universe (rendezvous
        // spreads 12 names over 3 shards).
        assert!(parts.iter().filter(|p| !p.tenants.is_empty()).count() > 1);
    }

    /// A tiny end-to-end spec run: identities hold, report is populated.
    #[test]
    fn small_spec_runs_and_conserves() {
        let mut spec = ScenarioSpec::new("smoke", 11);
        spec.duration_ns = 300_000_000;
        spec.warmup_ns = 100_000_000;
        spec.tenants = vec![TenantSpec::new("t0", 1.0).workload(WorkloadSpec::HeavyTailed {
            wire_size: 84,
            fps: 50_000.0,
            flows: 500,
            alpha: 1.3,
        })];
        let report = spec.run();
        report.conservation.assert_all("(smoke spec)");
        assert_eq!(report.tenants.len(), 1);
        assert!(report.tenants[0].sent > 0);
        assert!(report.tenants[0].goodput() > 0.9, "goodput {}", report.tenants[0].goodput());
        assert!(report.tracked_flows() > 100, "tracked {}", report.tracked_flows());
    }
}
