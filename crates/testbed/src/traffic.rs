//! UDP traffic sources and ping probes.
//!
//! The paper's UDP model: a coordinator starts all senders simultaneously;
//! each emits constant-departure UDP/IP packets at a specified source rate
//! (§4.1). Experiments 2c–2e drive the rate through staircase schedules
//! (e.g. 60→360→60 Kfps in 60 Kfps steps every 5 s).

use std::net::Ipv4Addr;

use lvrm_net::headers::tcp_flags;
use lvrm_net::{Frame, FrameBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Destination port of UDP *data* traffic — receivers count goodput only on
/// this port, so flood traffic (dst 9/80) can't inflate delivery numbers.
pub const UDP_DATA_PORT: u16 = 30_000;

/// A piecewise-constant rate schedule: `(from_ns, frames_per_second)`
/// segments, sorted by time. The rate before the first segment is 0.
#[derive(Clone, Debug, Default)]
pub struct RateSchedule {
    segments: Vec<(u64, f64)>,
}

impl RateSchedule {
    /// A constant rate from t=0.
    pub fn constant(fps: f64) -> RateSchedule {
        RateSchedule { segments: vec![(0, fps)] }
    }

    /// Build from explicit segments (must be time-sorted).
    pub fn piecewise(segments: Vec<(u64, f64)>) -> RateSchedule {
        assert!(segments.windows(2).all(|w| w[0].0 <= w[1].0), "segments must be sorted");
        RateSchedule { segments }
    }

    /// The paper's staircase (Experiment 2c): rise from `step` to `peak` in
    /// `step` increments every `dwell_ns`, then descend back. E.g.
    /// `staircase(60e3, 360e3, 5s)` = 60, 120, …, 360, 300, …, 60 Kfps.
    pub fn staircase(step_fps: f64, peak_fps: f64, dwell_ns: u64) -> RateSchedule {
        assert!(step_fps > 0.0 && peak_fps >= step_fps);
        let nsteps = (peak_fps / step_fps).round() as u64;
        let mut segments = Vec::new();
        let mut t = 0u64;
        for k in 1..=nsteps {
            segments.push((t, step_fps * k as f64));
            t += dwell_ns;
        }
        for k in (1..nsteps).rev() {
            segments.push((t, step_fps * k as f64));
            t += dwell_ns;
        }
        RateSchedule { segments }
    }

    /// Shift the whole schedule later by `delay_ns` (staggered starts,
    /// Experiment 2d).
    pub fn delayed(mut self, delay_ns: u64) -> RateSchedule {
        for (t, _) in &mut self.segments {
            *t += delay_ns;
        }
        self
    }

    /// Rate at time `t`.
    pub fn rate_at(&self, t_ns: u64) -> f64 {
        let mut rate = 0.0;
        for (from, fps) in &self.segments {
            if *from <= t_ns {
                rate = *fps;
            } else {
                break;
            }
        }
        rate
    }

    /// Total duration until the last segment begins (callers usually add one
    /// dwell for the final step).
    pub fn last_change_ns(&self) -> u64 {
        self.segments.last().map_or(0, |(t, _)| *t)
    }
}

/// What a simulated source emits.
#[derive(Clone, Debug)]
pub enum SourceKind {
    /// Constant-departure UDP frames of one wire size, spread over `flows`
    /// distinct port pairs.
    UdpCbr { wire_size: usize, flows: u16 },
    /// ICMP-echo-style probes: one request per `interval_ns`; the receiver
    /// reflects them and the source records the RTT.
    Ping { wire_size: usize, interval_ns: u64 },
    /// Heavy-tailed UDP data over up to `flows` distinct 5-tuples (source
    /// address + port vary): a bounded Pareto(`alpha`) flow-size mix —
    /// low flow indices are elephants, the tail is mice. Emissions
    /// alternate between a round-robin census cursor (guaranteeing every
    /// flow is eventually touched, which is what pushes the flow table to
    /// its advertised concurrency) and a seeded Pareto sample (producing
    /// the skew). Deterministic for a fixed `seed`.
    UdpMix { wire_size: usize, flows: u32, alpha: f64, seed: u64 },
    /// TCP SYN flood: spoofed in-subnet source tuples (so frames classify
    /// into the VR and exercise the shedding path), dst port 80, SYN-only.
    SynFlood { wire_size: usize, sources: u32, seed: u64 },
    /// UDP flood to the discard port (9) from spoofed in-subnet tuples.
    UdpFlood { wire_size: usize, sources: u32, seed: u64 },
}

impl SourceKind {
    /// Whether this kind emits measured UDP *data* (counted toward
    /// goodput), as opposed to probes or attack traffic.
    pub fn is_udp_data(&self) -> bool {
        matches!(self, SourceKind::UdpCbr { .. } | SourceKind::UdpMix { .. })
    }

    /// Whether this kind emits attack traffic (counted separately).
    pub fn is_flood(&self) -> bool {
        matches!(self, SourceKind::SynFlood { .. } | SourceKind::UdpFlood { .. })
    }
}

/// A traffic source attached to one VR's sender subnet.
pub struct Source {
    /// Which VR's subnets this source uses (indexes `Scenario::vrs`).
    pub vr: usize,
    pub kind: SourceKind,
    pub schedule: RateSchedule,
    /// Pre-built template frames (UDP CBR), one per flow.
    templates: Vec<Frame>,
    next_flow: usize,
    builder: FrameBuilder,
    /// Base addresses, for kinds that synthesize source tuples on the fly
    /// (pre-building a million templates would defeat the point).
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    /// Deterministic per-source randomness (Pareto samples, spoofed tuples).
    rng: SmallRng,
    /// Census cursor for `UdpMix` flow coverage.
    census: u64,
    /// SYN sequence-number counter.
    seq: u32,
    /// Frames emitted.
    pub emitted: u64,
}

impl Source {
    pub fn new(
        vr: usize,
        kind: SourceKind,
        schedule: RateSchedule,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
    ) -> Source {
        let mut builder = FrameBuilder::new(src_ip, dst_ip);
        let templates = match &kind {
            SourceKind::UdpCbr { wire_size, flows } => (0..*flows)
                .map(|i| {
                    builder
                        .udp_with_wire_size(20_000 + i, UDP_DATA_PORT, *wire_size)
                        .expect("wire size validated by scenario")
                })
                .collect(),
            _ => Vec::new(),
        };
        let seed = match &kind {
            SourceKind::UdpMix { seed, .. }
            | SourceKind::SynFlood { seed, .. }
            | SourceKind::UdpFlood { seed, .. } => *seed,
            _ => 0,
        };
        Source {
            vr,
            kind,
            schedule,
            templates,
            next_flow: 0,
            builder,
            src_ip,
            dst_ip,
            rng: SmallRng::seed_from_u64(seed),
            census: 0,
            seq: 0,
            emitted: 0,
        }
    }

    /// Synthesized source address for flow index `f`: vary the host octet
    /// within the sender subnet (so classification by /24 still works) and
    /// the source port, giving 254 × 60 000 ≈ 15 M addressable flows.
    fn flow_tuple(&self, f: u64) -> (Ipv4Addr, u16) {
        let o = self.src_ip.octets();
        let host = 1 + ((f / 60_000) % 254) as u8;
        let port = 1024 + (f % 60_000) as u16;
        (Ipv4Addr::new(o[0], o[1], o[2], host), port)
    }

    /// Bounded-Pareto(alpha) flow index over `[0, flows)` by inverse CDF:
    /// index 0 is the biggest elephant, the tail is mice.
    fn pareto_index(&mut self, flows: u32, alpha: f64) -> u64 {
        let h = flows as f64;
        let u: f64 = self.rng.gen_range(0.0..1.0);
        // Bounded Pareto on [1, h], L = 1: x = (1 - u (1 - h^-alpha))^(-1/alpha)
        let x = (1.0 - u * (1.0 - h.powf(-alpha))).powf(-1.0 / alpha);
        (x as u64).clamp(1, flows as u64) - 1
    }

    /// Emit the next frame at `now_ns`. Returns the frame and the delay
    /// until the next emission (`None` when the schedule has gone to zero —
    /// re-poll after `IDLE_RECHECK_NS`).
    pub fn emit(&mut self, now_ns: u64) -> (Option<Frame>, u64) {
        match self.kind {
            SourceKind::UdpCbr { .. } => {
                let rate = self.schedule.rate_at(now_ns);
                if rate <= 0.0 {
                    return (None, IDLE_RECHECK_NS);
                }
                let mut f = self.templates[self.next_flow].clone();
                self.next_flow = (self.next_flow + 1) % self.templates.len();
                f.ts_ns = now_ns;
                self.emitted += 1;
                (Some(f), (1e9 / rate) as u64)
            }
            SourceKind::Ping { wire_size, interval_ns } => {
                let f = self.build_ping(now_ns, wire_size);
                self.emitted += 1;
                (Some(f), interval_ns)
            }
            SourceKind::UdpMix { wire_size, flows, alpha, .. } => {
                let rate = self.schedule.rate_at(now_ns);
                if rate <= 0.0 {
                    return (None, IDLE_RECHECK_NS);
                }
                // Alternate census (coverage) and Pareto (skew) picks.
                let f_idx = if self.emitted.is_multiple_of(2) {
                    let c = self.census;
                    self.census = (self.census + 1) % flows as u64;
                    c
                } else {
                    self.pareto_index(flows, alpha)
                };
                let (src, port) = self.flow_tuple(f_idx);
                let mut f = FrameBuilder::new(src, self.dst_ip)
                    .udp_with_wire_size(port, UDP_DATA_PORT, wire_size)
                    .expect("wire size validated by scenario");
                f.ts_ns = now_ns;
                self.emitted += 1;
                (Some(f), (1e9 / rate) as u64)
            }
            SourceKind::SynFlood { wire_size, sources, .. } => {
                let rate = self.schedule.rate_at(now_ns);
                if rate <= 0.0 {
                    return (None, IDLE_RECHECK_NS);
                }
                let i = self.rng.gen_range(0..sources) as u64;
                let (src, port) = self.flow_tuple(i);
                // Pad the SYN toward the requested wire size (54 B of
                // headers + 24 B of wire overhead are fixed).
                let pad = vec![0u8; wire_size.saturating_sub(78).max(6)];
                self.seq = self.seq.wrapping_add(1);
                let mut f = FrameBuilder::new(src, self.dst_ip).tcp(
                    port,
                    80,
                    self.seq,
                    0,
                    tcp_flags::SYN,
                    65_535,
                    &pad,
                );
                f.ts_ns = now_ns;
                self.emitted += 1;
                (Some(f), (1e9 / rate) as u64)
            }
            SourceKind::UdpFlood { wire_size, sources, .. } => {
                let rate = self.schedule.rate_at(now_ns);
                if rate <= 0.0 {
                    return (None, IDLE_RECHECK_NS);
                }
                let i = self.rng.gen_range(0..sources) as u64;
                let (src, port) = self.flow_tuple(i);
                let mut f = FrameBuilder::new(src, self.dst_ip)
                    .udp_with_wire_size(port, 9, wire_size)
                    .expect("wire size validated by scenario");
                f.ts_ns = now_ns;
                self.emitted += 1;
                (Some(f), (1e9 / rate) as u64)
            }
        }
    }

    fn build_ping(&mut self, now_ns: u64, wire_size: usize) -> Frame {
        // An ICMP-echo-shaped frame: IPv4 proto 1, padded to the wire size.
        // We reuse the UDP builder then rewrite the protocol byte (the sim's
        // receiver only looks at the protocol and addresses).
        let mut f = self
            .builder
            .udp_with_wire_size(7, 7, wire_size)
            .expect("wire size validated by scenario");
        f.modify_bytes(|b| {
            b[14 + 9] = lvrm_net::headers::IPPROTO_ICMP;
            // Recompute the header checksum for the protocol change.
            b[14 + 10] = 0;
            b[14 + 11] = 0;
            let csum = lvrm_net::headers::internet_checksum(&b[14..14 + 20]);
            b[14 + 10..14 + 12].copy_from_slice(&csum.to_be_bytes());
        });
        f.ts_ns = now_ns;
        f
    }
}

/// Re-poll period while a schedule reads zero.
pub const IDLE_RECHECK_NS: u64 = 10_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    #[test]
    fn constant_schedule() {
        let s = RateSchedule::constant(1000.0);
        assert_eq!(s.rate_at(0), 1000.0);
        assert_eq!(s.rate_at(u64::MAX), 1000.0);
    }

    #[test]
    fn staircase_matches_experiment_2c() {
        // 60 -> 360 -> 60 Kfps, step 60K, dwell 5 s.
        let s = RateSchedule::staircase(60_000.0, 360_000.0, 5_000_000_000);
        assert_eq!(s.rate_at(0), 60_000.0);
        assert_eq!(s.rate_at(5_000_000_000), 120_000.0);
        assert_eq!(s.rate_at(25_000_000_000), 360_000.0);
        assert_eq!(s.rate_at(30_000_000_000), 300_000.0);
        assert_eq!(s.rate_at(50_000_000_000), 60_000.0);
        assert_eq!(s.last_change_ns(), 50_000_000_000);
    }

    #[test]
    fn delayed_shifts_start() {
        let s = RateSchedule::constant(100.0).delayed(1_000);
        assert_eq!(s.rate_at(999), 0.0);
        assert_eq!(s.rate_at(1_000), 100.0);
    }

    #[test]
    fn cbr_source_paces_by_rate() {
        let mut src = Source::new(
            0,
            SourceKind::UdpCbr { wire_size: 84, flows: 4 },
            RateSchedule::constant(1_000_000.0),
            ip(10, 0, 1, 1),
            ip(10, 0, 2, 1),
        );
        let (f, next) = src.emit(0);
        assert!(f.is_some());
        assert_eq!(next, 1_000); // 1 Mfps = 1 us apart
        assert_eq!(f.unwrap().wire_len(), 84);
    }

    #[test]
    fn cbr_cycles_flows() {
        let mut src = Source::new(
            0,
            SourceKind::UdpCbr { wire_size: 84, flows: 2 },
            RateSchedule::constant(1000.0),
            ip(10, 0, 1, 1),
            ip(10, 0, 2, 1),
        );
        let p1 = src.emit(0).0.unwrap().udp().unwrap().src_port();
        let p2 = src.emit(0).0.unwrap().udp().unwrap().src_port();
        let p3 = src.emit(0).0.unwrap().udp().unwrap().src_port();
        assert_ne!(p1, p2);
        assert_eq!(p1, p3);
    }

    #[test]
    fn zero_rate_idles() {
        let mut src = Source::new(
            0,
            SourceKind::UdpCbr { wire_size: 84, flows: 1 },
            RateSchedule::piecewise(vec![(1_000_000, 100.0)]),
            ip(10, 0, 1, 1),
            ip(10, 0, 2, 1),
        );
        let (f, next) = src.emit(0);
        assert!(f.is_none());
        assert_eq!(next, IDLE_RECHECK_NS);
    }

    #[test]
    fn udp_mix_is_deterministic() {
        let mk = || {
            Source::new(
                0,
                SourceKind::UdpMix { wire_size: 84, flows: 1000, alpha: 1.3, seed: 7 },
                RateSchedule::constant(1_000_000.0),
                ip(10, 0, 1, 1),
                ip(10, 0, 2, 1),
            )
        };
        let (mut a, mut b) = (mk(), mk());
        for t in 0..500u64 {
            let fa = a.emit(t * 1000).0.unwrap();
            let fb = b.emit(t * 1000).0.unwrap();
            assert_eq!(fa.bytes(), fb.bytes(), "emission {t} diverged");
        }
    }

    #[test]
    fn udp_mix_census_covers_every_flow() {
        let mut src = Source::new(
            0,
            SourceKind::UdpMix { wire_size: 84, flows: 64, alpha: 1.3, seed: 1 },
            RateSchedule::constant(1_000_000.0),
            ip(10, 0, 1, 1),
            ip(10, 0, 2, 1),
        );
        let mut seen = std::collections::HashSet::new();
        for t in 0..256u64 {
            // 128 census picks cover 64 flows twice over.
            let f = src.emit(t).0.unwrap();
            let u = f.udp().unwrap();
            seen.insert((f.src_ip().unwrap(), u.src_port()));
            assert_eq!(u.dst_port(), UDP_DATA_PORT);
        }
        assert_eq!(seen.len(), 64, "census must touch every flow");
    }

    #[test]
    fn udp_mix_skews_toward_elephants() {
        let mut src = Source::new(
            0,
            SourceKind::UdpMix { wire_size: 84, flows: 10_000, alpha: 1.3, seed: 42 },
            RateSchedule::constant(1_000_000.0),
            ip(10, 0, 1, 1),
            ip(10, 0, 2, 1),
        );
        // Pareto picks are the odd emissions; count how many land on the
        // top-10 flow indices (ports 1024..1034).
        let mut top = 0u32;
        for t in 0..10_000u64 {
            let f = src.emit(t).0.unwrap();
            if t % 2 == 1 {
                let p = f.udp().unwrap().src_port();
                if (1024..1034).contains(&p) && f.src_ip().unwrap().octets()[3] == 1 {
                    top += 1;
                }
            }
        }
        // 10 of 10 000 flows uniformly would get ~5 of 5 000 picks; the
        // heavy tail concentrates far more there.
        assert!(top > 500, "top-10 flows got only {top} of 5000 Pareto picks");
    }

    #[test]
    fn syn_flood_emits_in_subnet_syns() {
        let mut src = Source::new(
            0,
            SourceKind::SynFlood { wire_size: 84, sources: 100, seed: 3 },
            RateSchedule::constant(100_000.0),
            ip(10, 0, 1, 1),
            ip(10, 0, 2, 1),
        );
        for t in 0..50u64 {
            let f = src.emit(t).0.unwrap();
            let tcp = f.tcp().unwrap();
            assert_eq!(tcp.dst_port(), 80);
            assert_eq!(tcp.flags() & tcp_flags::SYN, tcp_flags::SYN);
            let o = f.src_ip().unwrap().octets();
            assert_eq!((o[0], o[1], o[2]), (10, 0, 1), "spoofed src stays in subnet");
        }
        assert!(src.kind.is_flood() && !src.kind.is_udp_data());
    }

    #[test]
    fn udp_flood_targets_discard_port() {
        let mut src = Source::new(
            0,
            SourceKind::UdpFlood { wire_size: 84, sources: 10, seed: 3 },
            RateSchedule::constant(100_000.0),
            ip(10, 0, 1, 1),
            ip(10, 0, 2, 1),
        );
        let f = src.emit(0).0.unwrap();
        assert_eq!(f.udp().unwrap().dst_port(), 9);
        assert_ne!(f.udp().unwrap().dst_port(), UDP_DATA_PORT);
    }

    #[test]
    fn ping_frames_are_icmp_with_valid_checksum() {
        let mut src = Source::new(
            0,
            SourceKind::Ping { wire_size: 84, interval_ns: 1_000_000 },
            RateSchedule::constant(0.0),
            ip(10, 0, 1, 1),
            ip(10, 0, 2, 1),
        );
        let (f, next) = src.emit(123);
        let f = f.unwrap();
        assert_eq!(next, 1_000_000);
        let ip_view = f.ipv4().unwrap();
        assert_eq!(ip_view.protocol(), lvrm_net::headers::IPPROTO_ICMP);
        assert!(ip_view.checksum_ok());
        assert_eq!(f.ts_ns, 123);
    }
}
