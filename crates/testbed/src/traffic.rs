//! UDP traffic sources and ping probes.
//!
//! The paper's UDP model: a coordinator starts all senders simultaneously;
//! each emits constant-departure UDP/IP packets at a specified source rate
//! (§4.1). Experiments 2c–2e drive the rate through staircase schedules
//! (e.g. 60→360→60 Kfps in 60 Kfps steps every 5 s).

use std::net::Ipv4Addr;

use lvrm_net::{Frame, FrameBuilder};

/// A piecewise-constant rate schedule: `(from_ns, frames_per_second)`
/// segments, sorted by time. The rate before the first segment is 0.
#[derive(Clone, Debug, Default)]
pub struct RateSchedule {
    segments: Vec<(u64, f64)>,
}

impl RateSchedule {
    /// A constant rate from t=0.
    pub fn constant(fps: f64) -> RateSchedule {
        RateSchedule { segments: vec![(0, fps)] }
    }

    /// Build from explicit segments (must be time-sorted).
    pub fn piecewise(segments: Vec<(u64, f64)>) -> RateSchedule {
        assert!(segments.windows(2).all(|w| w[0].0 <= w[1].0), "segments must be sorted");
        RateSchedule { segments }
    }

    /// The paper's staircase (Experiment 2c): rise from `step` to `peak` in
    /// `step` increments every `dwell_ns`, then descend back. E.g.
    /// `staircase(60e3, 360e3, 5s)` = 60, 120, …, 360, 300, …, 60 Kfps.
    pub fn staircase(step_fps: f64, peak_fps: f64, dwell_ns: u64) -> RateSchedule {
        assert!(step_fps > 0.0 && peak_fps >= step_fps);
        let nsteps = (peak_fps / step_fps).round() as u64;
        let mut segments = Vec::new();
        let mut t = 0u64;
        for k in 1..=nsteps {
            segments.push((t, step_fps * k as f64));
            t += dwell_ns;
        }
        for k in (1..nsteps).rev() {
            segments.push((t, step_fps * k as f64));
            t += dwell_ns;
        }
        RateSchedule { segments }
    }

    /// Shift the whole schedule later by `delay_ns` (staggered starts,
    /// Experiment 2d).
    pub fn delayed(mut self, delay_ns: u64) -> RateSchedule {
        for (t, _) in &mut self.segments {
            *t += delay_ns;
        }
        self
    }

    /// Rate at time `t`.
    pub fn rate_at(&self, t_ns: u64) -> f64 {
        let mut rate = 0.0;
        for (from, fps) in &self.segments {
            if *from <= t_ns {
                rate = *fps;
            } else {
                break;
            }
        }
        rate
    }

    /// Total duration until the last segment begins (callers usually add one
    /// dwell for the final step).
    pub fn last_change_ns(&self) -> u64 {
        self.segments.last().map_or(0, |(t, _)| *t)
    }
}

/// What a simulated source emits.
#[derive(Clone, Debug)]
pub enum SourceKind {
    /// Constant-departure UDP frames of one wire size, spread over `flows`
    /// distinct port pairs.
    UdpCbr { wire_size: usize, flows: u16 },
    /// ICMP-echo-style probes: one request per `interval_ns`; the receiver
    /// reflects them and the source records the RTT.
    Ping { wire_size: usize, interval_ns: u64 },
}

/// A traffic source attached to one VR's sender subnet.
pub struct Source {
    /// Which VR's subnets this source uses (indexes `Scenario::vrs`).
    pub vr: usize,
    pub kind: SourceKind,
    pub schedule: RateSchedule,
    /// Pre-built template frames (UDP CBR), one per flow.
    templates: Vec<Frame>,
    next_flow: usize,
    builder: FrameBuilder,
    /// Frames emitted.
    pub emitted: u64,
}

impl Source {
    pub fn new(
        vr: usize,
        kind: SourceKind,
        schedule: RateSchedule,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
    ) -> Source {
        let mut builder = FrameBuilder::new(src_ip, dst_ip);
        let templates = match &kind {
            SourceKind::UdpCbr { wire_size, flows } => (0..*flows)
                .map(|i| {
                    builder
                        .udp_with_wire_size(20_000 + i, 30_000, *wire_size)
                        .expect("wire size validated by scenario")
                })
                .collect(),
            SourceKind::Ping { .. } => Vec::new(),
        };
        Source { vr, kind, schedule, templates, next_flow: 0, builder, emitted: 0 }
    }

    /// Emit the next frame at `now_ns`. Returns the frame and the delay
    /// until the next emission (`None` when the schedule has gone to zero —
    /// re-poll after `IDLE_RECHECK_NS`).
    pub fn emit(&mut self, now_ns: u64) -> (Option<Frame>, u64) {
        match self.kind {
            SourceKind::UdpCbr { .. } => {
                let rate = self.schedule.rate_at(now_ns);
                if rate <= 0.0 {
                    return (None, IDLE_RECHECK_NS);
                }
                let mut f = self.templates[self.next_flow].clone();
                self.next_flow = (self.next_flow + 1) % self.templates.len();
                f.ts_ns = now_ns;
                self.emitted += 1;
                (Some(f), (1e9 / rate) as u64)
            }
            SourceKind::Ping { wire_size, interval_ns } => {
                let f = self.build_ping(now_ns, wire_size);
                self.emitted += 1;
                (Some(f), interval_ns)
            }
        }
    }

    fn build_ping(&mut self, now_ns: u64, wire_size: usize) -> Frame {
        // An ICMP-echo-shaped frame: IPv4 proto 1, padded to the wire size.
        // We reuse the UDP builder then rewrite the protocol byte (the sim's
        // receiver only looks at the protocol and addresses).
        let mut f = self
            .builder
            .udp_with_wire_size(7, 7, wire_size)
            .expect("wire size validated by scenario");
        f.modify_bytes(|b| {
            b[14 + 9] = lvrm_net::headers::IPPROTO_ICMP;
            // Recompute the header checksum for the protocol change.
            b[14 + 10] = 0;
            b[14 + 11] = 0;
            let csum = lvrm_net::headers::internet_checksum(&b[14..14 + 20]);
            b[14 + 10..14 + 12].copy_from_slice(&csum.to_be_bytes());
        });
        f.ts_ns = now_ns;
        f
    }
}

/// Re-poll period while a schedule reads zero.
pub const IDLE_RECHECK_NS: u64 = 10_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    #[test]
    fn constant_schedule() {
        let s = RateSchedule::constant(1000.0);
        assert_eq!(s.rate_at(0), 1000.0);
        assert_eq!(s.rate_at(u64::MAX), 1000.0);
    }

    #[test]
    fn staircase_matches_experiment_2c() {
        // 60 -> 360 -> 60 Kfps, step 60K, dwell 5 s.
        let s = RateSchedule::staircase(60_000.0, 360_000.0, 5_000_000_000);
        assert_eq!(s.rate_at(0), 60_000.0);
        assert_eq!(s.rate_at(5_000_000_000), 120_000.0);
        assert_eq!(s.rate_at(25_000_000_000), 360_000.0);
        assert_eq!(s.rate_at(30_000_000_000), 300_000.0);
        assert_eq!(s.rate_at(50_000_000_000), 60_000.0);
        assert_eq!(s.last_change_ns(), 50_000_000_000);
    }

    #[test]
    fn delayed_shifts_start() {
        let s = RateSchedule::constant(100.0).delayed(1_000);
        assert_eq!(s.rate_at(999), 0.0);
        assert_eq!(s.rate_at(1_000), 100.0);
    }

    #[test]
    fn cbr_source_paces_by_rate() {
        let mut src = Source::new(
            0,
            SourceKind::UdpCbr { wire_size: 84, flows: 4 },
            RateSchedule::constant(1_000_000.0),
            ip(10, 0, 1, 1),
            ip(10, 0, 2, 1),
        );
        let (f, next) = src.emit(0);
        assert!(f.is_some());
        assert_eq!(next, 1_000); // 1 Mfps = 1 us apart
        assert_eq!(f.unwrap().wire_len(), 84);
    }

    #[test]
    fn cbr_cycles_flows() {
        let mut src = Source::new(
            0,
            SourceKind::UdpCbr { wire_size: 84, flows: 2 },
            RateSchedule::constant(1000.0),
            ip(10, 0, 1, 1),
            ip(10, 0, 2, 1),
        );
        let p1 = src.emit(0).0.unwrap().udp().unwrap().src_port();
        let p2 = src.emit(0).0.unwrap().udp().unwrap().src_port();
        let p3 = src.emit(0).0.unwrap().udp().unwrap().src_port();
        assert_ne!(p1, p2);
        assert_eq!(p1, p3);
    }

    #[test]
    fn zero_rate_idles() {
        let mut src = Source::new(
            0,
            SourceKind::UdpCbr { wire_size: 84, flows: 1 },
            RateSchedule::piecewise(vec![(1_000_000, 100.0)]),
            ip(10, 0, 1, 1),
            ip(10, 0, 2, 1),
        );
        let (f, next) = src.emit(0);
        assert!(f.is_none());
        assert_eq!(next, IDLE_RECHECK_NS);
    }

    #[test]
    fn ping_frames_are_icmp_with_valid_checksum() {
        let mut src = Source::new(
            0,
            SourceKind::Ping { wire_size: 84, interval_ns: 1_000_000 },
            RateSchedule::constant(0.0),
            ip(10, 0, 1, 1),
            ip(10, 0, 2, 1),
        );
        let (f, next) = src.emit(123);
        let f = f.unwrap();
        assert_eq!(next, 1_000_000);
        let ip_view = f.ipv4().unwrap();
        assert_eq!(ip_view.protocol(), lvrm_net::headers::IPPROTO_ICMP);
        assert!(ip_view.checksum_ok());
        assert_eq!(f.ts_ns, 123);
    }
}
