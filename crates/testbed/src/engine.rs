//! The discrete-event engine.
//!
//! A binary heap of `(time, sequence)`-ordered events. The sequence number
//! makes ordering total and deterministic: two events scheduled for the same
//! nanosecond fire in scheduling order, so simulation results are
//! reproducible regardless of heap internals.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event tag. The testbed uses a closed enum rather than boxed closures:
/// dispatch stays branch-predictable and the event queue allocation-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A traffic source should emit its next frame(s).
    SourceEmit { source: usize },
    /// A link finished delivering its head frame.
    LinkDeliver { link: usize },
    /// The gateway's main loop polls its NIC rings (LVRM or kernel model).
    GatewayPoll,
    /// A simulated VRI polls its incoming queues.
    VriPoll { slot: usize },
    /// A TCP retransmission timer fired.
    TcpTimeout { flow: usize, epoch: u32 },
    /// A TCP flow should try to send (start of flow, or after an ACK).
    TcpKick { flow: usize },
    /// Periodic measurement tick (time series sampling).
    Sample,
    /// One-shot snapshot at the warmup boundary (does not reschedule).
    WarmupSnapshot,
    /// A scheduled fault from the scenario's `FaultPlan` fires (index into
    /// the plan's event list).
    Fault { idx: usize },
    /// End of the run.
    Stop,
}

#[derive(PartialEq, Eq)]
struct Entry {
    key: Reverse<(u64, u64)>,
    event: Event,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The time-ordered event queue.
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
    now: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    pub fn new() -> EventQueue {
        EventQueue { heap: BinaryHeap::with_capacity(1024), seq: 0, now: 0 }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedule `event` at absolute time `at_ns`. Events in the past are
    /// clamped to `now` (they fire immediately, in scheduling order).
    pub fn schedule(&mut self, at_ns: u64, event: Event) {
        let at = at_ns.max(self.now);
        self.heap.push(Entry { key: Reverse((at, self.seq)), event });
        self.seq += 1;
    }

    /// Schedule `event` after a delay.
    pub fn schedule_in(&mut self, delay_ns: u64, event: Event) {
        self.schedule(self.now + delay_ns, event);
    }

    /// Pop the next event, advancing `now`.
    pub fn pop(&mut self) -> Option<(u64, Event)> {
        let e = self.heap.pop()?;
        let Reverse((t, _)) = e.key;
        debug_assert!(t >= self.now, "event queue went backwards");
        self.now = t;
        Some((t, e.event))
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, Event::GatewayPoll);
        q.schedule(10, Event::Sample);
        q.schedule(20, Event::Stop);
        assert_eq!(q.pop(), Some((10, Event::Sample)));
        assert_eq!(q.pop(), Some((20, Event::Stop)));
        assert_eq!(q.pop(), Some((30, Event::GatewayPoll)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(100, Event::SourceEmit { source: i });
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((100, Event::SourceEmit { source: i })));
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(50, Event::Stop);
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 50);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(100, Event::Stop);
        q.pop();
        q.schedule(10, Event::Sample); // in the past
        let (t, ev) = q.pop().unwrap();
        assert_eq!(t, 100);
        assert_eq!(ev, Event::Sample);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(100, Event::Stop);
        q.pop();
        q.schedule_in(25, Event::Sample);
        assert_eq!(q.pop(), Some((125, Event::Sample)));
    }
}
