//! A Reno-style TCP model for the FTP experiments (3c and 4).
//!
//! The paper's TCP workload is real FTP transfers; what matters for the
//! reproduced figures is TCP's *congestion response* to the gateway's
//! queueing, loss and (under frame-based balancing) reordering. This module
//! implements the sender and receiver halves of a Reno flow at segment
//! granularity: slow start, congestion avoidance, duplicate-ACK fast
//! retransmit with fast recovery, retransmission timeout with exponential
//! backoff, Karn-style RTT sampling, and a fixed advertised receive window
//! (the paper notes the FTP receiver's window/flow control caps source
//! rates; we model it as an advertised window).
//!
//! The module is pure protocol logic — the scenario world moves the frames.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use lvrm_net::headers::tcp_flags;
use lvrm_net::{Frame, FrameBuilder};

/// Well-known port of the simulated FTP data sink.
pub const FTP_DATA_PORT: u16 = 21;

/// Flow-level configuration.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Payload bytes per segment (1460 fills a 1538-byte wire frame).
    pub mss: usize,
    /// Advertised receive window, in segments.
    pub rwnd_segments: u32,
    /// Initial slow-start threshold, in segments.
    pub init_ssthresh: f64,
    /// Minimum retransmission timeout.
    pub min_rto_ns: u64,
    /// Pace segments no closer than this (None = window-limited only).
    pub pacing_ns: Option<u64>,
    /// Duplicate ACKs before fast retransmit (RFC 5681 uses 3; raise it
    /// TCP-NCR style when the path reorders, e.g. replicated dispatch).
    pub dupack_threshold: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            rwnd_segments: 44, // ~64 KB
            init_ssthresh: 64.0,
            min_rto_ns: 200_000_000,
            pacing_ns: None,
            dupack_threshold: 3,
        }
    }
}

/// What the sender wants the world to do after an input.
#[derive(Debug, Default)]
pub struct SenderActions {
    /// Segments (sequence numbers) to (re)transmit now.
    pub transmit: Vec<u64>,
    /// Re-arm the RTO timer (with the returned epoch) at `now + rto`.
    pub rearm_timer: bool,
}

/// One bulk TCP flow (sender + receiver state, both ends simulated).
pub struct TcpFlow {
    pub id: usize,
    /// VR whose subnets carry this flow.
    pub vr: usize,
    pub cfg: TcpConfig,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    pub src_port: u16,
    data_builder: FrameBuilder,
    ack_builder: FrameBuilder,

    // --- sender ---
    /// Congestion window, segments (fractional for CA's 1/cwnd growth).
    pub cwnd: f64,
    pub ssthresh: f64,
    /// First unacknowledged byte.
    snd_una: u64,
    /// Next new byte to send.
    snd_nxt: u64,
    dup_acks: u32,
    /// Reno fast recovery: inflight high-water at loss detection.
    recover: u64,
    in_recovery: bool,
    /// Smoothed RTT state (RFC 6298).
    srtt_ns: Option<f64>,
    rttvar_ns: f64,
    pub rto_ns: u64,
    /// Timestamp + sequence of the segment being timed (Karn's algorithm:
    /// only never-retransmitted segments are timed).
    rtt_probe: Option<(u64, u64)>,
    /// Invalidates stale timer events.
    pub timer_epoch: u32,
    backoff: u32,
    earliest_next_send_ns: u64,

    // --- receiver ---
    rcv_nxt: u64,
    /// Out-of-order segment starts received beyond `rcv_nxt`.
    ooo: BTreeSet<u64>,

    // --- accounting ---
    /// In-order bytes delivered to the receiving application.
    pub delivered_bytes: u64,
    pub retransmits: u64,
    pub timeouts: u64,
}

impl TcpFlow {
    pub fn new(
        id: usize,
        vr: usize,
        cfg: TcpConfig,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
    ) -> TcpFlow {
        TcpFlow {
            id,
            vr,
            cfg,
            src_ip,
            dst_ip,
            src_port,
            data_builder: FrameBuilder::new(src_ip, dst_ip),
            ack_builder: FrameBuilder::new(dst_ip, src_ip),
            cwnd: 2.0,
            ssthresh: cfg.init_ssthresh,
            snd_una: 0,
            snd_nxt: 0,
            dup_acks: 0,
            recover: 0,
            in_recovery: false,
            srtt_ns: None,
            rttvar_ns: 0.0,
            rto_ns: cfg.min_rto_ns.max(1_000_000_000),
            rtt_probe: None,
            timer_epoch: 0,
            backoff: 0,
            earliest_next_send_ns: 0,
            rcv_nxt: 0,
            ooo: BTreeSet::new(),
            delivered_bytes: 0,
            retransmits: 0,
            timeouts: 0,
        }
    }

    /// The flow's endpoints `(sender, receiver)`.
    pub fn endpoints(&self) -> (Ipv4Addr, Ipv4Addr) {
        (self.src_ip, self.dst_ip)
    }

    /// Effective send window in bytes.
    fn window_bytes(&self) -> u64 {
        let w = self.cwnd.min(self.cfg.rwnd_segments as f64).max(1.0);
        (w * self.cfg.mss as f64) as u64
    }

    /// Bytes in flight.
    pub fn inflight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Can the sender emit a new segment at `now_ns`?
    pub fn can_send(&self, now_ns: u64) -> bool {
        if now_ns < self.earliest_next_send_ns {
            return false;
        }
        self.inflight() + self.cfg.mss as u64 <= self.window_bytes()
    }

    /// Emit the next *new* segment. Caller must have checked `can_send`.
    pub fn send_new(&mut self, now_ns: u64) -> Frame {
        let seq = self.snd_nxt;
        self.snd_nxt += self.cfg.mss as u64;
        if self.rtt_probe.is_none() {
            self.rtt_probe = Some((now_ns, seq));
        }
        if let Some(p) = self.cfg.pacing_ns {
            self.earliest_next_send_ns = now_ns + p;
        }
        self.build_data(seq, now_ns)
    }

    /// Build the data frame for `seq` (also used for retransmissions).
    pub fn build_data(&mut self, seq: u64, now_ns: u64) -> Frame {
        let payload = vec![0u8; self.cfg.mss];
        let mut f = self.data_builder.tcp(
            self.src_port,
            FTP_DATA_PORT,
            seq as u32,
            0,
            tcp_flags::ACK | tcp_flags::PSH,
            0xffff,
            &payload,
        );
        f.ts_ns = now_ns;
        f
    }

    // ----------------------------------------------------------------- RX

    /// Receiver got a data segment; returns the cumulative ACK to send back.
    pub fn on_data_at_receiver(&mut self, seq: u64, len: usize, now_ns: u64) -> Frame {
        let end = seq + len as u64;
        if end > self.rcv_nxt {
            if seq <= self.rcv_nxt {
                self.delivered_bytes += end - self.rcv_nxt;
                self.rcv_nxt = end;
                // Drain any contiguous out-of-order segments.
                while let Some(&s) = self.ooo.first() {
                    if s > self.rcv_nxt {
                        break;
                    }
                    self.ooo.pop_first();
                    let seg_end = s + self.cfg.mss as u64;
                    if seg_end > self.rcv_nxt {
                        self.delivered_bytes += seg_end - self.rcv_nxt;
                        self.rcv_nxt = seg_end;
                    }
                }
            } else {
                self.ooo.insert(seq);
            }
        }
        let mut ack = self.ack_builder.tcp(
            FTP_DATA_PORT,
            self.src_port,
            0,
            self.rcv_nxt as u32,
            tcp_flags::ACK,
            self.cfg.rwnd_segments as u16, // window in segments (model unit)
            &[],
        );
        ack.ts_ns = now_ns;
        ack
    }

    // ----------------------------------------------------------------- ACK

    /// Sender got a cumulative ACK for byte `ack`.
    pub fn on_ack_at_sender(&mut self, ack: u64, now_ns: u64) -> SenderActions {
        let mut act = SenderActions::default();
        if ack > self.snd_una {
            // New data acknowledged.
            self.snd_una = ack;
            self.backoff = 0;
            // RTT sample (Karn: only if the probe segment is covered and was
            // never retransmitted — retransmission clears the probe).
            if let Some((t0, seq)) = self.rtt_probe {
                if ack > seq {
                    self.sample_rtt(now_ns.saturating_sub(t0));
                    self.rtt_probe = None;
                }
            }
            if self.in_recovery {
                if ack >= self.recover {
                    // Full recovery: deflate.
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh;
                    self.dup_acks = 0;
                } else {
                    // Partial ACK (NewReno-lite): retransmit the next hole.
                    act.transmit.push(self.snd_una);
                    self.retransmits += 1;
                }
            } else {
                self.dup_acks = 0;
                if self.cwnd < self.ssthresh {
                    self.cwnd += 1.0; // slow start
                } else {
                    self.cwnd += 1.0 / self.cwnd; // congestion avoidance
                }
            }
            act.rearm_timer = self.inflight() > 0;
            if act.rearm_timer {
                self.timer_epoch += 1;
            }
        } else if self.inflight() > 0 {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.in_recovery {
                self.cwnd += 1.0; // inflation
            } else if self.dup_acks == self.cfg.dupack_threshold {
                // Fast retransmit.
                self.ssthresh = (self.inflight() as f64 / self.cfg.mss as f64 / 2.0).max(2.0);
                self.cwnd = self.ssthresh + self.cfg.dupack_threshold as f64;
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                self.rtt_probe = None; // Karn
                act.transmit.push(self.snd_una);
                self.retransmits += 1;
                act.rearm_timer = true;
                self.timer_epoch += 1;
            }
        }
        act
    }

    /// RTO fired with epoch `epoch`. Stale epochs are ignored.
    pub fn on_timeout(&mut self, epoch: u32, _now_ns: u64) -> SenderActions {
        let mut act = SenderActions::default();
        if epoch != self.timer_epoch || self.inflight() == 0 {
            return act;
        }
        self.timeouts += 1;
        self.ssthresh = (self.inflight() as f64 / self.cfg.mss as f64 / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.in_recovery = false;
        self.dup_acks = 0;
        self.rtt_probe = None;
        self.backoff = (self.backoff + 1).min(6);
        act.transmit.push(self.snd_una);
        self.retransmits += 1;
        act.rearm_timer = true;
        self.timer_epoch += 1;
        act
    }

    /// Current RTO including exponential backoff.
    pub fn current_rto_ns(&self) -> u64 {
        self.rto_ns << self.backoff
    }

    fn sample_rtt(&mut self, rtt_ns: u64) {
        let r = rtt_ns as f64;
        match self.srtt_ns {
            None => {
                self.srtt_ns = Some(r);
                self.rttvar_ns = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar_ns = 0.75 * self.rttvar_ns + 0.25 * (srtt - r).abs();
                self.srtt_ns = Some(0.875 * srtt + 0.125 * r);
            }
        }
        let rto = self.srtt_ns.unwrap() + 4.0 * self.rttvar_ns;
        self.rto_ns = (rto as u64).max(self.cfg.min_rto_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> TcpFlow {
        TcpFlow::new(
            0,
            0,
            TcpConfig::default(),
            Ipv4Addr::new(10, 0, 1, 1),
            Ipv4Addr::new(10, 0, 2, 1),
            40_000,
        )
    }

    const MSS: u64 = 1460;

    /// Deliver `seqs` to the receiver and feed the resulting ACKs back,
    /// returning retransmissions requested.
    fn ideal_exchange(f: &mut TcpFlow, seqs: &[u64], now: u64) -> Vec<u64> {
        let mut retx = Vec::new();
        for &s in seqs {
            let ack_frame = f.on_data_at_receiver(s, MSS as usize, now);
            let ack = ack_frame.tcp().unwrap().ack() as u64;
            let act = f.on_ack_at_sender(ack, now + 1);
            retx.extend(act.transmit);
        }
        retx
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut f = flow();
        assert_eq!(f.cwnd as u32, 2);
        // Send 2 segments, get both acked: cwnd -> 4.
        let s1 = f.send_new(0).tcp().unwrap().seq() as u64;
        let s2 = f.send_new(0).tcp().unwrap().seq() as u64;
        ideal_exchange(&mut f, &[s1, s2], 100);
        assert_eq!(f.cwnd as u32, 4);
        assert_eq!(f.inflight(), 0);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let mut f = flow();
        f.ssthresh = 2.0; // force CA immediately
        let s1 = f.send_new(0).tcp().unwrap().seq() as u64;
        ideal_exchange(&mut f, &[s1], 100);
        // cwnd = 2 + 1/2 = 2.5
        assert!((f.cwnd - 2.5).abs() < 1e-9);
    }

    #[test]
    fn window_limits_inflight() {
        let mut f = flow();
        f.cwnd = 3.0;
        assert!(f.can_send(0));
        f.send_new(0);
        f.send_new(0);
        f.send_new(0);
        assert!(!f.can_send(0), "3 segments fill a cwnd of 3");
    }

    #[test]
    fn receive_window_caps_cwnd() {
        let mut f = flow();
        f.cwnd = 1e9;
        assert_eq!(f.window_bytes(), f.cfg.rwnd_segments as u64 * MSS);
    }

    #[test]
    fn three_dup_acks_trigger_fast_retransmit() {
        let mut f = flow();
        f.cwnd = 10.0;
        let mut seqs = Vec::new();
        for _ in 0..6 {
            seqs.push(f.send_new(0).tcp().unwrap().seq() as u64);
        }
        // Segment 0 lost; 1..=3 arrive => 3 dup ACKs (ack stays 0).
        let mut retx = Vec::new();
        for &s in &seqs[1..4] {
            let ackf = f.on_data_at_receiver(s, MSS as usize, 50);
            let ack = ackf.tcp().unwrap().ack() as u64;
            assert_eq!(ack, 0, "holes must not advance the cumulative ACK");
            retx.extend(f.on_ack_at_sender(ack, 60).transmit);
        }
        assert_eq!(retx, vec![0], "fast retransmit of the lost head");
        assert!(f.in_recovery);
        assert_eq!(f.retransmits, 1);
        // Retransmission arrives: receiver fills the hole through seg 3.
        let ackf = f.on_data_at_receiver(0, MSS as usize, 100);
        let ack = ackf.tcp().unwrap().ack() as u64;
        assert_eq!(ack, 4 * MSS);
        let act = f.on_ack_at_sender(ack, 110);
        // recover = 6*MSS > 4*MSS: partial ack retransmits the next hole...
        assert_eq!(act.transmit, vec![4 * MSS]);
    }

    #[test]
    fn raised_dupack_threshold_tolerates_reordering() {
        // TCP-NCR style: with the threshold above the reorder depth, a
        // late-but-not-lost segment must not trigger a spurious retransmit.
        let cfg = TcpConfig { dupack_threshold: 6, ..TcpConfig::default() };
        let mut f =
            TcpFlow::new(0, 0, cfg, Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 2, 1), 40_000);
        f.cwnd = 10.0;
        let mut seqs = Vec::new();
        for _ in 0..6 {
            seqs.push(f.send_new(0).tcp().unwrap().seq() as u64);
        }
        // Segment 0 is merely reordered behind 1..=4: four dup ACKs arrive,
        // below the raised threshold of 6.
        for &s in &seqs[1..5] {
            let ackf = f.on_data_at_receiver(s, MSS as usize, 50);
            let ack = ackf.tcp().unwrap().ack() as u64;
            let act = f.on_ack_at_sender(ack, 60);
            assert!(act.transmit.is_empty(), "no spurious fast retransmit");
        }
        assert!(!f.in_recovery);
        assert_eq!(f.retransmits, 0);
        // The straggler lands: cumulative ACK jumps, dup-ack count resets.
        let ackf = f.on_data_at_receiver(0, MSS as usize, 100);
        let ack = ackf.tcp().unwrap().ack() as u64;
        assert_eq!(ack, 5 * MSS);
        f.on_ack_at_sender(ack, 110);
        assert_eq!(f.dup_acks, 0);
        assert_eq!(f.retransmits, 0, "reordering absorbed without loss response");
    }

    #[test]
    fn recovery_completes_and_deflates() {
        let mut f = flow();
        f.cwnd = 8.0;
        for _ in 0..4 {
            f.send_new(0);
        }
        // Lose seg 0, deliver 1..3 (3 dupacks -> recovery).
        for s in [MSS, 2 * MSS, 3 * MSS] {
            let ackf = f.on_data_at_receiver(s, MSS as usize, 10);
            let ack = ackf.tcp().unwrap().ack() as u64;
            f.on_ack_at_sender(ack, 20);
        }
        assert!(f.in_recovery);
        // Retransmit arrives; full cumulative ACK ends recovery.
        let ackf = f.on_data_at_receiver(0, MSS as usize, 30);
        let ack = ackf.tcp().unwrap().ack() as u64;
        assert_eq!(ack, 4 * MSS);
        f.on_ack_at_sender(ack, 40);
        assert!(!f.in_recovery);
        assert!((f.cwnd - f.ssthresh).abs() < 1e-9, "deflate to ssthresh");
    }

    #[test]
    fn timeout_collapses_cwnd_and_backs_off() {
        let mut f = flow();
        f.cwnd = 16.0;
        for _ in 0..4 {
            f.send_new(0);
        }
        let epoch = f.timer_epoch;
        let act = f.on_timeout(epoch, 1_000_000_000);
        assert_eq!(act.transmit, vec![0]);
        assert_eq!(f.cwnd as u32, 1);
        assert_eq!(f.timeouts, 1);
        let rto1 = f.current_rto_ns();
        let act2 = f.on_timeout(f.timer_epoch, 2_000_000_000);
        assert!(!act2.transmit.is_empty());
        assert!(f.current_rto_ns() > rto1, "exponential backoff");
    }

    #[test]
    fn stale_timeout_epoch_is_ignored() {
        let mut f = flow();
        f.send_new(0);
        let old = f.timer_epoch;
        let ackf = f.on_data_at_receiver(0, MSS as usize, 10);
        f.on_ack_at_sender(ackf.tcp().unwrap().ack() as u64, 20); // bumps epoch
        let act = f.on_timeout(old, 30);
        assert!(act.transmit.is_empty());
        assert_eq!(f.timeouts, 0);
    }

    #[test]
    fn receiver_reassembles_out_of_order() {
        let mut f = flow();
        // Segments arrive 1, 2, 0.
        let a1 = f.on_data_at_receiver(MSS, MSS as usize, 0);
        assert_eq!(a1.tcp().unwrap().ack(), 0);
        let a2 = f.on_data_at_receiver(2 * MSS, MSS as usize, 1);
        assert_eq!(a2.tcp().unwrap().ack(), 0);
        let a3 = f.on_data_at_receiver(0, MSS as usize, 2);
        assert_eq!(a3.tcp().unwrap().ack() as u64, 3 * MSS);
        assert_eq!(f.delivered_bytes, 3 * MSS);
    }

    #[test]
    fn duplicate_data_does_not_double_count_goodput() {
        let mut f = flow();
        f.on_data_at_receiver(0, MSS as usize, 0);
        f.on_data_at_receiver(0, MSS as usize, 1);
        assert_eq!(f.delivered_bytes, MSS);
    }

    #[test]
    fn rtt_sampling_sets_rto() {
        let mut f = flow();
        let cfg_min = f.cfg.min_rto_ns;
        f.send_new(1_000_000);
        let ackf = f.on_data_at_receiver(0, MSS as usize, 1_100_000);
        f.on_ack_at_sender(ackf.tcp().unwrap().ack() as u64, 1_100_000);
        // RTT 100 us -> RTO clamps to the configured minimum.
        assert_eq!(f.rto_ns, cfg_min);
        assert!(f.srtt_ns.is_some());
    }

    #[test]
    fn pacing_gates_sends() {
        let cfg = TcpConfig { pacing_ns: Some(1_000_000), ..Default::default() };
        let mut f =
            TcpFlow::new(0, 0, cfg, Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 2, 1), 40_000);
        f.cwnd = 100.0;
        assert!(f.can_send(0));
        f.send_new(0);
        assert!(!f.can_send(500_000));
        assert!(f.can_send(1_000_000));
    }
}
