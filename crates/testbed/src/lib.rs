//! The multi-core testbed simulator.
//!
//! The paper evaluates LVRM on a physical testbed (Fig. 4.1): two sender
//! hosts and two receiver hosts on opposite sub-networks, joined by a
//! gateway with two quad-core Xeons and 1-Gbit links. None of that hardware
//! exists here, so this crate rebuilds the testbed as a **deterministic
//! discrete-event simulation**:
//!
//! * [`engine`] — the event loop (nanosecond clock, stable event ordering);
//! * [`link`] — 1-Gbps links with serialization delay, propagation and a
//!   bounded drop-tail buffer;
//! * [`cost`] — the per-frame CPU cost model, calibrated against the
//!   paper's measured anchors (448 Kfps native forwarding, 3.7 Mfps
//!   LVRM-only, the raw-socket/PF_RING gap, hypervisor overheads);
//! * [`cpu`] — per-core busy-time accounting bucketed into user/system/
//!   softirq (for the Fig. 4.3 CPU-usage breakdown);
//! * [`gateway`] — the forwarding mechanisms under test: native kernel IP
//!   forwarding, general-purpose hypervisors (VMware-Server-like and
//!   QEMU-KVM-like cost profiles), and **the real LVRM monitor** from
//!   `lvrm-core` driven by simulated time and hosted on simulated cores;
//! * [`traffic`] — UDP constant-bit-rate sources with staircase schedules
//!   (Experiments 2c–2e) and ping probes (RTT measurements);
//! * [`tcp`] — a Reno-style TCP model (slow start, AIMD, fast retransmit,
//!   RTO, receiver window) plus the FTP workload of Experiments 3c/4;
//! * [`scenario`] — experiment drivers: fixed-rate runs, achievable-
//!   throughput search under the paper's 2 % loss criterion, time series;
//! * [`scenarios`] — a declarative scenario DSL on top of [`scenario`]:
//!   multi-tenant specs composing heavy-tailed flow mixes, diurnal ramps,
//!   flash crowds and SYN/UDP floods, reporting the four conservation
//!   identities and per-tenant goodput as structured results.
//!
//! Everything is seeded and deterministic: the same scenario produces the
//! same figures bit-for-bit.

pub mod cost;
pub mod cpu;
pub mod engine;
pub mod gateway;
pub mod link;
pub mod scenario;
pub mod scenarios;
pub mod tcp;
pub mod traffic;

pub use cost::CostModel;
pub use cpu::{CpuAccounting, CpuBucket};
pub use engine::EventQueue;
pub use gateway::{ForwardingMech, HypervisorKind};
pub use gateway::{VrSpec, VrType};
pub use scenario::{Scenario, ScenarioResult};
pub use scenarios::{
    shard_split, ConservationReport, ScenarioReport, ScenarioSpec, TenantSpec, WorkloadSpec,
};
pub use traffic::RateSchedule;
