//! Per-core busy-time accounting.
//!
//! Each simulated core has a busy-until horizon: work is serialized on the
//! core by starting at `max(now, busy_until)`. Busy nanoseconds are bucketed
//! the way `top` reports them — user (`us`), system (`sy`), software
//! interrupt (`si`) — so the Fig. 4.3 CPU-usage breakdown can be
//! regenerated. The mapping: LVRM's and the VRIs' own computation is user
//! time; socket syscalls (raw-socket copies, sends) are system time; NIC
//! polling and the in-kernel forwarding path are softirq time.

use lvrm_core::topology::CoreId;

/// `top`-style CPU time classes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CpuBucket {
    /// User-space computation (`us`).
    User,
    /// Kernel work on behalf of syscalls (`sy`).
    System,
    /// Software interrupts / driver polling (`si`).
    SoftIrq,
}

#[derive(Clone, Copy, Default, Debug)]
struct CoreUsage {
    busy_until_ns: u64,
    user_ns: u64,
    system_ns: u64,
    softirq_ns: u64,
}

/// Accounting for a fixed set of cores.
#[derive(Clone, Debug)]
pub struct CpuAccounting {
    cores: Vec<CoreUsage>,
}

impl CpuAccounting {
    pub fn new(num_cores: usize) -> CpuAccounting {
        CpuAccounting { cores: vec![CoreUsage::default(); num_cores] }
    }

    fn core_mut(&mut self, core: CoreId) -> &mut CoreUsage {
        &mut self.cores[core.0 as usize]
    }

    /// Serialize `cost_ns` of `bucket` work onto `core`, starting no earlier
    /// than `now_ns`. Returns the completion time.
    pub fn charge(&mut self, core: CoreId, now_ns: u64, cost_ns: u64, bucket: CpuBucket) -> u64 {
        let c = self.core_mut(core);
        let start = now_ns.max(c.busy_until_ns);
        let end = start + cost_ns;
        c.busy_until_ns = end;
        match bucket {
            CpuBucket::User => c.user_ns += cost_ns,
            CpuBucket::System => c.system_ns += cost_ns,
            CpuBucket::SoftIrq => c.softirq_ns += cost_ns,
        }
        end
    }

    /// When `core` next becomes free.
    pub fn busy_until(&self, core: CoreId) -> u64 {
        self.cores[core.0 as usize].busy_until_ns
    }

    /// Would work submitted at `now_ns` start immediately?
    pub fn is_free(&self, core: CoreId, now_ns: u64) -> bool {
        self.busy_until(core) <= now_ns
    }

    /// Busy nanoseconds of `core` in each bucket `(us, sy, si)`.
    pub fn busy_ns(&self, core: CoreId) -> (u64, u64, u64) {
        let c = &self.cores[core.0 as usize];
        (c.user_ns, c.system_ns, c.softirq_ns)
    }

    /// Utilization of `core` over `[0, elapsed_ns]` per bucket, in percent.
    pub fn utilization_pct(&self, core: CoreId, elapsed_ns: u64) -> (f64, f64, f64) {
        if elapsed_ns == 0 {
            return (0.0, 0.0, 0.0);
        }
        let (us, sy, si) = self.busy_ns(core);
        let f = 100.0 / elapsed_ns as f64;
        (us as f64 * f, sy as f64 * f, si as f64 * f)
    }

    /// Total busy across all cores `(us, sy, si)`.
    pub fn total_busy_ns(&self) -> (u64, u64, u64) {
        self.cores.iter().fold((0, 0, 0), |acc, c| {
            (acc.0 + c.user_ns, acc.1 + c.system_ns, acc.2 + c.softirq_ns)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_serializes_on_a_core() {
        let mut cpu = CpuAccounting::new(2);
        let end1 = cpu.charge(CoreId(0), 100, 50, CpuBucket::User);
        assert_eq!(end1, 150);
        // Submitted "in the past" relative to the horizon: queues behind.
        let end2 = cpu.charge(CoreId(0), 120, 30, CpuBucket::User);
        assert_eq!(end2, 180);
        // Other core is independent.
        let end3 = cpu.charge(CoreId(1), 120, 30, CpuBucket::User);
        assert_eq!(end3, 150);
    }

    #[test]
    fn idle_gap_does_not_accumulate_busy() {
        let mut cpu = CpuAccounting::new(1);
        cpu.charge(CoreId(0), 0, 100, CpuBucket::SoftIrq);
        cpu.charge(CoreId(0), 1_000, 100, CpuBucket::SoftIrq);
        let (_, _, si) = cpu.busy_ns(CoreId(0));
        assert_eq!(si, 200);
        assert_eq!(cpu.busy_until(CoreId(0)), 1_100);
    }

    #[test]
    fn buckets_accumulate_separately() {
        let mut cpu = CpuAccounting::new(1);
        cpu.charge(CoreId(0), 0, 10, CpuBucket::User);
        cpu.charge(CoreId(0), 0, 20, CpuBucket::System);
        cpu.charge(CoreId(0), 0, 30, CpuBucket::SoftIrq);
        assert_eq!(cpu.busy_ns(CoreId(0)), (10, 20, 30));
        assert_eq!(cpu.total_busy_ns(), (10, 20, 30));
    }

    #[test]
    fn utilization_percent() {
        let mut cpu = CpuAccounting::new(1);
        cpu.charge(CoreId(0), 0, 250_000, CpuBucket::User);
        let (us, sy, _) = cpu.utilization_pct(CoreId(0), 1_000_000);
        assert!((us - 25.0).abs() < 1e-9);
        assert_eq!(sy, 0.0);
    }

    #[test]
    fn is_free_tracks_horizon() {
        let mut cpu = CpuAccounting::new(1);
        assert!(cpu.is_free(CoreId(0), 0));
        cpu.charge(CoreId(0), 0, 100, CpuBucket::User);
        assert!(!cpu.is_free(CoreId(0), 50));
        assert!(cpu.is_free(CoreId(0), 100));
    }
}
