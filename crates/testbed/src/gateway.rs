//! Gateway-side pieces: VR specifications, forwarding mechanisms, and the
//! simulated VRI host that LVRM spawns instances into.

use std::net::Ipv4Addr;

use lvrm_click::ClickVr;
use lvrm_core::fault::FaultInjectable;
use lvrm_core::host::{VriHost, VriSpec};
use lvrm_core::vri::LvrmAdapter;
use lvrm_core::{DispatchMode, ReplicaLedger, VrId, VriId};
use lvrm_ipc::VriEndpoint;
use lvrm_net::Frame;
use lvrm_router::{FastVr, Route, RouteTable, VirtualRouter};

/// Which hypervisor cost profile to apply.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HypervisorKind {
    VmwareServer,
    QemuKvm,
}

/// The forwarding mechanism deployed on the gateway (Experiment 1a's axis).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ForwardingMech {
    /// Native Linux IP forwarding in the kernel.
    Native,
    /// A guest VM behind a general-purpose hypervisor, bridged.
    Hypervisor(HypervisorKind),
    /// LVRM hosting VRs in user space.
    Lvrm,
}

impl ForwardingMech {
    pub fn name(self) -> &'static str {
        match self {
            ForwardingMech::Native => "native-linux",
            ForwardingMech::Hypervisor(HypervisorKind::VmwareServer) => "vmware-server",
            ForwardingMech::Hypervisor(HypervisorKind::QemuKvm) => "qemu-kvm",
            ForwardingMech::Lvrm => "lvrm",
        }
    }
}

/// Hosted VR implementation type (the two the paper evaluates, §3.8).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VrType {
    /// The minimal "C++ VR".
    Cpp { dummy_load_ns: u64 },
    /// The Click modular router VR.
    Click { dummy_load_ns: u64 },
}

impl VrType {
    pub fn name(self) -> &'static str {
        match self {
            VrType::Cpp { .. } => "cpp",
            VrType::Click { .. } => "click",
        }
    }
}

/// Scenario-level description of one hosted VR.
#[derive(Clone, Debug)]
pub struct VrSpec {
    pub name: String,
    /// Subnet the VR's senders live in (frames classified by source).
    pub sender_subnet: (Ipv4Addr, u8),
    /// Subnet the VR's receivers live in.
    pub receiver_subnet: (Ipv4Addr, u8),
    pub vr_type: VrType,
    /// Admission weight under overload shedding (`None` = the LVRM config's
    /// default weight).
    pub shed_weight: Option<f64>,
    /// Per-VR dispatch override (`None` = the LVRM config's global mode).
    /// `Replicated` spreads every frame across the VR's VRIs and replicates
    /// per-flow state via LVSU batches (DESIGN.md §14).
    pub dispatch: Option<DispatchMode>,
    /// Extra VRI service cost charged per payload byte, modelling
    /// compute-bound per-frame work (deep inspection, crypto). This is what
    /// makes a single elephant flow saturate one core while its ACKs stay
    /// cheap.
    pub per_byte_load_ns: u64,
}

impl VrSpec {
    /// The k-th VR of a scenario: senders in `10.k.1.0/24`, receivers in
    /// `10.k.2.0/24`.
    pub fn numbered(k: usize, vr_type: VrType) -> VrSpec {
        VrSpec {
            name: format!("vr{k}"),
            sender_subnet: (Ipv4Addr::new(10, k as u8, 1, 0), 24),
            receiver_subnet: (Ipv4Addr::new(10, k as u8, 2, 0), 24),
            vr_type,
            shed_weight: None,
            dispatch: None,
            per_byte_load_ns: 0,
        }
    }

    /// Builder-style admission-weight override.
    pub fn with_shed_weight(mut self, weight: f64) -> VrSpec {
        self.shed_weight = Some(weight);
        self
    }

    /// Builder-style dispatch-mode override.
    pub fn with_dispatch(mut self, mode: DispatchMode) -> VrSpec {
        self.dispatch = Some(mode);
        self
    }

    /// Builder-style per-byte service-cost override.
    pub fn with_per_byte_load_ns(mut self, ns: u64) -> VrSpec {
        self.per_byte_load_ns = ns;
        self
    }

    /// An address for host `h` on the sender side.
    pub fn sender_ip(&self, h: u8) -> Ipv4Addr {
        let o = self.sender_subnet.0.octets();
        Ipv4Addr::new(o[0], o[1], o[2], h)
    }

    /// An address for host `h` on the receiver side.
    pub fn receiver_ip(&self, h: u8) -> Ipv4Addr {
        let o = self.receiver_subnet.0.octets();
        Ipv4Addr::new(o[0], o[1], o[2], h)
    }

    /// Both subnets, for LVRM classification (forward traffic and replies).
    pub fn subnets(&self) -> [(Ipv4Addr, u8); 2] {
        [self.sender_subnet, self.receiver_subnet]
    }

    /// Build the router template for this VR: interface 0 faces the sender
    /// sub-network, interface 1 the receiver sub-network (Fig. 4.1).
    pub fn build_router(&self) -> Box<dyn VirtualRouter> {
        match self.vr_type {
            VrType::Cpp { dummy_load_ns } => {
                let mut routes = RouteTable::new();
                routes.insert(Route {
                    prefix: self.receiver_subnet.0,
                    len: self.receiver_subnet.1,
                    iface: 1,
                    next_hop: None,
                });
                routes.insert(Route {
                    prefix: self.sender_subnet.0,
                    len: self.sender_subnet.1,
                    iface: 0,
                    next_hop: None,
                });
                Box::new(FastVr::new(&self.name, routes).with_dummy_load_ns(dummy_load_ns))
            }
            VrType::Click { dummy_load_ns } => {
                let cfg = "FromDevice(0) -> ToDevice(1); FromDevice(1) -> ToDevice(0);";
                Box::new(
                    ClickVr::from_config(&self.name, cfg)
                        .expect("static minimal-forwarding config compiles")
                        .with_dummy_load_ns(dummy_load_ns),
                )
            }
        }
    }
}

/// A VRI living inside the simulation.
pub struct SimVriSlot {
    pub spec: VriSpec,
    /// The VRI's side of the queues, wrapped in the production
    /// `fromLVRM()`/`toLVRM()` adapter so service-rate estimation and
    /// reporting run in simulation exactly as on real threads (§3.6).
    /// `None` once the slot is dead and its endpoint moved to the host's
    /// reap stash.
    pub adapter: Option<LvrmAdapter>,
    pub router: Box<dyn VirtualRouter>,
    pub alive: bool,
    /// Fault injection: a stalled slot stops servicing its queues (and thus
    /// stops heartbeating) while its endpoint stays attached.
    pub stalled: bool,
    /// Spawn completes (and polling may begin) at this simulated time.
    pub active_after_ns: u64,
    /// A `VriPoll` event is in flight for this slot.
    pub poll_scheduled: bool,
    pub processed: u64,
    /// Replicated-dispatch state books (DESIGN.md §14). Lazily created by
    /// the world on the first poll of a slot whose VR runs replicated.
    pub ledger: Option<ReplicaLedger>,
}

/// The simulated host: LVRM spawns VRIs as slots; the world schedules their
/// poll events and charges their core time.
#[derive(Default)]
pub struct SimHost {
    pub slots: Vec<SimVriSlot>,
    /// Slot indices spawned since the world last drained this list.
    pub newly_spawned: Vec<usize>,
    /// Kills since last drained (for charging teardown cost).
    pub newly_killed: Vec<usize>,
    /// Endpoints of dead slots, awaiting [`VriHost::reap_endpoint`].
    pub reapable: Vec<(VriId, VriEndpoint<Frame>)>,
}

impl SimHost {
    /// Find the live slot for a VRI id.
    pub fn slot_of(&self, vri: VriId) -> Option<usize> {
        self.slots.iter().position(|s| s.alive && s.spec.vri == vri)
    }

    /// Live VRI count per VR id.
    pub fn live_count(&self, vr: VrId) -> usize {
        self.slots.iter().filter(|s| s.alive && s.spec.vr == vr).count()
    }

    /// Retire a slot: move its endpoint to the reap stash, then detach.
    /// Stash-before-detach means the supervisor can always recover the
    /// in-flight frames of an endpoint it observes as detached.
    fn retire_slot(&mut self, i: usize) {
        self.slots[i].alive = false;
        if let Some(adapter) = self.slots[i].adapter.take() {
            let vri = self.slots[i].spec.vri;
            let endpoint = adapter.into_endpoint();
            let attachment = endpoint.attachment();
            self.reapable.push((vri, endpoint));
            attachment.detach();
        }
    }
}

impl VriHost for SimHost {
    fn spawn_vri(
        &mut self,
        spec: VriSpec,
        endpoint: VriEndpoint<Frame>,
        router: Box<dyn VirtualRouter>,
    ) {
        self.newly_spawned.push(self.slots.len());
        self.slots.push(SimVriSlot {
            spec,
            adapter: Some(LvrmAdapter::new(spec.vri, endpoint)),
            router,
            alive: true,
            stalled: false,
            active_after_ns: 0,
            poll_scheduled: false,
            processed: 0,
            ledger: None,
        });
    }

    fn kill_vri(&mut self, vr: VrId, vri: VriId) {
        if let Some(i) =
            self.slots.iter().position(|s| s.alive && s.spec.vr == vr && s.spec.vri == vri)
        {
            self.retire_slot(i);
            self.newly_killed.push(i);
        }
    }

    fn reap_endpoint(&mut self, vri: VriId) -> Option<VriEndpoint<Frame>> {
        let pos = self.reapable.iter().position(|(id, _)| *id == vri)?;
        Some(self.reapable.remove(pos).1)
    }
}

impl FaultInjectable for SimHost {
    fn inject_crash(&mut self, vri: VriId) {
        // Unlike `kill_vri`, a crash is not monitor work: nothing lands in
        // `newly_killed`, so no teardown cost is charged to LVRM's core.
        if let Some(i) = self.slot_of(vri) {
            self.retire_slot(i);
        }
    }

    fn inject_stall(&mut self, vri: VriId, on: bool) {
        if let Some(i) = self.slot_of(vri) {
            self.slots[i].stalled = on;
        }
    }

    fn inject_ctrl_loss(&mut self, vri: VriId, on: bool) {
        if let Some(i) = self.slot_of(vri) {
            if let Some(adapter) = self.slots[i].adapter.as_mut() {
                adapter.set_heartbeats(!on);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvrm_core::topology::CoreId;
    use lvrm_net::FrameBuilder;
    use lvrm_router::RouterAction;

    #[test]
    fn numbered_vr_addressing() {
        let v = VrSpec::numbered(2, VrType::Cpp { dummy_load_ns: 0 });
        assert_eq!(v.sender_ip(5), Ipv4Addr::new(10, 2, 1, 5));
        assert_eq!(v.receiver_ip(9), Ipv4Addr::new(10, 2, 2, 9));
        assert_eq!(v.subnets()[0].0, Ipv4Addr::new(10, 2, 1, 0));
    }

    #[test]
    fn cpp_router_forwards_both_directions() {
        let v = VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 7 });
        let mut r = v.build_router();
        assert_eq!(r.dummy_load_ns(), 7);
        let mut fwd = FrameBuilder::new(v.sender_ip(1), v.receiver_ip(1)).udp(1, 2, &[]);
        assert_eq!(r.process(&mut fwd), RouterAction::Forward { iface: 1 });
        let mut rev = FrameBuilder::new(v.receiver_ip(1), v.sender_ip(1)).udp(2, 1, &[]);
        assert_eq!(r.process(&mut rev), RouterAction::Forward { iface: 0 });
    }

    #[test]
    fn click_router_uses_ingress_interface() {
        let v = VrSpec::numbered(0, VrType::Click { dummy_load_ns: 0 });
        let mut r = v.build_router();
        let mut f = FrameBuilder::new(v.sender_ip(1), v.receiver_ip(1)).udp(1, 2, &[]);
        f.ingress_if = 0;
        assert_eq!(r.process(&mut f), RouterAction::Forward { iface: 1 });
        let mut back = FrameBuilder::new(v.receiver_ip(1), v.sender_ip(1)).udp(2, 1, &[]);
        back.ingress_if = 1;
        assert_eq!(r.process(&mut back), RouterAction::Forward { iface: 0 });
    }

    #[test]
    fn click_is_costlier_than_cpp() {
        let cpp = VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 0 }).build_router();
        let click = VrSpec::numbered(0, VrType::Click { dummy_load_ns: 0 }).build_router();
        assert!(click.nominal_cost_ns() > cpp.nominal_cost_ns());
    }

    #[test]
    fn sim_host_lifecycle() {
        let mut host = SimHost::default();
        let (_, ep) = lvrm_ipc::channels::vri_channels::<Frame>(lvrm_ipc::QueueKind::Lamport, 4, 2);
        let spec = VriSpec { vr: VrId(0), vri: VriId(3), core: CoreId(1) };
        host.spawn_vri(
            spec,
            ep,
            VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 0 }).build_router(),
        );
        assert_eq!(host.newly_spawned, vec![0]);
        assert_eq!(host.slot_of(VriId(3)), Some(0));
        assert_eq!(host.live_count(VrId(0)), 1);
        host.kill_vri(VrId(0), VriId(3));
        assert_eq!(host.newly_killed, vec![0]);
        assert_eq!(host.slot_of(VriId(3)), None);
        assert_eq!(host.live_count(VrId(0)), 0);
    }
}
