//! Scenario assembly and the simulation world.
//!
//! A [`Scenario`] describes one experimental condition — forwarding
//! mechanism, hosted VRs, traffic — and [`Scenario::run`] plays it through
//! the discrete-event world reproducing Fig. 4.1: sender hosts, a shared
//! 1-Gbps pipe into the gateway, the gateway itself (native kernel,
//! hypervisor-hosted, or the real LVRM monitor on simulated cores), a
//! 1-Gbps pipe out, and receiver hosts — plus the reverse path for ACKs and
//! ping replies.

use std::collections::HashMap;

use lvrm_core::clock::{Clock, ManualClock};
use lvrm_core::fault::{FaultKind, FaultPlan};
use lvrm_core::monitor::{ReallocEvent, SupervisionEvent};
use lvrm_core::topology::{CoreId, CoreMap, CoreTopology};
use lvrm_core::vri::LVRM_CTRL_ID;
use lvrm_core::{DispatchMode, Lvrm, LvrmConfig, ReplicaLedger, SocketKind, VrId};
use lvrm_ipc::channels::ControlEvent;
use lvrm_metrics::LatencyHistogram;
use lvrm_net::headers::{IPPROTO_ICMP, IPPROTO_TCP, IPPROTO_UDP};
use lvrm_net::{FlowKey, Frame, FrameBuilder};
use lvrm_router::RouterAction;

use crate::cost::CostModel;
use crate::cpu::{CpuAccounting, CpuBucket};
use crate::engine::{Event, EventQueue};
use crate::gateway::{HypervisorKind, SimHost, VrSpec};
use crate::link::Link;
use crate::tcp::{TcpConfig, TcpFlow, FTP_DATA_PORT};
use crate::traffic::{RateSchedule, Source, SourceKind, UDP_DATA_PORT};

pub use crate::gateway::ForwardingMech;

/// How often the gateway loop re-polls while work is pending.
const GW_POLL_NS: u64 = 1_000;
/// Frames per gateway poll pass.
const GW_BATCH: usize = 32;
/// Frames per VRI poll pass.
const VRI_BATCH: usize = 32;
/// Maximum core time one poll pass may consume before yielding back to the
/// event loop. Consumption is paced by core time: a poll never processes
/// more work than fits its slice, and a busy core defers the poll entirely,
/// so queues build (and load estimators see them) exactly when the core is
/// the bottleneck.
const POLL_SLICE_NS: u64 = 100_000;
/// NIC ring capacity, frames.
const RX_RING_CAP: usize = 4096;
/// Core time to fold or encode one 45-byte state-update record
/// (replicated dispatch, DESIGN.md §14).
const REPL_FOLD_NS: u64 = 25;
/// Fixed overhead of flushing one LVSU batch onto the control queue.
const REPL_EMIT_BASE_NS: u64 = 80;

/// One traffic source attachment.
#[derive(Clone, Debug)]
pub struct SourceSpec {
    /// Index into `Scenario::vrs`.
    pub vr: usize,
    /// Sender-host number (distinct source addresses per host).
    pub host: u8,
    pub kind: SourceKind,
    pub schedule: RateSchedule,
}

/// One TCP (FTP-style) flow attachment.
#[derive(Clone, Debug)]
pub struct TcpFlowSpec {
    pub vr: usize,
    pub cfg: TcpConfig,
    pub start_ns: u64,
}

/// A full experimental condition.
pub struct Scenario {
    pub mech: ForwardingMech,
    /// Socket adapter variant for the LVRM mechanism.
    pub socket: SocketKind,
    pub lvrm: LvrmConfig,
    pub vrs: Vec<VrSpec>,
    pub sources: Vec<SourceSpec>,
    pub tcp_flows: Vec<TcpFlowSpec>,
    pub duration_ns: u64,
    pub warmup_ns: u64,
    pub cost: CostModel,
    /// Time-series sampling period (0 disables sampling).
    pub sample_period_ns: u64,
    /// Deterministic fault schedule (LVRM mechanism only). Faults address
    /// VRIs by spawn order, which in the simulation is the slot index.
    pub faults: FaultPlan,
    /// Drain the monitor through [`Lvrm::shutdown`] when the run ends, so
    /// the final snapshot has empty queues and the conservation identities
    /// close with zero in-flight (LVRM mechanism only).
    pub drain_shutdown: bool,
}

impl Scenario {
    /// A scenario skeleton with the paper's defaults: PF_RING socket,
    /// default LVRM config, one C++ VR, no traffic yet.
    pub fn new(mech: ForwardingMech) -> Scenario {
        Scenario {
            mech,
            socket: SocketKind::PfRing,
            lvrm: LvrmConfig::default(),
            vrs: vec![VrSpec::numbered(0, crate::gateway::VrType::Cpp { dummy_load_ns: 0 })],
            sources: Vec::new(),
            tcp_flows: Vec::new(),
            duration_ns: 1_000_000_000,
            warmup_ns: 200_000_000,
            cost: CostModel::default(),
            sample_period_ns: 0,
            faults: FaultPlan::new(),
            drain_shutdown: false,
        }
    }

    /// Add the paper's standard two-sender UDP CBR load on VR `vr`:
    /// `total_fps` split across two sender hosts, `flows` flows per host.
    pub fn with_udp_load(
        mut self,
        vr: usize,
        wire_size: usize,
        total_fps: f64,
        flows: u16,
    ) -> Scenario {
        for host in [1u8, 2u8] {
            self.sources.push(SourceSpec {
                vr,
                host,
                kind: SourceKind::UdpCbr { wire_size, flows },
                schedule: RateSchedule::constant(total_fps / 2.0),
            });
        }
        self
    }

    /// Run the scenario to completion.
    pub fn run(&self) -> ScenarioResult {
        World::build(self).run()
    }
}

/// One time-series sample.
#[derive(Clone, Debug)]
pub struct VriSample {
    pub t_ns: u64,
    /// Live VRIs per VR (empty for non-LVRM mechanisms).
    pub vris_per_vr: Vec<usize>,
    /// Delivered data rate since the previous sample, Mbps (wire bytes).
    pub delivered_mbps: f64,
    /// Offered rate per VR at this instant, fps.
    pub offered_fps_per_vr: Vec<f64>,
}

/// Everything a scenario run measured.
pub struct ScenarioResult {
    pub duration_ns: u64,
    pub warmup_ns: u64,
    /// UDP data frames sent / received inside the measurement window.
    pub udp_sent: u64,
    pub udp_received: u64,
    /// Attack frames (SYN/UDP flood) sent inside the window.
    pub flood_sent: u64,
    pub per_vr_sent: Vec<u64>,
    pub per_vr_received: Vec<u64>,
    /// Per-UDP-flow received (frames, wire_bytes) in the window.
    pub udp_flows: HashMap<u64, (u64, u64)>,
    /// Per-TCP-flow goodput bytes in the window.
    pub tcp_goodput: Vec<u64>,
    /// TCP diagnostics.
    pub tcp_retransmits: u64,
    pub tcp_timeouts: u64,
    /// One-way latency of UDP data frames.
    pub latency: LatencyHistogram,
    /// Ping round-trip times.
    pub rtt: LatencyHistogram,
    pub samples: Vec<VriSample>,
    pub realloc: Vec<ReallocEvent>,
    /// Per-core (user, system, softirq) busy ns.
    pub cpu_busy: Vec<(u64, u64, u64)>,
    /// Final per-VR per-VRI dispatch counts (LVRM only).
    pub per_vri_dispatches: Vec<Vec<u64>>,
    /// LVRM monitor drops and counters (LVRM only).
    pub lvrm_stats: Option<lvrm_core::LvrmStats>,
    /// Supervisor decisions (deaths, respawns, quarantines; LVRM only).
    pub supervision: Vec<SupervisionEvent>,
    /// End-of-run monitor snapshot (taken before any shutdown drain, so
    /// flow-table occupancy is still visible): per-VR pressure, admission
    /// counters, flow stats, and per-VRI state (LVRM only).
    pub vr_snapshots: Vec<lvrm_core::monitor::VrSnapshot>,
    /// Final metrics-registry snapshot — after the shutdown drain when
    /// `drain_shutdown` is set — the conservation-identity input (LVRM
    /// only).
    pub metrics: Option<lvrm_metrics::MetricsSnapshot>,
    /// Frames dropped at the NIC rings.
    pub ring_drops: u64,
    /// FNV-1a digests of every LVSU state-update batch flushed by a VRI, in
    /// emission order — the determinism fingerprint of the replication
    /// plane (empty unless some VR dispatches replicated; LVRM only).
    pub repl_trace: Vec<u64>,
}

impl ScenarioResult {
    /// Measurement-window length.
    pub fn window_ns(&self) -> u64 {
        self.duration_ns - self.warmup_ns
    }

    /// Received / sent, the paper's loss criterion input.
    pub fn delivery_ratio(&self) -> f64 {
        if self.udp_sent == 0 {
            1.0
        } else {
            self.udp_received as f64 / self.udp_sent as f64
        }
    }

    /// Delivered UDP frame rate, fps.
    pub fn delivered_fps(&self) -> f64 {
        self.udp_received as f64 * 1e9 / self.window_ns() as f64
    }

    /// Per-UDP-flow delivered rates (fps), sorted by flow key for stability.
    pub fn per_flow_fps(&self) -> Vec<f64> {
        let mut keys: Vec<_> = self.udp_flows.keys().copied().collect();
        keys.sort_unstable();
        keys.iter().map(|k| self.udp_flows[k].0 as f64 * 1e9 / self.window_ns() as f64).collect()
    }

    /// Per-TCP-flow goodput rates, Mbps.
    pub fn tcp_goodput_mbps(&self) -> Vec<f64> {
        self.tcp_goodput.iter().map(|b| *b as f64 * 8.0 / self.window_ns() as f64 * 1e3).collect()
    }

    /// Aggregate TCP goodput, Mbps.
    pub fn tcp_aggregate_mbps(&self) -> f64 {
        self.tcp_goodput_mbps().iter().sum()
    }
}

/// Binary-search the maximum rate (fps) whose run satisfies the paper's 2 %
/// criterion: "increasing the sending rate … until the sending rate and the
/// receiving rate differ by more than 2 %" (§4.1). `make` builds the
/// scenario for a candidate aggregate rate.
pub fn search_achievable(make: impl Fn(f64) -> Scenario, lo0: f64, hi0: f64, iters: u32) -> f64 {
    let ok = |rate: f64| make(rate).run().delivery_ratio() >= 0.98;
    let (mut lo, mut hi) = (lo0, hi0);
    if ok(hi) {
        return hi;
    }
    if !ok(lo) {
        return lo;
    }
    for _ in 0..iters {
        let mid = (lo + hi) / 2.0;
        if ok(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

// ---------------------------------------------------------------------------
// The world

#[allow(clippy::large_enum_variant)] // one Mech per World; size is irrelevant
enum Mech {
    /// Kernel-path forwarding (native or hypervisor-hosted guest).
    Kernel {
        route: lvrm_router::RouteTable,
        hypervisor: Option<HypervisorKind>,
    },
    Lvrm {
        lvrm: Lvrm<ManualClock>,
        host: SimHost,
        clock: ManualClock,
        vr_ids: Vec<VrId>,
    },
}

struct World<'s> {
    sc: &'s Scenario,
    q: EventQueue,
    /// 0: senders→gw, 1: gw→receivers, 2: receivers→gw, 3: gw→senders.
    links: [Link; 4],
    rx_rings: [std::collections::VecDeque<Frame>; 2],
    ring_drops: u64,
    gw_poll_scheduled: bool,
    mech: Mech,
    cpu: CpuAccounting,
    lvrm_core: CoreId,
    sources: Vec<Source>,
    tcp: Vec<TcpFlow>,
    tcp_timer_armed: Vec<bool>,
    tcp_goodput_at_warmup: Vec<u64>,
    // measurement
    udp_sent: u64,
    udp_received: u64,
    flood_sent: u64,
    per_vr_sent: Vec<u64>,
    per_vr_received: Vec<u64>,
    udp_flows: HashMap<u64, (u64, u64)>,
    latency: LatencyHistogram,
    rtt: LatencyHistogram,
    samples: Vec<VriSample>,
    warmup_done: bool,
    delivered_wire_bytes: u64,
    delivered_wire_bytes_last_sample: u64,
    tcp_goodput_last_sample: u64,
    last_sample_ns: u64,
    egress_unrouted: u64,
    repl_trace: Vec<u64>,
}

impl<'s> World<'s> {
    fn build(sc: &'s Scenario) -> World<'s> {
        assert!(!sc.vrs.is_empty(), "scenario needs at least one VR");
        assert!(sc.warmup_ns < sc.duration_ns, "warmup must end before the run does");
        let lvrm_core = CoreId(0);
        let mech = match sc.mech {
            ForwardingMech::Native => {
                Mech::Kernel { route: kernel_routes(&sc.vrs), hypervisor: None }
            }
            ForwardingMech::Hypervisor(kind) => {
                Mech::Kernel { route: kernel_routes(&sc.vrs), hypervisor: Some(kind) }
            }
            ForwardingMech::Lvrm => {
                if let Err(e) = sc.lvrm.validate() {
                    panic!("scenario LVRM config invalid: {e}");
                }
                let clock = ManualClock::new();
                let cores =
                    CoreMap::new(CoreTopology::dual_quad_xeon(), lvrm_core, sc.lvrm.affinity);
                let mut lvrm = Lvrm::new(sc.lvrm.clone(), cores, clock.clone());
                let mut host = SimHost::default();
                let vr_ids: Vec<_> = sc
                    .vrs
                    .iter()
                    .map(|v| lvrm.add_vr(&v.name, &v.subnets(), v.build_router(), &mut host))
                    .collect();
                for (v, id) in sc.vrs.iter().zip(&vr_ids) {
                    if let Some(w) = v.shed_weight {
                        lvrm.set_vr_weight(*id, w);
                    }
                    if let Some(mode) = v.dispatch {
                        lvrm.set_vr_dispatch(*id, mode);
                    }
                }
                Mech::Lvrm { lvrm, host, clock, vr_ids }
            }
        };
        let sources = sc
            .sources
            .iter()
            .map(|s| {
                let vr = &sc.vrs[s.vr];
                Source::new(
                    s.vr,
                    s.kind.clone(),
                    s.schedule.clone(),
                    vr.sender_ip(s.host),
                    vr.receiver_ip(s.host),
                )
            })
            .collect();
        let tcp: Vec<TcpFlow> = sc
            .tcp_flows
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let vr = &sc.vrs[f.vr];
                TcpFlow::new(
                    i,
                    f.vr,
                    f.cfg,
                    vr.sender_ip(100 + (i % 100) as u8),
                    vr.receiver_ip(100 + (i % 100) as u8),
                    40_000 + i as u16,
                )
            })
            .collect();
        let n_tcp = tcp.len();
        // Two hops per direction (host-switch-gateway): split the calibrated
        // one-way path latency across them.
        let mk_link = || {
            let mut l = Link::gigabit();
            l.prop_ns = sc.cost.path_latency_ns / 2;
            l
        };
        World {
            sc,
            q: EventQueue::new(),
            links: [mk_link(), mk_link(), mk_link(), mk_link()],
            rx_rings: [Default::default(), Default::default()],
            ring_drops: 0,
            gw_poll_scheduled: false,
            mech,
            cpu: CpuAccounting::new(8),
            lvrm_core,
            sources,
            tcp,
            tcp_timer_armed: vec![false; n_tcp],
            tcp_goodput_at_warmup: vec![0; n_tcp],
            udp_sent: 0,
            udp_received: 0,
            flood_sent: 0,
            per_vr_sent: vec![0; sc.vrs.len()],
            per_vr_received: vec![0; sc.vrs.len()],
            udp_flows: HashMap::new(),
            latency: LatencyHistogram::new(),
            rtt: LatencyHistogram::new(),
            samples: Vec::new(),
            warmup_done: false,
            delivered_wire_bytes: 0,
            delivered_wire_bytes_last_sample: 0,
            tcp_goodput_last_sample: 0,
            last_sample_ns: 0,
            egress_unrouted: 0,
            repl_trace: Vec::new(),
        }
    }

    fn run(mut self) -> ScenarioResult {
        for i in 0..self.sources.len() {
            self.q.schedule(0, Event::SourceEmit { source: i });
        }
        for (i, spec) in self.sc.tcp_flows.iter().enumerate() {
            self.q.schedule(spec.start_ns, Event::TcpKick { flow: i });
        }
        for (idx, ev) in self.sc.faults.events().iter().enumerate() {
            self.q.schedule(ev.at_ns, Event::Fault { idx });
        }
        // Warmup boundary snapshot (always) + optional periodic samples.
        self.q.schedule(self.sc.warmup_ns, Event::WarmupSnapshot);
        if self.sc.sample_period_ns > 0 {
            self.q.schedule(self.sc.sample_period_ns, Event::Sample);
        }
        self.q.schedule(self.sc.duration_ns, Event::Stop);

        while let Some((now, ev)) = self.q.pop() {
            match ev {
                Event::Stop => break,
                Event::SourceEmit { source } => self.on_source_emit(source, now),
                Event::LinkDeliver { link } => self.on_link_deliver(link, now),
                Event::GatewayPoll => self.on_gateway_poll(now),
                Event::VriPoll { slot } => self.on_vri_poll(slot, now),
                Event::TcpKick { flow } => self.kick_tcp(flow, now),
                Event::TcpTimeout { flow, epoch } => self.on_tcp_timeout(flow, epoch, now),
                Event::Sample => self.on_sample(now),
                Event::WarmupSnapshot => self.take_warmup_snapshot(now),
                Event::Fault { idx } => self.on_fault(idx, now),
            }
        }
        self.finish()
    }

    // ------------------------------------------------------------ sources

    fn on_source_emit(&mut self, i: usize, now: u64) {
        let in_window = now >= self.sc.warmup_ns;
        let (frame, delay) = self.sources[i].emit(now);
        if let Some(frame) = frame {
            if in_window {
                if self.sources[i].kind.is_udp_data() {
                    self.udp_sent += 1;
                    self.per_vr_sent[self.sources[i].vr] += 1;
                } else if self.sources[i].kind.is_flood() {
                    self.flood_sent += 1;
                }
            }
            self.offer_link(0, now, frame);
        }
        if now + delay < self.sc.duration_ns {
            self.q.schedule(now + delay, Event::SourceEmit { source: i });
        }
    }

    // ------------------------------------------------------------ links

    fn offer_link(&mut self, link: usize, now: u64, frame: Frame) {
        if let Some(arrival) = self.links[link].offer(now, frame) {
            self.q.schedule(arrival, Event::LinkDeliver { link });
        }
    }

    fn on_link_deliver(&mut self, link: usize, now: u64) {
        let Some((_, mut frame)) = self.links[link].deliver() else {
            return;
        };
        match link {
            0 | 2 => {
                let nic = if link == 0 { 0 } else { 1 };
                frame.ingress_if = nic as u16;
                if self.rx_rings[nic].len() >= RX_RING_CAP {
                    self.ring_drops += 1;
                } else {
                    self.rx_rings[nic].push_back(frame);
                    if !self.gw_poll_scheduled {
                        self.gw_poll_scheduled = true;
                        self.q.schedule(now, Event::GatewayPoll);
                    }
                }
            }
            1 => self.on_receiver(frame, now),
            3 => self.on_sender_side(frame, now),
            _ => unreachable!(),
        }
    }

    // ------------------------------------------------------------ hosts

    fn on_receiver(&mut self, frame: Frame, now: u64) {
        let Ok(ip) = frame.ipv4() else { return };
        match ip.protocol() {
            IPPROTO_UDP if now >= self.sc.warmup_ns => {
                // Only the data port counts toward goodput: UDP-flood
                // frames (dst 9) that survive shedding are not "delivered
                // work", and counting them would flatter attack scenarios.
                if frame.udp().map(|u| u.dst_port()) != Ok(UDP_DATA_PORT) {
                    return;
                }
                self.udp_received += 1;
                if let Some(vr) = self.vr_of_src(&frame) {
                    self.per_vr_received[vr] += 1;
                }
                let key = flow_key(&frame);
                let e = self.udp_flows.entry(key).or_insert((0, 0));
                e.0 += 1;
                e.1 += frame.wire_len() as u64;
                self.latency.record(now.saturating_sub(frame.ts_ns));
                self.delivered_wire_bytes += frame.wire_len() as u64;
            }
            IPPROTO_ICMP => {
                // Echo request: reflect it with source/destination swapped.
                let (src, dst) = (ip.src(), ip.dst());
                let wire = frame.wire_len();
                let mut b = FrameBuilder::new(dst, src);
                if let Ok(mut reply) = b.udp_with_wire_size(7, 7, wire) {
                    reply.modify_bytes(|bytes| {
                        bytes[14 + 9] = IPPROTO_ICMP;
                        bytes[14 + 10] = 0;
                        bytes[14 + 11] = 0;
                        let csum = lvrm_net::headers::internet_checksum(&bytes[14..14 + 20]);
                        bytes[14 + 10..14 + 12].copy_from_slice(&csum.to_be_bytes());
                    });
                    reply.ts_ns = frame.ts_ns; // carry the original stamp
                    self.offer_link(2, now, reply);
                }
            }
            IPPROTO_TCP => {
                let Ok(tcp) = frame.tcp() else { return };
                if tcp.dst_port() == FTP_DATA_PORT {
                    let flow_idx = tcp.src_port().wrapping_sub(40_000) as usize;
                    if flow_idx < self.tcp.len() {
                        let seq = tcp.seq() as u64;
                        let len = tcp.payload().len();
                        if now >= self.sc.warmup_ns {
                            self.delivered_wire_bytes += frame.wire_len() as u64;
                        }
                        let ack = self.tcp[flow_idx].on_data_at_receiver(seq, len, now);
                        self.offer_link(2, now, ack);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_sender_side(&mut self, frame: Frame, now: u64) {
        let Ok(ip) = frame.ipv4() else { return };
        match ip.protocol() {
            IPPROTO_ICMP if now >= self.sc.warmup_ns => {
                self.rtt.record(now.saturating_sub(frame.ts_ns));
            }
            IPPROTO_TCP => {
                let Ok(tcp) = frame.tcp() else { return };
                if tcp.src_port() == FTP_DATA_PORT {
                    let flow_idx = tcp.dst_port().wrapping_sub(40_000) as usize;
                    if flow_idx < self.tcp.len() {
                        let ack = tcp.ack() as u64;
                        let act = self.tcp[flow_idx].on_ack_at_sender(ack, now);
                        for seq in act.transmit {
                            let f = self.tcp[flow_idx].build_data(seq, now);
                            self.offer_link(0, now, f);
                        }
                        if act.rearm_timer {
                            let epoch = self.tcp[flow_idx].timer_epoch;
                            let rto = self.tcp[flow_idx].current_rto_ns();
                            self.q.schedule(now + rto, Event::TcpTimeout { flow: flow_idx, epoch });
                            self.tcp_timer_armed[flow_idx] = true;
                        }
                        self.kick_tcp(flow_idx, now);
                    }
                }
            }
            _ => {}
        }
    }

    fn kick_tcp(&mut self, flow: usize, now: u64) {
        while self.tcp[flow].can_send(now) {
            let f = self.tcp[flow].send_new(now);
            self.offer_link(0, now, f);
        }
        if self.tcp[flow].inflight() > 0 && !self.tcp_timer_armed[flow] {
            let epoch = self.tcp[flow].timer_epoch;
            let rto = self.tcp[flow].current_rto_ns();
            self.q.schedule(now + rto, Event::TcpTimeout { flow, epoch });
            self.tcp_timer_armed[flow] = true;
        }
        // Pacing-limited flows re-kick themselves.
        if self.tcp[flow].cfg.pacing_ns.is_some()
            && self.tcp[flow].inflight() < 2 * self.tcp[flow].cfg.mss as u64
        {
            if let Some(p) = self.tcp[flow].cfg.pacing_ns {
                if now + p < self.sc.duration_ns {
                    self.q.schedule(now + p, Event::TcpKick { flow });
                }
            }
        }
    }

    fn on_tcp_timeout(&mut self, flow: usize, epoch: u32, now: u64) {
        self.tcp_timer_armed[flow] = false;
        let act = self.tcp[flow].on_timeout(epoch, now);
        for seq in act.transmit {
            let f = self.tcp[flow].build_data(seq, now);
            self.offer_link(0, now, f);
        }
        if (act.rearm_timer || self.tcp[flow].inflight() > 0) && !self.tcp_timer_armed[flow] {
            let e = self.tcp[flow].timer_epoch;
            let rto = self.tcp[flow].current_rto_ns();
            self.q.schedule(now + rto, Event::TcpTimeout { flow, epoch: e });
            self.tcp_timer_armed[flow] = true;
        }
    }

    // ------------------------------------------------------------ gateway

    fn on_gateway_poll(&mut self, now: u64) {
        match &mut self.mech {
            Mech::Kernel { .. } => self.kernel_poll(now),
            Mech::Lvrm { .. } => self.lvrm_poll(now),
        }
    }

    fn kernel_poll(&mut self, now: u64) {
        let busy = self.cpu.busy_until(CoreId(0));
        if busy > now {
            self.q.schedule(busy, Event::GatewayPoll);
            self.gw_poll_scheduled = true;
            return;
        }
        let Mech::Kernel { route, hypervisor } = &mut self.mech else { unreachable!() };
        let (cost, hv) = match hypervisor {
            None => (self.sc.cost.native, None),
            Some(HypervisorKind::VmwareServer) => (self.sc.cost.hv_vmware, Some(())),
            Some(HypervisorKind::QemuKvm) => (self.sc.cost.hv_kvm, Some(())),
        };
        let mut t = now;
        let deadline = now + POLL_SLICE_NS;
        let mut out: Vec<(usize, Frame, u64)> = Vec::new();
        let mut budget = GW_BATCH;
        for nic in 0..2 {
            while budget > 0 && t < deadline {
                let Some(mut frame) = self.rx_rings[nic].pop_front() else { break };
                budget -= 1;
                let c = cost.of(frame.len());
                if hv.is_some() {
                    // World switch + guest kernel: half softirq on the host
                    // core, half guest time on a VCPU core.
                    t = self.cpu.charge(CoreId(0), t, c / 2, CpuBucket::SoftIrq);
                    t = self.cpu.charge(CoreId(1), t, c - c / 2, CpuBucket::User);
                } else {
                    t = self.cpu.charge(CoreId(0), t, c, CpuBucket::SoftIrq);
                }
                let egress = frame.dst_ip().ok().and_then(|d| route.lookup(d)).map(|r| r.iface);
                match egress {
                    Some(0) => {
                        frame.egress_if = 0;
                        out.push((3, frame, t));
                    }
                    Some(_) => {
                        frame.egress_if = 1;
                        out.push((1, frame, t));
                    }
                    None => {}
                }
            }
        }
        for (link, frame, at) in out {
            self.offer_link(link, at, frame);
        }
        self.rearm_gateway(now, t, false);
    }

    /// How many busy-polling processes time-share `core` (LVRM plus any
    /// VRIs pinned there). Spinning loops consume whole timeslices, so a
    /// shared core divides its effective speed among residents — this is
    /// what makes the "same" affinity mode the poorest in Fig. 4.8.
    fn core_residents(&self, core: CoreId) -> u64 {
        let vris_here = match &self.mech {
            Mech::Lvrm { host, .. } => {
                host.slots.iter().filter(|s| s.alive && s.spec.core == core).count() as u64
            }
            _ => 0,
        };
        let lvrm_here = u64::from(core == self.lvrm_core);
        (vris_here + lvrm_here).max(1)
    }

    /// Mean inter-core handover penalty between LVRM and the live VRIs
    /// (charged on the LVRM side per frame: the producer also stalls on the
    /// cache-line transfer to a remote queue).
    fn mean_vri_penalty(&self) -> u64 {
        let unpinned = self.sc.lvrm.affinity == lvrm_core::topology::AffinityMode::Default;
        let topo = CoreTopology::dual_quad_xeon();
        match &self.mech {
            Mech::Lvrm { host, .. } => {
                let live: Vec<u64> = host
                    .slots
                    .iter()
                    .filter(|s| s.alive)
                    .map(|s| {
                        self.sc.cost.core_penalty(&topo, self.lvrm_core, s.spec.core, unpinned)
                    })
                    .collect();
                if live.is_empty() {
                    0
                } else {
                    live.iter().sum::<u64>() / live.len() as u64
                }
            }
            _ => 0,
        }
    }

    fn lvrm_poll(&mut self, now: u64) {
        let busy = self.cpu.busy_until(self.lvrm_core);
        if busy > now {
            self.q.schedule(busy, Event::GatewayPoll);
            self.gw_poll_scheduled = true;
            return;
        }
        let socket = self.sc.socket;
        let (rx_bucket, tx_bucket) = socket_buckets(socket);
        let contention = self.core_residents(self.lvrm_core);
        let penalty = self.mean_vri_penalty();
        let mut t = now;
        let deadline = now + POLL_SLICE_NS;

        // Phase 1: receive + classify + dispatch. With overload shedding
        // enabled, a frame the monitor sheds at classification time is
        // charged `shed_ns` instead of the full balance+enqueue cost — the
        // whole point of early shedding is that refused work is cheap.
        {
            let Mech::Lvrm { lvrm, host, clock, .. } = &mut self.mech else { unreachable!() };
            let shedding = self.sc.lvrm.overload_shedding;
            let mut budget = GW_BATCH;
            for nic in 0..2 {
                while budget > 0 && t < deadline {
                    let Some(frame) = self.rx_rings[nic].pop_front() else { break };
                    budget -= 1;
                    let len = frame.len();
                    t = self.cpu.charge(
                        self.lvrm_core,
                        t,
                        self.sc.cost.rx(socket, len) * contention,
                        rx_bucket,
                    );
                    if shedding {
                        let shed_before = lvrm.stats().shed_early;
                        clock.set_ns(clock.now_ns().max(t));
                        lvrm.ingress(frame, host);
                        let work = if lvrm.stats().shed_early > shed_before {
                            self.sc.cost.shed_ns
                        } else {
                            self.sc.cost.dispatch.of(len) + penalty
                        };
                        t = self.cpu.charge(self.lvrm_core, t, work * contention, CpuBucket::User);
                    } else {
                        t = self.cpu.charge(
                            self.lvrm_core,
                            t,
                            (self.sc.cost.dispatch.of(len) + penalty) * contention,
                            CpuBucket::User,
                        );
                        clock.set_ns(clock.now_ns().max(t));
                        lvrm.ingress(frame, host);
                    }
                }
            }
            clock.set_ns(clock.now_ns().max(t));
            lvrm.process_control();
        }

        // Phase 2: account spawns/kills and schedule new VRI polls.
        t = self.drain_host_lifecycle(t);

        // Phase 3: collect egress and transmit.
        let mut egress = Vec::new();
        {
            let Mech::Lvrm { lvrm, .. } = &mut self.mech else { unreachable!() };
            lvrm.poll_egress(&mut egress);
        }
        for frame in egress {
            let len = frame.len();
            t = self.cpu.charge(
                self.lvrm_core,
                t,
                (self.sc.cost.egress.of(len) + penalty) * contention,
                CpuBucket::User,
            );
            t = self.cpu.charge(
                self.lvrm_core,
                t,
                self.sc.cost.tx(socket, len) * contention,
                tx_bucket,
            );
            match frame.egress_if {
                0 => self.offer_link(3, t, frame),
                1 => self.offer_link(1, t, frame),
                _ => self.egress_unrouted += 1,
            }
        }

        // Phase 4: wake VRIs that now have work.
        self.schedule_vri_polls(t);
        let pending_egress = match &self.mech {
            Mech::Lvrm { lvrm, .. } => lvrm.has_pending_egress(),
            _ => false,
        };
        self.rearm_gateway(now, t, pending_egress);
    }

    /// Charge spawn/kill costs and schedule polls for fresh VRIs.
    fn drain_host_lifecycle(&mut self, mut t: u64) -> u64 {
        let spawn_cost = self.sc.cost.vri_spawn_ns;
        let kill_cost = self.sc.cost.vri_kill_ns;
        let mut to_schedule = Vec::new();
        {
            let Mech::Lvrm { host, .. } = &mut self.mech else { return t };
            for idx in std::mem::take(&mut host.newly_spawned) {
                t = self.cpu.charge(self.lvrm_core, t, spawn_cost, CpuBucket::System);
                host.slots[idx].active_after_ns = t;
                host.slots[idx].poll_scheduled = true;
                to_schedule.push((idx, t));
            }
            for _ in std::mem::take(&mut host.newly_killed) {
                t = self.cpu.charge(self.lvrm_core, t, kill_cost, CpuBucket::System);
            }
        }
        for (idx, at) in to_schedule {
            self.q.schedule(at, Event::VriPoll { slot: idx });
        }
        t
    }

    /// Wake any live VRI that has queued work but no pending poll event.
    fn schedule_vri_polls(&mut self, t: u64) {
        let mut wake = Vec::new();
        {
            let Mech::Lvrm { host, .. } = &mut self.mech else { return };
            for (i, slot) in host.slots.iter_mut().enumerate() {
                if slot.alive
                    && !slot.stalled
                    && !slot.poll_scheduled
                    && slot.adapter.as_ref().is_some_and(|a| a.has_pending())
                {
                    slot.poll_scheduled = true;
                    wake.push(i);
                }
            }
        }
        for i in wake {
            self.q.schedule(t, Event::VriPoll { slot: i });
        }
    }

    fn rearm_gateway(&mut self, now: u64, t: u64, pending_egress: bool) {
        let rings_pending = !self.rx_rings[0].is_empty() || !self.rx_rings[1].is_empty();
        if rings_pending || pending_egress {
            self.q.schedule(t.max(now + GW_POLL_NS), Event::GatewayPoll);
            self.gw_poll_scheduled = true;
        } else {
            self.gw_poll_scheduled = false;
        }
    }

    // ------------------------------------------------------------ faults

    /// Fire one scheduled fault. Spawn order in the simulation is the slot
    /// index (slots are only ever appended), so the plan's `nth_spawn`
    /// addressing resolves directly.
    fn on_fault(&mut self, idx: usize, _now: u64) {
        use lvrm_core::fault::FaultInjectable;
        let Some(ev) = self.sc.faults.events().get(idx).copied() else { return };
        let Mech::Lvrm { host, .. } = &mut self.mech else { return };
        let nth = match ev.kind {
            FaultKind::Crash { nth_spawn }
            | FaultKind::Stall { nth_spawn }
            | FaultKind::Resume { nth_spawn }
            | FaultKind::CtrlLoss { nth_spawn, .. } => nth_spawn,
        };
        let Some(vri) = host.slots.get(nth).map(|s| s.spec.vri) else { return };
        match ev.kind {
            FaultKind::Crash { .. } => host.inject_crash(vri),
            FaultKind::Stall { .. } => host.inject_stall(vri, true),
            FaultKind::Resume { .. } => host.inject_stall(vri, false),
            FaultKind::CtrlLoss { on, .. } => host.inject_ctrl_loss(vri, on),
        }
    }

    // ------------------------------------------------------------ VRIs

    /// Whether VR spec `k` runs replicated dispatch (per-VR override first,
    /// then the config's global mode).
    fn vr_replicated(&self, k: usize) -> bool {
        self.sc.vrs[k].dispatch.unwrap_or(self.sc.lvrm.dispatch) == DispatchMode::Replicated
    }

    fn on_vri_poll(&mut self, slot: usize, now: u64) {
        let unpinned = self.sc.lvrm.affinity == lvrm_core::topology::AffinityMode::Default;
        let contention = {
            let core = match &self.mech {
                Mech::Lvrm { host, .. } => host.slots.get(slot).map(|s| s.spec.core),
                _ => None,
            };
            core.map_or(1, |c| self.core_residents(c))
        };
        // Replication plumbing resolved up front: the owning VR spec's
        // per-byte service cost and whether this slot keeps a state ledger.
        let (per_byte, replicated) = {
            let vr_idx = match &self.mech {
                Mech::Lvrm { host, vr_ids, .. } => {
                    host.slots.get(slot).and_then(|s| vr_ids.iter().position(|id| *id == s.spec.vr))
                }
                _ => None,
            };
            match vr_idx {
                Some(k) => (self.sc.vrs[k].per_byte_load_ns, self.vr_replicated(k)),
                None => (0, false),
            }
        };
        let mut t = now;
        let mut produced = false;
        let more;
        {
            let Mech::Lvrm { host, .. } = &mut self.mech else { return };
            let Some(s) = host.slots.get_mut(slot) else { return };
            if !s.alive || s.stalled || s.adapter.is_none() {
                // A stalled slot neither services nor heartbeats; it gets
                // re-woken by `schedule_vri_polls` once un-stalled.
                s.poll_scheduled = false;
                return;
            }
            if now < s.active_after_ns {
                self.q.schedule(s.active_after_ns, Event::VriPoll { slot });
                return;
            }
            let busy = self.cpu.busy_until(s.spec.core);
            if busy > now {
                // The core is still executing earlier work; polling resumes
                // when it frees up. Keeps consumption paced by core time.
                self.q.schedule(busy, Event::VriPoll { slot });
                return;
            }
            if replicated && s.ledger.is_none() {
                s.ledger = Some(ReplicaLedger::new(s.spec.vri.0));
            }
            let deadline = now + POLL_SLICE_NS;
            let topo = CoreTopology::dual_quad_xeon();
            let penalty = self.sc.cost.core_penalty(&topo, self.lvrm_core, s.spec.core, unpinned);
            for _ in 0..VRI_BATCH {
                if t >= deadline {
                    break;
                }
                // The adapter's service-time samples use the VRI's own core
                // timeline `t`, not the global clock: the global clock is
                // advanced by unrelated events between this VRI's polls,
                // which would pollute the measured per-frame service time.
                let adapter = s.adapter.as_mut().expect("checked above");
                match adapter.from_lvrm(t) {
                    Some(lvrm_ipc::channels::Work::Data(mut frame)) => {
                        let cost = (penalty
                            + s.router.nominal_cost_ns()
                            + s.router.dummy_load_ns()
                            + per_byte * frame.len() as u64)
                            * contention;
                        t = self.cpu.charge(s.spec.core, t, cost, CpuBucket::User);
                        s.processed += 1;
                        if let Some(ledger) = s.ledger.as_mut() {
                            if let Some(key) = FlowKey::from_frame(&frame) {
                                ledger.observe(key, frame.len() as u64, t);
                            }
                        }
                        if let RouterAction::Forward { .. } = s.router.process(&mut frame) {
                            if adapter.to_lvrm(frame).is_ok() {
                                produced = true;
                            }
                        }
                    }
                    Some(lvrm_ipc::channels::Work::Control(ev)) => {
                        // Sibling state-update batches fold into the local
                        // books; other control traffic costs a flat touch.
                        let mut cost = 100;
                        if let Some(ledger) = s.ledger.as_mut() {
                            if lvrm_core::is_state_update(&ev.payload) {
                                if let Ok((origin, updates)) = lvrm_core::decode_batch(&ev.payload)
                                {
                                    cost += REPL_FOLD_NS * updates.len() as u64;
                                    ledger.fold_batch(origin, &updates);
                                }
                            }
                        }
                        t = self.cpu.charge(s.spec.core, t, cost * contention, CpuBucket::User);
                    }
                    None => break,
                }
            }
            // Emit this pass's coalesced state deltas to the monitor for
            // fan-out to the sibling replicas (DESIGN.md §14).
            if let Some(ledger) = s.ledger.as_mut() {
                if let Some(buf) = ledger.flush() {
                    let records = (buf.len().saturating_sub(15) / 45) as u64;
                    t = self.cpu.charge(
                        s.spec.core,
                        t,
                        (REPL_EMIT_BASE_NS + REPL_FOLD_NS * records) * contention,
                        CpuBucket::User,
                    );
                    self.repl_trace.push(fnv1a(&buf));
                    let adapter = s.adapter.as_mut().expect("checked above");
                    let _ =
                        adapter.send_control(ControlEvent::new(s.spec.vri.0, LVRM_CTRL_ID, buf));
                    produced = true;
                }
            }
            more = s.adapter.as_ref().is_some_and(|a| a.has_pending());
            s.poll_scheduled = more;
        }
        if more {
            self.q.schedule(t, Event::VriPoll { slot });
        }
        if produced && !self.gw_poll_scheduled {
            self.gw_poll_scheduled = true;
            self.q.schedule(t, Event::GatewayPoll);
        }
    }

    // ------------------------------------------------------------ sampling

    fn take_warmup_snapshot(&mut self, now: u64) {
        if !self.warmup_done && now >= self.sc.warmup_ns {
            self.warmup_done = true;
            for (i, f) in self.tcp.iter().enumerate() {
                self.tcp_goodput_at_warmup[i] = f.delivered_bytes;
            }
        }
    }

    fn on_sample(&mut self, now: u64) {
        if self.sc.sample_period_ns > 0 {
            let vris_per_vr = match &self.mech {
                Mech::Lvrm { lvrm, vr_ids, .. } => {
                    vr_ids.iter().map(|id| lvrm.vri_count(*id)).collect()
                }
                _ => Vec::new(),
            };
            let dt = now.saturating_sub(self.last_sample_ns).max(1);
            // With TCP present, report application goodput (what Fig. 4.22
            // plots); otherwise delivered wire bytes.
            let mbps = if self.tcp.is_empty() {
                let delta = self.delivered_wire_bytes - self.delivered_wire_bytes_last_sample;
                delta as f64 * 8.0 / dt as f64 * 1e3
            } else {
                let total: u64 = self.tcp.iter().map(|f| f.delivered_bytes).sum();
                let delta = total - self.tcp_goodput_last_sample;
                self.tcp_goodput_last_sample = total;
                delta as f64 * 8.0 / dt as f64 * 1e3
            };
            let offered: Vec<f64> = (0..self.sc.vrs.len())
                .map(|vr| {
                    self.sc
                        .sources
                        .iter()
                        .filter(|s| s.vr == vr)
                        .map(|s| s.schedule.rate_at(now))
                        .sum()
                })
                .collect();
            self.samples.push(VriSample {
                t_ns: now,
                vris_per_vr,
                delivered_mbps: mbps,
                offered_fps_per_vr: offered,
            });
            self.delivered_wire_bytes_last_sample = self.delivered_wire_bytes;
            self.last_sample_ns = now;
            if now + self.sc.sample_period_ns < self.sc.duration_ns {
                self.q.schedule(now + self.sc.sample_period_ns, Event::Sample);
            }
        }
    }

    fn vr_of_src(&self, frame: &Frame) -> Option<usize> {
        let src = frame.src_ip().ok()?;
        self.sc.vrs.iter().position(|v| {
            let o = v.sender_subnet.0.octets();
            let s = src.octets();
            o[0] == s[0] && o[1] == s[1] && o[2] == s[2]
        })
    }

    fn finish(mut self) -> ScenarioResult {
        // End-of-run monitor snapshot, taken BEFORE any shutdown drain:
        // shutdown purges the balancer's flow tables, so tracked-flow
        // occupancy is only observable here.
        let vr_snapshots = match &self.mech {
            Mech::Lvrm { lvrm, .. } => lvrm.snapshot(),
            _ => Vec::new(),
        };
        if self.sc.drain_shutdown {
            if let Mech::Lvrm { lvrm, host, clock, .. } = &mut self.mech {
                // Drain to a quiescent monitor: every queued frame is
                // serviced, rescued, or charged to a loss counter, so the
                // final snapshot closes the books with zero in-flight.
                let deadline = clock.now_ns() + 1_000_000_000;
                let mut rounds = 0;
                while !lvrm.shutdown(deadline, host) {
                    pump_slots(host, clock.now_ns());
                    rounds += 1;
                    assert!(rounds < 1000, "scenario shutdown drain must converge");
                }
                // Collect egress rescued at retirement (counts frames_out).
                let mut out = Vec::new();
                lvrm.poll_egress(&mut out);
            }
        }
        let (realloc, per_vri, lvrm_stats, supervision, metrics) = match &self.mech {
            Mech::Lvrm { lvrm, vr_ids, .. } => (
                lvrm.realloc_log.clone(),
                vr_ids.iter().map(|id| lvrm.vri_dispatch_counts(*id)).collect(),
                Some(lvrm.stats()),
                lvrm.supervision_log.clone(),
                Some(lvrm.metrics_snapshot()),
            ),
            _ => (Vec::new(), Vec::new(), None, Vec::new(), None),
        };
        ScenarioResult {
            duration_ns: self.sc.duration_ns,
            warmup_ns: self.sc.warmup_ns,
            udp_sent: self.udp_sent,
            udp_received: self.udp_received,
            flood_sent: self.flood_sent,
            per_vr_sent: self.per_vr_sent,
            per_vr_received: self.per_vr_received,
            udp_flows: self.udp_flows,
            tcp_goodput: self
                .tcp
                .iter()
                .enumerate()
                .map(|(i, f)| f.delivered_bytes - self.tcp_goodput_at_warmup[i])
                .collect(),
            tcp_retransmits: self.tcp.iter().map(|f| f.retransmits).sum(),
            tcp_timeouts: self.tcp.iter().map(|f| f.timeouts).sum(),
            latency: self.latency,
            rtt: self.rtt,
            samples: self.samples,
            realloc,
            cpu_busy: (0..8).map(|c| self.cpu.busy_ns(CoreId(c))).collect(),
            per_vri_dispatches: per_vri,
            lvrm_stats,
            supervision,
            vr_snapshots,
            metrics,
            ring_drops: self.ring_drops,
            repl_trace: self.repl_trace,
        }
    }
}

/// Service every live VRI slot to empty — the shutdown-drain pump (the
/// event loop has already stopped, so polls won't fire again).
fn pump_slots(host: &mut SimHost, now: u64) {
    for s in host.slots.iter_mut() {
        if !s.alive || s.stalled {
            continue;
        }
        let Some(adapter) = s.adapter.as_mut() else { continue };
        while let Some(work) = adapter.from_lvrm(now) {
            if let lvrm_ipc::channels::Work::Data(mut frame) = work {
                if let RouterAction::Forward { .. } = s.router.process(&mut frame) {
                    let _ = adapter.to_lvrm(frame);
                }
            }
        }
    }
}

fn kernel_routes(vrs: &[VrSpec]) -> lvrm_router::RouteTable {
    let mut t = lvrm_router::RouteTable::new();
    for v in vrs {
        t.insert(lvrm_router::Route {
            prefix: v.receiver_subnet.0,
            len: v.receiver_subnet.1,
            iface: 1,
            next_hop: None,
        });
        t.insert(lvrm_router::Route {
            prefix: v.sender_subnet.0,
            len: v.sender_subnet.1,
            iface: 0,
            next_hop: None,
        });
    }
    t
}

/// `top`-style buckets for socket work: raw-socket I/O is syscalls (sy);
/// PF_RING polling shows up as softirq/driver time; the memory adapter is
/// plain user-space copying.
fn socket_buckets(kind: SocketKind) -> (CpuBucket, CpuBucket) {
    match kind {
        SocketKind::RawSocket => (CpuBucket::System, CpuBucket::System),
        SocketKind::PfRing => (CpuBucket::SoftIrq, CpuBucket::SoftIrq),
        SocketKind::MemTrace => (CpuBucket::User, CpuBucket::User),
    }
}

/// FNV-1a over an encoded LVSU batch — the replication-trace digest.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Stable per-flow key: source address + source port.
fn flow_key(frame: &Frame) -> u64 {
    let src = frame.src_ip().map(u32::from).unwrap_or(0) as u64;
    let port = frame
        .udp()
        .map(|u| u.src_port())
        .or_else(|_| frame.tcp().map(|t| t.src_port()))
        .unwrap_or(0) as u64;
    (src << 16) | port
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateway::VrType;

    fn quick(mech: ForwardingMech) -> Scenario {
        let mut sc = Scenario::new(mech);
        sc.duration_ns = 300_000_000;
        sc.warmup_ns = 100_000_000;
        sc
    }

    #[test]
    fn native_forwards_udp_loss_free_below_capacity() {
        let sc = quick(ForwardingMech::Native).with_udp_load(0, 84, 100_000.0, 8);
        let r = sc.run();
        assert!(r.udp_sent > 15_000, "sent {}", r.udp_sent);
        assert!(
            r.delivery_ratio() > 0.99,
            "100 Kfps is well under the native 448 Kfps cap: ratio {}",
            r.delivery_ratio()
        );
    }

    #[test]
    fn native_saturates_near_448kfps() {
        let under = quick(ForwardingMech::Native).with_udp_load(0, 84, 400_000.0, 8).run();
        let over = quick(ForwardingMech::Native).with_udp_load(0, 84, 600_000.0, 8).run();
        assert!(under.delivery_ratio() > 0.98, "under: {}", under.delivery_ratio());
        assert!(over.delivery_ratio() < 0.90, "over: {}", over.delivery_ratio());
    }

    #[test]
    fn lvrm_forwards_udp_end_to_end() {
        let sc = quick(ForwardingMech::Lvrm).with_udp_load(0, 84, 100_000.0, 8);
        let r = sc.run();
        assert!(
            r.delivery_ratio() > 0.99,
            "LVRM at 100 Kfps: ratio {} (stats {:?}, ring drops {})",
            r.delivery_ratio(),
            r.lvrm_stats,
            r.ring_drops
        );
        let s = r.lvrm_stats.unwrap();
        assert!(s.frames_in > 0 && s.frames_out > 0);
        assert_eq!(s.unclassified, 0);
    }

    #[test]
    fn hypervisors_are_much_slower() {
        let native = quick(ForwardingMech::Native).with_udp_load(0, 84, 200_000.0, 8).run();
        let kvm = quick(ForwardingMech::Hypervisor(HypervisorKind::QemuKvm))
            .with_udp_load(0, 84, 200_000.0, 8)
            .run();
        assert!(native.delivery_ratio() > 0.98);
        assert!(kvm.delivery_ratio() < 0.5, "KVM at 200 Kfps: {}", kvm.delivery_ratio());
    }

    #[test]
    fn ping_rtt_is_in_the_paper_range() {
        let mut sc = quick(ForwardingMech::Native);
        sc.sources.push(SourceSpec {
            vr: 0,
            host: 1,
            kind: SourceKind::Ping { wire_size: 84, interval_ns: 1_000_000 },
            schedule: RateSchedule::constant(0.0),
        });
        let r = sc.run();
        assert!(r.rtt.count() > 100, "pings delivered: {}", r.rtt.count());
        let mean_us = r.rtt.mean_ns() / 1e3;
        assert!(
            (50.0..150.0).contains(&mean_us),
            "RTT {mean_us} us should sit in the paper's 70-120 us band"
        );
    }

    #[test]
    fn lvrm_dynamic_allocation_follows_load() {
        let mut sc = quick(ForwardingMech::Lvrm);
        sc.duration_ns = 6_000_000_000;
        sc.warmup_ns = 3_000_000_000; // measure after allocation converges
        sc.sample_period_ns = 500_000_000;
        sc.vrs = vec![VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 16_667 })];
        sc.lvrm.allocator =
            lvrm_core::config::AllocatorKind::DynamicFixed { per_core_rate: 60_000.0 };
        // 150 Kfps offered: wants 3 cores at 60 Kfps per core.
        sc = sc.with_udp_load(0, 84, 150_000.0, 8);
        let r = sc.run();
        let final_vris = r.samples.last().unwrap().vris_per_vr[0];
        assert_eq!(
            final_vris,
            3,
            "150 Kfps / 60 Kfps per core -> 3 VRIs; samples: {:?}",
            r.samples.iter().map(|s| s.vris_per_vr.clone()).collect::<Vec<_>>()
        );
        assert!(r.delivery_ratio() > 0.95, "ratio {}", r.delivery_ratio());
    }

    #[test]
    fn tcp_flow_transfers_bulk_data() {
        let mut sc = quick(ForwardingMech::Native);
        sc.duration_ns = 2_000_000_000;
        sc.warmup_ns = 500_000_000;
        sc.tcp_flows.push(TcpFlowSpec { vr: 0, cfg: TcpConfig::default(), start_ns: 0 });
        let r = sc.run();
        let mbps = r.tcp_aggregate_mbps();
        assert!(
            (300.0..1000.0).contains(&mbps),
            "single Reno flow on 1 GbE should reach hundreds of Mbps, got {mbps}"
        );
        assert_eq!(r.tcp_timeouts, 0, "clean path should not time out");
    }

    #[test]
    fn tcp_flows_share_capacity_fairly() {
        let mut sc = quick(ForwardingMech::Native);
        sc.duration_ns = 3_000_000_000;
        sc.warmup_ns = 1_000_000_000;
        for _ in 0..4 {
            sc.tcp_flows.push(TcpFlowSpec { vr: 0, cfg: TcpConfig::default(), start_ns: 0 });
        }
        let r = sc.run();
        let rates = r.tcp_goodput_mbps();
        let jain = lvrm_metrics::jain_index(&rates);
        assert!(jain > 0.8, "4-flow Jain {jain}, rates {rates:?}");
        let agg = r.tcp_aggregate_mbps();
        assert!((400.0..1000.0).contains(&agg), "aggregate {agg} Mbps");
    }

    #[test]
    fn search_achievable_finds_the_knee() {
        let rate = search_achievable(
            |r| {
                let mut sc = quick(ForwardingMech::Native).with_udp_load(0, 84, r, 8);
                sc.duration_ns = 200_000_000;
                sc.warmup_ns = 50_000_000;
                sc
            },
            50_000.0,
            1_000_000.0,
            7,
        );
        assert!(
            (380_000.0..520_000.0).contains(&rate),
            "native knee should be near 448 Kfps, got {rate}"
        );
    }
}
