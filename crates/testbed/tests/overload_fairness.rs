//! Overload control: when one VR offers many times its fair share, early
//! weighted shedding at ingress classification must protect the other VRs'
//! goodput — the monitor refuses the aggressor's excess cheaply instead of
//! burning its dispatch budget on frames that would tail-drop anyway.

use lvrm_core::config::AllocatorKind;
use lvrm_core::SocketKind;
use lvrm_testbed::cost::StageCost;
use lvrm_testbed::scenario::Scenario;
use lvrm_testbed::{ForwardingMech, VrSpec, VrType};

/// Two VRs behind one monitor core. The dispatch stage is made expensive
/// enough that classification+dispatch of the aggressor's full offered load
/// would saturate the monitor; each VR has one VRI worth ~60 Kfps.
fn contended_scenario(shedding: bool) -> Scenario {
    let mut sc = Scenario::new(ForwardingMech::Lvrm);
    sc.duration_ns = 2_000_000_000;
    sc.warmup_ns = 200_000_000;
    sc.socket = SocketKind::MemTrace;
    sc.cost.dispatch = StageCost::new(2_000, 0.0);
    sc.lvrm.allocator = AllocatorKind::Fixed { cores: 1 };
    sc.lvrm.overload_shedding = shedding;
    sc.vrs = vec![
        // The aggressor: low weight, so its quota under overload is small.
        VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 16_667 }).with_shed_weight(1.0),
        // The well-behaved tenant.
        VrSpec::numbered(1, VrType::Cpp { dummy_load_ns: 16_667 }).with_shed_weight(9.0),
    ];
    sc.with_udp_load(0, 84, 1_000_000.0, 8).with_udp_load(1, 84, 30_000.0, 8)
}

/// The well-behaved VR alone, same gateway configuration.
fn baseline_scenario() -> Scenario {
    let mut sc = Scenario::new(ForwardingMech::Lvrm);
    sc.duration_ns = 2_000_000_000;
    sc.warmup_ns = 200_000_000;
    sc.socket = SocketKind::MemTrace;
    sc.cost.dispatch = StageCost::new(2_000, 0.0);
    sc.lvrm.allocator = AllocatorKind::Fixed { cores: 1 };
    sc.lvrm.overload_shedding = true;
    sc.vrs = vec![
        VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 16_667 }).with_shed_weight(1.0),
        VrSpec::numbered(1, VrType::Cpp { dummy_load_ns: 16_667 }).with_shed_weight(9.0),
    ];
    sc.with_udp_load(1, 84, 30_000.0, 8)
}

#[test]
fn shedding_protects_the_unloaded_vr() {
    let baseline = baseline_scenario().run();
    let base_cold = baseline.per_vr_received[1];
    assert!(base_cold > 0, "baseline must deliver");

    let r = contended_scenario(true).run();
    let cold = r.per_vr_received[1];
    let s = r.lvrm_stats.clone().unwrap();

    // The aggressor was shed, not serviced.
    assert!(s.shed_early > 0, "aggressor excess must be shed: {s:?}");
    // Acceptance criterion: the unloaded VR's goodput stays within 10% of
    // its no-contention baseline.
    assert!(
        cold as f64 >= 0.9 * base_cold as f64,
        "cold VR goodput degraded: {cold} contended vs {base_cold} baseline"
    );
    // Per-VR admission counters reconcile with the aggregate.
    let snaps = lvrm_stats_snapshot(&r);
    let shed_sum: u64 = snaps.iter().map(|(_, shed)| *shed).sum();
    assert_eq!(shed_sum, s.shed_early, "per-VR shed must sum to the aggregate");
}

#[test]
fn without_shedding_the_aggressor_starves_the_other_vr() {
    // The adversarial control: same contention, shedding off. The monitor
    // burns its budget dispatching the aggressor's frames into a full queue
    // and the shared RX ring overflows on both VRs indiscriminately.
    let baseline = baseline_scenario().run();
    let base_cold = baseline.per_vr_received[1];

    let r = contended_scenario(false).run();
    let cold = r.per_vr_received[1];
    let s = r.lvrm_stats.clone().unwrap();
    assert_eq!(s.shed_early, 0, "shedding was off");
    assert!(
        (cold as f64) < 0.7 * base_cold as f64,
        "without shedding the cold VR should visibly starve: {cold} vs {base_cold}"
    );
}

/// Per-VR (admitted, shed) as reported by the final monitor snapshot.
fn lvrm_stats_snapshot(r: &lvrm_testbed::scenario::ScenarioResult) -> Vec<(u64, u64)> {
    r.vr_snapshots.iter().map(|v| (v.admitted, v.shed)).collect()
}
