//! Elephant-flow scaling under state-compute replication (DESIGN.md §14).
//!
//! One bulk TCP flow through a compute-bound VR: pinned dispatch rides a
//! single VRI and caps at one core's service rate; replicated dispatch
//! spreads the same flow over every VRI and goodput scales with the VRI
//! count. The suite asserts the headline ratios (≥1.7× at 2 VRIs, ≥3× at
//! 4) and that all five conservation identities stay exact in every run.

use lvrm_testbed::scenarios::elephant_flow;

const SEED: u64 = 42;

#[test]
fn elephant_scales_with_replicated_dispatch() {
    let pinned = elephant_flow(2, false, SEED).run();
    let repl2 = elephant_flow(2, true, SEED).run();
    let repl4 = elephant_flow(4, true, SEED).run();

    for (name, r) in [("pinned", &pinned), ("repl2", &repl2), ("repl4", &repl4)] {
        r.conservation.assert_all(&format!("(elephant {name})"));
    }
    assert_eq!(pinned.updates_emitted(), 0, "pinned dispatch replicates nothing");
    assert!(repl2.updates_emitted() > 0, "replicated dispatch must emit state updates");
    assert!(repl4.updates_emitted() > 0);

    let base = pinned.tcp_mbps();
    let x2 = repl2.tcp_mbps() / base;
    let x4 = repl4.tcp_mbps() / base;
    println!(
        "elephant goodput: pinned {base:.1} Mbps, repl2 {:.1} ({x2:.2}x), repl4 {:.1} ({x4:.2}x)",
        repl2.tcp_mbps(),
        repl4.tcp_mbps()
    );
    assert!(x2 >= 1.7, "2-VRI replicated speedup {x2:.2} < 1.7 (base {base:.1} Mbps)");
    assert!(x4 >= 3.0, "4-VRI replicated speedup {x4:.2} < 3.0 (base {base:.1} Mbps)");
}

/// Per-VRI dispatched counts for VR `vr0`, from the metrics snapshot
/// (the live per-VRI lists are empty after the shutdown drain; the
/// per-series counters survive retirement).
fn vr0_dispatches(report: &lvrm_testbed::scenarios::ScenarioReport) -> Vec<u64> {
    let snap = report.result.metrics.as_ref().expect("LVRM runs export metrics");
    let fam = snap.family("lvrm_vri_dispatched_total").expect("dispatched family exists");
    fam.series
        .iter()
        .filter(|s| {
            s.labels.iter().any(|(k, v)| k == "vr" && v == "vr0")
                && !s.labels.iter().any(|(k, v)| k == "vri" && v == "ring")
        })
        .map(|s| s.as_counter().unwrap_or(0))
        .collect()
}

/// Pinned dispatch must leave the elephant on one VRI even with spare
/// capacity — the negative control for the scaling claim.
#[test]
fn pinned_elephant_rides_one_vri() {
    let pinned = elephant_flow(2, false, SEED).run();
    let dispatches = vr0_dispatches(&pinned);
    let total: u64 = dispatches.iter().sum();
    let max = dispatches.iter().copied().max().unwrap_or(0);
    assert!(total > 0);
    // The TCP data path dominates; mice may land elsewhere. The top VRI
    // must carry the overwhelming majority of the VR's frames.
    assert!(max as f64 >= 0.8 * total as f64, "pinned elephant spread across VRIs: {dispatches:?}");
}

/// Replicated dispatch must actually spread the single flow: no VRI may
/// carry more than a fair-share-plus-slack fraction of the VR's frames.
#[test]
fn replicated_elephant_spreads_across_vris() {
    let repl4 = elephant_flow(4, true, SEED).run();
    let dispatches = vr0_dispatches(&repl4);
    let total: u64 = dispatches.iter().sum();
    let max = dispatches.iter().copied().max().unwrap_or(0);
    assert!(total > 0);
    assert!((max as f64) < 0.5 * total as f64, "replicated elephant not spread: {dispatches:?}");
    assert!(!repl4.result.repl_trace.is_empty(), "replicated run records an update trace");
}

/// The same claim on *real* VRI threads (spawned via `ThreadHost`, the
/// runtime's host): replicated dispatch spreads one elephant flow across
/// every live VRI while pinned dispatch rides one, with the global frame
/// books conserved on both. Ignored by default — it spawns OS threads and
/// its throughput depends on the box — run with `cargo test -- --ignored`;
/// the `repl_scaling_threads` bench row records the measured rates.
#[test]
#[ignore = "spawns real VRI threads; run with -- --ignored"]
fn elephant_spreads_on_real_vri_threads() {
    use std::net::Ipv4Addr;

    use lvrm_core::clock::Clock;
    use lvrm_core::{
        AffinityMode, AllocatorKind, CoreId, CoreMap, CoreTopology, DispatchMode, Lvrm, LvrmConfig,
        MonotonicClock,
    };
    use lvrm_net::FrameBuilder;
    use lvrm_runtime::ThreadHost;

    const VRIS: usize = 4;
    const FRAMES: u64 = 20_000;

    let run = |mode: DispatchMode| -> (Vec<u64>, f64, u64) {
        let clock = MonotonicClock::new();
        let config = LvrmConfig {
            allocator: AllocatorKind::Fixed { cores: VRIS },
            flow_based: true,
            data_queue_capacity: 1024,
            ..LvrmConfig::default()
        };
        let cores =
            CoreMap::new(CoreTopology::single_package(8), CoreId(0), AffinityMode::SiblingFirst);
        let mut lvrm = Lvrm::new(config, cores, clock.clone());
        let mut host = ThreadHost::new(clock.clone());
        if mode == DispatchMode::Replicated {
            host = host.with_replication();
        }
        let routes = lvrm_router::parse_map_file("0.0.0.0/0 1\n").unwrap();
        // Compute-bound service (10 us/frame) so one VRI is the bottleneck
        // under pinned dispatch.
        let router = Box::new(lvrm_router::FastVr::new("vr0", routes).with_dummy_load_ns(10_000));
        let vr = lvrm.add_vr("vr0", &[(Ipv4Addr::new(10, 0, 1, 0), 24)], router, &mut host);
        lvrm.set_vr_dispatch(vr, mode);
        for _ in 1..VRIS {
            lvrm.maybe_reallocate(clock.now_ns() + 2_000_000_000, &mut host);
        }
        assert_eq!(lvrm.vri_dispatch_counts(vr).len(), VRIS, "all VRIs spawned");

        // One elephant: every frame the same 5-tuple.
        let frame = FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 20), Ipv4Addr::new(10, 0, 2, 1))
            .udp(4000, 80, &[0u8; 46]);
        let mut egress = Vec::with_capacity(1024);
        let mut sent = 0u64;
        let mut out = 0u64;
        let t0 = clock.now_ns();
        let deadline = t0 + 20_000_000_000;
        while clock.now_ns() < deadline {
            if sent < FRAMES {
                for _ in 0..32.min(FRAMES - sent) {
                    lvrm.ingress(frame.clone(), &mut host);
                    sent += 1;
                }
            }
            egress.clear();
            lvrm.poll_egress(&mut egress);
            out += egress.len() as u64;
            let s = lvrm.stats();
            let lost = s.dispatch_drops + s.no_vri_drops + s.queue_lost;
            if sent == FRAMES && out + lost >= FRAMES {
                break;
            }
            std::thread::yield_now();
        }
        let elapsed_ns = clock.now_ns() - t0;
        let dispatches = lvrm.vri_dispatch_counts(vr);
        let s = lvrm.stats();
        assert_eq!(
            s.frames_in,
            s.frames_out + s.dispatch_drops + s.no_vri_drops + s.unclassified + s.shed_early,
            "global conservation violated on real threads ({mode:?}): {s:?}"
        );
        host.shutdown();
        (dispatches, out as f64 / (elapsed_ns as f64 / 1e9), s.updates_emitted)
    };

    let (pinned, pinned_fps, pinned_updates) = run(DispatchMode::Pinned);
    let (repl, repl_fps, repl_updates) = run(DispatchMode::Replicated);
    println!(
        "real-thread elephant: pinned {pinned_fps:.0} fps {pinned:?}, \
         replicated {repl_fps:.0} fps {repl:?}"
    );

    let total: u64 = pinned.iter().sum();
    let max = pinned.iter().copied().max().unwrap_or(0);
    assert!(total > 0);
    assert!(
        max as f64 >= 0.9 * total as f64,
        "pinned elephant spread across real VRI threads: {pinned:?}"
    );
    assert_eq!(pinned_updates, 0, "pinned dispatch replicates nothing");

    let total: u64 = repl.iter().sum();
    let max = repl.iter().copied().max().unwrap_or(0);
    assert!(total > 0);
    assert!(
        (max as f64) < 0.6 * total as f64,
        "replicated elephant not spread across real VRI threads: {repl:?}"
    );
    assert!(repl_updates > 0, "replicated dispatch must emit state updates");
}
