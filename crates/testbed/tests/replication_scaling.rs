//! Elephant-flow scaling under state-compute replication (DESIGN.md §14).
//!
//! One bulk TCP flow through a compute-bound VR: pinned dispatch rides a
//! single VRI and caps at one core's service rate; replicated dispatch
//! spreads the same flow over every VRI and goodput scales with the VRI
//! count. The suite asserts the headline ratios (≥1.7× at 2 VRIs, ≥3× at
//! 4) and that all five conservation identities stay exact in every run.

use lvrm_testbed::scenarios::elephant_flow;

const SEED: u64 = 42;

#[test]
fn elephant_scales_with_replicated_dispatch() {
    let pinned = elephant_flow(2, false, SEED).run();
    let repl2 = elephant_flow(2, true, SEED).run();
    let repl4 = elephant_flow(4, true, SEED).run();

    for (name, r) in [("pinned", &pinned), ("repl2", &repl2), ("repl4", &repl4)] {
        r.conservation.assert_all(&format!("(elephant {name})"));
    }
    assert_eq!(pinned.updates_emitted(), 0, "pinned dispatch replicates nothing");
    assert!(repl2.updates_emitted() > 0, "replicated dispatch must emit state updates");
    assert!(repl4.updates_emitted() > 0);

    let base = pinned.tcp_mbps();
    let x2 = repl2.tcp_mbps() / base;
    let x4 = repl4.tcp_mbps() / base;
    println!(
        "elephant goodput: pinned {base:.1} Mbps, repl2 {:.1} ({x2:.2}x), repl4 {:.1} ({x4:.2}x)",
        repl2.tcp_mbps(),
        repl4.tcp_mbps()
    );
    assert!(x2 >= 1.7, "2-VRI replicated speedup {x2:.2} < 1.7 (base {base:.1} Mbps)");
    assert!(x4 >= 3.0, "4-VRI replicated speedup {x4:.2} < 3.0 (base {base:.1} Mbps)");
}

/// Per-VRI dispatched counts for VR `vr0`, from the metrics snapshot
/// (the live per-VRI lists are empty after the shutdown drain; the
/// per-series counters survive retirement).
fn vr0_dispatches(report: &lvrm_testbed::scenarios::ScenarioReport) -> Vec<u64> {
    let snap = report.result.metrics.as_ref().expect("LVRM runs export metrics");
    let fam = snap.family("lvrm_vri_dispatched_total").expect("dispatched family exists");
    fam.series
        .iter()
        .filter(|s| {
            s.labels.iter().any(|(k, v)| k == "vr" && v == "vr0")
                && !s.labels.iter().any(|(k, v)| k == "vri" && v == "ring")
        })
        .map(|s| s.as_counter().unwrap_or(0))
        .collect()
}

/// Pinned dispatch must leave the elephant on one VRI even with spare
/// capacity — the negative control for the scaling claim.
#[test]
fn pinned_elephant_rides_one_vri() {
    let pinned = elephant_flow(2, false, SEED).run();
    let dispatches = vr0_dispatches(&pinned);
    let total: u64 = dispatches.iter().sum();
    let max = dispatches.iter().copied().max().unwrap_or(0);
    assert!(total > 0);
    // The TCP data path dominates; mice may land elsewhere. The top VRI
    // must carry the overwhelming majority of the VR's frames.
    assert!(max as f64 >= 0.8 * total as f64, "pinned elephant spread across VRIs: {dispatches:?}");
}

/// Replicated dispatch must actually spread the single flow: no VRI may
/// carry more than a fair-share-plus-slack fraction of the VR's frames.
#[test]
fn replicated_elephant_spreads_across_vris() {
    let repl4 = elephant_flow(4, true, SEED).run();
    let dispatches = vr0_dispatches(&repl4);
    let total: u64 = dispatches.iter().sum();
    let max = dispatches.iter().copied().max().unwrap_or(0);
    assert!(total > 0);
    assert!((max as f64) < 0.5 * total as f64, "replicated elephant not spread: {dispatches:?}");
    assert!(!repl4.result.repl_trace.is_empty(), "replicated run records an update trace");
}
