//! Property tests on the TCP Reno model: protocol invariants must hold
//! under arbitrary interleavings of deliveries, losses, duplicated ACKs and
//! timeouts — whatever the network does to the segments.

use lvrm_testbed::tcp::{TcpConfig, TcpFlow};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::net::Ipv4Addr;

#[derive(Clone, Debug)]
enum NetOp {
    /// Sender transmits as much as its window allows.
    Kick,
    /// Deliver the oldest in-flight segment to the receiver (ACK returns).
    DeliverOldest,
    /// Drop the oldest in-flight segment.
    DropOldest,
    /// Deliver the *newest* in-flight segment (reordering).
    DeliverNewest,
    /// Fire the retransmission timer with the current epoch.
    Timeout,
    /// Let time pass.
    Advance(u32),
}

fn ops() -> impl Strategy<Value = Vec<NetOp>> {
    prop::collection::vec(
        prop_oneof![
            3 => Just(NetOp::Kick),
            4 => Just(NetOp::DeliverOldest),
            1 => Just(NetOp::DropOldest),
            1 => Just(NetOp::DeliverNewest),
            1 => Just(NetOp::Timeout),
            2 => (1u32..50_000).prop_map(NetOp::Advance),
        ],
        0..400,
    )
}

fn flow() -> TcpFlow {
    TcpFlow::new(
        0,
        0,
        TcpConfig::default(),
        Ipv4Addr::new(10, 0, 1, 1),
        Ipv4Addr::new(10, 0, 2, 1),
        40_000,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn reno_invariants_under_arbitrary_networks(script in ops()) {
        let mut f = flow();
        let mss = f.cfg.mss as u64;
        let mut now: u64 = 0;
        // Network: segments in flight as (seq, len).
        let mut wire: VecDeque<(u64, usize)> = VecDeque::new();
        let mut max_delivered_prev = 0u64;

        let handle_transmits = |f: &mut TcpFlow, wire: &mut VecDeque<(u64, usize)>, seqs: Vec<u64>, now: u64| {
            for s in seqs {
                let frame = f.build_data(s, now);
                let t = frame.tcp().unwrap();
                wire.push_back((t.seq() as u64, t.payload().len()));
            }
        };

        for op in script {
            now += 1_000;
            match op {
                NetOp::Kick => {
                    while f.can_send(now) {
                        let frame = f.send_new(now);
                        let t = frame.tcp().unwrap();
                        wire.push_back((t.seq() as u64, t.payload().len()));
                    }
                }
                NetOp::DeliverOldest | NetOp::DeliverNewest => {
                    let seg = if matches!(op, NetOp::DeliverOldest) {
                        wire.pop_front()
                    } else {
                        wire.pop_back()
                    };
                    if let Some((seq, len)) = seg {
                        let ack_frame = f.on_data_at_receiver(seq, len, now);
                        let ack = ack_frame.tcp().unwrap().ack() as u64;
                        let act = f.on_ack_at_sender(ack, now);
                        handle_transmits(&mut f, &mut wire, act.transmit, now);
                    }
                }
                NetOp::DropOldest => {
                    wire.pop_front();
                }
                NetOp::Timeout => {
                    let epoch = f.timer_epoch;
                    let act = f.on_timeout(epoch, now);
                    handle_transmits(&mut f, &mut wire, act.transmit, now);
                }
                NetOp::Advance(by) => now += by as u64,
            }

            // --- invariants, checked after every step ---
            prop_assert!(f.cwnd >= 1.0, "cwnd collapsed below 1: {}", f.cwnd);
            prop_assert!(f.ssthresh >= 2.0, "ssthresh below 2: {}", f.ssthresh);
            prop_assert!(
                f.inflight() <= (f.cfg.rwnd_segments as u64 + 4) * mss,
                "inflight {} blew past the advertised window",
                f.inflight()
            );
            prop_assert!(
                f.delivered_bytes >= max_delivered_prev,
                "goodput went backwards"
            );
            max_delivered_prev = f.delivered_bytes;
            prop_assert!(
                f.current_rto_ns() >= f.cfg.min_rto_ns,
                "RTO under the configured floor"
            );
        }
    }

    /// A loss-free in-order network delivers everything the sender emits,
    /// exactly once.
    #[test]
    fn lossless_network_delivers_exactly_once(rounds in 1usize..60) {
        let mut f = flow();
        let mss = f.cfg.mss as u64;
        let mut now = 0u64;
        let mut sent_segments = 0u64;
        for _ in 0..rounds {
            now += 1_000;
            let mut wire = Vec::new();
            while f.can_send(now) {
                let frame = f.send_new(now);
                let t = frame.tcp().unwrap();
                wire.push((t.seq() as u64, t.payload().len()));
                sent_segments += 1;
            }
            for (seq, len) in wire {
                now += 10;
                let ack = f.on_data_at_receiver(seq, len, now);
                let act = f.on_ack_at_sender(ack.tcp().unwrap().ack() as u64, now);
                prop_assert!(act.transmit.is_empty(), "no retransmits on a clean path");
            }
        }
        prop_assert_eq!(f.delivered_bytes, sent_segments * mss);
        prop_assert_eq!(f.retransmits, 0);
        prop_assert_eq!(f.timeouts, 0);
        prop_assert_eq!(f.inflight(), 0);
    }
}
