//! End-to-end scenario regression suite over the declarative DSL.
//!
//! Runs the canned flash-crowd and SYN-flood scenarios (the adversarial
//! half of the fixed bench set) on the full simulated testbed with the
//! real LVRM monitor, and asserts:
//!
//! * all four frame-conservation identities hold exactly on the final
//!   metrics snapshot (post-drain, so the queued gauges are zero and the
//!   books must close to the frame);
//! * the weighted-tenant goodput floors: the weight-9 tenant rides out the
//!   overload at ~full goodput while the weight-1 aggressor is clipped;
//! * the PR 3 early-shedding path actually engaged (`shed_early > 0`) —
//!   a scenario that never sheds would pass the identities vacuously.
//!
//! Parameterized over every `QueueKind` (including `vlink`); set
//! `LVRM_CHAOS_QUEUE` to one of `lamport` / `fastforward` / `mutex` /
//! `vlink` to pin a single kind (the CI matrix does exactly that).

use lvrm_ipc::QueueKind;
use lvrm_testbed::scenarios::{flash_crowd, million_flows, syn_flood};

fn queue_kinds() -> Vec<QueueKind> {
    match std::env::var("LVRM_CHAOS_QUEUE") {
        Ok(want) => vec![want.parse::<QueueKind>().expect("LVRM_CHAOS_QUEUE")],
        Err(_) => QueueKind::ALL.to_vec(),
    }
}

#[test]
fn flash_crowd_sheds_surge_and_preserves_weighted_goodput() {
    for qk in queue_kinds() {
        let mut spec = flash_crowd(0xF1A5);
        spec.queue_kind = qk;
        let report = spec.run();
        let ctx = format!("(flash crowd, {qk:?})");

        report.conservation.assert_all(&ctx);
        assert!(report.shed_early() > 0, "surge never engaged shedding {ctx}");

        let steady = &report.tenants[0];
        let crowd = &report.tenants[1];
        assert!(steady.sent > 0 && crowd.sent > 0, "both tenants must offer load {ctx}");
        assert!(
            steady.goodput() >= 0.95,
            "weight-9 steady tenant dropped to {:.4} goodput {ctx}",
            steady.goodput()
        );
        assert!(
            crowd.goodput() < steady.goodput(),
            "weight-1 surge ({:.4}) must be clipped below steady ({:.4}) {ctx}",
            crowd.goodput(),
            steady.goodput()
        );
    }
}

#[test]
fn syn_flood_is_shed_and_victim_goodput_holds() {
    for qk in queue_kinds() {
        let mut spec = syn_flood(0x5EED);
        spec.queue_kind = qk;
        let report = spec.run();
        let ctx = format!("(syn flood, {qk:?})");

        report.conservation.assert_all(&ctx);
        assert!(report.shed_early() > 0, "flood never engaged shedding {ctx}");
        assert!(report.result.flood_sent > 0, "attacker emitted nothing {ctx}");

        let victim = &report.tenants[0];
        assert!(victim.sent > 0, "victim must offer load {ctx}");
        assert!(
            victim.goodput() >= 0.95,
            "weight-9 victim dropped to {:.4} goodput under flood {ctx}",
            victim.goodput()
        );
        // Flood frames are not data: the receiver-side accounting must not
        // credit any of them as tenant goodput (the attacker tenant sends
        // no UDP data at all).
        assert_eq!(report.tenants[1].sent, 0, "flood frames counted as data {ctx}");
        assert_eq!(report.tenants[1].received, 0, "flood frames reached goodput {ctx}");
    }
}

/// The headline acceptance run: ≥1M concurrently tracked flows with every
/// conservation identity holding exactly at shutdown. ~1M distinct
/// 5-tuples at 1.2 Mfps needs a release build — run with
/// `cargo test -p lvrm-testbed --release -- --ignored million_flow`.
#[test]
#[ignore = "million-flow census needs a release build (~2s simulated, minutes in debug)"]
fn million_flow_census_tracks_and_conserves() {
    for qk in queue_kinds() {
        let mut spec = million_flows(1_000_000, 0x0131);
        spec.queue_kind = qk;
        let report = spec.run();
        let ctx = format!("(million flows, {qk:?})");
        report.conservation.assert_all(&ctx);
        assert!(
            report.tracked_flows() >= 1_000_000,
            "expected >=1M concurrently tracked flows, got {} {ctx}",
            report.tracked_flows()
        );
        let fs = report.flow_stats();
        assert_eq!(fs.overflows, 0, "flow table must absorb the census without overflow {ctx}");
        assert!(report.tenants[0].goodput() > 0.9, "goodput {} {ctx}", report.tenants[0].goodput());
    }
}
