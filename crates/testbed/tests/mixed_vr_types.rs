//! Heterogeneous hosting: one C++ VR and one Click VR side by side in the
//! same LVRM instance — the §3.8 claim that LVRM "can in essence host
//! different implementations of virtual routers" simultaneously.

use lvrm_core::config::AllocatorKind;
use lvrm_testbed::scenario::{Scenario, SourceSpec};
use lvrm_testbed::traffic::{RateSchedule, SourceKind};
use lvrm_testbed::{ForwardingMech, VrSpec, VrType};

#[test]
fn cpp_and_click_vrs_coexist() {
    let mut sc = Scenario::new(ForwardingMech::Lvrm);
    sc.duration_ns = 1_500_000_000;
    sc.warmup_ns = 300_000_000;
    sc.vrs = vec![
        VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 0 }),
        VrSpec::numbered(1, VrType::Click { dummy_load_ns: 0 }),
    ];
    sc.lvrm.allocator = AllocatorKind::Fixed { cores: 2 };
    for vr in 0..2 {
        sc.sources.push(SourceSpec {
            vr,
            host: 1,
            kind: SourceKind::UdpCbr { wire_size: 84, flows: 8 },
            schedule: RateSchedule::constant(50_000.0),
        });
    }
    let r = sc.run();
    assert!(r.delivery_ratio() > 0.99, "ratio {}", r.delivery_ratio());
    // Both VRs forwarded their own traffic.
    assert!(r.per_vr_received[0] > 30_000, "cpp VR: {:?}", r.per_vr_received);
    assert!(r.per_vr_received[1] > 30_000, "click VR: {:?}", r.per_vr_received);
    let s = r.lvrm_stats.unwrap();
    assert_eq!(s.unclassified, 0, "no cross-classification between VR types");
}

#[test]
fn heterogeneous_vrs_get_proportional_cores_under_load() {
    // The Click VR here does ~2.3x the per-frame work of the C++ VR; under
    // equal offered load and the service-rate allocator it must earn
    // strictly more cores (the Exp 2e mechanism, across VR *types*).
    let mut sc = Scenario::new(ForwardingMech::Lvrm);
    sc.duration_ns = 8_000_000_000;
    sc.warmup_ns = 200_000_000;
    sc.sample_period_ns = 1_000_000_000;
    sc.vrs = vec![
        VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 8_333 }),
        VrSpec::numbered(1, VrType::Click { dummy_load_ns: 16_667 }),
    ];
    sc.lvrm.allocator = AllocatorKind::DynamicServiceRate { bootstrap_rate: 60_000.0 };
    for vr in 0..2 {
        sc.sources.push(SourceSpec {
            vr,
            host: 1,
            kind: SourceKind::UdpCbr { wire_size: 84, flows: 8 },
            schedule: RateSchedule::constant(80_000.0),
        });
    }
    let r = sc.run();
    let last = r.samples.last().unwrap();
    assert!(
        last.vris_per_vr[1] > last.vris_per_vr[0],
        "the heavier Click VR must earn more cores: {:?}",
        last.vris_per_vr
    );
}
