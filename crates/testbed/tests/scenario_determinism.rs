//! Generator determinism: the same spec + seed must reproduce the run
//! bit-for-bit — identical flow traces, identical conservation reports,
//! identical per-tenant delivery. This is what makes a scenario a usable
//! regression artifact: a perf delta between two commits can only come
//! from the code, never from the workload.
//!
//! A different seed, by contrast, must actually change the traffic (guards
//! against a generator that ignores its seed and degenerates to a fixed
//! trace).

use std::collections::BTreeMap;

use lvrm_testbed::scenarios::{diurnal, elephant_flow, ScenarioReport};

/// Project a run onto everything workload-observable: per-flow delivery
/// maps, tenant books, identity values, flow-table occupancy.
type Fingerprint = (BTreeMap<u64, (u64, u64)>, Vec<(u64, u64)>, Vec<(u64, u64)>, u64);

fn fingerprint(r: &ScenarioReport) -> Fingerprint {
    let flows: BTreeMap<u64, (u64, u64)> =
        r.result.udp_flows.iter().map(|(k, v)| (*k, *v)).collect();
    let tenants = r.tenants.iter().map(|t| (t.sent, t.received)).collect();
    let identities = r.conservation.all().map(|id| (id.lhs, id.rhs)).collect();
    (flows, tenants, identities, r.tracked_flows())
}

#[test]
fn same_spec_and_seed_reproduce_the_run_exactly() {
    let a = diurnal(0xD1CE).run();
    let b = diurnal(0xD1CE).run();

    a.conservation.assert_all("(diurnal, run A)");
    b.conservation.assert_all("(diurnal, run B)");

    let fa = fingerprint(&a);
    let fb = fingerprint(&b);
    assert_eq!(fa.0.len(), fb.0.len(), "flow population diverged");
    assert_eq!(fa.0, fb.0, "per-flow delivery traces diverged");
    assert_eq!(fa.1, fb.1, "per-tenant books diverged");
    assert_eq!(fa.2, fb.2, "conservation reports diverged");
    assert_eq!(fa.3, fb.3, "tracked-flow occupancy diverged");
    assert!(!fa.0.is_empty(), "diurnal run must actually carry flows");
}

#[test]
fn different_seed_changes_the_flow_trace() {
    let a = diurnal(1).run();
    let b = diurnal(2).run();
    a.conservation.assert_all("(diurnal, seed 1)");
    b.conservation.assert_all("(diurnal, seed 2)");
    assert_ne!(
        fingerprint(&a).0,
        fingerprint(&b).0,
        "generators must consume their seed: seeds 1 and 2 produced identical traces"
    );
}

/// The replication plane is part of the reproducible surface: the same
/// elephant-flow spec + seed must emit a bit-identical LVSU batch trace
/// (DESIGN.md §14), and the five identities must close in both runs.
#[test]
fn elephant_replication_trace_is_deterministic() {
    let a = elephant_flow(2, true, 0xE1E).run();
    let b = elephant_flow(2, true, 0xE1E).run();
    a.conservation.assert_all("(elephant, run A)");
    b.conservation.assert_all("(elephant, run B)");
    assert!(!a.result.repl_trace.is_empty(), "replicated run must emit state updates");
    assert_eq!(a.result.repl_trace, b.result.repl_trace, "replicated-update traces diverged");
    assert_eq!(fingerprint(&a), fingerprint(&b), "elephant fingerprints diverged");
    assert_eq!(a.updates_emitted(), b.updates_emitted());
    assert_eq!(a.tcp_mbps(), b.tcp_mbps(), "goodput must reproduce bit-for-bit");
}

/// A different seed perturbs the mice mix and with it the replicated
/// update stream — the trace must not be seed-blind.
#[test]
fn elephant_replication_trace_consumes_the_seed() {
    let a = elephant_flow(2, true, 3).run();
    let b = elephant_flow(2, true, 4).run();
    a.conservation.assert_all("(elephant, seed 3)");
    b.conservation.assert_all("(elephant, seed 4)");
    assert_ne!(
        a.result.repl_trace, b.result.repl_trace,
        "seeds 3 and 4 produced identical replicated-update traces"
    );
}
