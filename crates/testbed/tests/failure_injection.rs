//! Failure injection: overload and teardown paths must degrade gracefully
//! and account every lost frame — silence is not an option in a monitor
//! whose whole job is resource accounting.

use lvrm_core::config::AllocatorKind;
use lvrm_core::monitor::SupervisionAction;
use lvrm_core::FaultPlan;
use lvrm_testbed::scenario::{Scenario, SourceSpec};
use lvrm_testbed::traffic::{RateSchedule, SourceKind};
use lvrm_testbed::{ForwardingMech, VrSpec, VrType};

fn lvrm_scenario() -> Scenario {
    let mut sc = Scenario::new(ForwardingMech::Lvrm);
    sc.duration_ns = 2_000_000_000;
    sc.warmup_ns = 200_000_000;
    sc.vrs = vec![VrSpec::numbered(0, VrType::Cpp { dummy_load_ns: 16_667 })];
    sc
}

#[test]
fn overload_loses_frames_loudly_not_silently() {
    // One VRI worth ~60 Kfps, offered 200 Kfps: most frames must drop, and
    // every drop must be visible in a counter.
    let mut sc = lvrm_scenario();
    sc.lvrm.allocator = AllocatorKind::Fixed { cores: 1 };
    let sc = sc.with_udp_load(0, 84, 200_000.0, 8);
    let r = sc.run();
    assert!(r.delivery_ratio() < 0.5, "overload must lose frames: {}", r.delivery_ratio());
    let s = r.lvrm_stats.unwrap();
    let accounted = r.udp_received
        + s.dispatch_drops
        + s.no_vri_drops
        + s.shrink_lost
        + s.shed_early
        + r.ring_drops;
    // Everything sent in the window is either delivered or in a drop
    // counter (modulo frames still in flight at the end and the warmup
    // boundary). Allow a small in-flight slack.
    assert!(
        accounted + 5_000 >= r.udp_sent,
        "unaccounted loss: sent {} vs accounted {accounted} ({s:?}, ring {})",
        r.udp_sent,
        r.ring_drops
    );
}

#[test]
fn shrink_under_traffic_keeps_forwarding() {
    // Load drops sharply while frames are still flowing; the shrink path
    // must not wedge the remaining VRIs.
    let mut sc = lvrm_scenario();
    sc.duration_ns = 6_000_000_000;
    sc.lvrm.allocator = AllocatorKind::DynamicFixed { per_core_rate: 60_000.0 };
    sc.sources.push(SourceSpec {
        vr: 0,
        host: 1,
        kind: SourceKind::UdpCbr { wire_size: 84, flows: 8 },
        schedule: RateSchedule::piecewise(vec![(0, 170_000.0), (3_000_000_000, 40_000.0)]),
    });
    sc.sample_period_ns = 500_000_000;
    let r = sc.run();
    let shrinks =
        r.realloc.iter().filter(|e| e.decision == lvrm_core::alloc::AllocDecision::Shrink).count();
    assert!(shrinks >= 1, "the load drop must trigger shrinks");
    // After the shrink, traffic still flows: the last sample shows delivery.
    let last = r.samples.last().unwrap();
    assert!(
        last.delivered_mbps > 10.0,
        "post-shrink delivery stalled: {} Mbps",
        last.delivered_mbps
    );
}

#[test]
fn hypervisor_collapse_is_bounded_not_wedged() {
    // QEMU-KVM at 20x its capacity: the sim must neither livelock nor
    // deliver more than capacity.
    let mut sc = Scenario::new(ForwardingMech::Hypervisor(lvrm_testbed::HypervisorKind::QemuKvm));
    sc.duration_ns = 1_000_000_000;
    sc.warmup_ns = 200_000_000;
    let sc = sc.with_udp_load(0, 84, 300_000.0, 8);
    let r = sc.run();
    let cap_fps = 1e9 / 55_000.0; // kvm fixed cost
    assert!(r.delivered_fps() < cap_fps * 1.3, "over capacity: {}", r.delivered_fps());
    assert!(r.delivered_fps() > cap_fps * 0.5, "wedged: {}", r.delivered_fps());
}

#[test]
fn crashed_vri_is_respawned_and_traffic_recovers() {
    // Two fixed VRIs under moderate load; one crashes mid-run. The
    // supervisor must notice within one tick, respawn it, re-dispatch the
    // frames stranded in its queues, and keep every loss accounted.
    let crash_at = 2_500_000_000u64;
    let mut sc = lvrm_scenario();
    sc.duration_ns = 6_000_000_000;
    sc.lvrm.supervision = true;
    sc.lvrm.allocator = AllocatorKind::Fixed { cores: 2 };
    sc.faults = FaultPlan::new().crash_at(crash_at, 0);
    sc.sample_period_ns = 500_000_000;
    let sc = sc.with_udp_load(0, 84, 80_000.0, 8);
    let r = sc.run();

    let died = r
        .supervision
        .iter()
        .find(|e| matches!(e.action, SupervisionAction::Died { .. }))
        .expect("supervisor must log the death");
    assert!(died.ts_ns >= crash_at, "death observed after the crash");
    assert!(
        died.ts_ns <= crash_at + 1_100_000_000,
        "death detected within one supervisor tick: {} ns late",
        died.ts_ns - crash_at
    );
    let respawned = r
        .supervision
        .iter()
        .find(|e| matches!(e.action, SupervisionAction::Respawned))
        .expect("supervisor must respawn");
    assert_eq!(respawned.ts_ns, died.ts_ns, "first respawn carries no backoff");

    let s = r.lvrm_stats.clone().unwrap();
    assert_eq!(s.vri_deaths, 1);
    assert!(s.respawns >= 1);
    assert!(s.quarantined_drops == 0, "one crash must not quarantine");

    // Post-recovery delivery resumes at the offered rate.
    let last = r.samples.last().unwrap();
    assert!(last.vris_per_vr[0] >= 2, "VRI count restored: {:?}", last.vris_per_vr);
    assert!(last.delivered_mbps > 20.0, "post-respawn delivery: {}", last.delivered_mbps);

    // Every frame is delivered or sits in a named counter (small in-flight
    // slack at run end, as in the overload test above).
    let accounted = r.udp_received
        + s.dispatch_drops
        + s.no_vri_drops
        + s.shrink_lost
        + s.crash_lost
        + s.quarantined_drops
        + s.shed_early
        + r.ring_drops;
    assert!(
        accounted + 5_000 >= r.udp_sent,
        "unaccounted loss: sent {} vs accounted {accounted} ({s:?}, ring {})",
        r.udp_sent,
        r.ring_drops
    );
}

#[test]
fn stalled_vri_is_declared_dead_and_replaced() {
    // A wedged instance keeps its endpoint attached but stops heartbeating;
    // the dead-man timer must catch it and route around.
    let stall_at = 2_500_000_000u64;
    let mut sc = lvrm_scenario();
    sc.duration_ns = 6_000_000_000;
    sc.lvrm.supervision = true;
    sc.lvrm.allocator = AllocatorKind::Fixed { cores: 2 };
    sc.faults = FaultPlan::new().stall_at(stall_at, 0);
    let sc = sc.with_udp_load(0, 84, 80_000.0, 8);
    let r = sc.run();

    let died = r
        .supervision
        .iter()
        .find(|e| matches!(e.action, SupervisionAction::Died { .. }))
        .expect("stall must be declared dead via heartbeat timeout");
    // Detection needs the silence to exceed dead_after_ns (1 s, measured
    // from the last heartbeat, up to one beat period before the stall),
    // then the next supervisor tick.
    assert!(died.ts_ns + 300_000_000 >= stall_at + sc.lvrm.dead_after_ns);
    assert!(died.ts_ns <= stall_at + sc.lvrm.dead_after_ns + 1_200_000_000);
    let s = r.lvrm_stats.unwrap();
    assert_eq!(s.vri_deaths, 1);
    assert!(s.respawns >= 1, "replacement spawned");
}

#[test]
fn zero_traffic_run_is_clean() {
    let sc = lvrm_scenario();
    let r = sc.run();
    assert_eq!(r.udp_sent, 0);
    assert_eq!(r.udp_received, 0);
    assert_eq!(r.delivery_ratio(), 1.0);
    let s = r.lvrm_stats.unwrap();
    assert_eq!(s.frames_in, 0);
}

#[test]
fn burst_into_empty_vr_recovers() {
    // A VR idles for seconds (allocation decays to 1 VRI), then a burst
    // arrives: frames flow immediately (no cold-start wedge) and the
    // allocator scales back up.
    let mut sc = lvrm_scenario();
    sc.duration_ns = 8_000_000_000;
    sc.lvrm.allocator = AllocatorKind::DynamicFixed { per_core_rate: 60_000.0 };
    sc.sources.push(SourceSpec {
        vr: 0,
        host: 1,
        kind: SourceKind::UdpCbr { wire_size: 84, flows: 8 },
        schedule: RateSchedule::piecewise(vec![(4_000_000_000, 150_000.0)]),
    });
    sc.sample_period_ns = 500_000_000;
    let r = sc.run();
    let last = r.samples.last().unwrap();
    assert!(last.vris_per_vr[0] >= 3, "burst must re-grow cores: {:?}", last.vris_per_vr);
    assert!(last.delivered_mbps > 50.0, "burst traffic flows: {}", last.delivered_mbps);
}
