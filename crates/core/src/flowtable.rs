//! Connection-tracking flow table for flow-based load balancing.
//!
//! "Instead of the dynamic arrays, the hash tables are used for the
//! performance issues in the connection tracking functions, which are called
//! for each incoming data frames" (paper §3.3). The table maps a flow's
//! 5-tuple to the VRI its first frame was assigned, so later frames follow
//! it and intra-flow reordering is avoided.
//!
//! Implementation: open addressing with linear probing over a power-of-two
//! slot array, keyed by the flow's FNV hash. Every hit refreshes the entry's
//! timestamp (the paper updates flow timestamps via `times()`); expired and
//! dead-VRI entries are reclaimed lazily during probes.

use lvrm_net::FlowKey;

use crate::VriId;

#[derive(Clone, Copy)]
struct Entry {
    key: FlowKey,
    vri: VriId,
    last_seen_ns: u64,
}

/// Fixed-capacity connection-tracking table.
pub struct FlowTable {
    slots: Box<[Option<Entry>]>,
    mask: usize,
    timeout_ns: u64,
    len: usize,
    /// Insertions refused because the table was full (observability).
    pub overflows: u64,
}

impl FlowTable {
    /// `capacity` rounds up to a power of two; `timeout_ns` expires idle
    /// flows (TCP flows silent that long have effectively closed).
    pub fn new(capacity: usize, timeout_ns: u64) -> FlowTable {
        let cap = capacity.max(16).next_power_of_two();
        FlowTable {
            slots: vec![None; cap].into_boxed_slice(),
            mask: cap - 1,
            timeout_ns,
            len: 0,
            overflows: 0,
        }
    }

    /// Live entries (may include not-yet-reclaimed expired flows).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn expired(&self, e: &Entry, now_ns: u64) -> bool {
        now_ns.saturating_sub(e.last_seen_ns) > self.timeout_ns
    }

    /// Look up `key`; on a live hit, refresh its timestamp and return its
    /// VRI ("hash table find the entry with current timestamp and add flag",
    /// Fig. 3.3). Expired entries encountered on the probe path are removed.
    pub fn find_and_touch(&mut self, key: &FlowKey, now_ns: u64) -> Option<VriId> {
        let mut i = key.hash64() as usize & self.mask;
        for _ in 0..self.slots.len() {
            match &mut self.slots[i] {
                None => return None,
                Some(e) if e.key == *key => {
                    if self.expired(&self.slots[i].unwrap(), now_ns) {
                        self.remove_at(i);
                        return None;
                    }
                    let e = self.slots[i].as_mut().expect("just matched");
                    e.last_seen_ns = now_ns;
                    return Some(e.vri);
                }
                Some(_) => i = (i + 1) & self.mask,
            }
        }
        None
    }

    /// Insert or update `key -> vri`.
    pub fn insert(&mut self, key: FlowKey, vri: VriId, now_ns: u64) -> bool {
        let mut i = key.hash64() as usize & self.mask;
        for _ in 0..self.slots.len() {
            match &mut self.slots[i] {
                slot @ None => {
                    *slot = Some(Entry { key, vri, last_seen_ns: now_ns });
                    self.len += 1;
                    return true;
                }
                Some(e) if e.key == key => {
                    e.vri = vri;
                    e.last_seen_ns = now_ns;
                    return true;
                }
                Some(e) if now_ns.saturating_sub(e.last_seen_ns) > self.timeout_ns => {
                    // Reclaim an expired stranger's slot.
                    *e = Entry { key, vri, last_seen_ns: now_ns };
                    return true;
                }
                Some(_) => i = (i + 1) & self.mask,
            }
        }
        self.overflows += 1;
        false
    }

    /// Iterate live entries as `(key, vri, last_seen_ns)` — the checkpoint
    /// export surface. Entries already past `timeout_ns` may still appear
    /// (they are reclaimed lazily); importers re-apply the timeout anyway.
    pub fn entries(&self) -> impl Iterator<Item = (FlowKey, VriId, u64)> + '_ {
        self.slots.iter().flatten().map(|e| (e.key, e.vri, e.last_seen_ns))
    }

    /// Remove every entry pointing at `vri` (called when a VRI is killed so
    /// its flows get re-balanced instead of black-holed).
    ///
    /// Collects the victim keys first and removes them by probe: a naive
    /// positional sweep would miss entries that the backshift deletion
    /// relocates into slots the sweep already passed (found by the
    /// model-based property test).
    pub fn purge_vri(&mut self, vri: VriId) -> usize {
        let keys: Vec<FlowKey> =
            self.slots.iter().flatten().filter(|e| e.vri == vri).map(|e| e.key).collect();
        for k in &keys {
            self.remove_key(k);
        }
        keys.len()
    }

    /// Remove `key` wherever it currently sits on its probe chain.
    fn remove_key(&mut self, key: &FlowKey) {
        let mut i = key.hash64() as usize & self.mask;
        for _ in 0..self.slots.len() {
            match &self.slots[i] {
                None => return,
                Some(e) if e.key == *key => {
                    self.remove_at(i);
                    return;
                }
                Some(_) => i = (i + 1) & self.mask,
            }
        }
    }

    /// Tombstone-free removal: delete slot `i` and re-insert the probe chain
    /// behind it (standard linear-probing backshift).
    fn remove_at(&mut self, i: usize) {
        self.slots[i] = None;
        self.len -= 1;
        let mut j = (i + 1) & self.mask;
        while let Some(e) = self.slots[j] {
            self.slots[j] = None;
            self.len -= 1;
            // Re-insert preserves its timestamp.
            let mut k = e.key.hash64() as usize & self.mask;
            while self.slots[k].is_some() {
                k = (k + 1) & self.mask;
            }
            self.slots[k] = Some(e);
            self.len += 1;
            j = (j + 1) & self.mask;
        }
    }
}

impl std::fmt::Debug for FlowTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowTable")
            .field("len", &self.len)
            .field("capacity", &self.capacity())
            .field("overflows", &self.overflows)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvrm_net::flow::Protocol;
    use std::net::Ipv4Addr;

    fn key(n: u8) -> FlowKey {
        FlowKey {
            src: Ipv4Addr::new(10, 0, 1, n),
            dst: Ipv4Addr::new(10, 0, 2, 1),
            src_port: 1000 + n as u16,
            dst_port: 80,
            proto: Protocol::Tcp,
        }
    }

    #[test]
    fn insert_find_roundtrip() {
        let mut t = FlowTable::new(64, 1_000_000_000);
        assert!(t.insert(key(1), VriId(3), 100));
        assert_eq!(t.find_and_touch(&key(1), 200), Some(VriId(3)));
        assert_eq!(t.find_and_touch(&key(2), 200), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn expiry_evicts_idle_flows() {
        let mut t = FlowTable::new(64, 1_000);
        t.insert(key(1), VriId(3), 0);
        // Within timeout: hit refreshes.
        assert_eq!(t.find_and_touch(&key(1), 900), Some(VriId(3)));
        // The refresh at 900 extends life to 1900.
        assert_eq!(t.find_and_touch(&key(1), 1800), Some(VriId(3)));
        // Far past timeout: gone.
        assert_eq!(t.find_and_touch(&key(1), 10_000), None);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn insert_reclaims_expired_slots() {
        let mut t = FlowTable::new(16, 10);
        for n in 0..16 {
            assert!(t.insert(key(n), VriId(0), 0));
        }
        // All expired by t=100; new inserts reuse their slots.
        assert!(t.insert(key(100), VriId(1), 100));
        assert_eq!(t.find_and_touch(&key(100), 100), Some(VriId(1)));
    }

    #[test]
    fn full_table_reports_overflow() {
        let mut t = FlowTable::new(16, u64::MAX);
        for n in 0..16 {
            assert!(t.insert(key(n), VriId(0), 0));
        }
        assert!(!t.insert(key(99), VriId(0), 0));
        assert_eq!(t.overflows, 1);
    }

    #[test]
    fn purge_vri_removes_only_its_flows() {
        let mut t = FlowTable::new(64, u64::MAX);
        t.insert(key(1), VriId(1), 0);
        t.insert(key(2), VriId(2), 0);
        t.insert(key(3), VriId(1), 0);
        assert_eq!(t.purge_vri(VriId(1)), 2);
        assert_eq!(t.find_and_touch(&key(2), 0), Some(VriId(2)));
        assert_eq!(t.find_and_touch(&key(1), 0), None);
    }

    #[test]
    fn backshift_keeps_probe_chains_reachable() {
        // Force collisions by filling a tiny table, then delete from the
        // middle of a chain and confirm later entries still resolve.
        let mut t = FlowTable::new(16, u64::MAX);
        let keys: Vec<FlowKey> = (0..12).map(key).collect();
        for (i, k) in keys.iter().enumerate() {
            t.insert(*k, VriId(i as u32), 0);
        }
        t.purge_vri(VriId(4));
        for (i, k) in keys.iter().enumerate() {
            if i == 4 {
                continue;
            }
            assert_eq!(t.find_and_touch(k, 0), Some(VriId(i as u32)), "key {i} lost");
        }
    }

    #[test]
    fn update_existing_flow_changes_vri() {
        let mut t = FlowTable::new(16, u64::MAX);
        t.insert(key(1), VriId(1), 0);
        t.insert(key(1), VriId(5), 10);
        assert_eq!(t.len(), 1);
        assert_eq!(t.find_and_touch(&key(1), 10), Some(VriId(5)));
    }
}
