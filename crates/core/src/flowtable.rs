//! Connection-tracking flow table for flow-based load balancing.
//!
//! "Instead of the dynamic arrays, the hash tables are used for the
//! performance issues in the connection tracking functions, which are called
//! for each incoming data frames" (paper §3.3). The table maps a flow's
//! 5-tuple to the VRI its first frame was assigned, so later frames follow
//! it and intra-flow reordering is avoided.
//!
//! Implementation: open addressing with linear probing over a power-of-two
//! slot array, keyed by the flow's FNV hash. Every hit refreshes the entry's
//! timestamp (the paper updates flow timestamps via `times()`); expired and
//! dead-VRI entries are reclaimed lazily during probes.
//!
//! At million-flow scale, lazy probe-time reclamation alone lets dead flows
//! silt the table up: an expired entry is only noticed when a probe happens
//! to cross it, so under churn the table fills with corpses and inserts
//! start refusing. [`FlowTable::age_step`] adds **incremental aging**: a
//! sweep cursor visits a bounded number of slots per call (the monitor's
//! 1 s tick drives it), evicting expired entries as it goes. Every pass is
//! O(budget), never a full-table scan, so the tick cost stays bounded no
//! matter how large the table is; a full sweep completes across
//! `capacity / budget` consecutive ticks.

use lvrm_net::FlowKey;

use crate::VriId;

#[derive(Clone, Copy)]
struct Entry {
    key: FlowKey,
    vri: VriId,
    last_seen_ns: u64,
}

/// Occupancy and churn statistics of one [`FlowTable`], cheap to copy out
/// (published as per-VR metrics and in `VrSnapshot`s).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowTableStats {
    /// Stored entries (may include expired-but-unswept flows).
    pub len: usize,
    /// Slot-array size.
    pub capacity: usize,
    /// Expired entries evicted so far (lazy probe hits + aging sweeps).
    pub evictions: u64,
    /// Insertions refused because the probe chain was full.
    pub overflows: u64,
    /// Slots visited by [`FlowTable::age_step`] so far (proof the tick work
    /// is bounded: grows by at most the configured budget per tick).
    pub age_sweep_slots: u64,
}

impl FlowTableStats {
    /// Stored entries as a fraction of capacity.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.len as f64 / self.capacity as f64
        }
    }
}

/// Fixed-capacity connection-tracking table.
pub struct FlowTable {
    slots: Box<[Option<Entry>]>,
    mask: usize,
    timeout_ns: u64,
    len: usize,
    /// Insertions refused because the table was full (observability).
    pub overflows: u64,
    /// Next slot the incremental aging sweep will visit.
    age_cursor: usize,
    /// Expired entries evicted (lazily on probe, by slot reclaim on insert,
    /// or by the aging sweep).
    evictions: u64,
    /// Total slots the aging sweep has visited.
    age_sweep_slots: u64,
}

impl FlowTable {
    /// `capacity` rounds up to a power of two; `timeout_ns` expires idle
    /// flows (TCP flows silent that long have effectively closed).
    pub fn new(capacity: usize, timeout_ns: u64) -> FlowTable {
        let cap = capacity.max(16).next_power_of_two();
        FlowTable {
            slots: vec![None; cap].into_boxed_slice(),
            mask: cap - 1,
            timeout_ns,
            len: 0,
            overflows: 0,
            age_cursor: 0,
            evictions: 0,
            age_sweep_slots: 0,
        }
    }

    /// Copy out the occupancy/churn counters.
    pub fn stats(&self) -> FlowTableStats {
        FlowTableStats {
            len: self.len,
            capacity: self.slots.len(),
            evictions: self.evictions,
            overflows: self.overflows,
            age_sweep_slots: self.age_sweep_slots,
        }
    }

    /// Live entries (may include not-yet-reclaimed expired flows).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn expired(&self, e: &Entry, now_ns: u64) -> bool {
        now_ns.saturating_sub(e.last_seen_ns) > self.timeout_ns
    }

    /// Look up `key`; on a live hit, refresh its timestamp and return its
    /// VRI ("hash table find the entry with current timestamp and add flag",
    /// Fig. 3.3). Expired entries encountered on the probe path are removed.
    pub fn find_and_touch(&mut self, key: &FlowKey, now_ns: u64) -> Option<VriId> {
        let mut i = key.hash64() as usize & self.mask;
        for _ in 0..self.slots.len() {
            match &mut self.slots[i] {
                None => return None,
                Some(e) if e.key == *key => {
                    if self.expired(&self.slots[i].unwrap(), now_ns) {
                        self.remove_at(i);
                        self.evictions += 1;
                        return None;
                    }
                    let e = self.slots[i].as_mut().expect("just matched");
                    e.last_seen_ns = now_ns;
                    return Some(e.vri);
                }
                Some(_) => i = (i + 1) & self.mask,
            }
        }
        None
    }

    /// Insert or update `key -> vri`.
    pub fn insert(&mut self, key: FlowKey, vri: VriId, now_ns: u64) -> bool {
        let mut i = key.hash64() as usize & self.mask;
        for _ in 0..self.slots.len() {
            match &mut self.slots[i] {
                slot @ None => {
                    *slot = Some(Entry { key, vri, last_seen_ns: now_ns });
                    self.len += 1;
                    return true;
                }
                Some(e) if e.key == key => {
                    e.vri = vri;
                    e.last_seen_ns = now_ns;
                    return true;
                }
                Some(e) if now_ns.saturating_sub(e.last_seen_ns) > self.timeout_ns => {
                    // Reclaim an expired stranger's slot.
                    *e = Entry { key, vri, last_seen_ns: now_ns };
                    self.evictions += 1;
                    return true;
                }
                Some(_) => i = (i + 1) & self.mask,
            }
        }
        self.overflows += 1;
        false
    }

    /// Advance the incremental aging sweep: advance the cursor over up to
    /// `budget` slots, evicting expired entries as it goes, and return how
    /// many were evicted. One call costs O(budget + evicted) — eviction work
    /// is charged to the evicted entry, which it permanently removes, so the
    /// amortized tick cost is O(budget) regardless of table size. This is
    /// what the monitor's 1 s tick calls instead of a full-table scan; a
    /// complete pass takes `ceil(capacity / budget)` calls.
    ///
    /// The scan is mutation-free: expired keys are collected over the budget
    /// window first and removed afterwards, so every slot in the window is
    /// examined exactly once and each expired entry is evicted exactly once
    /// (a positional evict-as-you-go sweep would re-examine slots the
    /// backshift refills). Combined with the cursor rewind in [`remove_at`],
    /// a lap over `capacity` slots is guaranteed to evict every entry that
    /// was expired when its slot was swept — even when probe-time lazy
    /// expiry relocates entries across the cursor between windows.
    pub fn age_step(&mut self, now_ns: u64, budget: usize) -> usize {
        let cap = self.slots.len();
        let budget = budget.min(cap);
        let mut i = self.age_cursor & self.mask;
        let mut expired_keys: Vec<FlowKey> = Vec::new();
        for _ in 0..budget {
            if let Some(e) = &self.slots[i] {
                if self.expired(e, now_ns) {
                    expired_keys.push(e.key);
                }
            }
            i = (i + 1) & self.mask;
        }
        // Commit the window's end before removing: backshift relocations
        // that cross the cursor rewind it from here (see `remove_at`).
        self.age_cursor = i;
        for k in &expired_keys {
            self.remove_key(k);
        }
        let evicted = expired_keys.len();
        self.evictions += evicted as u64;
        self.age_sweep_slots += (budget + evicted) as u64;
        evicted
    }

    /// Iterate live entries as `(key, vri, last_seen_ns)` — the checkpoint
    /// export surface. Entries already past `timeout_ns` may still appear
    /// (they are reclaimed lazily); importers re-apply the timeout anyway.
    pub fn entries(&self) -> impl Iterator<Item = (FlowKey, VriId, u64)> + '_ {
        self.slots.iter().flatten().map(|e| (e.key, e.vri, e.last_seen_ns))
    }

    /// Remove every entry pointing at `vri` (called when a VRI is killed so
    /// its flows get re-balanced instead of black-holed).
    ///
    /// Collects the victim keys first and removes them by probe: a naive
    /// positional sweep would miss entries that the backshift deletion
    /// relocates into slots the sweep already passed (found by the
    /// model-based property test).
    pub fn purge_vri(&mut self, vri: VriId) -> usize {
        let keys: Vec<FlowKey> =
            self.slots.iter().flatten().filter(|e| e.vri == vri).map(|e| e.key).collect();
        for k in &keys {
            self.remove_key(k);
        }
        keys.len()
    }

    /// Remove `key` wherever it currently sits on its probe chain.
    fn remove_key(&mut self, key: &FlowKey) {
        let mut i = key.hash64() as usize & self.mask;
        for _ in 0..self.slots.len() {
            match &self.slots[i] {
                None => return,
                Some(e) if e.key == *key => {
                    self.remove_at(i);
                    return;
                }
                Some(_) => i = (i + 1) & self.mask,
            }
        }
    }

    /// Tombstone-free removal: delete slot `i` and re-insert the probe chain
    /// behind it (standard linear-probing backshift).
    fn remove_at(&mut self, i: usize) {
        self.slots[i] = None;
        self.len -= 1;
        let mut j = (i + 1) & self.mask;
        while let Some(e) = self.slots[j] {
            self.slots[j] = None;
            self.len -= 1;
            // Re-insert preserves its timestamp.
            let mut k = e.key.hash64() as usize & self.mask;
            while self.slots[k].is_some() {
                k = (k + 1) & self.mask;
            }
            self.slots[k] = Some(e);
            self.len += 1;
            // Backshift can carry an entry across the aging cursor: from a
            // slot the sweep had yet to visit to one it already passed (a
            // slot freed and refilled within the same budget window). Rewind
            // the cursor to the landing slot so the in-flight lap still
            // examines the relocated entry — without this an expired flow
            // rides the relocation past the sweep and survives a full lap
            // (pinned by `lazy_expiry_relocation_cannot_escape_the_sweep`).
            let c = self.age_cursor & self.mask;
            let visit_old = j.wrapping_sub(c) & self.mask;
            let visit_new = k.wrapping_sub(c) & self.mask;
            if visit_new > visit_old {
                self.age_cursor = k;
            }
            j = (j + 1) & self.mask;
        }
    }
}

impl std::fmt::Debug for FlowTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowTable")
            .field("len", &self.len)
            .field("capacity", &self.capacity())
            .field("overflows", &self.overflows)
            .field("evictions", &self.evictions)
            .field("age_cursor", &self.age_cursor)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvrm_net::flow::Protocol;
    use std::net::Ipv4Addr;

    fn key(n: u8) -> FlowKey {
        FlowKey {
            src: Ipv4Addr::new(10, 0, 1, n),
            dst: Ipv4Addr::new(10, 0, 2, 1),
            src_port: 1000 + n as u16,
            dst_port: 80,
            proto: Protocol::Tcp,
        }
    }

    #[test]
    fn insert_find_roundtrip() {
        let mut t = FlowTable::new(64, 1_000_000_000);
        assert!(t.insert(key(1), VriId(3), 100));
        assert_eq!(t.find_and_touch(&key(1), 200), Some(VriId(3)));
        assert_eq!(t.find_and_touch(&key(2), 200), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn expiry_evicts_idle_flows() {
        let mut t = FlowTable::new(64, 1_000);
        t.insert(key(1), VriId(3), 0);
        // Within timeout: hit refreshes.
        assert_eq!(t.find_and_touch(&key(1), 900), Some(VriId(3)));
        // The refresh at 900 extends life to 1900.
        assert_eq!(t.find_and_touch(&key(1), 1800), Some(VriId(3)));
        // Far past timeout: gone.
        assert_eq!(t.find_and_touch(&key(1), 10_000), None);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn insert_reclaims_expired_slots() {
        let mut t = FlowTable::new(16, 10);
        for n in 0..16 {
            assert!(t.insert(key(n), VriId(0), 0));
        }
        // All expired by t=100; new inserts reuse their slots.
        assert!(t.insert(key(100), VriId(1), 100));
        assert_eq!(t.find_and_touch(&key(100), 100), Some(VriId(1)));
    }

    #[test]
    fn full_table_reports_overflow() {
        let mut t = FlowTable::new(16, u64::MAX);
        for n in 0..16 {
            assert!(t.insert(key(n), VriId(0), 0));
        }
        assert!(!t.insert(key(99), VriId(0), 0));
        assert_eq!(t.overflows, 1);
    }

    #[test]
    fn purge_vri_removes_only_its_flows() {
        let mut t = FlowTable::new(64, u64::MAX);
        t.insert(key(1), VriId(1), 0);
        t.insert(key(2), VriId(2), 0);
        t.insert(key(3), VriId(1), 0);
        assert_eq!(t.purge_vri(VriId(1)), 2);
        assert_eq!(t.find_and_touch(&key(2), 0), Some(VriId(2)));
        assert_eq!(t.find_and_touch(&key(1), 0), None);
    }

    #[test]
    fn backshift_keeps_probe_chains_reachable() {
        // Force collisions by filling a tiny table, then delete from the
        // middle of a chain and confirm later entries still resolve.
        let mut t = FlowTable::new(16, u64::MAX);
        let keys: Vec<FlowKey> = (0..12).map(key).collect();
        for (i, k) in keys.iter().enumerate() {
            t.insert(*k, VriId(i as u32), 0);
        }
        t.purge_vri(VriId(4));
        for (i, k) in keys.iter().enumerate() {
            if i == 4 {
                continue;
            }
            assert_eq!(t.find_and_touch(k, 0), Some(VriId(i as u32)), "key {i} lost");
        }
    }

    #[test]
    fn age_step_visits_at_most_budget_slots() {
        let mut t = FlowTable::new(256, 100);
        for n in 0..50 {
            t.insert(key(n), VriId(0), 0);
        }
        // Nothing expired at t=50: the sweep advances exactly `budget` slots.
        let before = t.stats().age_sweep_slots;
        t.age_step(50, 32);
        assert_eq!(t.stats().age_sweep_slots - before, 32);
        t.age_step(50, 7);
        assert_eq!(t.stats().age_sweep_slots - before, 39);
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn full_sweep_evicts_every_expired_flow() {
        let mut t = FlowTable::new(128, 100);
        for n in 0..80 {
            t.insert(key(n), VriId(0), 0);
        }
        // One cursor lap with budget == capacity clears the whole table:
        // the mutation-free scan sees every slot exactly once, so no
        // relocation can hide an expired entry from it.
        let evicted = t.age_step(1_000_000, t.capacity());
        assert_eq!(evicted, 80);
        assert_eq!(t.len(), 0);
        assert_eq!(t.stats().evictions, 80);
    }

    #[test]
    fn partial_sweeps_converge_across_ticks() {
        let mut t = FlowTable::new(128, 100);
        for n in 0..80 {
            t.insert(key(n), VriId(0), 0);
        }
        // budget 16 per "tick": cursor rewinds triggered by backshift
        // relocations can stretch a lap past `capacity / budget` windows,
        // but two laps' worth of budget always converges.
        for _ in 0..(2 * 128 / 16) {
            t.age_step(1_000_000, 16);
        }
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn age_step_spares_live_flows() {
        let mut t = FlowTable::new(64, 1_000);
        t.insert(key(1), VriId(1), 0);
        t.insert(key(2), VriId(2), 900);
        let evicted = t.age_step(1_500, t.capacity());
        assert_eq!(evicted, 1); // key(1) idle 1500 > 1000; key(2) idle 600.
        assert_eq!(t.find_and_touch(&key(2), 1_500), Some(VriId(2)));
        assert_eq!(t.find_and_touch(&key(1), 1_500), None);
    }

    #[test]
    fn age_step_on_empty_table_is_harmless() {
        let mut t = FlowTable::new(16, 100);
        assert_eq!(t.age_step(1_000, 1_000_000), 0);
        // Budget clamps to capacity.
        assert_eq!(t.stats().age_sweep_slots, 16);
    }

    #[test]
    fn stats_snapshot_tracks_counters() {
        let mut t = FlowTable::new(16, 10);
        t.insert(key(1), VriId(0), 0);
        let s = t.stats();
        assert_eq!(s.len, 1);
        assert_eq!(s.capacity, 16);
        assert!(s.occupancy() > 0.0);
        assert_eq!(t.find_and_touch(&key(1), 1_000), None); // lazy expiry
        assert_eq!(t.stats().evictions, 1);
    }

    /// Keys whose home slot in a 16-slot table is 0, for crafting probe
    /// chains with known geometry.
    fn home0_keys(want: usize) -> Vec<FlowKey> {
        let mut out = Vec::new();
        for n in 0..=u8::MAX {
            if key(n).hash64() as usize & 15 == 0 {
                out.push(key(n));
                if out.len() == want {
                    break;
                }
            }
        }
        assert_eq!(out.len(), want, "not enough colliding keys in search space");
        out
    }

    /// Regression: a probe-time lazy expiry between two budget windows used
    /// to backshift an expired entry from the slot the cursor would visit
    /// next into a slot it had already passed — freed and refilled within
    /// the same budget window — so the entry skipped the rest of the lap.
    /// The cursor rewind in `remove_at` pins eviction-exactly-once: the lap
    /// must still evict it, and evict it exactly once.
    #[test]
    fn lazy_expiry_relocation_cannot_escape_the_sweep() {
        let k = home0_keys(3);
        let (a, b, x) = (k[0], k[1], k[2]);
        let mut t = FlowTable::new(16, 100);
        assert!(t.insert(a, VriId(0), 0)); // slot 0 (home)
        assert!(t.insert(b, VriId(0), 0)); // slot 1
        assert!(t.insert(x, VriId(0), 0)); // slot 2
                                           // Window 1: budget 2 sweeps slots 0 and 1 while everything is live.
        assert_eq!(t.age_step(50, 2), 0);
        // Between windows, A expires and a probe reclaims it lazily; the
        // backshift pulls B into slot 0 and X into slot 1 — X jumps from
        // directly ahead of the cursor to directly behind it.
        assert_eq!(t.find_and_touch(&a, 200), None);
        // The remainder of the lap (plus rewind slack) must evict X.
        let mut evicted = 0;
        for _ in 0..8 {
            evicted += t.age_step(200, 2);
        }
        assert!(
            t.entries().all(|(key, _, _)| key != x),
            "expired entry escaped the sweep via backshift relocation"
        );
        // B and X both expired mid-lap; each evicted exactly once.
        assert_eq!(evicted, 2);
        assert_eq!(t.stats().evictions, 3); // A (lazy) + B + X (sweep)
        assert_eq!(t.len(), 0);
    }

    /// The mutation-free scan must not double-count an entry the backshift
    /// relocates while the window's collected victims are being removed.
    #[test]
    fn sweep_evicts_each_expired_entry_exactly_once() {
        let keys = home0_keys(6);
        let mut t = FlowTable::new(16, 100);
        for k in &keys {
            t.insert(*k, VriId(0), 0);
        }
        // All six share one probe chain and all are expired: one full-budget
        // call must evict each exactly once despite every removal rehoming
        // the survivors.
        let evicted = t.age_step(1_000, t.capacity());
        assert_eq!(evicted, 6);
        assert_eq!(t.stats().evictions, 6);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn update_existing_flow_changes_vri() {
        let mut t = FlowTable::new(16, u64::MAX);
        t.insert(key(1), VriId(1), 0);
        t.insert(key(1), VriId(5), 10);
        assert_eq!(t.len(), 1);
        assert_eq!(t.find_and_touch(&key(1), 10), Some(VriId(5)));
    }
}
