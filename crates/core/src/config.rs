//! LVRM configuration: one knob per extensibility dimension.

use std::fmt;

use lvrm_ipc::{QueueKind, Watermarks};

use crate::alloc::{CoreAllocator, DynamicFixedThreshold, DynamicServiceRate, FixedAllocator};
use crate::balance::{FlowBased, Jsq, LoadBalancer, RandomBalancer, RoundRobin};
use crate::estimate::{EwmaInterArrival, EwmaQueueLength, LoadEstimator};
use crate::topology::AffinityMode;

/// Which load-balancing policy to run (paper §3.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BalancerKind {
    /// Join-the-shortest-queue (the paper's default; slightly best in §4.4).
    #[default]
    Jsq,
    RoundRobin,
    Random,
}

impl BalancerKind {
    pub const ALL: [BalancerKind; 3] =
        [BalancerKind::Jsq, BalancerKind::RoundRobin, BalancerKind::Random];

    pub fn name(self) -> &'static str {
        match self {
            BalancerKind::Jsq => "jsq",
            BalancerKind::RoundRobin => "rr",
            BalancerKind::Random => "random",
        }
    }
}

/// Which core-allocation policy to run (paper §3.2).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum AllocatorKind {
    /// Pre-assign a fixed number of cores at VR start.
    Fixed { cores: usize },
    /// Dynamic with fixed thresholds: a configured per-core rate (fps).
    DynamicFixed { per_core_rate: f64 },
    /// Dynamic with dynamic thresholds: measured service rates, with a
    /// bootstrap per-core rate until the first measurement.
    DynamicServiceRate { bootstrap_rate: f64 },
}

impl Default for AllocatorKind {
    fn default() -> Self {
        // The paper's default implementation: "LVRM uses dynamic core
        // allocation with fixed thresholds" (§4.1), 60 Kfps per core as in
        // Experiment 2c.
        AllocatorKind::DynamicFixed { per_core_rate: 60_000.0 }
    }
}

impl AllocatorKind {
    pub fn name(self) -> &'static str {
        match self {
            AllocatorKind::Fixed { .. } => "fixed",
            AllocatorKind::DynamicFixed { .. } => "dynamic-fixed",
            AllocatorKind::DynamicServiceRate { .. } => "dynamic-service-rate",
        }
    }
}

/// How a VR's ingress traffic is spread over its VRIs (DESIGN.md §14).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DispatchMode {
    /// Classic dispatch: the configured balancer picks a VRI per frame, and
    /// `flow_based` may pin each flow to one instance. A single flow never
    /// exceeds single-VRI throughput.
    #[default]
    Pinned,
    /// State-Compute Replication (arXiv 2309.14647): any VRI may take any
    /// frame — ingress spreads regardless of flow key — and replicas
    /// reconverge by exchanging compact `StateUpdate` records over the
    /// control-priority queues. Incompatible with `flow_based` pinning.
    Replicated,
}

impl DispatchMode {
    pub const ALL: [DispatchMode; 2] = [DispatchMode::Pinned, DispatchMode::Replicated];

    pub fn name(self) -> &'static str {
        match self {
            DispatchMode::Pinned => "pinned",
            DispatchMode::Replicated => "replicated",
        }
    }
}

impl std::str::FromStr for DispatchMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "pinned" => Ok(DispatchMode::Pinned),
            "replicated" => Ok(DispatchMode::Replicated),
            other => Err(format!("unknown dispatch mode {other:?} (pinned|replicated)")),
        }
    }
}

/// Which per-VRI load estimator to run (paper §3.4).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EstimatorKind {
    /// EWMA of the incoming data queue length (the paper's default).
    #[default]
    QueueLength,
    /// EWMA of dispatch inter-arrival times, as a rate.
    InterArrival,
}

/// Active/standby HA knobs (DESIGN.md §13, RFC 5798 semantics). Lives in
/// [`LvrmConfig::ha`]; the transport ([`crate::ha::PeerLink`]) is supplied
/// separately via `Lvrm::attach_ha` — config carries policy, the host
/// carries wiring.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HaConfig {
    /// VRRP priority, 1–254 (0 is the on-wire "resigning" sentinel and 255
    /// the RFC's address-owner value — both reserved). Higher wins.
    pub priority: u8,
    /// Tiebreak for equal priorities (RFC 5798 breaks ties on IP address;
    /// the testbed has none). Must differ between the two nodes.
    pub node_id: u64,
    /// Master heartbeat spacing. The master-down interval is
    /// `3 × advert + skew`, so the 150 ms default detects a dead master in
    /// ≈ 540 ms and completes probation well under one second.
    pub advert_interval_ns: u64,
    /// Replication-stream spacing: the master diffs its control plane and
    /// ships a [`crate::checkpoint::CheckpointDelta`] this often. Rides the
    /// lazy control tick by default (1 s), tunable down for tighter RPO.
    pub delta_interval_ns: u64,
    /// Preemption (RFC 5798 `Preempt_Mode`): a backup that outranks the
    /// current master lets the master-down timer elect it instead of
    /// deferring forever.
    pub preempt: bool,
}

impl Default for HaConfig {
    fn default() -> Self {
        HaConfig {
            priority: 100,
            node_id: 1,
            advert_interval_ns: 150_000_000,  // 150 ms
            delta_interval_ns: 1_000_000_000, // 1 s — the lazy control tick
            preempt: true,
        }
    }
}

impl HaConfig {
    /// RFC 5798 skew time: `(256 − priority) / 256 × advert_interval`.
    /// Higher priority ⇒ shorter skew ⇒ faster takeover.
    pub fn skew_ns(&self) -> u64 {
        (256 - self.priority as u64) * self.advert_interval_ns / 256
    }

    /// RFC 5798 master-down interval: `3 × advert_interval + skew`.
    pub fn master_down_ns(&self) -> u64 {
        3 * self.advert_interval_ns + self.skew_ns()
    }
}

/// Monitor-fleet sharding knobs (DESIGN.md §15). Lives in
/// [`LvrmConfig::shard`]; the per-peer transports are supplied separately
/// via `Lvrm::attach_fleet` — config carries topology, the host carries
/// wiring. Each shard is itself a PR-8 style HA pair (or a solo monitor);
/// only the shard's accepting node speaks on the fleet directory.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardConfig {
    /// This monitor's shard index, `0 <= shard_id < shards`.
    pub shard_id: u32,
    /// Fleet size: how many shards partition the VR space.
    pub shards: u32,
    /// Shard-advert spacing on the fleet directory. The per-peer
    /// shard-down interval is `6 × advert + jitter`: deliberately twice
    /// the RFC 5798 master-down budget, so an intra-shard HA failover
    /// (3 × advert + skew) completes before the fleet declares the whole
    /// shard dead and re-homes its VRs.
    pub advert_interval_ns: u64,
    /// Inter-shard state-snapshot spacing: the shard's accepting node
    /// ships its full checkpoint to every peer this often, so a takeover
    /// can warm-adopt from the freshest shadow instead of cold-starting.
    pub snapshot_interval_ns: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shard_id: 0,
            shards: 1,
            advert_interval_ns: 100_000_000,   // 100 ms
            snapshot_interval_ns: 500_000_000, // 500 ms
        }
    }
}

impl ShardConfig {
    /// Base shard-down interval: `6 × advert_interval`. The fleet adds a
    /// seeded ±25% jitter per peer on top (see `crate::shard`), so
    /// co-detecting shards do not stampede the takeover path in lockstep.
    pub fn shard_down_ns(&self) -> u64 {
        6 * self.advert_interval_ns
    }

    /// Directory quorum: strict majority of the configured fleet size.
    pub fn quorum(&self) -> u32 {
        self.shards / 2 + 1
    }
}

/// Full LVRM configuration. `Default` matches the paper's defaults (§4.1):
/// PF_RING-style transport is the host's concern; here it is the lock-free
/// Lamport queue, dynamic fixed-threshold allocation, and frame-based JSQ.
#[derive(Clone, Debug)]
pub struct LvrmConfig {
    /// IPC queue implementation (§3.5).
    pub queue_kind: QueueKind,
    /// Data-queue capacity per direction per VRI, frames.
    pub data_queue_capacity: usize,
    /// Control-queue capacity per direction per VRI, events.
    pub ctrl_queue_capacity: usize,
    /// Capacity of the per-VR shared ingress ring under the VLink fabric
    /// (`queue_kind = vlink`, frame-based balancing), frames. `0` sizes it
    /// automatically at 4 × `data_queue_capacity` so a VR-wide burst never
    /// outruns what its per-VRI queues could have absorbed combined.
    pub shared_ring_capacity: usize,
    /// Load-balancing policy.
    pub balancer: BalancerKind,
    /// Wrap the balancer in flow-based connection tracking.
    pub flow_based: bool,
    /// Default dispatch mode for new VRs (per-VR override via
    /// `Lvrm::set_vr_dispatch`). `Replicated` spreads every frame across a
    /// VR's VRIs and replicates per-flow state updates between them.
    pub dispatch: DispatchMode,
    /// Flow-table slots (flow-based only).
    pub flow_table_capacity: usize,
    /// Idle flows expire after this long (flow-based only).
    pub flow_timeout_ns: u64,
    /// Flow-table slots the incremental aging sweep may visit per 1 s tick
    /// (flow-based only). `0` = auto: `flow_table_capacity / 8`, floor 64 —
    /// a full sweep roughly every 8 ticks with tick cost independent of
    /// table size. See [`LvrmConfig::effective_flow_age_budget`].
    pub flow_age_budget: usize,
    /// Core-allocation policy.
    pub allocator: AllocatorKind,
    /// Per-VRI load estimator.
    pub estimator: EstimatorKind,
    /// EWMA history weight for the load estimator (Fig. 3.4's `weight`).
    pub estimator_weight: f64,
    /// Minimum spacing between core reallocation passes — the paper's
    /// 1-second period ("we set the period to be 1 second, while this
    /// parameter is tunable", §3.2).
    pub allocation_period_ns: u64,
    /// Window of the per-VR arrival-rate estimator.
    pub arrival_window_ns: u64,
    /// EWMA history weight of the per-VR arrival-rate estimator.
    pub arrival_weight: f64,
    /// Upper bound on VRIs per VR (beyond physical cores throughput drops —
    /// Experiment 2b — so LVRM "seeks to limit the number of cores").
    pub max_vris_per_vr: usize,
    /// Core-affinity policy (§3.2's sibling-first heuristic by default).
    pub affinity: AffinityMode,
    /// Ingress/dispatch/egress burst size for the batched dataplane. Frames
    /// are classified, balanced, and enqueued in bursts of up to this many,
    /// with queue indices published once per burst. `1` reproduces the
    /// per-frame dataplane exactly (same stats, same dispatch order).
    pub batch_size: usize,
    /// Upper bound on the estimated queue memory of all live VRIs, bytes
    /// (0 = unlimited). This is the §3.2 extensibility hook — "to extend via
    /// the function call setrlimit() with other resource managements such as
    /// the memory management" — realized as an admission check: a grow that
    /// would exceed the budget is refused.
    pub max_queue_memory_bytes: usize,
    /// Seed for the random balancer (reproducible experiments).
    pub seed: u64,
    /// Run the VRI supervisor from the reallocation tick: detect dead or
    /// stalled instances, re-dispatch their in-flight frames, respawn with
    /// backoff, quarantine crash-looping VRs. Off by default — hosts that
    /// never pump heartbeats would otherwise see every VRI as dead.
    pub supervision: bool,
    /// A VRI silent for this long is marked suspect (reported, not acted on).
    pub suspect_after_ns: u64,
    /// A VRI silent for this long is declared dead and recovered. Must
    /// comfortably exceed the adapters' 100 ms heartbeat period.
    pub dead_after_ns: u64,
    /// Base respawn backoff after the *second* consecutive crash (the first
    /// respawn is immediate so a one-off crash recovers within one tick).
    pub respawn_backoff_ns: u64,
    /// Cap on the exponential respawn backoff.
    pub respawn_backoff_max_ns: u64,
    /// Quarantine a VR after this many consecutive crashes (0 = never).
    pub quarantine_after: u32,
    /// A VR that stays healthy this long after a crash gets its
    /// consecutive-crash streak reset.
    pub crash_streak_reset_ns: u64,
    /// Low occupancy watermark on the per-VRI data queues, as a fraction of
    /// capacity. A VR's pressure state only returns to `Normal` once every
    /// queue has drained back to this mark (hysteresis).
    pub low_watermark: f64,
    /// High occupancy watermark: a queue at or above this fraction marks its
    /// VR `Overloaded`.
    pub high_watermark: f64,
    /// Shed excess frames at ingress-classification time when a VR is
    /// `Overloaded`, by per-VR weighted quota (deficit round-robin across
    /// bursts). Off by default: without it dispatch degrades to pure
    /// tail-drop at whichever queue fills first, as before.
    pub overload_shedding: bool,
    /// Default admission weight given to a VR at `add_vr` (tunable per VR via
    /// `Lvrm::set_vr_weight`). An overloaded VR's per-burst admission quota is
    /// `batch_size × weight / Σ weights`.
    pub shed_weight: f64,
    /// How long a shrink victim may keep servicing its parked frames before
    /// it is forcibly retired and the leftovers re-homed through the
    /// balancer. `0` retires immediately (still re-homing, never silently
    /// discarding).
    pub drain_deadline_ns: u64,
    /// Control-plane starvation bound: after this many consecutive data
    /// bursts without a control-relay pass, `ingress_batch` runs
    /// `process_control` itself. The paper gives control events strict
    /// priority inside a VRI; this makes the monitor side enforceable too.
    pub ctrl_starvation_bursts: u32,
    /// Record per-VR dispatch→departure latency histograms in `poll_egress`
    /// (one clock read per call plus ~5 relaxed atomic ops per frame). On by
    /// default; the overhead experiment in EXPERIMENTS.md toggles this.
    pub latency_histograms: bool,
    /// Write a control-plane checkpoint here from the lazy reallocation tick
    /// (warm restart, DESIGN.md §10). `None` disables checkpointing.
    pub checkpoint_path: Option<std::path::PathBuf>,
    /// Minimum spacing between periodic checkpoint writes.
    pub checkpoint_interval_ns: u64,
    /// Consecutive adapter faults before the supervised socket adapter is
    /// marked `Degraded`.
    pub adapter_error_threshold: u32,
    /// Consecutive adapter faults before it is declared `Dead` (reopen /
    /// failover). Must be ≥ `adapter_error_threshold`.
    pub adapter_dead_threshold: u32,
    /// Base backoff between reopen attempts on a dead adapter.
    pub adapter_reopen_backoff_ns: u64,
    /// Cap on the exponential reopen backoff.
    pub adapter_reopen_backoff_max_ns: u64,
    /// How long a refused egress frame waits in the supervisor's retry queue
    /// before it is finally counted dropped.
    pub egress_retry_deadline_ns: u64,
    /// Active/standby HA election + replication knobs. `None` (the default)
    /// runs the monitor solo, exactly as before; `Some` arms the election
    /// state machine once a peer link is attached (`Lvrm::attach_ha`).
    pub ha: Option<HaConfig>,
    /// Monitor-fleet sharding knobs. `None` (the default) runs a single
    /// monitor owning every VR, exactly as before; `Some` arms the shard
    /// directory once peer links are attached (`Lvrm::attach_fleet`).
    pub shard: Option<ShardConfig>,
}

/// A statically-invalid [`LvrmConfig`], caught by [`LvrmConfig::validate`]
/// before any queue or VRI is built.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfigError {
    /// Watermarks must satisfy `0 < low < high <= 1`.
    Watermarks { low: f64, high: f64 },
    /// Data- and control-queue capacities must be nonzero (the SPSC rings
    /// assert this much deeper, at split time).
    QueueCapacity { data: usize, ctrl: usize },
    /// The dataplane burst size must be at least 1.
    BatchSize,
    /// The default shed weight must be positive and finite, so that every
    /// VR's quota share is well-defined (weights sum > 0).
    ShedWeight { weight: f64 },
    /// The control starvation bound must be at least 1 burst.
    CtrlStarvationBursts,
    /// Adapter supervision thresholds must satisfy `1 <= error <= dead`.
    AdapterThresholds { error: u32, dead: u32 },
    /// The checkpoint interval must be nonzero when a checkpoint path is set.
    CheckpointInterval,
    /// HA priority must be 1–254 (0 and 255 are reserved by RFC 5798).
    HaPriority { priority: u8 },
    /// HA advert and delta intervals must be nonzero.
    HaIntervals { advert_ns: u64, delta_ns: u64 },
    /// Replicated dispatch spreads frames regardless of flow key, which
    /// flow-based pinning contradicts: the two cannot both be the default.
    ReplicatedFlowPinned,
    /// The shard topology must satisfy `shard_id < shards` and `shards >= 1`.
    ShardTopology { shard_id: u32, shards: u32 },
    /// Shard advert and snapshot intervals must be nonzero.
    ShardIntervals { advert_ns: u64, snapshot_ns: u64 },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Watermarks { low, high } => {
                write!(f, "watermarks must satisfy 0 < low < high <= 1, got low={low} high={high}")
            }
            ConfigError::QueueCapacity { data, ctrl } => {
                write!(f, "queue capacities must be nonzero, got data={data} ctrl={ctrl}")
            }
            ConfigError::BatchSize => write!(f, "batch size must be at least 1"),
            ConfigError::ShedWeight { weight } => {
                write!(f, "shed weight must be positive and finite, got {weight}")
            }
            ConfigError::CtrlStarvationBursts => {
                write!(f, "control starvation bound must be at least 1 burst")
            }
            ConfigError::AdapterThresholds { error, dead } => {
                write!(
                    f,
                    "adapter thresholds must satisfy 1 <= error <= dead, got error={error} dead={dead}"
                )
            }
            ConfigError::CheckpointInterval => {
                write!(f, "checkpoint interval must be nonzero when a checkpoint path is set")
            }
            ConfigError::HaPriority { priority } => {
                write!(f, "ha priority must be 1-254 (RFC 5798 reserves 0 and 255), got {priority}")
            }
            ConfigError::HaIntervals { advert_ns, delta_ns } => {
                write!(
                    f,
                    "ha advert and delta intervals must be nonzero, got advert={advert_ns} delta={delta_ns}"
                )
            }
            ConfigError::ReplicatedFlowPinned => {
                write!(f, "replicated dispatch is incompatible with flow_based pinning")
            }
            ConfigError::ShardTopology { shard_id, shards } => {
                write!(f, "shard topology must satisfy shard_id < shards >= 1, got shard_id={shard_id} shards={shards}")
            }
            ConfigError::ShardIntervals { advert_ns, snapshot_ns } => {
                write!(
                    f,
                    "shard advert and snapshot intervals must be nonzero, got advert={advert_ns} snapshot={snapshot_ns}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl Default for LvrmConfig {
    fn default() -> Self {
        LvrmConfig {
            queue_kind: QueueKind::Lamport,
            data_queue_capacity: 1024,
            ctrl_queue_capacity: 64,
            shared_ring_capacity: 0,
            balancer: BalancerKind::Jsq,
            flow_based: false,
            dispatch: DispatchMode::Pinned,
            flow_table_capacity: 4096,
            flow_timeout_ns: 30_000_000_000, // 30 s
            flow_age_budget: 0,              // auto
            allocator: AllocatorKind::default(),
            estimator: EstimatorKind::QueueLength,
            estimator_weight: 7.0,
            allocation_period_ns: 1_000_000_000, // 1 s
            arrival_window_ns: 100_000_000,      // 100 ms
            arrival_weight: 1.0,
            max_vris_per_vr: 64,
            affinity: AffinityMode::SiblingFirst,
            batch_size: 1,
            max_queue_memory_bytes: 0,
            seed: 0x1a2b3c4d,
            supervision: false,
            suspect_after_ns: 300_000_000,          // 300 ms
            dead_after_ns: 1_000_000_000,           // 1 s
            respawn_backoff_ns: 1_000_000_000,      // 1 s
            respawn_backoff_max_ns: 30_000_000_000, // 30 s
            quarantine_after: 5,
            crash_streak_reset_ns: 10_000_000_000, // 10 s
            low_watermark: 0.25,
            high_watermark: 0.75,
            overload_shedding: false,
            shed_weight: 1.0,
            drain_deadline_ns: 500_000_000, // 500 ms
            ctrl_starvation_bursts: 64,
            latency_histograms: true,
            checkpoint_path: None,
            checkpoint_interval_ns: 1_000_000_000, // 1 s
            adapter_error_threshold: 3,
            adapter_dead_threshold: 8,
            adapter_reopen_backoff_ns: 100_000_000, // 100 ms
            adapter_reopen_backoff_max_ns: 10_000_000_000, // 10 s
            egress_retry_deadline_ns: 50_000_000,   // 50 ms
            ha: None,
            shard: None,
        }
    }
}

impl LvrmConfig {
    /// Check the statically-checkable invariants, returning the first
    /// violation as a typed error. Call this at the edges (`lvrmd` config
    /// parse, testbed scenario build) so a bad config fails with a message
    /// instead of panicking deep inside queue construction.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.data_queue_capacity == 0 || self.ctrl_queue_capacity == 0 {
            return Err(ConfigError::QueueCapacity {
                data: self.data_queue_capacity,
                ctrl: self.ctrl_queue_capacity,
            });
        }
        if self.batch_size == 0 {
            return Err(ConfigError::BatchSize);
        }
        let (low, high) = (self.low_watermark, self.high_watermark);
        if !(low.is_finite() && high.is_finite() && 0.0 < low && low < high && high <= 1.0) {
            return Err(ConfigError::Watermarks { low, high });
        }
        if !(self.shed_weight.is_finite() && self.shed_weight > 0.0) {
            return Err(ConfigError::ShedWeight { weight: self.shed_weight });
        }
        if self.ctrl_starvation_bursts == 0 {
            return Err(ConfigError::CtrlStarvationBursts);
        }
        if self.adapter_error_threshold == 0
            || self.adapter_dead_threshold < self.adapter_error_threshold
        {
            return Err(ConfigError::AdapterThresholds {
                error: self.adapter_error_threshold,
                dead: self.adapter_dead_threshold,
            });
        }
        if self.checkpoint_path.is_some() && self.checkpoint_interval_ns == 0 {
            return Err(ConfigError::CheckpointInterval);
        }
        if self.dispatch == DispatchMode::Replicated && self.flow_based {
            return Err(ConfigError::ReplicatedFlowPinned);
        }
        if let Some(ha) = &self.ha {
            if ha.priority == 0 || ha.priority == 255 {
                return Err(ConfigError::HaPriority { priority: ha.priority });
            }
            if ha.advert_interval_ns == 0 || ha.delta_interval_ns == 0 {
                return Err(ConfigError::HaIntervals {
                    advert_ns: ha.advert_interval_ns,
                    delta_ns: ha.delta_interval_ns,
                });
            }
        }
        if let Some(shard) = &self.shard {
            if shard.shards == 0 || shard.shard_id >= shard.shards {
                return Err(ConfigError::ShardTopology {
                    shard_id: shard.shard_id,
                    shards: shard.shards,
                });
            }
            if shard.advert_interval_ns == 0 || shard.snapshot_interval_ns == 0 {
                return Err(ConfigError::ShardIntervals {
                    advert_ns: shard.advert_interval_ns,
                    snapshot_ns: shard.snapshot_interval_ns,
                });
            }
        }
        Ok(())
    }

    /// The adapter-supervision knobs bundled for
    /// [`crate::adapter::SupervisedAdapter`].
    pub fn adapter_supervisor(&self) -> crate::adapter::AdapterSupervisorConfig {
        crate::adapter::AdapterSupervisorConfig {
            error_threshold: self.adapter_error_threshold,
            dead_threshold: self.adapter_dead_threshold,
            reopen_backoff_ns: self.adapter_reopen_backoff_ns,
            reopen_backoff_max_ns: self.adapter_reopen_backoff_max_ns,
            egress_retry_deadline_ns: self.egress_retry_deadline_ns,
        }
    }

    /// The configured data-queue watermarks.
    pub fn watermarks(&self) -> Watermarks {
        Watermarks::new(self.low_watermark, self.high_watermark)
    }

    /// Whether this configuration runs the VLink work-stealing fabric: a
    /// shared per-VR MPMC ingress ring instead of per-VRI JSQ spreading.
    /// Flow-based balancing opts back into per-VRI dispatch (the flow table
    /// pins flows to instances, which a shared ring cannot honor), so the
    /// fabric engages only for frame-based configs.
    pub fn vlink_fabric(&self) -> bool {
        self.queue_kind == QueueKind::VLink && !self.flow_based
    }

    /// Per-tick flow-aging slot budget: the explicit knob, or the
    /// `flow_table_capacity / 8` (floor 64) auto default when left at `0`.
    /// With the default 1 s tick a full sweep finishes in ≈8 s, well inside
    /// the 30 s flow timeout, while the tick's aging cost stays O(budget).
    pub fn effective_flow_age_budget(&self) -> usize {
        if self.flow_age_budget > 0 {
            self.flow_age_budget
        } else {
            (self.flow_table_capacity / 8).max(64)
        }
    }

    /// The shared ring's capacity in frames: the explicit knob, or the
    /// 4 × `data_queue_capacity` auto default when left at `0`.
    pub fn effective_shared_ring_capacity(&self) -> usize {
        if self.shared_ring_capacity > 0 {
            self.shared_ring_capacity
        } else {
            self.data_queue_capacity * 4
        }
    }

    /// Instantiate the configured balancer.
    pub fn build_balancer(&self) -> Box<dyn LoadBalancer> {
        self.build_balancer_for(self.dispatch)
    }

    /// Instantiate the balancer for one VR's dispatch mode: a replicated VR
    /// never wraps in [`FlowBased`] (any instance may take any frame), a
    /// pinned VR follows the `flow_based` knob.
    pub fn build_balancer_for(&self, mode: DispatchMode) -> Box<dyn LoadBalancer> {
        macro_rules! wrap {
            ($inner:expr) => {
                if self.flow_based && mode == DispatchMode::Pinned {
                    Box::new(FlowBased::new($inner, self.flow_table_capacity, self.flow_timeout_ns))
                        as Box<dyn LoadBalancer>
                } else {
                    Box::new($inner) as Box<dyn LoadBalancer>
                }
            };
        }
        match self.balancer {
            BalancerKind::Jsq => wrap!(Jsq),
            BalancerKind::RoundRobin => wrap!(RoundRobin::default()),
            BalancerKind::Random => wrap!(RandomBalancer::new(self.seed)),
        }
    }

    /// Instantiate the configured allocator.
    pub fn build_allocator(&self) -> Box<dyn CoreAllocator> {
        match self.allocator {
            AllocatorKind::Fixed { cores } => Box::new(FixedAllocator::new(cores)),
            AllocatorKind::DynamicFixed { per_core_rate } => {
                Box::new(DynamicFixedThreshold::new(per_core_rate))
            }
            AllocatorKind::DynamicServiceRate { bootstrap_rate } => {
                Box::new(DynamicServiceRate::new(bootstrap_rate))
            }
        }
    }

    /// Instantiate the configured load estimator.
    pub fn build_estimator(&self) -> Box<dyn LoadEstimator> {
        match self.estimator {
            EstimatorKind::QueueLength => Box::new(EwmaQueueLength::new(self.estimator_weight)),
            EstimatorKind::InterArrival => Box::new(EwmaInterArrival::new(self.estimator_weight)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = LvrmConfig::default();
        assert_eq!(c.queue_kind, QueueKind::Lamport);
        assert_eq!(c.balancer, BalancerKind::Jsq);
        assert!(!c.flow_based);
        assert_eq!(c.allocation_period_ns, 1_000_000_000);
        assert_eq!(c.batch_size, 1, "per-frame dataplane by default");
        assert!(!c.supervision, "supervision is opt-in");
        assert!(c.dead_after_ns > c.suspect_after_ns);
        assert!(
            matches!(c.allocator, AllocatorKind::DynamicFixed { per_core_rate } if per_core_rate == 60_000.0)
        );
    }

    #[test]
    fn default_config_validates() {
        let c = LvrmConfig::default();
        assert_eq!(c.validate(), Ok(()));
        assert!(!c.overload_shedding, "shedding is opt-in");
        assert!(c.low_watermark < c.high_watermark);
    }

    #[test]
    fn validate_rejects_each_invariant() {
        let base = LvrmConfig::default;

        let c = LvrmConfig { data_queue_capacity: 0, ..base() };
        assert!(matches!(c.validate(), Err(ConfigError::QueueCapacity { data: 0, .. })));
        let c = LvrmConfig { ctrl_queue_capacity: 0, ..base() };
        assert!(matches!(c.validate(), Err(ConfigError::QueueCapacity { ctrl: 0, .. })));

        let c = LvrmConfig { batch_size: 0, ..base() };
        assert_eq!(c.validate(), Err(ConfigError::BatchSize));

        for (low, high) in
            [(0.75, 0.25), (0.5, 0.5), (0.0, 0.5), (0.25, 1.5), (f64::NAN, 0.5), (0.25, f64::NAN)]
        {
            let c = LvrmConfig { low_watermark: low, high_watermark: high, ..base() };
            assert!(
                matches!(c.validate(), Err(ConfigError::Watermarks { .. })),
                "low={low} high={high} should be rejected"
            );
        }

        for w in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let c = LvrmConfig { shed_weight: w, ..base() };
            assert!(matches!(c.validate(), Err(ConfigError::ShedWeight { .. })), "weight {w}");
        }

        let c = LvrmConfig { ctrl_starvation_bursts: 0, ..base() };
        assert_eq!(c.validate(), Err(ConfigError::CtrlStarvationBursts));

        let c = LvrmConfig { adapter_error_threshold: 0, ..base() };
        assert!(matches!(c.validate(), Err(ConfigError::AdapterThresholds { error: 0, .. })));
        let c = LvrmConfig { adapter_error_threshold: 5, adapter_dead_threshold: 4, ..base() };
        assert!(matches!(c.validate(), Err(ConfigError::AdapterThresholds { .. })));

        let c = LvrmConfig {
            checkpoint_path: Some("lvrm.ck".into()),
            checkpoint_interval_ns: 0,
            ..base()
        };
        assert_eq!(c.validate(), Err(ConfigError::CheckpointInterval));
        // Interval 0 is fine while checkpointing is off.
        let c = LvrmConfig { checkpoint_interval_ns: 0, ..base() };
        assert_eq!(c.validate(), Ok(()));

        for priority in [0u8, 255] {
            let c = LvrmConfig { ha: Some(HaConfig { priority, ..Default::default() }), ..base() };
            assert_eq!(c.validate(), Err(ConfigError::HaPriority { priority }));
        }
        let c = LvrmConfig {
            ha: Some(HaConfig { advert_interval_ns: 0, ..Default::default() }),
            ..base()
        };
        assert!(matches!(c.validate(), Err(ConfigError::HaIntervals { advert_ns: 0, .. })));
        let c = LvrmConfig { ha: Some(HaConfig::default()), ..base() };
        assert_eq!(c.validate(), Ok(()));

        let c = LvrmConfig { dispatch: DispatchMode::Replicated, flow_based: true, ..base() };
        assert_eq!(c.validate(), Err(ConfigError::ReplicatedFlowPinned));
        let c = LvrmConfig { dispatch: DispatchMode::Replicated, ..base() };
        assert_eq!(c.validate(), Ok(()));

        let c =
            LvrmConfig { shard: Some(ShardConfig { shards: 0, ..Default::default() }), ..base() };
        assert!(matches!(c.validate(), Err(ConfigError::ShardTopology { shards: 0, .. })));
        let c = LvrmConfig {
            shard: Some(ShardConfig { shard_id: 3, shards: 3, ..Default::default() }),
            ..base()
        };
        assert!(matches!(c.validate(), Err(ConfigError::ShardTopology { shard_id: 3, .. })));
        let c = LvrmConfig {
            shard: Some(ShardConfig { snapshot_interval_ns: 0, ..Default::default() }),
            ..base()
        };
        assert!(matches!(c.validate(), Err(ConfigError::ShardIntervals { snapshot_ns: 0, .. })));
        let c = LvrmConfig {
            shard: Some(ShardConfig { shard_id: 1, shards: 3, ..Default::default() }),
            ..base()
        };
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn dispatch_mode_parses_and_defaults_pinned() {
        let c = LvrmConfig::default();
        assert_eq!(c.dispatch, DispatchMode::Pinned);
        assert_eq!("pinned".parse::<DispatchMode>(), Ok(DispatchMode::Pinned));
        assert_eq!("replicated".parse::<DispatchMode>(), Ok(DispatchMode::Replicated));
        assert!("sharded".parse::<DispatchMode>().is_err());
        for m in DispatchMode::ALL {
            assert_eq!(m.name().parse::<DispatchMode>(), Ok(m));
        }
    }

    #[test]
    fn replicated_balancer_never_pins_flows() {
        let c = LvrmConfig { flow_based: true, ..Default::default() };
        assert_eq!(c.build_balancer_for(DispatchMode::Pinned).name(), "flow-jsq");
        assert_eq!(
            c.build_balancer_for(DispatchMode::Replicated).name(),
            "jsq",
            "a replicated VR must spread frames regardless of flow key"
        );
    }

    #[test]
    fn adapter_supervisor_mirrors_knobs() {
        let c = LvrmConfig {
            adapter_error_threshold: 2,
            adapter_dead_threshold: 9,
            ..Default::default()
        };
        let s = c.adapter_supervisor();
        assert_eq!(s.error_threshold, 2);
        assert_eq!(s.dead_threshold, 9);
        assert_eq!(s.egress_retry_deadline_ns, c.egress_retry_deadline_ns);
    }

    #[test]
    fn config_errors_render_their_values() {
        let e = ConfigError::Watermarks { low: 0.9, high: 0.1 };
        assert!(e.to_string().contains("low=0.9"));
        let e = ConfigError::QueueCapacity { data: 0, ctrl: 64 };
        assert!(e.to_string().contains("data=0"));
    }

    #[test]
    fn builders_honor_kinds() {
        let mut c = LvrmConfig { balancer: BalancerKind::RoundRobin, ..Default::default() };
        assert_eq!(c.build_balancer().name(), "rr");
        c.flow_based = true;
        assert_eq!(c.build_balancer().name(), "flow-rr");
        c.allocator = AllocatorKind::Fixed { cores: 2 };
        assert_eq!(c.build_allocator().name(), "fixed");
        c.estimator = EstimatorKind::InterArrival;
        assert_eq!(c.build_estimator().name(), "ewma-inter-arrival");
    }
}
