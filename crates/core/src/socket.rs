//! Socket adapters (paper §3.1).
//!
//! "The socket adapter is the software interface that relays data frames via
//! LVRM. … the polling process of the socket adapter is transparent" to the
//! monitor. Three lower-level access methods exist in the paper: the raw BSD
//! socket, the PF_RING zero-copy ring, and main memory (a preloaded trace,
//! used to factor the network out of measurements). This module defines the
//! trait plus the main-memory implementation; the simulated raw-socket and
//! PF_RING variants live in `lvrm-testbed` (where their per-frame costs are
//! modeled) and a live loopback variant in `lvrm-runtime`.

use lvrm_net::{Frame, Trace};

/// Which lower-level mechanism an adapter models or wraps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SocketKind {
    /// Non-blocking `recvfrom()`/`send()` on a raw BSD socket: two kernel
    /// copies and a syscall per frame.
    RawSocket,
    /// PF_RING-style memory-mapped ring polled directly: zero-copy receive
    /// (and, since LVRM 1.1 / PF_RING 3.7.5, zero-copy send).
    PfRing,
    /// Frames replayed from main memory; output is discarded. Used by the
    /// "LVRM only" experiments (1c/1d) to exclude the network.
    MemTrace,
}

impl SocketKind {
    pub fn name(self) -> &'static str {
        match self {
            SocketKind::RawSocket => "raw-socket",
            SocketKind::PfRing => "pf_ring",
            SocketKind::MemTrace => "mem-trace",
        }
    }
}

/// The interface LVRM polls for ingress frames and hands egress frames to.
pub trait SocketAdapter: Send {
    /// Non-blocking poll for the next available ingress frame.
    fn poll(&mut self) -> Option<Frame>;

    /// Non-blocking poll for up to `budget` ingress frames, appended to
    /// `out`. Returns how many arrived. The default just loops [`poll`];
    /// adapters with a cheaper bulk path (ring drains, trace replay)
    /// override it.
    ///
    /// [`poll`]: SocketAdapter::poll
    fn poll_batch(&mut self, out: &mut Vec<Frame>, budget: usize) -> usize {
        let mut n = 0;
        while n < budget {
            match self.poll() {
                Some(f) => {
                    out.push(f);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Emit one egress frame toward the wire (or wherever the adapter's
    /// lower level leads). Adapters may drop on backpressure; they count it.
    fn send(&mut self, frame: Frame);

    /// Emit a burst of egress frames. The default loops [`send`]; adapters
    /// with a bulk enqueue override it.
    ///
    /// [`send`]: SocketAdapter::send
    fn send_batch(&mut self, frames: &mut Vec<Frame>) {
        for f in frames.drain(..) {
            self.send(f);
        }
    }

    fn kind(&self) -> SocketKind;

    /// Frames delivered to LVRM so far.
    fn rx_count(&self) -> u64;

    /// Frames sent (or discarded, for [`SocketKind::MemTrace`]) so far.
    fn tx_count(&self) -> u64;
}

/// The main-memory adapter: replays a preloaded trace as fast as the caller
/// polls, up to a frame budget; `send` discards (Experiment 1c: "add an
/// output interface to LVRM to simply discard the frames").
pub struct MemTraceAdapter {
    trace: Trace,
    remaining: u64,
    rx: u64,
    tx: u64,
    /// Stamp frames with this ingress interface.
    pub ingress_if: u16,
}

impl MemTraceAdapter {
    /// Replay `total_frames` logical frames from `trace` (the distinct
    /// frames cycle, like the paper's 100 M-frame trace file in RAM).
    pub fn new(trace: Trace, total_frames: u64) -> MemTraceAdapter {
        MemTraceAdapter { trace, remaining: total_frames, rx: 0, tx: 0, ingress_if: 0 }
    }

    /// Frames left to replay.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// True once the whole trace has been delivered.
    pub fn exhausted(&self) -> bool {
        self.remaining == 0
    }
}

impl SocketAdapter for MemTraceAdapter {
    fn poll(&mut self) -> Option<Frame> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.rx += 1;
        let mut f = self.trace.next_frame();
        f.ingress_if = self.ingress_if;
        Some(f)
    }

    fn poll_batch(&mut self, out: &mut Vec<Frame>, budget: usize) -> usize {
        // Native bulk path: one budget check for the whole burst.
        let n = (budget as u64).min(self.remaining) as usize;
        self.remaining -= n as u64;
        self.rx += n as u64;
        out.reserve(n);
        for _ in 0..n {
            let mut f = self.trace.next_frame();
            f.ingress_if = self.ingress_if;
            out.push(f);
        }
        n
    }

    fn send(&mut self, _frame: Frame) {
        self.tx += 1; // discard
    }

    fn send_batch(&mut self, frames: &mut Vec<Frame>) {
        self.tx += frames.len() as u64;
        frames.clear(); // discard
    }

    fn kind(&self) -> SocketKind {
        SocketKind::MemTrace
    }

    fn rx_count(&self) -> u64 {
        self.rx
    }

    fn tx_count(&self) -> u64 {
        self.tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvrm_net::TraceSpec;

    #[test]
    fn replays_exactly_the_budget() {
        let trace = Trace::generate(&TraceSpec::new(84, 4));
        let mut a = MemTraceAdapter::new(trace, 10);
        let mut n = 0;
        while let Some(f) = a.poll() {
            assert_eq!(f.wire_len(), 84);
            n += 1;
        }
        assert_eq!(n, 10);
        assert!(a.exhausted());
        assert_eq!(a.rx_count(), 10);
    }

    #[test]
    fn send_discards_but_counts() {
        let trace = Trace::generate(&TraceSpec::new(84, 1));
        let mut a = MemTraceAdapter::new(trace, 1);
        let f = a.poll().unwrap();
        a.send(f);
        assert_eq!(a.tx_count(), 1);
    }

    #[test]
    fn batch_poll_matches_per_frame_path() {
        let trace = Trace::generate(&TraceSpec::new(84, 4));
        let mut a = MemTraceAdapter::new(trace, 10);
        let mut out = Vec::new();
        assert_eq!(a.poll_batch(&mut out, 6), 6);
        assert_eq!(a.poll_batch(&mut out, 6), 4, "budget capped by remaining");
        assert_eq!(a.poll_batch(&mut out, 6), 0);
        assert_eq!(out.len(), 10);
        assert_eq!(a.rx_count(), 10);
        assert!(a.exhausted());
        a.send_batch(&mut out);
        assert!(out.is_empty());
        assert_eq!(a.tx_count(), 10);
    }

    #[test]
    fn kind_names() {
        assert_eq!(SocketKind::RawSocket.name(), "raw-socket");
        assert_eq!(SocketKind::PfRing.name(), "pf_ring");
        assert_eq!(SocketKind::MemTrace.name(), "mem-trace");
    }
}
