//! Socket adapters (paper §3.1).
//!
//! "The socket adapter is the software interface that relays data frames via
//! LVRM. … the polling process of the socket adapter is transparent" to the
//! monitor. Three lower-level access methods exist in the paper: the raw BSD
//! socket, the PF_RING zero-copy ring, and main memory (a preloaded trace,
//! used to factor the network out of measurements). This module defines the
//! trait plus the main-memory implementation; the simulated raw-socket and
//! PF_RING variants live in `lvrm-testbed` (where their per-frame costs are
//! modeled) and a live loopback variant in `lvrm-runtime`.
//!
//! The surface is **fallible**: `poll` and `send` return typed
//! [`AdapterError`]s instead of folding I/O failures into "no traffic" or
//! silent frame loss. `Err(WouldBlock)` is the ordinary idle case (EAGAIN or
//! EINTR on a real socket); everything else is a genuine fault for the
//! adapter supervisor ([`crate::adapter::SupervisedAdapter`]) to act on.

use lvrm_net::{Frame, Trace};

/// Which lower-level mechanism an adapter models or wraps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SocketKind {
    /// Non-blocking `recvfrom()`/`send()` on a raw BSD socket: two kernel
    /// copies and a syscall per frame.
    RawSocket,
    /// PF_RING-style memory-mapped ring polled directly: zero-copy receive
    /// (and, since LVRM 1.1 / PF_RING 3.7.5, zero-copy send).
    PfRing,
    /// Frames replayed from main memory; output is discarded. Used by the
    /// "LVRM only" experiments (1c/1d) to exclude the network.
    MemTrace,
}

impl SocketKind {
    pub fn name(self) -> &'static str {
        match self {
            SocketKind::RawSocket => "raw-socket",
            SocketKind::PfRing => "pf_ring",
            SocketKind::MemTrace => "mem-trace",
        }
    }
}

/// Why an adapter operation could not complete. The ordering matters to the
/// supervisor: `WouldBlock` is not a fault at all, `Transient` and `Stalled`
/// accumulate toward degradation, `Fatal` kills the adapter outright.
#[derive(Debug)]
pub enum AdapterError {
    /// No frame available / no transmit space right now — try again. Real
    /// sockets map both `EWOULDBLOCK`/`EAGAIN` *and* `EINTR` here: an
    /// interrupted syscall lost nothing and must not count as an error.
    WouldBlock,
    /// A recoverable I/O error (e.g. `ENOBUFS`, a truncated datagram). The
    /// frame involved, if any, was lost or is handed back via
    /// [`SendRejected`]; the adapter itself may still recover.
    Transient(std::io::Error),
    /// The lower layer has stopped making progress entirely (a wedged ring,
    /// an injected stall). Polls and sends will keep failing until the
    /// adapter is reopened.
    Stalled,
    /// The adapter is gone (closed descriptor, detached ring, injected
    /// crash) and cannot serve another frame without a reopen or failover.
    Fatal,
}

impl AdapterError {
    /// True for the ordinary idle case, which is not a fault.
    pub fn is_would_block(&self) -> bool {
        matches!(self, AdapterError::WouldBlock)
    }

    pub fn name(&self) -> &'static str {
        match self {
            AdapterError::WouldBlock => "would-block",
            AdapterError::Transient(_) => "transient",
            AdapterError::Stalled => "stalled",
            AdapterError::Fatal => "fatal",
        }
    }
}

impl std::fmt::Display for AdapterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdapterError::Transient(e) => write!(f, "transient: {e}"),
            other => f.write_str(other.name()),
        }
    }
}

/// A refused `send`: the frame comes back to the caller so a retry layer can
/// requeue it instead of losing it silently.
#[derive(Debug)]
pub struct SendRejected {
    pub frame: Frame,
    pub error: AdapterError,
}

/// The interface LVRM polls for ingress frames and hands egress frames to.
pub trait SocketAdapter: Send {
    /// Non-blocking poll for the next available ingress frame.
    /// `Err(WouldBlock)` means idle; other errors are real faults.
    fn poll(&mut self) -> Result<Frame, AdapterError>;

    /// Non-blocking poll for up to `budget` ingress frames, appended to
    /// `out`. Returns how many arrived; an idle adapter yields `Ok(0)`. A
    /// mid-burst fault is only surfaced as `Err` when nothing at all was
    /// delivered — a partial burst returns its count so no received frame
    /// is stranded behind the error. The default just loops [`poll`];
    /// adapters with a cheaper bulk path (ring drains, trace replay)
    /// override it.
    ///
    /// [`poll`]: SocketAdapter::poll
    fn poll_batch(&mut self, out: &mut Vec<Frame>, budget: usize) -> Result<usize, AdapterError> {
        let mut n = 0;
        while n < budget {
            match self.poll() {
                Ok(f) => {
                    out.push(f);
                    n += 1;
                }
                Err(AdapterError::WouldBlock) => break,
                Err(e) if n == 0 => return Err(e),
                Err(_) => break,
            }
        }
        Ok(n)
    }

    /// Emit one egress frame toward the wire (or wherever the adapter's
    /// lower level leads). A refusal hands the frame back via
    /// [`SendRejected`] — the adapter never silently drops; loss decisions
    /// belong to the caller (the supervisor's retry deadline).
    fn send(&mut self, frame: Frame) -> Result<(), SendRejected>;

    /// Emit a burst of egress frames. Returns how many were accepted;
    /// refused frames **remain in `frames`** (in order, starting with the
    /// refused one) for the caller to retry. `Err` only when nothing was
    /// accepted and the failure was a real fault. The default loops
    /// [`send`]; adapters with a bulk enqueue override it.
    ///
    /// [`send`]: SocketAdapter::send
    fn send_batch(&mut self, frames: &mut Vec<Frame>) -> Result<usize, AdapterError> {
        let mut accepted = 0;
        let mut error: Option<AdapterError> = None;
        let drained: Vec<Frame> = std::mem::take(frames);
        for f in drained {
            if error.is_none() {
                match self.send(f) {
                    Ok(()) => accepted += 1,
                    Err(SendRejected { frame, error: e }) => {
                        error = Some(e);
                        frames.push(frame);
                    }
                }
            } else {
                frames.push(f);
            }
        }
        match error {
            Some(e) if accepted == 0 && !e.is_would_block() => Err(e),
            _ => Ok(accepted),
        }
    }

    /// Attempt to re-establish the lower layer after a fault (rebind the
    /// socket, re-map the ring). Default: not supported.
    fn reopen(&mut self) -> Result<(), AdapterError> {
        Err(AdapterError::Fatal)
    }

    /// Advance adapter-internal time. Fault-injection wrappers consume
    /// their scheduled events here; real adapters have nothing to do. The
    /// supervisor forwards its `tick` clock to every chain member, so
    /// time-addressed faults fire even on adapters boxed behind the trait.
    fn advance(&mut self, _now_ns: u64) {}

    fn kind(&self) -> SocketKind;

    /// Frames delivered to LVRM so far.
    fn rx_count(&self) -> u64;

    /// Frames sent (or discarded, for [`SocketKind::MemTrace`]) so far.
    fn tx_count(&self) -> u64;
}

/// The main-memory adapter: replays a preloaded trace as fast as the caller
/// polls, up to a frame budget; `send` discards (Experiment 1c: "add an
/// output interface to LVRM to simply discard the frames"). Never fails.
pub struct MemTraceAdapter {
    trace: Trace,
    remaining: u64,
    rx: u64,
    tx: u64,
    /// Stamp frames with this ingress interface.
    pub ingress_if: u16,
}

impl MemTraceAdapter {
    /// Replay `total_frames` logical frames from `trace` (the distinct
    /// frames cycle, like the paper's 100 M-frame trace file in RAM).
    pub fn new(trace: Trace, total_frames: u64) -> MemTraceAdapter {
        MemTraceAdapter { trace, remaining: total_frames, rx: 0, tx: 0, ingress_if: 0 }
    }

    /// Frames left to replay.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// True once the whole trace has been delivered.
    pub fn exhausted(&self) -> bool {
        self.remaining == 0
    }
}

impl SocketAdapter for MemTraceAdapter {
    fn poll(&mut self) -> Result<Frame, AdapterError> {
        if self.remaining == 0 {
            return Err(AdapterError::WouldBlock);
        }
        self.remaining -= 1;
        self.rx += 1;
        let mut f = self.trace.next_frame();
        f.ingress_if = self.ingress_if;
        Ok(f)
    }

    fn poll_batch(&mut self, out: &mut Vec<Frame>, budget: usize) -> Result<usize, AdapterError> {
        // Native bulk path: one budget check for the whole burst.
        let n = (budget as u64).min(self.remaining) as usize;
        self.remaining -= n as u64;
        self.rx += n as u64;
        out.reserve(n);
        for _ in 0..n {
            let mut f = self.trace.next_frame();
            f.ingress_if = self.ingress_if;
            out.push(f);
        }
        Ok(n)
    }

    fn send(&mut self, _frame: Frame) -> Result<(), SendRejected> {
        self.tx += 1; // discard
        Ok(())
    }

    fn send_batch(&mut self, frames: &mut Vec<Frame>) -> Result<usize, AdapterError> {
        let n = frames.len();
        self.tx += n as u64;
        frames.clear(); // discard
        Ok(n)
    }

    fn reopen(&mut self) -> Result<(), AdapterError> {
        Ok(()) // RAM does not fail; nothing to re-establish
    }

    fn kind(&self) -> SocketKind {
        SocketKind::MemTrace
    }

    fn rx_count(&self) -> u64 {
        self.rx
    }

    fn tx_count(&self) -> u64 {
        self.tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvrm_net::TraceSpec;

    #[test]
    fn replays_exactly_the_budget() {
        let trace = Trace::generate(&TraceSpec::new(84, 4));
        let mut a = MemTraceAdapter::new(trace, 10);
        let mut n = 0;
        while let Ok(f) = a.poll() {
            assert_eq!(f.wire_len(), 84);
            n += 1;
        }
        assert_eq!(n, 10);
        assert!(a.exhausted());
        assert_eq!(a.rx_count(), 10);
        assert!(a.poll().is_err_and(|e| e.is_would_block()), "exhausted reads as idle, not fault");
    }

    #[test]
    fn send_discards_but_counts() {
        let trace = Trace::generate(&TraceSpec::new(84, 1));
        let mut a = MemTraceAdapter::new(trace, 1);
        let f = a.poll().unwrap();
        a.send(f).unwrap();
        assert_eq!(a.tx_count(), 1);
    }

    #[test]
    fn batch_poll_matches_per_frame_path() {
        let trace = Trace::generate(&TraceSpec::new(84, 4));
        let mut a = MemTraceAdapter::new(trace, 10);
        let mut out = Vec::new();
        assert_eq!(a.poll_batch(&mut out, 6).unwrap(), 6);
        assert_eq!(a.poll_batch(&mut out, 6).unwrap(), 4, "budget capped by remaining");
        assert_eq!(a.poll_batch(&mut out, 6).unwrap(), 0);
        assert_eq!(out.len(), 10);
        assert_eq!(a.rx_count(), 10);
        assert!(a.exhausted());
        assert_eq!(a.send_batch(&mut out).unwrap(), 10);
        assert!(out.is_empty());
        assert_eq!(a.tx_count(), 10);
    }

    #[test]
    fn kind_names() {
        assert_eq!(SocketKind::RawSocket.name(), "raw-socket");
        assert_eq!(SocketKind::PfRing.name(), "pf_ring");
        assert_eq!(SocketKind::MemTrace.name(), "mem-trace");
    }

    #[test]
    fn error_taxonomy_names_and_idle_classification() {
        assert!(AdapterError::WouldBlock.is_would_block());
        assert!(!AdapterError::Stalled.is_would_block());
        assert!(!AdapterError::Fatal.is_would_block());
        assert_eq!(AdapterError::Stalled.name(), "stalled");
        assert_eq!(AdapterError::Fatal.name(), "fatal");
        let t = AdapterError::Transient(std::io::Error::other("x"));
        assert_eq!(t.name(), "transient");
        assert!(t.to_string().contains("transient"));
        assert_eq!(format!("{}", AdapterError::WouldBlock), "would-block");
    }

    /// A stub whose `send` always refuses, to pin the default `send_batch`
    /// contract: refused frames stay in the vec, in order.
    struct Refuser {
        accept: usize,
        tx: u64,
    }

    impl SocketAdapter for Refuser {
        fn poll(&mut self) -> Result<Frame, AdapterError> {
            Err(AdapterError::WouldBlock)
        }

        fn send(&mut self, frame: Frame) -> Result<(), SendRejected> {
            if self.accept > 0 {
                self.accept -= 1;
                self.tx += 1;
                Ok(())
            } else {
                Err(SendRejected { frame, error: AdapterError::Stalled })
            }
        }

        fn kind(&self) -> SocketKind {
            SocketKind::RawSocket
        }

        fn rx_count(&self) -> u64 {
            0
        }

        fn tx_count(&self) -> u64 {
            self.tx
        }
    }

    #[test]
    fn default_send_batch_keeps_refused_frames() {
        let trace = Trace::generate(&TraceSpec::new(84, 8));
        let mut src = MemTraceAdapter::new(trace, 5);
        let mut frames = Vec::new();
        src.poll_batch(&mut frames, 5).unwrap();

        let mut a = Refuser { accept: 2, tx: 0 };
        let accepted = a.send_batch(&mut frames).unwrap();
        assert_eq!(accepted, 2);
        assert_eq!(frames.len(), 3, "refused + unsent frames stay with the caller");
        assert_eq!(a.tx_count(), 2);

        // A total refusal with a real fault surfaces the error.
        let mut b = Refuser { accept: 0, tx: 0 };
        assert!(matches!(b.send_batch(&mut frames), Err(AdapterError::Stalled)));
        assert_eq!(frames.len(), 3, "nothing was lost");
    }
}
