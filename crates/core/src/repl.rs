//! State-Compute Replication: per-flow state-update records and the
//! replica-side ledger that folds them (DESIGN.md §14).
//!
//! Flow-pinned dispatch caps a single elephant flow at one core. Replicated
//! dispatch (arXiv 2309.14647) lets *any* VRI of a VR process *any* frame;
//! what must then travel between replicas is not the frame but the compact
//! per-flow state delta it produced. Each replica appends [`StateUpdate`]
//! records to its control-priority queue; the monitor's sub-tick decodes the
//! batch and fans it out to the VR's sibling replicas, which fold it into
//! their local books. Counter deltas are **wrapping**, so folding is exact
//! even across u64 wraps, and every record carries a per-origin sequence
//! number so duplicated or reordered batches fold idempotently.
//!
//! ## Wire format (`LVSU`)
//!
//! Everything little-endian, CRC-trailed like `LVCK`/`LVCD`/`LVHA`:
//!
//! ```text
//! "LVSU" | version u8 | origin u32 | count u16
//!        | count × (flow_key 13B | seq u64 | d_frames u64
//!                   | d_bytes u64 | last_seen_ns u64)
//!        | crc32 u32
//! ```
//!
//! [`decode_batch`] never panics: any malformed input — bad magic, version,
//! truncation, bit-flips, count mismatch — yields a [`CheckpointError`].
//!
//! ## Conservation
//!
//! Replication gets its own identity, the fifth alongside A–D:
//!
//! ```text
//! updates_emitted == updates_folded + updates_lost
//! ```
//!
//! The monitor charges `updates_emitted` when it decodes a batch destined
//! for fan-out (records × live sibling replicas), `updates_folded` per
//! record relayed onto a sibling's control queue, and `updates_lost` when a
//! sibling's queue refuses the relay or the batch fails to decode — so the
//! identity holds by construction at every snapshot.

use std::collections::HashMap;

use lvrm_net::FlowKey;

use crate::checkpoint::{crc32, CheckpointError, Dec, Enc};

/// Leading magic of a state-update batch — disjoint from `LVCK`
/// (checkpoints), `LVCD` (HA deltas), and `LVHA` (HA adverts) so a record
/// batch can never be mistaken for any of them.
pub const STATE_UPDATE_MAGIC: [u8; 4] = *b"LVSU";
pub const STATE_UPDATE_VERSION: u8 = 1;

/// Encoded size of one record: 13-byte flow key + 4 × u64.
pub const RECORD_BYTES: usize = 13 + 8 * 4;
/// Fixed framing: magic + version + origin + count + trailing CRC.
pub const BATCH_OVERHEAD: usize = 4 + 1 + 4 + 2 + 4;

/// One compact per-flow state delta from one replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StateUpdate {
    pub key: FlowKey,
    /// Origin-local sequence number; folding skips `seq <= last folded`.
    pub seq: u64,
    /// Frames processed for this flow since its previous update (wrapping).
    pub d_frames: u64,
    /// Bytes processed since the previous update (wrapping).
    pub d_bytes: u64,
    /// Origin's latest activity timestamp for the flow (absolute).
    pub last_seen_ns: u64,
}

/// Replicated per-flow book: what every replica of a VR converges to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowBook {
    pub frames: u64,
    pub bytes: u64,
    pub last_seen_ns: u64,
}

/// Encode a batch of updates from `origin` into the `LVSU` wire format.
pub fn encode_batch(origin: u32, updates: &[StateUpdate]) -> Vec<u8> {
    assert!(updates.len() <= u16::MAX as usize, "batch larger than u16 count");
    let mut e = Enc { buf: Vec::with_capacity(BATCH_OVERHEAD + updates.len() * RECORD_BYTES) };
    e.buf.extend_from_slice(&STATE_UPDATE_MAGIC);
    e.u8(STATE_UPDATE_VERSION);
    e.u32(origin);
    e.u16(updates.len() as u16);
    for u in updates {
        e.flow_key(&u.key);
        e.u64(u.seq);
        e.u64(u.d_frames);
        e.u64(u.d_bytes);
        e.u64(u.last_seen_ns);
    }
    let crc = crc32(&e.buf);
    e.u32(crc);
    e.buf
}

/// Parse and verify an `LVSU` batch into `(origin, updates)`. Never panics.
pub fn decode_batch(buf: &[u8]) -> Result<(u32, Vec<StateUpdate>), CheckpointError> {
    if buf.len() < BATCH_OVERHEAD {
        return Err(CheckpointError::TooShort);
    }
    if buf[..4] != STATE_UPDATE_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let body = &buf[..buf.len() - 4];
    let found = u32::from_le_bytes(buf[buf.len() - 4..].try_into().expect("4 bytes"));
    let expected = crc32(body);
    if found != expected {
        return Err(CheckpointError::BadChecksum { expected, found });
    }
    let mut d = Dec { buf: body, pos: 4 };
    let version = d.u8()?;
    if version != STATE_UPDATE_VERSION {
        return Err(CheckpointError::BadVersion(version as u32));
    }
    let origin = d.u32()?;
    let count = d.u16()? as usize;
    let mut updates = Vec::with_capacity(count);
    for _ in 0..count {
        let key = d.flow_key()?;
        let seq = d.u64()?;
        let d_frames = d.u64()?;
        let d_bytes = d.u64()?;
        let last_seen_ns = d.u64()?;
        updates.push(StateUpdate { key, seq, d_frames, d_bytes, last_seen_ns });
    }
    if d.pos != body.len() {
        return Err(CheckpointError::Malformed("trailing bytes after records"));
    }
    Ok((origin, updates))
}

/// Is this control payload a state-update batch? The monitor's sub-tick
/// uses this to intercept `LVSU` traffic for fan-out instead of relaying it
/// like ordinary VRI-to-VRI control events.
pub fn is_state_update(payload: &[u8]) -> bool {
    payload.len() >= 4 && payload[..4] == STATE_UPDATE_MAGIC
}

/// One replica's view of the replicated per-flow state: its own books, the
/// deltas it has not yet flushed, and the fold-side bookkeeping that makes
/// re-delivery idempotent.
///
/// The ledger is deliberately transport-agnostic — the testbed attaches one
/// per simulated VRI, `RecordingHost` one per endpoint, and the differential
/// suite drives it directly — so the fold path that miri checks is the same
/// code every harness runs.
#[derive(Clone, Debug, Default)]
pub struct ReplicaLedger {
    /// This replica's VRI id (stamped on every emitted batch).
    origin: u32,
    /// Converged per-flow books (local observations + folded updates).
    books: HashMap<FlowKey, FlowBook>,
    /// Locally observed deltas awaiting flush, in observation order.
    pending: Vec<StateUpdate>,
    /// Index into `pending` by flow, so one flow's burst coalesces into one
    /// record per flush instead of one per frame.
    pending_idx: HashMap<FlowKey, usize>,
    /// Next sequence number for this replica's own records.
    next_seq: u64,
    /// Highest sequence folded per origin — duplicates and stale reorders
    /// fold to nothing.
    folded_seq: HashMap<u32, u64>,
    /// Records this replica has flushed (observability).
    pub emitted: u64,
    /// Records folded into local books (observability).
    pub folded: u64,
}

impl ReplicaLedger {
    pub fn new(origin: u32) -> ReplicaLedger {
        ReplicaLedger { origin, next_seq: 1, ..Default::default() }
    }

    pub fn origin(&self) -> u32 {
        self.origin
    }

    /// Record local processing of one frame of `bytes` bytes for `key`:
    /// updates this replica's own book and queues a delta for the next
    /// flush. Wrapping adds keep the books exact across counter wraps.
    pub fn observe(&mut self, key: FlowKey, bytes: u64, now_ns: u64) {
        let book = self.books.entry(key).or_default();
        book.frames = book.frames.wrapping_add(1);
        book.bytes = book.bytes.wrapping_add(bytes);
        book.last_seen_ns = book.last_seen_ns.max(now_ns);
        match self.pending_idx.get(&key) {
            Some(&i) => {
                let u = &mut self.pending[i];
                u.d_frames = u.d_frames.wrapping_add(1);
                u.d_bytes = u.d_bytes.wrapping_add(bytes);
                u.last_seen_ns = u.last_seen_ns.max(now_ns);
            }
            None => {
                self.pending_idx.insert(key, self.pending.len());
                self.pending.push(StateUpdate {
                    key,
                    seq: self.next_seq,
                    d_frames: 1,
                    d_bytes: bytes,
                    last_seen_ns: now_ns,
                });
                self.next_seq += 1;
            }
        }
    }

    /// Deltas queued for the next flush.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Drain the pending deltas into an encoded `LVSU` batch for the
    /// control queue, or `None` when there is nothing to say.
    pub fn flush(&mut self) -> Option<Vec<u8>> {
        if self.pending.is_empty() {
            return None;
        }
        self.pending_idx.clear();
        let updates = std::mem::take(&mut self.pending);
        self.emitted += updates.len() as u64;
        Some(encode_batch(self.origin, &updates))
    }

    /// Drop the pending deltas without emitting them — what a replica crash
    /// does to its unflushed state. Returns how many records were lost.
    pub fn drop_pending(&mut self) -> usize {
        self.pending_idx.clear();
        let n = self.pending.len();
        self.pending.clear();
        n
    }

    /// Fold one sibling's update into the local books. Duplicate and
    /// out-of-order deliveries (per origin) fold to nothing, so the books
    /// converge to the same totals no matter how the control queues reorder
    /// or retry. Returns `true` if the record advanced local state.
    pub fn fold(&mut self, origin: u32, u: &StateUpdate) -> bool {
        debug_assert_ne!(origin, self.origin, "replica folding its own records");
        let last = self.folded_seq.entry(origin).or_insert(0);
        if u.seq <= *last {
            return false;
        }
        *last = u.seq;
        let book = self.books.entry(u.key).or_default();
        book.frames = book.frames.wrapping_add(u.d_frames);
        book.bytes = book.bytes.wrapping_add(u.d_bytes);
        book.last_seen_ns = book.last_seen_ns.max(u.last_seen_ns);
        self.folded += 1;
        true
    }

    /// Fold an entire decoded batch; returns how many records advanced
    /// local state.
    pub fn fold_batch(&mut self, origin: u32, updates: &[StateUpdate]) -> usize {
        updates.iter().filter(|u| self.fold(origin, u)).count()
    }

    /// The converged book for one flow.
    pub fn book(&self, key: &FlowKey) -> Option<FlowBook> {
        self.books.get(key).copied()
    }

    /// All books, for whole-ledger equivalence checks.
    pub fn books(&self) -> &HashMap<FlowKey, FlowBook> {
        &self.books
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvrm_net::flow::Protocol;
    use std::net::Ipv4Addr;

    fn key(n: u8) -> FlowKey {
        FlowKey {
            src: Ipv4Addr::new(10, 0, 1, n),
            dst: Ipv4Addr::new(10, 0, 2, 1),
            src_port: 1000 + n as u16,
            dst_port: 80,
            proto: Protocol::Tcp,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let updates = vec![
            StateUpdate { key: key(1), seq: 1, d_frames: 3, d_bytes: 4500, last_seen_ns: 77 },
            StateUpdate {
                key: key(2),
                seq: 2,
                d_frames: u64::MAX,
                d_bytes: u64::MAX,
                last_seen_ns: u64::MAX,
            },
        ];
        let bytes = encode_batch(9, &updates);
        assert_eq!(bytes.len(), BATCH_OVERHEAD + 2 * RECORD_BYTES);
        let (origin, back) = decode_batch(&bytes).expect("decodes");
        assert_eq!(origin, 9);
        assert_eq!(back, updates);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let bytes = encode_batch(3, &[]);
        let (origin, back) = decode_batch(&bytes).expect("decodes");
        assert_eq!(origin, 3);
        assert!(back.is_empty());
    }

    #[test]
    fn observe_coalesces_per_flow_and_flush_drains() {
        let mut l = ReplicaLedger::new(1);
        l.observe(key(1), 100, 10);
        l.observe(key(1), 200, 20);
        l.observe(key(2), 50, 15);
        assert_eq!(l.pending_len(), 2); // two flows, not three frames
        let batch = l.flush().expect("has pending");
        let (origin, updates) = decode_batch(&batch).expect("decodes");
        assert_eq!(origin, 1);
        assert_eq!(updates.len(), 2);
        let u1 = updates.iter().find(|u| u.key == key(1)).expect("flow 1");
        assert_eq!((u1.d_frames, u1.d_bytes, u1.last_seen_ns), (2, 300, 20));
        assert_eq!(l.emitted, 2);
        assert!(l.flush().is_none(), "flush drains");
    }

    #[test]
    fn fold_is_idempotent_per_origin_seq() {
        let mut a = ReplicaLedger::new(1);
        a.observe(key(1), 100, 10);
        a.observe(key(1), 100, 20);
        let batch = a.flush().expect("pending");
        let (origin, updates) = decode_batch(&batch).expect("decodes");

        let mut b = ReplicaLedger::new(2);
        assert_eq!(b.fold_batch(origin, &updates), 1);
        // Exact duplicate delivery folds to nothing.
        assert_eq!(b.fold_batch(origin, &updates), 0);
        let book = b.book(&key(1)).expect("folded");
        assert_eq!((book.frames, book.bytes, book.last_seen_ns), (2, 200, 20));
        // Same seq from a different origin is NOT a duplicate.
        assert_eq!(b.fold_batch(7, &updates), 1);
        assert_eq!(b.book(&key(1)).unwrap().frames, 4);
        assert_eq!(b.folded, 2);
    }

    #[test]
    fn replicas_converge_through_mutual_folds() {
        let mut a = ReplicaLedger::new(1);
        let mut b = ReplicaLedger::new(2);
        a.observe(key(1), 1000, 5);
        b.observe(key(1), 500, 7);
        b.observe(key(2), 10, 8);
        let ab = a.flush().expect("a pending");
        let ba = b.flush().expect("b pending");
        let (ao, au) = decode_batch(&ab).unwrap();
        let (bo, bu) = decode_batch(&ba).unwrap();
        b.fold_batch(ao, &au);
        a.fold_batch(bo, &bu);
        assert_eq!(a.books(), b.books(), "replicas converged");
        let book = a.book(&key(1)).expect("flow 1");
        assert_eq!((book.frames, book.bytes), (2, 1500));
    }

    #[test]
    fn drop_pending_models_a_crash() {
        let mut l = ReplicaLedger::new(1);
        l.observe(key(1), 100, 10);
        l.observe(key(2), 100, 11);
        assert_eq!(l.drop_pending(), 2);
        assert!(l.flush().is_none());
        // Local books keep the observations; only the *replication* of them
        // is lost — exactly what `updates_lost` accounts for.
        assert_eq!(l.book(&key(1)).unwrap().frames, 1);
    }

    #[test]
    fn is_state_update_discriminates() {
        let batch = encode_batch(1, &[]);
        assert!(is_state_update(&batch));
        assert!(!is_state_update(b"LVCK rest"));
        assert!(!is_state_update(b"LVC"));
        assert!(!is_state_update(b""));
    }

    #[test]
    fn corruption_and_truncation_rejected() {
        let updates =
            vec![StateUpdate { key: key(1), seq: 1, d_frames: 1, d_bytes: 64, last_seen_ns: 9 }];
        let bytes = encode_batch(4, &updates);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(decode_batch(&bad).is_err(), "flip at byte {i} accepted");
        }
        for len in 0..bytes.len() {
            assert!(decode_batch(&bytes[..len]).is_err(), "truncation to {len} accepted");
        }
    }
}
