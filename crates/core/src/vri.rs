//! Per-VRI adapters on both sides of the IPC queues.
//!
//! * [`VriAdapter`] is LVRM's handle on one VRI (paper §3.4): it relays
//!   frames to/from the instance and runs the load estimator the balancer
//!   consults.
//! * [`LvrmAdapter`] is the VRI's handle on LVRM (paper §3.6): it exposes
//!   the `fromLVRM()`/`toLVRM()` API, and — when dynamic thresholds are on —
//!   estimates the VRI's service rate from the gaps between `from_lvrm`
//!   calls and reports it upstream through the control queue.

use lvrm_ipc::channels::{ControlEvent, VriChannels, VriEndpoint, Work};
use lvrm_ipc::{Full, PressureLevel, Watermarks};
use lvrm_metrics::ServiceRateEstimator;
use lvrm_net::Frame;

use crate::estimate::LoadEstimator;
use crate::topology::CoreId;
use crate::VriId;

/// Control events addressed to this pseudo-VRI id are consumed by LVRM
/// itself (service-rate reports) instead of being relayed to a VRI.
pub const LVRM_CTRL_ID: u32 = u32::MAX;

/// Magic prefix of a service-rate report payload.
const SVC_RATE_MAGIC: &[u8; 4] = b"SVCR";

/// Encode a service-rate report event.
pub fn encode_service_rate(vri: VriId, rate_fps: f64) -> ControlEvent {
    let mut payload = Vec::with_capacity(12);
    payload.extend_from_slice(SVC_RATE_MAGIC);
    payload.extend_from_slice(&rate_fps.to_le_bytes());
    ControlEvent::new(vri.0, LVRM_CTRL_ID, payload)
}

/// Decode a service-rate report, if the event is one.
pub fn decode_service_rate(ev: &ControlEvent) -> Option<(VriId, f64)> {
    if ev.dst_vri != LVRM_CTRL_ID || ev.payload.len() != 12 || &ev.payload[..4] != SVC_RATE_MAGIC {
        return None;
    }
    let rate = f64::from_le_bytes(ev.payload[4..12].try_into().ok()?);
    Some((VriId(ev.src_vri), rate))
}

/// Magic prefix of a heartbeat payload. Heartbeats piggyback on the same
/// priority control path as `SVCR` reports: any control event from a VRI is
/// proof of life, but an idle VRI emits no reports, so the adapter sends an
/// explicit beat each period to distinguish "idle" from "wedged".
const HEARTBEAT_MAGIC: &[u8; 4] = b"HBTB";

/// Encode a liveness heartbeat addressed to LVRM.
pub fn encode_heartbeat(vri: VriId) -> ControlEvent {
    ControlEvent::new(vri.0, LVRM_CTRL_ID, HEARTBEAT_MAGIC.to_vec())
}

/// Decode a heartbeat, if the event is one.
pub fn decode_heartbeat(ev: &ControlEvent) -> Option<VriId> {
    if ev.dst_vri != LVRM_CTRL_ID || ev.payload.as_slice() != HEARTBEAT_MAGIC {
        return None;
    }
    Some(VriId(ev.src_vri))
}

/// Supervisor-visible liveness of one VRI (DESIGN.md "supervision states").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VriHealth {
    /// Heard from recently (heartbeat, report, or any control event).
    #[default]
    Live,
    /// Quiet past the suspect threshold but not yet past the dead one.
    Suspect,
    /// Endpoint detached (process gone) or silent past the dead threshold.
    Dead,
}

impl VriHealth {
    /// Stable lowercase name (event-log and metrics surface).
    pub fn name(self) -> &'static str {
        match self {
            VriHealth::Live => "live",
            VriHealth::Suspect => "suspect",
            VriHealth::Dead => "dead",
        }
    }

    /// Numeric encoding for the health gauge (0 live, 1 suspect, 2 dead).
    pub fn as_gauge(self) -> f64 {
        match self {
            VriHealth::Live => 0.0,
            VriHealth::Suspect => 1.0,
            VriHealth::Dead => 2.0,
        }
    }
}

/// LVRM's side of one VRI.
pub struct VriAdapter {
    pub id: VriId,
    pub core: CoreId,
    channels: VriChannels<Frame>,
    estimator: Box<dyn LoadEstimator>,
    /// Frames dispatched into the VRI's data queue.
    pub dispatched: u64,
    /// Dispatches refused because the data queue was full.
    pub dispatch_drops: u64,
    /// Frames the VRI handed back for egress.
    pub returned: u64,
    /// Most recent service-rate report from the instance, frames/second.
    pub reported_service_rate: Option<f64>,
    /// Supervisor classification from the last [`update_health`] pass.
    ///
    /// [`update_health`]: VriAdapter::update_health
    pub health: VriHealth,
    /// Timestamp of the last proof of life (any control event, or spawn).
    pub last_seen_ns: u64,
    /// Deepest incoming-queue depth observed at dispatch time (occupancy
    /// watermark for the metrics surface).
    pub queue_watermark: u64,
}

impl VriAdapter {
    pub fn new(
        id: VriId,
        core: CoreId,
        channels: VriChannels<Frame>,
        estimator: Box<dyn LoadEstimator>,
    ) -> VriAdapter {
        VriAdapter {
            id,
            core,
            channels,
            estimator,
            dispatched: 0,
            dispatch_drops: 0,
            returned: 0,
            reported_service_rate: None,
            health: VriHealth::Live,
            last_seen_ns: 0,
            queue_watermark: 0,
        }
    }

    /// Record proof of life at `now_ns` (called by LVRM when any control
    /// event from this VRI is processed, and at spawn time).
    pub fn note_liveness(&mut self, now_ns: u64) {
        self.last_seen_ns = self.last_seen_ns.max(now_ns);
        self.health = VriHealth::Live;
    }

    /// Whether the VRI side of the queue fabric still exists. A crashed
    /// (unwound) or explicitly detached instance reads `false` even before
    /// any liveness timeout elapses.
    pub fn endpoint_attached(&self) -> bool {
        self.channels.endpoint_attached()
    }

    /// Reclassify health from the attachment flag and liveness age. A
    /// detached endpoint is dead immediately; otherwise silence past
    /// `dead_after_ns` is dead and silence past `suspect_after_ns` is
    /// suspect. Returns the new classification.
    pub fn update_health(
        &mut self,
        now_ns: u64,
        suspect_after_ns: u64,
        dead_after_ns: u64,
    ) -> VriHealth {
        self.health = if !self.endpoint_attached() {
            VriHealth::Dead
        } else {
            let idle = now_ns.saturating_sub(self.last_seen_ns);
            if idle >= dead_after_ns {
                VriHealth::Dead
            } else if idle >= suspect_after_ns {
                VriHealth::Suspect
            } else {
                VriHealth::Live
            }
        };
        self.health
    }

    /// Push one frame toward the VRI and update the load estimate with the
    /// observed queue depth ("when the VRI adapter forwards a data frame to
    /// the VRI, it measures the load by observing the current queue length",
    /// §3.4). Returns the frame on backpressure.
    ///
    /// A refusal is *not* a drop yet — the caller still owns the frame and
    /// may retry it elsewhere. When it gives up, it must report the discard
    /// via [`note_discarded`] so per-adapter and monitor totals agree
    /// (counting on refusal double-counted retried frames).
    ///
    /// [`note_discarded`]: VriAdapter::note_discarded
    pub fn dispatch(&mut self, frame: Frame, now_ns: u64) -> Result<(), Frame> {
        match self.channels.data_tx.try_send(frame) {
            Ok(()) => {
                self.dispatched += 1;
                let depth = self.channels.data_tx.len();
                self.queue_watermark = self.queue_watermark.max(depth as u64);
                self.estimator.on_dispatch(depth, now_ns);
                Ok(())
            }
            Err(Full(frame)) => Err(frame),
        }
    }

    /// Push a burst of frames toward the VRI with one queue-index
    /// publication, draining the accepted prefix from `frames`. The load
    /// estimator sees the post-burst queue depth once (the batched
    /// equivalent of §3.4's observe-on-dispatch); frames that did not fit
    /// stay in `frames` — the caller decides whether to retry them or
    /// discard them (reporting the latter via [`note_discarded`]). Returns
    /// how many were accepted.
    ///
    /// [`note_discarded`]: VriAdapter::note_discarded
    pub fn dispatch_batch(&mut self, frames: &mut Vec<Frame>, now_ns: u64) -> usize {
        if frames.is_empty() {
            return 0;
        }
        let accepted = self.channels.data_tx.try_send_batch(frames);
        self.dispatched += accepted as u64;
        if accepted > 0 {
            let depth = self.channels.data_tx.len();
            self.queue_watermark = self.queue_watermark.max(depth as u64);
            self.estimator.on_dispatch(depth, now_ns);
        }
        accepted
    }

    /// Record `n` frames the caller discarded after this adapter refused
    /// them. Keeps `dispatch_drops` an actual-loss counter: the monitor's
    /// aggregate equals the sum over adapters exactly, with no
    /// double-counting of frames that were refused here but retried
    /// successfully elsewhere.
    pub fn note_discarded(&mut self, n: u64) {
        self.dispatch_drops += n;
    }

    /// Current smoothed load estimate for the balancer.
    pub fn load(&self) -> f64 {
        self.estimator.estimate()
    }

    /// Feed the estimator the current queue depth without a dispatch
    /// (called for every VRI per balancing decision; see
    /// [`crate::estimate::LoadEstimator::observe`]).
    pub fn observe_load(&mut self, now_ns: u64) {
        self.estimator.observe(self.channels.data_tx.len(), now_ns);
    }

    /// Whether the data queue has room (a "valid" dispatch target).
    pub fn accepting(&self) -> bool {
        self.channels.data_tx.len() < self.channels.data_tx.capacity()
    }

    /// Instantaneous incoming-queue depth.
    pub fn queue_len(&self) -> usize {
        self.channels.data_tx.len()
    }

    /// Incoming-queue occupancy fraction (`len / capacity`).
    pub fn occupancy(&self) -> f64 {
        self.channels.data_tx.occupancy()
    }

    /// Stateless pressure classification of the incoming data queue. The
    /// monitor folds this through a per-VR `PressureTracker` for hysteresis.
    pub fn pressure(&self, wm: &Watermarks) -> PressureLevel {
        self.channels.data_tx.pressure(wm)
    }

    /// Whether forwarded frames are waiting in the outgoing data queue.
    pub fn has_pending_egress(&self) -> bool {
        !self.channels.data_rx.is_empty()
    }

    /// Instantaneous outgoing-queue depth (forwarded, not yet collected).
    pub fn egress_len(&self) -> usize {
        self.channels.data_rx.len()
    }

    /// Drain frames the VRI forwarded, appending to `out`. Internally pulls
    /// whole bursts so the consumer index is published once per burst, not
    /// once per frame.
    pub fn drain_egress(&mut self, out: &mut Vec<Frame>) {
        loop {
            let n = self.channels.data_rx.try_recv_batch(out, usize::MAX);
            self.returned += n as u64;
            if n == 0 {
                break;
            }
        }
    }

    /// Drain control events the VRI emitted.
    pub fn drain_control(&mut self, out: &mut Vec<ControlEvent>) {
        while let Some(ev) = self.channels.ctrl_rx.try_recv() {
            out.push(ev);
        }
    }

    /// Relay a control event *to* this VRI. Returns it on backpressure.
    pub fn relay_control(&mut self, ev: ControlEvent) -> Result<(), ControlEvent> {
        self.channels.ctrl_tx.try_send(ev).map_err(|Full(ev)| ev)
    }
}

/// The VRI's side of the wire (the paper's "LVRM adapter for VRI", §3.6).
pub struct LvrmAdapter {
    id: VriId,
    endpoint: VriEndpoint<Frame>,
    svc_est: ServiceRateEstimator,
    report_period_ns: u64,
    last_report_ns: u64,
    estimate_service_rate: bool,
    heartbeat_period_ns: u64,
    last_heartbeat_ns: u64,
    heartbeats: bool,
}

impl LvrmAdapter {
    /// Wrap the queue endpoint LVRM passed at spawn time ("the LVRM adapter
    /// is initialized with a shared memory identifier, which is passed from
    /// LVRM via the main arguments to VRIs").
    pub fn new(id: VriId, endpoint: VriEndpoint<Frame>) -> LvrmAdapter {
        LvrmAdapter {
            id,
            endpoint,
            // EWMA weight 4, idle cutoff 10 ms: gaps longer than that mean
            // the VRI was starved, not slow.
            svc_est: ServiceRateEstimator::new(4.0, 10_000_000),
            report_period_ns: 100_000_000, // report every 100 ms
            last_report_ns: 0,
            estimate_service_rate: true,
            heartbeat_period_ns: 100_000_000, // beat every 100 ms
            last_heartbeat_ns: 0,
            heartbeats: true,
        }
    }

    /// Disable service-rate estimation/reporting (fixed-threshold setups).
    pub fn without_service_estimation(mut self) -> LvrmAdapter {
        self.estimate_service_rate = false;
        self
    }

    /// Override the heartbeat period (default 100 ms).
    pub fn with_heartbeat_period(mut self, period_ns: u64) -> LvrmAdapter {
        self.heartbeat_period_ns = period_ns;
        self
    }

    /// Enable/disable heartbeat emission. Fault injection uses this to
    /// simulate control-queue loss: the VRI keeps servicing frames but its
    /// proofs of life stop reaching the supervisor.
    pub fn set_heartbeats(&mut self, on: bool) {
        self.heartbeats = on;
    }

    /// Unwrap the queue endpoint, e.g. so a host can hand a dead VRI's
    /// endpoint back to the supervisor for draining in-flight frames.
    pub fn into_endpoint(self) -> VriEndpoint<Frame> {
        self.endpoint
    }

    /// Emit a heartbeat upstream if the period elapsed. Called from the
    /// `from_lvrm` paths: a stalled VRI stops calling them, so its beats
    /// stop. Best-effort — a full control queue just skips the beat.
    fn maybe_heartbeat(&mut self, now_ns: u64) {
        if !self.heartbeats {
            return;
        }
        if now_ns.saturating_sub(self.last_heartbeat_ns) >= self.heartbeat_period_ns {
            let _ = self.endpoint.ctrl_tx.try_send(encode_heartbeat(self.id));
            self.last_heartbeat_ns = now_ns;
        }
    }

    pub fn id(&self) -> VriId {
        self.id
    }

    /// The paper's `fromLVRM()`: next unit of work, control before data.
    /// Data departures feed the service-rate estimator, and a fresh estimate
    /// is reported upstream at most every report period.
    pub fn from_lvrm(&mut self, now_ns: u64) -> Option<Work<Frame>> {
        self.maybe_heartbeat(now_ns);
        let work = self.endpoint.next_work();
        if self.estimate_service_rate {
            match &work {
                Some(Work::Data(_)) => self.note_departure(now_ns),
                // An empty poll means the VRI is idle: the gap to the next
                // departure would measure starvation, not service time.
                None => self.svc_est.note_idle(),
                Some(Work::Control(_)) => {}
            }
        }
        work
    }

    /// Batch `fromLVRM()`: drain every pending control event into `ctrl`
    /// (strict priority, §2.1), then pull up to `max` data frames into
    /// `data` with one consumer-index publication. Returns the number of
    /// data frames pulled.
    ///
    /// Unlike [`from_lvrm`], departures are NOT recorded here: frames in a
    /// burst are dequeued at one instant, so the dequeue gap measures
    /// nothing. Call [`note_departure`] as each frame finishes processing.
    ///
    /// [`from_lvrm`]: LvrmAdapter::from_lvrm
    /// [`note_departure`]: LvrmAdapter::note_departure
    pub fn from_lvrm_batch(
        &mut self,
        ctrl: &mut Vec<ControlEvent>,
        data: &mut Vec<Frame>,
        max: usize,
        now_ns: u64,
    ) -> usize {
        self.maybe_heartbeat(now_ns);
        while let Some(ev) = self.endpoint.ctrl_rx.try_recv() {
            ctrl.push(ev);
        }
        // Point-to-point frames first, then a stolen burst from the VR's
        // shared ring if one is wired (VLink fabric).
        let n = self.endpoint.steal_batch(data, max);
        if n == 0 && ctrl.is_empty() && self.estimate_service_rate {
            self.svc_est.note_idle();
        }
        n
    }

    /// Feed the service-rate estimator one frame departure at `now_ns`, and
    /// report the estimate upstream if the report period elapsed. Batch
    /// consumers call this per processed frame (see
    /// [`LvrmAdapter::from_lvrm_batch`]).
    pub fn note_departure(&mut self, now_ns: u64) {
        if !self.estimate_service_rate {
            return;
        }
        self.svc_est.record_departure(now_ns);
        if now_ns.saturating_sub(self.last_report_ns) >= self.report_period_ns {
            if let Some(rate) = self.svc_est.rate_per_sec() {
                let _ = self.endpoint.ctrl_tx.try_send(encode_service_rate(self.id, rate));
                self.last_report_ns = now_ns;
            }
        }
    }

    /// The paper's `toLVRM()`: hand a processed frame back for egress.
    /// Returns the frame if the outgoing queue is full.
    pub fn to_lvrm(&mut self, frame: Frame) -> Result<(), Frame> {
        self.endpoint.data_tx.try_send(frame).map_err(|Full(f)| f)
    }

    /// Batch `toLVRM()`: hand a burst of processed frames back with one
    /// producer-index publication, draining the accepted prefix. Returns how
    /// many were accepted; the rest stay in `frames` for the caller to
    /// retry (LVRM drains the outgoing queue continuously).
    pub fn to_lvrm_batch(&mut self, frames: &mut Vec<Frame>) -> usize {
        self.endpoint.data_tx.try_send_batch(frames)
    }

    /// Send a user control event toward another VRI (via LVRM).
    pub fn send_control(&mut self, ev: ControlEvent) -> Result<(), ControlEvent> {
        self.endpoint.ctrl_tx.try_send(ev).map_err(|Full(ev)| ev)
    }

    /// Current service-rate estimate (frames/second), if any.
    pub fn service_rate(&self) -> Option<f64> {
        self.svc_est.rate_per_sec()
    }

    /// Whether any data or control work is queued for this VRI (used by
    /// polling hosts to decide whether to schedule a service pass). Work
    /// sitting in the VR's shared ring counts: any of its VRIs may steal it.
    pub fn has_pending(&self) -> bool {
        !self.endpoint.data_rx.is_empty()
            || !self.endpoint.ctrl_rx.is_empty()
            || self.endpoint.shared_rx.as_ref().is_some_and(|ring| !ring.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::EwmaQueueLength;
    use lvrm_ipc::channels::vri_channels;
    use lvrm_ipc::QueueKind;
    use lvrm_net::FrameBuilder;
    use std::net::Ipv4Addr;

    fn frame() -> Frame {
        FrameBuilder::new(Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 2, 1)).udp(1, 2, &[])
    }

    fn pair(cap: usize) -> (VriAdapter, LvrmAdapter) {
        let (chans, endpoint) = vri_channels::<Frame>(QueueKind::Lamport, cap, 8);
        let adapter =
            VriAdapter::new(VriId(7), CoreId(1), chans, Box::new(EwmaQueueLength::new(1.0)));
        (adapter, LvrmAdapter::new(VriId(7), endpoint))
    }

    #[test]
    fn dispatch_roundtrip_through_vri() {
        let (mut lvrm, mut vri) = pair(8);
        lvrm.dispatch(frame(), 0).unwrap();
        let Some(Work::Data(f)) = vri.from_lvrm(10) else { panic!("expected data") };
        vri.to_lvrm(f).unwrap();
        let mut out = Vec::new();
        lvrm.drain_egress(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(lvrm.dispatched, 1);
        assert_eq!(lvrm.returned, 1);
    }

    #[test]
    fn backpressure_returns_frame_and_counts() {
        let (mut lvrm, _vri) = pair(1);
        lvrm.dispatch(frame(), 0).unwrap();
        assert!(!lvrm.accepting());
        let refused = lvrm.dispatch(frame(), 1);
        assert!(refused.is_err());
        assert_eq!(lvrm.dispatch_drops, 0, "a refusal is not a drop until the caller gives up");
        lvrm.note_discarded(1);
        assert_eq!(lvrm.dispatch_drops, 1);
    }

    #[test]
    fn load_estimate_rises_with_backlog() {
        let (mut lvrm, _vri) = pair(16);
        assert_eq!(lvrm.load(), 0.0);
        for i in 0..8 {
            lvrm.dispatch(frame(), i).unwrap();
        }
        assert!(lvrm.load() > 1.0, "load {}", lvrm.load());
        assert_eq!(lvrm.queue_len(), 8);
    }

    #[test]
    fn adapter_pressure_tracks_queue_occupancy() {
        let wm = Watermarks::new(0.25, 0.75);
        let (mut lvrm, mut vri) = pair(8);
        assert_eq!(lvrm.pressure(&wm), PressureLevel::Normal);
        for i in 0..8 {
            lvrm.dispatch(frame(), i).unwrap();
        }
        assert!((lvrm.occupancy() - 1.0).abs() < 1e-9);
        assert_eq!(lvrm.pressure(&wm), PressureLevel::Overloaded);
        for _ in 0..8 {
            let _ = vri.from_lvrm(100);
        }
        assert_eq!(lvrm.pressure(&wm), PressureLevel::Normal, "drained queue relaxes");
    }

    #[test]
    fn service_rate_reports_flow_upstream() {
        let (mut lvrm, mut vri) = pair(64);
        // Feed frames and have the VRI consume them with 20 us gaps => 50 Kfps.
        let mut now = 0u64;
        for _ in 0..32 {
            lvrm.dispatch(frame(), now).unwrap();
        }
        for _ in 0..32 {
            now += 20_000;
            let _ = vri.from_lvrm(now);
        }
        // Force a report past the period boundary.
        lvrm.dispatch(frame(), now).unwrap();
        now += 200_000_000;
        let _ = vri.from_lvrm(now);
        let mut evs = Vec::new();
        lvrm.drain_control(&mut evs);
        let report = evs.iter().find_map(decode_service_rate).expect("a report");
        assert_eq!(report.0, VriId(7));
        assert!((report.1 - 50_000.0).abs() / 50_000.0 < 0.1, "rate {}", report.1);
    }

    #[test]
    fn batch_dispatch_and_egress_roundtrip() {
        let (mut lvrm, mut vri) = pair(8);
        let mut burst: Vec<Frame> = (0..12).map(|_| frame()).collect();
        assert_eq!(lvrm.dispatch_batch(&mut burst, 0), 8, "queue capacity caps the burst");
        assert_eq!(burst.len(), 4, "rejected suffix stays with the caller");
        assert_eq!(lvrm.dispatched, 8);
        assert_eq!(lvrm.dispatch_drops, 0, "the caller owns the rejected suffix");
        lvrm.note_discarded(burst.len() as u64);
        assert_eq!(lvrm.dispatch_drops, 4);
        assert_eq!(lvrm.queue_len(), 8);
        burst.clear();

        let mut ctrl = Vec::new();
        let mut data = Vec::new();
        assert_eq!(vri.from_lvrm_batch(&mut ctrl, &mut data, 64, 0), 8);
        assert!(ctrl.is_empty());
        let mut processed: Vec<Frame> = std::mem::take(&mut data);
        assert_eq!(vri.to_lvrm_batch(&mut processed), 8);
        assert!(processed.is_empty());

        let mut out = Vec::new();
        lvrm.drain_egress(&mut out);
        assert_eq!(out.len(), 8);
        assert_eq!(lvrm.returned, 8);
    }

    #[test]
    fn batch_from_lvrm_delivers_control_first() {
        let (mut lvrm, mut vri) = pair(8);
        lvrm.dispatch(frame(), 0).unwrap();
        lvrm.relay_control(ControlEvent::new(9, 7, b"cfg".to_vec())).unwrap();
        let mut ctrl = Vec::new();
        let mut data = Vec::new();
        assert_eq!(vri.from_lvrm_batch(&mut ctrl, &mut data, 4, 0), 1);
        assert_eq!(ctrl.len(), 1, "control drained in the same pass");
        assert_eq!(data.len(), 1);
    }

    #[test]
    fn note_departure_reports_upstream() {
        let (mut lvrm, mut vri) = pair(64);
        let mut ctrl = Vec::new();
        let mut data = Vec::new();
        let mut now = 0u64;
        for _ in 0..32 {
            lvrm.dispatch(frame(), now).unwrap();
        }
        vri.from_lvrm_batch(&mut ctrl, &mut data, 64, now);
        for f in data.drain(..) {
            now += 20_000; // 50 Kfps service pace
            vri.note_departure(now);
            vri.to_lvrm(f).unwrap();
        }
        // Push past the report period so a report is emitted.
        lvrm.dispatch(frame(), now).unwrap();
        vri.from_lvrm_batch(&mut ctrl, &mut data, 64, now);
        now += 200_000_000;
        vri.note_departure(now);
        let mut evs = Vec::new();
        lvrm.drain_egress(&mut Vec::new());
        lvrm.drain_control(&mut evs);
        let (id, rate) = evs.iter().find_map(decode_service_rate).expect("a report");
        assert_eq!(id, VriId(7));
        assert!(rate > 0.0);
    }

    #[test]
    fn service_rate_codec_rejects_foreign_events() {
        let ev = ControlEvent::new(1, 2, b"hello".to_vec());
        assert!(decode_service_rate(&ev).is_none());
        let ev = encode_service_rate(VriId(3), 1234.5);
        let (id, rate) = decode_service_rate(&ev).unwrap();
        assert_eq!(id, VriId(3));
        assert!((rate - 1234.5).abs() < 1e-9);
    }

    #[test]
    fn control_events_pass_through_adapters() {
        let (mut lvrm, mut vri) = pair(8);
        // VRI -> LVRM
        vri.send_control(ControlEvent::new(7, 9, b"sync".to_vec())).unwrap();
        let mut evs = Vec::new();
        lvrm.drain_control(&mut evs);
        assert_eq!(evs.len(), 1);
        // LVRM -> VRI (priority over data).
        lvrm.dispatch(frame(), 0).unwrap();
        lvrm.relay_control(ControlEvent::new(9, 7, b"ack".to_vec())).unwrap();
        assert!(matches!(vri.from_lvrm(1), Some(Work::Control(_))));
        assert!(matches!(vri.from_lvrm(2), Some(Work::Data(_))));
    }
}
