//! The LVRM monitor hierarchy (paper Fig. 3.1).
//!
//! [`Lvrm`] is the top of the hierarchy: it owns the VR monitor (core
//! allocation across VRs, §3.2), one VRI-monitor state per VR (spawn/kill of
//! instances plus load balancing, §3.3), and the per-VRI adapters (§3.4).
//! The workflow per §2.1:
//!
//! 1. the host polls the socket adapter and feeds frames to [`Lvrm::ingress`];
//! 2. LVRM classifies the frame to a VR by its **source IP subnet**,
//!    balances it to one of the VR's VRIs and pushes it into that VRI's
//!    incoming data queue;
//! 3. the VRI processes the frame and pushes it into its outgoing queue;
//! 4. the host collects [`Lvrm::poll_egress`] and transmits.
//!
//! Core reallocation runs lazily: every ingress checks whether the 1-second
//! period has elapsed ("called upon receipt of a packet after 1 s or more
//! from previous core allocation/deallocation", Fig. 3.2).

use std::net::Ipv4Addr;
use std::path::Path;

use lvrm_ipc::channels::{shared_ring, vri_channels_with_ring, ControlEvent};
use lvrm_ipc::vlink::{VLinkReceiver, VLinkSender};
use lvrm_ipc::PressureLevel;
use lvrm_metrics::{
    Counter, LatencyHistogram, MetricsRegistry, MetricsSnapshot, RateEstimator, SharedHistogram,
};
use lvrm_net::{FlowKey, Frame};
use lvrm_router::{RouteTable, VirtualRouter};

use crate::alloc::{AllocDecision, CoreAllocator, VrLoadView};
use crate::balance::{BalanceCtx, LoadBalancer};
use crate::checkpoint::{Checkpoint, CheckpointError, FlowRecord, VrCheckpoint};
use crate::clock::Clock;
use crate::config::{DispatchMode, LvrmConfig};
use crate::estimate::PressureTracker;
use crate::ha::{HaNode, PeerLink, Role};
use crate::host::{VriHost, VriSpec};
use crate::shard::{FleetNode, ShardMap};
use crate::topology::CoreMap;
use crate::vri::{decode_heartbeat, decode_service_rate, VriAdapter, VriHealth};
use crate::{VrId, VriId};

/// A grow/shrink event, kept for the reaction-time analysis (Fig. 4.11).
#[derive(Clone, Copy, Debug)]
pub struct ReallocEvent {
    /// When the decision fired (monitor clock).
    pub ts_ns: u64,
    pub vr: VrId,
    pub decision: AllocDecision,
    /// Wall time from decision to spawn/kill completion — real in the
    /// threaded runtime, ~0 under simulated clocks (the testbed models it).
    pub latency_ns: u64,
    /// VRIs of the VR after the event.
    pub vris_after: usize,
}

/// What the supervisor did to one VRI (kept for the recovery-time analysis,
/// the fault-recovery mirror of Fig. 4.11's reaction-time log).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SupervisionAction {
    /// Declared dead: `reclaimed` in-flight frames were drained for
    /// re-dispatch, `lost` could not be recovered.
    Died { reclaimed: u64, lost: u64 },
    /// A replacement instance was spawned (the event's `vri` is the new id).
    Respawned,
    /// The VRI's VR crossed the crash-loop threshold and was quarantined.
    Quarantined,
}

/// One supervisor decision, timestamped on the monitor clock.
#[derive(Clone, Copy, Debug)]
pub struct SupervisionEvent {
    pub ts_ns: u64,
    pub vr: VrId,
    pub vri: VriId,
    pub action: SupervisionAction,
}

/// Aggregate counters across the monitor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LvrmStats {
    /// Frames accepted by `ingress`.
    pub frames_in: u64,
    /// Frames collected from VRIs by `poll_egress`.
    pub frames_out: u64,
    /// Frames whose source matched no VR subnet.
    pub unclassified: u64,
    /// Frames discarded because the chosen VRI's queue was full. This equals
    /// the sum of live adapters' `dispatch_drops` plus
    /// [`retired_dispatch_drops`] exactly — each discard is recorded once in
    /// the refusing adapter (via `note_discarded`) and once here, never
    /// counted for frames that were refused but then retried elsewhere.
    ///
    /// [`retired_dispatch_drops`]: LvrmStats::retired_dispatch_drops
    pub dispatch_drops: u64,
    /// Frames dropped because the VR had no usable VRI.
    pub no_vri_drops: u64,
    /// Frames abandoned in a killed VRI's queues.
    pub shrink_lost: u64,
    /// Control events relayed between VRIs.
    pub control_relayed: u64,
    /// Control events dropped (unknown destination or full queue).
    pub control_drops: u64,
    /// Frames reclaimed from dead VRIs' queues and re-balanced to survivors.
    pub redispatched: u64,
    /// Frames lost in a dead VRI's queues because the host could not hand
    /// the endpoint back for draining.
    pub crash_lost: u64,
    /// Frames dropped because their VR was quarantined with no live VRI.
    pub quarantined_drops: u64,
    /// VRIs the supervisor declared dead.
    pub vri_deaths: u64,
    /// VRIs the supervisor respawned.
    pub respawns: u64,
    /// `dispatch_drops` carried by adapters since retired (shrunk or
    /// reaped), so the [`dispatch_drops`] identity holds across kills.
    ///
    /// [`dispatch_drops`]: LvrmStats::dispatch_drops
    pub retired_dispatch_drops: u64,
    /// Frames shed at ingress-classification time: over an overloaded VR's
    /// weighted admission quota (overload shedding on), or arriving after
    /// shutdown quiesced ingress. Part of the conservation identity.
    pub shed_early: u64,
    /// Frames drained back out of departed VRIs' incoming queues (crash reap
    /// or shrink retirement) before re-homing.
    pub reclaimed: u64,
    /// Frames unrecoverable from departed VRIs' incoming queues: all of
    /// `crash_lost` plus the queued component of `shrink_lost` (re-home
    /// refusals are excluded). With [`reclaimed`] this closes the per-VRI
    /// dispatch identity at every instant:
    /// `Σ dispatched == Σ returned + Σ queue_len + Σ egress_len + reclaimed
    /// + queue_lost` (sums over live, draining, and retired VRIs).
    ///
    /// [`reclaimed`]: LvrmStats::reclaimed
    pub queue_lost: u64,
    /// `dispatched` folded from since-retired adapters, so live sums plus
    /// this equal the all-time per-VRI totals.
    pub retired_dispatched: u64,
    /// `returned` folded from since-retired adapters.
    pub retired_returned: u64,
    /// State-update records accepted for replica fan-out: when the sub-tick
    /// decodes an `LVSU` batch of `k` records from a VRI with `m` live
    /// sibling replicas, this grows by `k × m` — one expected fold per
    /// record per sibling. The fifth conservation identity holds by
    /// construction at every snapshot:
    /// `updates_emitted == updates_folded + updates_lost`.
    pub updates_emitted: u64,
    /// State-update records relayed onto a sibling replica's control queue
    /// (the sibling folds them into its local books).
    pub updates_folded: u64,
    /// State-update records a sibling's full control queue refused — that
    /// replica will reconverge from later updates, but these records are
    /// gone and the identity charges them here.
    pub updates_lost: u64,
}

/// (name, help) pairs for the per-VRI metric families, shared between the
/// live refresh and the retirement freeze so retired series land in the same
/// families with the same help text.
const M_VRI_DISPATCHED: (&str, &str) =
    ("lvrm_vri_dispatched_total", "Frames accepted into the VRI's incoming data queue.");
const M_VRI_RETURNED: (&str, &str) =
    ("lvrm_vri_returned_total", "Frames collected from the VRI's outgoing data queue.");
const M_VRI_DROPS: (&str, &str) =
    ("lvrm_vri_dispatch_drops_total", "Frames discarded after this VRI refused them.");
const M_VRI_QUEUE_LEN: (&str, &str) =
    ("lvrm_vri_queue_len", "Instantaneous incoming data-queue depth.");
const M_VRI_QUEUE_WM: (&str, &str) =
    ("lvrm_vri_queue_watermark", "Deepest incoming-queue depth observed at dispatch time.");
const M_VRI_EGRESS_LEN: (&str, &str) =
    ("lvrm_vri_egress_len", "Forwarded frames not yet collected from the outgoing queue.");
const M_VRI_HEALTH: (&str, &str) =
    ("lvrm_vri_health", "Supervisor health classification (0 live, 1 suspect, 2 dead).");
const M_VRI_DRAINING: (&str, &str) =
    ("lvrm_vri_draining", "1 while the VRI is in the drain state, else 0.");

/// The monitor's aggregate counters, held as shared registry handles so
/// every increment is immediately visible to concurrent scrapes. The field
/// set mirrors [`LvrmStats`]; [`StatCounters::read`] materializes one.
struct StatCounters {
    frames_in: Counter,
    frames_out: Counter,
    unclassified: Counter,
    dispatch_drops: Counter,
    no_vri_drops: Counter,
    shrink_lost: Counter,
    control_relayed: Counter,
    control_drops: Counter,
    redispatched: Counter,
    crash_lost: Counter,
    quarantined_drops: Counter,
    vri_deaths: Counter,
    respawns: Counter,
    retired_dispatch_drops: Counter,
    shed_early: Counter,
    reclaimed: Counter,
    queue_lost: Counter,
    retired_dispatched: Counter,
    retired_returned: Counter,
    updates_emitted: Counter,
    updates_folded: Counter,
    updates_lost: Counter,
    /// Robustness counters outside [`LvrmStats`] (no conservation identity
    /// involves them), incremented by the checkpoint paths.
    checkpoint_writes: Counter,
    checkpoint_rejected: Counter,
}

impl StatCounters {
    fn register(reg: &MetricsRegistry) -> StatCounters {
        let c = |name: &str, help: &str| reg.counter(name, help, &[]);
        StatCounters {
            frames_in: c("lvrm_frames_in_total", "Frames accepted by ingress."),
            frames_out: c(
                "lvrm_frames_out_total",
                "Frames collected by poll_egress (including rescued egress).",
            ),
            unclassified: c("lvrm_unclassified_total", "Frames whose source matched no VR subnet."),
            dispatch_drops: c(
                "lvrm_dispatch_drops_total",
                "Frames discarded because the chosen VRI's queue was full.",
            ),
            no_vri_drops: c(
                "lvrm_no_vri_drops_total",
                "Frames dropped because the VR had no usable VRI.",
            ),
            shrink_lost: c("lvrm_shrink_lost_total", "Frames lost to voluntary VRI retirement."),
            control_relayed: c(
                "lvrm_control_relayed_total",
                "Control events relayed between VRIs.",
            ),
            control_drops: c(
                "lvrm_control_drops_total",
                "Control events dropped (unknown destination or full queue).",
            ),
            redispatched: c(
                "lvrm_redispatched_total",
                "Reclaimed frames re-balanced to surviving VRIs.",
            ),
            crash_lost: c("lvrm_crash_lost_total", "Frames lost in dead VRIs' queues."),
            quarantined_drops: c(
                "lvrm_quarantined_drops_total",
                "Frames dropped because their VR was quarantined with no live VRI.",
            ),
            vri_deaths: c("lvrm_vri_deaths_total", "VRIs declared dead by the supervisor."),
            respawns: c("lvrm_respawns_total", "VRIs respawned by the supervisor."),
            retired_dispatch_drops: c(
                "lvrm_retired_dispatch_drops_total",
                "Dispatch drops carried by adapters since retired.",
            ),
            shed_early: c(
                "lvrm_shed_early_total",
                "Frames shed at ingress classification (overload quota or shutdown).",
            ),
            reclaimed: c(
                "lvrm_reclaimed_total",
                "Frames drained back from departed VRIs' incoming queues.",
            ),
            queue_lost: c(
                "lvrm_queue_lost_total",
                "Frames unrecoverable from departed VRIs' incoming queues.",
            ),
            retired_dispatched: c(
                "lvrm_retired_dispatched_total",
                "Dispatched counters folded from retired adapters.",
            ),
            retired_returned: c(
                "lvrm_retired_returned_total",
                "Returned counters folded from retired adapters.",
            ),
            updates_emitted: c(
                "lvrm_repl_updates_emitted_total",
                "State-update records accepted for replica fan-out (records × siblings).",
            ),
            updates_folded: c(
                "lvrm_repl_updates_folded_total",
                "State-update records relayed onto sibling replicas' control queues.",
            ),
            updates_lost: c(
                "lvrm_repl_updates_lost_total",
                "State-update records refused by a sibling's full control queue.",
            ),
            checkpoint_writes: c(
                "lvrm_checkpoint_writes_total",
                "Control-plane checkpoints written successfully.",
            ),
            checkpoint_rejected: c(
                "lvrm_checkpoint_rejected_total",
                "Checkpoints rejected at restore time (corrupt, truncated, or unreadable).",
            ),
        }
    }

    /// Pre-register the adapter-supervision families (at zero) so they exist
    /// from the first scrape whether or not a
    /// [`crate::adapter::SupervisedAdapter`] is wired in. Same names and
    /// help as `SupervisedAdapter::publish` — registry dedup by name makes
    /// these the very counters it stores into.
    fn register_adapter_families(reg: &MetricsRegistry) {
        reg.counter(
            "lvrm_adapter_reopens_total",
            "Successful reopens of a dead socket adapter.",
            &[],
        );
        reg.counter("lvrm_adapter_failovers_total", "Failovers to a standby socket adapter.", &[]);
        reg.counter(
            "lvrm_egress_retries_total",
            "Refused egress frames later delivered from the retry queue.",
            &[],
        );
    }

    fn read(&self) -> LvrmStats {
        LvrmStats {
            frames_in: self.frames_in.get(),
            frames_out: self.frames_out.get(),
            unclassified: self.unclassified.get(),
            dispatch_drops: self.dispatch_drops.get(),
            no_vri_drops: self.no_vri_drops.get(),
            shrink_lost: self.shrink_lost.get(),
            control_relayed: self.control_relayed.get(),
            control_drops: self.control_drops.get(),
            redispatched: self.redispatched.get(),
            crash_lost: self.crash_lost.get(),
            quarantined_drops: self.quarantined_drops.get(),
            vri_deaths: self.vri_deaths.get(),
            respawns: self.respawns.get(),
            retired_dispatch_drops: self.retired_dispatch_drops.get(),
            shed_early: self.shed_early.get(),
            reclaimed: self.reclaimed.get(),
            queue_lost: self.queue_lost.get(),
            retired_dispatched: self.retired_dispatched.get(),
            retired_returned: self.retired_returned.get(),
            updates_emitted: self.updates_emitted.get(),
            updates_folded: self.updates_folded.get(),
            updates_lost: self.updates_lost.get(),
        }
    }
}

/// Freeze a departing VRI's per-instance series at their final values. The
/// series stay in the registry, so family-wide sums keep satisfying the
/// dispatch identity after the instance is gone.
fn publish_vri_final(reg: &MetricsRegistry, vr_name: &str, v: &VriAdapter) {
    let vri = v.id.to_string();
    let labels = [("vr", vr_name), ("vri", vri.as_str())];
    reg.counter(M_VRI_DISPATCHED.0, M_VRI_DISPATCHED.1, &labels).store(v.dispatched);
    reg.counter(M_VRI_RETURNED.0, M_VRI_RETURNED.1, &labels).store(v.returned);
    reg.counter(M_VRI_DROPS.0, M_VRI_DROPS.1, &labels).store(v.dispatch_drops);
    reg.gauge(M_VRI_QUEUE_LEN.0, M_VRI_QUEUE_LEN.1, &labels).set(0.0);
    reg.gauge(M_VRI_QUEUE_WM.0, M_VRI_QUEUE_WM.1, &labels).set(v.queue_watermark as f64);
    reg.gauge(M_VRI_EGRESS_LEN.0, M_VRI_EGRESS_LEN.1, &labels).set(0.0);
    reg.gauge(M_VRI_HEALTH.0, M_VRI_HEALTH.1, &labels).set(v.health.as_gauge());
    reg.gauge(M_VRI_DRAINING.0, M_VRI_DRAINING.1, &labels).set(0.0);
}

/// Per-VR state: the VRI monitor plus the VR monitor's estimators.
struct VrState {
    id: VrId,
    name: String,
    /// Template the VRI monitor clones per instance (`spawn_instance`).
    router_template: Box<dyn VirtualRouter>,
    /// Live instances, in allocation order.
    vris: Vec<VriAdapter>,
    balancer: Box<dyn LoadBalancer>,
    /// How ingress spreads this VR's frames: `Pinned` keeps per-flow
    /// affinity (possibly flow-based); `Replicated` spreads every frame
    /// across all VRIs regardless of flow key — the replicas reconverge
    /// through the `LVSU` state-update fan-out (DESIGN.md §14).
    dispatch: DispatchMode,
    allocator: Box<dyn CoreAllocator>,
    arrival: RateEstimator,
    /// Frames this VR received / forwarded (for fairness accounting).
    pub frames_in: u64,
    pub frames_out: u64,
    /// Consecutive supervisor-observed crashes (resets after a healthy
    /// stretch of `crash_streak_reset_ns`).
    crash_streak: u32,
    /// When the last crash was observed.
    last_crash_ns: u64,
    /// No respawn before this instant (bounded exponential backoff).
    backoff_until_ns: u64,
    /// Instances owed to this VR by the supervisor (crashed, not respawned).
    respawn_deficit: usize,
    /// Crash-looped past the quarantine threshold: no more respawns, and
    /// its traffic is dropped as `quarantined_drops` once no VRI survives.
    quarantined: bool,
    /// Admission weight under overload shedding: the VR's per-burst quota is
    /// `batch_size × weight / Σ weights` while `Overloaded`.
    weight: f64,
    /// Watermark pressure state, refreshed once per dispatched burst from
    /// the worst data-queue occupancy across the VR's VRIs.
    pressure: PressureTracker,
    /// Frames admitted past ingress classification (balanced + dispatched).
    admitted: u64,
    /// Frames shed at ingress classification (this VR over quota).
    shed: u64,
    /// Deficit-round-robin credit carried across bursts while overloaded,
    /// in frames; fractional so small quanta still admit over time.
    shed_credit: f64,
    /// Shrink victims still servicing their parked frames: dispatch stopped,
    /// retirement pending on empty queue, endpoint loss, or deadline.
    draining: Vec<DrainingVri>,
    /// Dispatch→departure latency histogram, recorded in `poll_egress` when
    /// `config.latency_histograms` is on and frames carry an ingress stamp.
    /// Plain (non-atomic) because the monitor is its only writer; published
    /// to `latency_pub` at refresh time.
    latency: LatencyHistogram,
    /// Registry series `lvrm_vr_latency_ns{vr=...}` — mirrored from
    /// `latency` by `refresh_registry`, never written on the hot path
    /// (`SharedHistogram::record` is five locked RMWs per frame).
    latency_pub: SharedHistogram,
    /// Shared per-VR ingress ring (VLink work-stealing fabric). `Some` only
    /// under `config.vlink_fabric()`; every VRI endpoint of this VR holds a
    /// consumer clone and steals bursts from it instead of being balanced to.
    ring: Option<VrRing>,
    /// Fleet ownership (DESIGN.md §15): a sharded monitor declares every VR
    /// in the universe but serves only the ones the shard map assigns to it.
    /// Unowned VRs shed their classified frames at ingress (the frames still
    /// book as `frames_in + shed`, so the identities are unconditional).
    /// Always true outside a fleet.
    owned: bool,
    /// The classify subnets this VR was declared with — the shard key the
    /// fleet partitions by, kept for map construction at `attach_fleet`.
    subnets: Vec<(Ipv4Addr, u8)>,
}

/// The monitor's handles onto one VR's shared ingress ring, plus the
/// counters that keep the ring inside the conservation identities. The ring
/// is published to the registry as a synthetic `vri="ring"` series in the
/// per-VRI dispatch families, so identity (C)
/// (`Σ dispatched == Σ returned + queued + reclaimed + lost`) and identity
/// (D) (aggregate drops == per-series drop sum) hold unchanged.
struct VrRing {
    /// Producer: `dispatch_bucket` bulk-publishes a VR's burst here.
    tx: VLinkSender<Frame>,
    /// Monitor-side consumer clone: occupancy sampling and teardown drains
    /// (the VRIs hold their own clones inside their endpoints).
    rx: VLinkReceiver<Frame>,
    /// Frames published into the ring (the ring series' `dispatched`).
    enqueued: u64,
    /// Frames a full ring refused (the ring series' `dispatch_drops`).
    drops: u64,
}

impl VrRing {
    fn occupancy(&self) -> f64 {
        self.rx.len() as f64 / self.rx.capacity().max(1) as f64
    }
}

/// One VRI in the drain state: out of the balance set, awaiting retirement.
struct DrainingVri {
    adapter: VriAdapter,
    /// Forcible-retirement instant on the monitor clock.
    deadline_ns: u64,
}

/// Which counter is charged for frames that cannot be rehomed after a VRI
/// departs (see [`Lvrm::rehome`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RehomeLoss {
    /// Involuntary departure: survivors refusing a frame is an ordinary
    /// dispatch drop; no survivor at all follows the usual drop taxonomy.
    Crash,
    /// Voluntary retirement: un-rehomeable frames are `shrink_lost` only.
    Shrink,
}

impl VrState {
    /// Mean of the live VRIs' reported service rates, if any reported.
    fn service_rate_per_vri(&self) -> Option<f64> {
        let rates: Vec<f64> = self.vris.iter().filter_map(|v| v.reported_service_rate).collect();
        if rates.is_empty() {
            None
        } else {
            Some(rates.iter().sum::<f64>() / rates.len() as f64)
        }
    }
}

/// Point-in-time view of one VRI, for observability.
#[derive(Clone, Debug)]
pub struct VriSnapshot {
    pub id: VriId,
    pub core: crate::topology::CoreId,
    pub load_estimate: f64,
    pub queue_len: usize,
    pub dispatched: u64,
    pub returned: u64,
    pub dispatch_drops: u64,
    pub reported_service_rate: Option<f64>,
    pub health: VriHealth,
    /// In the drain state: no longer balanced to, still counted here so the
    /// dispatch-drop identity holds at every instant.
    pub draining: bool,
}

/// Point-in-time view of one VR.
#[derive(Clone, Debug)]
pub struct VrSnapshot {
    pub id: VrId,
    pub name: String,
    pub arrival_rate_fps: f64,
    pub frames_in: u64,
    pub frames_out: u64,
    pub quarantined: bool,
    /// Watermark pressure state as of the last burst refresh.
    pub pressure: PressureLevel,
    /// Frames admitted past ingress classification.
    pub admitted: u64,
    /// Frames shed at ingress classification (over quota under overload).
    pub shed: u64,
    /// Flow-table occupancy/churn (flow-based balancers only).
    pub flow: Option<crate::flowtable::FlowTableStats>,
    /// Live VRIs first, then any draining ones (flagged `draining`).
    pub vris: Vec<VriSnapshot>,
}

impl std::fmt::Display for VrSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{} vri] arrival {:.0} fps, in/out {}/{}, pressure {}",
            self.name,
            self.vris.len(),
            self.arrival_rate_fps,
            self.frames_in,
            self.frames_out,
            self.pressure.name()
        )?;
        if self.shed > 0 {
            write!(f, ", admitted/shed {}/{}", self.admitted, self.shed)?;
        }
        for v in &self.vris {
            write!(
                f,
                "\n  {} on {}: load {:.2}, q {}, {}/{} in/out, {} drops{}",
                v.id,
                v.core,
                v.load_estimate,
                v.queue_len,
                v.dispatched,
                v.returned,
                v.dispatch_drops,
                if v.draining { " (draining)" } else { "" }
            )?;
        }
        Ok(())
    }
}

/// The load-aware virtual router monitor.
pub struct Lvrm<C: Clock> {
    config: LvrmConfig,
    clock: C,
    cores: CoreMap,
    /// Maps source subnets to VR indices (route "iface" = VR index).
    classifier: RouteTable,
    vrs: Vec<VrState>,
    next_vri: u32,
    last_alloc_ns: Option<u64>,
    /// Reallocation history for the reaction-time experiment.
    pub realloc_log: Vec<ReallocEvent>,
    /// Supervisor history for the recovery-time experiment.
    pub supervision_log: Vec<SupervisionEvent>,
    /// Metrics registry every counter below publishes into. Shared: clones
    /// of the handle see the same series (scrape endpoints, testbeds).
    registry: MetricsRegistry,
    /// Aggregate counters, as live registry handles ([`Lvrm::stats`] reads
    /// them into an [`LvrmStats`]).
    stats: StatCounters,
    /// One-line structured summary built by each reallocation pass, consumed
    /// via [`Lvrm::take_tick_line`].
    tick_line: Option<String>,
    /// Egress frames rescued from dead or shrunk VRIs, delivered by the next
    /// `poll_egress` (already counted in `frames_out` at rescue time).
    rescued_egress: Vec<Frame>,
    /// VRIs in the drain state across all VRs (O(1) fast-path check).
    draining_count: usize,
    /// Data bursts processed since the last control-relay pass (starvation
    /// guard: see `config.ctrl_starvation_bursts`).
    bursts_since_ctrl: u32,
    /// Graceful shutdown begun: ingress quiesced, every VRI draining.
    shutting_down: bool,
    /// Restart epoch: 0 on a cold start, `checkpoint.epoch + 1` after a
    /// restore, so counters resumed across a restart are attributable.
    epoch: u32,
    /// When the last periodic checkpoint was written (monitor clock).
    last_checkpoint_ns: Option<u64>,
    /// Active/standby HA node (election + replication), when attached.
    /// Boxed: it carries a `dyn PeerLink` plus stream state, and most
    /// monitors run solo.
    ha: Option<Box<HaNode>>,
    /// Fleet directory node (N-way sharding, DESIGN.md §15), when attached.
    /// Ticked from the same lazy sub-tick as HA, right after it, so a
    /// promotion is visible to the directory within the same call.
    fleet: Option<Box<FleetNode>>,
    /// Records relayed by the most recent state-update fan-out — the
    /// sibling-book staleness bound in updates (`lvrm_repl_lag_updates`).
    repl_last_fanout_records: u64,
    /// When that fan-out happened (monitor clock), 0 before the first one.
    repl_last_fanout_ns: u64,
    // Scratch buffers reused across calls (no hot-path allocation).
    scratch_loads: Vec<f64>,
    scratch_valid: Vec<bool>,
    scratch_vris: Vec<VriId>,
    scratch_ctrl: Vec<ControlEvent>,
    /// Single-frame burst buffer backing [`Lvrm::ingress`].
    scratch_single: Vec<Frame>,
    /// Per-VR frame buckets for [`Lvrm::ingress_batch`], indexed by VR.
    scratch_vr_buckets: Vec<Vec<Frame>>,
    /// Per-VRI-slot frame buckets within one VR's burst.
    scratch_slot_buckets: Vec<Vec<Frame>>,
    /// A VR's current core set, for NUMA-aware placement in `grow_vr`.
    scratch_cores: Vec<crate::topology::CoreId>,
}

impl<C: Clock> Lvrm<C> {
    pub fn new(config: LvrmConfig, cores: CoreMap, clock: C) -> Lvrm<C> {
        let registry = MetricsRegistry::new();
        let stats = StatCounters::register(&registry);
        StatCounters::register_adapter_families(&registry);
        registry
            .gauge(
                "lvrm_info",
                "Monitor configuration info (value is always 1).",
                &[
                    ("balancer", config.build_balancer().name()),
                    ("allocator", config.allocator.name()),
                    ("queue", config.queue_kind.name()),
                ],
            )
            .set(1.0);
        Lvrm {
            config,
            clock,
            cores,
            classifier: RouteTable::new(),
            vrs: Vec::new(),
            next_vri: 0,
            last_alloc_ns: None,
            realloc_log: Vec::new(),
            supervision_log: Vec::new(),
            registry,
            stats,
            tick_line: None,
            rescued_egress: Vec::new(),
            draining_count: 0,
            bursts_since_ctrl: 0,
            shutting_down: false,
            epoch: 0,
            last_checkpoint_ns: None,
            ha: None,
            fleet: None,
            repl_last_fanout_records: 0,
            repl_last_fanout_ns: 0,
            scratch_loads: Vec::new(),
            scratch_valid: Vec::new(),
            scratch_vris: Vec::new(),
            scratch_ctrl: Vec::new(),
            scratch_single: Vec::new(),
            scratch_vr_buckets: Vec::new(),
            scratch_slot_buckets: Vec::new(),
            scratch_cores: Vec::new(),
        }
    }

    pub fn config(&self) -> &LvrmConfig {
        &self.config
    }

    pub fn cores(&self) -> &CoreMap {
        &self.cores
    }

    pub fn num_vrs(&self) -> usize {
        self.vrs.len()
    }

    /// VRIs currently live for `vr`.
    pub fn vri_count(&self, vr: VrId) -> usize {
        self.vrs.get(vr.0 as usize).map_or(0, |s| s.vris.len())
    }

    /// Per-VR (frames_in, frames_out).
    pub fn vr_frame_counts(&self, vr: VrId) -> (u64, u64) {
        self.vrs.get(vr.0 as usize).map_or((0, 0), |s| (s.frames_in, s.frames_out))
    }

    /// Smoothed arrival rate of `vr`, frames/second.
    pub fn vr_arrival_rate(&self, vr: VrId) -> f64 {
        self.vrs.get(vr.0 as usize).map_or(0.0, |s| s.arrival.rate_per_sec())
    }

    /// Per-VRI dispatch counts of `vr` (for balance analysis).
    pub fn vri_dispatch_counts(&self, vr: VrId) -> Vec<u64> {
        self.vrs
            .get(vr.0 as usize)
            .map_or_else(Vec::new, |s| s.vris.iter().map(|v| v.dispatched).collect())
    }

    /// Register a VR with its source subnets and router implementation, and
    /// spawn its first VRI ("LVRM initially allocates one CPU core for the
    /// VR", §4.3). Allocator defaults to the config's; per-VR overrides are
    /// possible via [`Lvrm::add_vr_with_allocator`].
    pub fn add_vr(
        &mut self,
        name: impl Into<String>,
        subnets: &[(Ipv4Addr, u8)],
        router: Box<dyn VirtualRouter>,
        host: &mut dyn VriHost,
    ) -> VrId {
        let allocator = self.config.build_allocator();
        self.add_vr_with_allocator(name, subnets, router, allocator, host)
    }

    /// As [`Lvrm::add_vr`], with an explicit allocation policy for this VR.
    pub fn add_vr_with_allocator(
        &mut self,
        name: impl Into<String>,
        subnets: &[(Ipv4Addr, u8)],
        router: Box<dyn VirtualRouter>,
        allocator: Box<dyn CoreAllocator>,
        host: &mut dyn VriHost,
    ) -> VrId {
        let id = VrId(self.vrs.len() as u32);
        for (prefix, len) in subnets {
            self.classifier.insert(lvrm_router::Route {
                prefix: *prefix,
                len: *len,
                iface: id.0 as u16,
                next_hop: None,
            });
        }
        let name: String = name.into();
        let latency_pub = self.registry.summary(
            "lvrm_vr_latency_ns",
            "Dispatch-to-departure latency in nanoseconds (quantiles approximate).",
            &[("vr", name.as_str())],
        );
        self.registry.push_event(self.clock.now_ns(), format!("vr-added vr={name} id={id}"));
        self.vrs.push(VrState {
            id,
            name,
            router_template: router,
            vris: Vec::new(),
            balancer: self.config.build_balancer(),
            dispatch: self.config.dispatch,
            allocator,
            arrival: RateEstimator::new(self.config.arrival_window_ns, self.config.arrival_weight),
            frames_in: 0,
            frames_out: 0,
            crash_streak: 0,
            last_crash_ns: 0,
            backoff_until_ns: 0,
            respawn_deficit: 0,
            quarantined: false,
            weight: self.config.shed_weight,
            pressure: PressureTracker::default(),
            admitted: 0,
            shed: 0,
            shed_credit: 0.0,
            draining: Vec::new(),
            latency: LatencyHistogram::new(),
            latency_pub,
            ring: self.config.vlink_fabric().then(|| {
                let (tx, rx) = shared_ring(self.config.effective_shared_ring_capacity());
                VrRing { tx, rx, enqueued: 0, drops: 0 }
            }),
            owned: true,
            subnets: subnets.to_vec(),
        });
        let now = self.clock.now_ns();
        self.grow_vr(id.0 as usize, now, host);
        // "The VR monitor pre-assigns a fixed set of cores to a VR when the
        // VR first starts" (§3.2): satisfy a fixed policy's full request
        // immediately instead of waiting out allocation periods. Dynamic
        // policies see zero load here and hold at one VRI.
        loop {
            let idx = id.0 as usize;
            let view = VrLoadView {
                arrival_rate: self.vrs[idx].arrival.rate_per_sec(),
                service_rate_per_vri: None,
                current_vris: self.vrs[idx].vris.len(),
                pressure: PressureLevel::Normal,
            };
            if self.vrs[idx].allocator.decide(&view) != AllocDecision::Grow {
                break;
            }
            if !self.grow_vr(idx, now, host) {
                break;
            }
        }
        id
    }

    /// Human-readable name of `vr`.
    pub fn vr_name(&self, vr: VrId) -> &str {
        &self.vrs[vr.0 as usize].name
    }

    /// Set `vr`'s admission weight for overload shedding (defaults to
    /// `config.shed_weight`). While overloaded, the VR's per-burst admission
    /// quota is `batch_size × weight / Σ weights`.
    pub fn set_vr_weight(&mut self, vr: VrId, weight: f64) {
        assert!(weight.is_finite() && weight > 0.0, "shed weight must be positive and finite");
        self.vrs[vr.0 as usize].weight = weight;
    }

    /// Switch `vr` between flow-pinned and replicated dispatch (DESIGN.md
    /// §14). Rebuilds the VR's balancer for the new mode: `Replicated`
    /// never wraps in flow pinning (any VRI takes any frame), `Pinned`
    /// returns to the configured balancer, flow-based wrap included.
    /// Switching discards the old balancer's flow table — replicated mode
    /// keeps no affinity to lose, and a switch back re-pins flows on their
    /// next frame.
    pub fn set_vr_dispatch(&mut self, vr: VrId, mode: DispatchMode) {
        let state = &mut self.vrs[vr.0 as usize];
        if state.dispatch == mode {
            return;
        }
        state.dispatch = mode;
        state.balancer = self.config.build_balancer_for(mode);
        self.registry.push_event(
            self.clock.now_ns(),
            format!("vr-dispatch vr={} mode={}", state.name, mode.name()),
        );
    }

    /// Current dispatch mode of `vr`.
    pub fn vr_dispatch(&self, vr: VrId) -> DispatchMode {
        self.vrs.get(vr.0 as usize).map_or(self.config.dispatch, |s| s.dispatch)
    }

    /// Watermark pressure state of `vr` as of its last dispatched burst.
    pub fn vr_pressure(&self, vr: VrId) -> PressureLevel {
        self.vrs.get(vr.0 as usize).map_or(PressureLevel::Normal, |s| s.pressure.level())
    }

    /// Per-VR (admitted, shed) admission counters. For every VR,
    /// `frames_in == admitted + shed` holds exactly.
    pub fn vr_admission_counts(&self, vr: VrId) -> (u64, u64) {
        self.vrs.get(vr.0 as usize).map_or((0, 0), |s| (s.admitted, s.shed))
    }

    /// VRIs of `vr` currently in the drain state.
    pub fn vr_draining_count(&self, vr: VrId) -> usize {
        self.vrs.get(vr.0 as usize).map_or(0, |s| s.draining.len())
    }

    /// Step 2 of the workflow: accept one ingress frame, classify, balance,
    /// dispatch. Also drives the lazy reallocation check. This is the
    /// batch-of-1 case of [`Lvrm::ingress_batch`] — a burst of one frame
    /// runs the identical classify/balance/dispatch sequence.
    pub fn ingress(&mut self, frame: Frame, host: &mut dyn VriHost) {
        let mut single = std::mem::take(&mut self.scratch_single);
        single.push(frame);
        self.ingress_batch(&mut single, host);
        single.clear();
        self.scratch_single = single;
    }

    /// Step 2 of the workflow, batched: classify a whole burst, bucket the
    /// frames per VR, refresh each VR's load view **once**, balance frame by
    /// frame against that view, and push each VRI's share with one bulk
    /// enqueue (one queue-index publication per VRI per burst). The lazy
    /// reallocation check runs once per burst; since every frame in the
    /// burst shares one clock reading, that is exactly what the per-frame
    /// path would have done (the pass is rate-limited per §3.2's period).
    ///
    /// `frames` is drained. Frames that fail classification, balancing, or
    /// dispatch are counted in [`Lvrm::stats`] exactly as on the per-frame
    /// path.
    pub fn ingress_batch(&mut self, frames: &mut Vec<Frame>, host: &mut dyn VriHost) {
        if frames.is_empty() {
            return;
        }
        let now = self.clock.now_ns();
        self.stats.frames_in.add(frames.len() as u64);
        if self.shutting_down {
            // Quiesced: no new work enters a dataplane that is emptying out.
            // The frames are still accounted for, so the conservation
            // identity holds through the shutdown window.
            self.stats.shed_early.add(frames.len() as u64);
            frames.clear();
            self.poll_drains(now, host);
            return;
        }

        // Classify by source address ("LVRM inspects the source IP address
        // of the data frame, and determines the VR", §2.1), bucketing the
        // burst per VR.
        while self.scratch_vr_buckets.len() < self.vrs.len() {
            self.scratch_vr_buckets.push(Vec::new());
        }
        let mut buckets = std::mem::take(&mut self.scratch_vr_buckets);
        let mut any_classified = false;
        for frame in frames.drain(..) {
            match frame
                .src_ip()
                .ok()
                .and_then(|src| self.classifier.lookup(src))
                .map(|r| r.iface as usize)
            {
                Some(vr_idx) => {
                    buckets[vr_idx].push(frame);
                    any_classified = true;
                }
                None => self.stats.unclassified.inc(),
            }
        }
        for (vr_idx, bucket) in buckets.iter_mut().enumerate() {
            if !bucket.is_empty() {
                self.dispatch_bucket(vr_idx, bucket, now);
            }
        }
        self.scratch_vr_buckets = buckets;

        if self.draining_count > 0 {
            self.poll_drains(now, host);
        }

        // Control starvation guard: a saturated ingress path must not defer
        // control-event relay forever. The paper gives control strict
        // priority inside a VRI; this bounds the monitor side too, even for
        // hosts that only call `process_control` opportunistically.
        self.bursts_since_ctrl = self.bursts_since_ctrl.saturating_add(1);
        if self.bursts_since_ctrl >= self.config.ctrl_starvation_bursts {
            self.process_control();
        }

        // A burst of only-unclassified frames never reached a VR, and the
        // per-frame path returns before the reallocation check in that case.
        if any_classified {
            self.maybe_reallocate(now, host);
        }
    }

    /// Balance and dispatch one VR's share of a burst. The load view is
    /// refreshed once; within the burst, each pick adds a synthetic +1 to
    /// the chosen slot's load so JSQ keeps spreading frames the estimator
    /// has not observed yet (instead of sending the whole burst to the
    /// momentarily-shortest queue).
    fn dispatch_bucket(&mut self, vr_idx: usize, bucket: &mut Vec<Frame>, now: u64) {
        let wm = self.config.watermarks();
        let total_weight: f64 = self.vrs.iter().map(|v| v.weight).sum();
        let vr = &mut self.vrs[vr_idx];
        // Fleet ownership gate (DESIGN.md §15): frames classified to a VR
        // another shard owns are shed whole, before admission control. They
        // still book as `frames_in + shed`, so identity (A) holds per VR and
        // `shed_early` keeps the global ledger exact — an unowned VR is just
        // a VR whose admission quota is zero.
        if !vr.owned {
            let n = bucket.len() as u64;
            vr.frames_in += n;
            vr.shed += n;
            self.stats.shed_early.add(n);
            bucket.clear();
            return;
        }
        vr.frames_in += bucket.len() as u64;
        // Arrivals are recorded before admission control: the allocator must
        // see true offered load, or an overloaded VR could never earn the
        // cores that would relieve the overload.
        for _ in 0..bucket.len() {
            vr.arrival.record(now);
        }

        self.scratch_loads.clear();
        self.scratch_valid.clear();
        self.scratch_vris.clear();
        let mut worst_occupancy: f64 = 0.0;
        for v in &mut vr.vris {
            v.observe_load(now);
            worst_occupancy = worst_occupancy.max(v.occupancy());
            self.scratch_loads.push(v.load());
            // A crashed instance's endpoint detaches before the supervisor
            // tick notices: stop feeding it between ticks.
            self.scratch_valid.push(v.accepting() && v.endpoint_attached());
            self.scratch_vris.push(v.id);
        }
        // Under the VLink fabric the shared ring *is* the VR's backlog; its
        // occupancy joins the pressure reading so overload control fires on
        // exactly the queue the frames actually sit in.
        if let Some(ring) = &vr.ring {
            worst_occupancy = worst_occupancy.max(ring.occupancy());
        }
        // Per-burst pressure refresh: one data queue past the high watermark
        // marks the whole VR (JSQ would have spread the backlog first), and
        // the tracker holds the state until the worst queue drains back
        // below the low mark.
        vr.pressure.update(worst_occupancy, &wm);

        // Fair admission under overload: an `Overloaded` VR is held to its
        // weighted share of the burst budget, with deficit-round-robin
        // credit carried across bursts so fractional quanta still admit.
        // Excess is shed here, before any balance or dispatch work is spent
        // on frames that would tail-drop anyway.
        if self.config.overload_shedding && vr.pressure.level() == PressureLevel::Overloaded {
            let quantum = self.config.batch_size as f64 * vr.weight / total_weight;
            vr.shed_credit = (vr.shed_credit + quantum).min(quantum.max(1.0));
            let allowed = vr.shed_credit as usize;
            if bucket.len() > allowed {
                let over = (bucket.len() - allowed) as u64;
                bucket.truncate(allowed);
                vr.shed += over;
                self.stats.shed_early.add(over);
            }
            vr.shed_credit -= bucket.len() as f64;
        } else {
            vr.shed_credit = 0.0;
        }
        vr.admitted += bucket.len() as u64;

        // VLink work-stealing fabric: publish the whole bucket into the VR's
        // shared ring with one bulk operation instead of JSQ-spreading it
        // across per-VRI queues — the VRIs steal bursts at their own pace, so
        // a burst never serializes behind the slowest instance. The classic
        // no-eligible-VRI outcomes are mirrored exactly: with no accepting,
        // attached instance the frames drop here just as `balancer.pick`
        // would have refused them.
        if let Some(ring) = vr.ring.as_mut() {
            let has_target = self.scratch_valid.iter().any(|&ok| ok);
            if has_target {
                let sent = ring.tx.try_send_batch(bucket) as u64;
                ring.enqueued += sent;
                let leftover = bucket.len() as u64;
                if leftover > 0 {
                    ring.drops += leftover;
                    self.stats.dispatch_drops.add(leftover);
                    bucket.clear();
                }
            } else if vr.quarantined {
                self.stats.quarantined_drops.add(bucket.len() as u64);
                bucket.clear();
            } else {
                self.stats.no_vri_drops.add(bucket.len() as u64);
                bucket.clear();
            }
            return;
        }

        while self.scratch_slot_buckets.len() < vr.vris.len() {
            self.scratch_slot_buckets.push(Vec::new());
        }
        for frame in bucket.drain(..) {
            let ctx = BalanceCtx {
                vris: &self.scratch_vris,
                loads: &self.scratch_loads,
                valid: &self.scratch_valid,
                now_ns: now,
            };
            match vr.balancer.pick(&frame, &ctx) {
                Some(slot) => {
                    self.scratch_slot_buckets[slot].push(frame);
                    self.scratch_loads[slot] += 1.0;
                }
                None if vr.quarantined => self.stats.quarantined_drops.inc(),
                None => self.stats.no_vri_drops.inc(),
            }
        }
        for (slot, sb) in self.scratch_slot_buckets.iter_mut().enumerate().take(vr.vris.len()) {
            if sb.is_empty() {
                continue;
            }
            vr.vris[slot].dispatch_batch(sb, now);
            // Whatever the bulk enqueue could not fit is dropped, exactly as
            // the per-frame path drops on a full queue. The discard is
            // recorded in the refusing adapter too, keeping the aggregate
            // equal to the per-adapter sums.
            let leftover = sb.len() as u64;
            if leftover > 0 {
                vr.vris[slot].note_discarded(leftover);
                self.stats.dispatch_drops.add(leftover);
            }
            sb.clear();
        }
    }

    /// Steps 3–4: collect frames the VRIs forwarded, appending to `out`.
    /// Returns how many were collected.
    pub fn poll_egress(&mut self, out: &mut Vec<Frame>) -> usize {
        let start = out.len();
        // Frames rescued from dead/shrunk VRIs' egress queues. They were
        // counted in `frames_out` when rescued; deliver without recounting.
        out.append(&mut self.rescued_egress);
        let before = out.len();
        // One clock read per poll bounds the histograms' hot-path cost;
        // rescued frames above are skipped (their departure time is the
        // rescue, not this poll).
        let now = if self.config.latency_histograms { self.clock.now_ns() } else { 0 };
        for vr in &mut self.vrs {
            let vr_before = out.len();
            for vri in &mut vr.vris {
                vri.drain_egress(out);
            }
            // Draining VRIs no longer receive dispatches but keep forwarding
            // until retirement — that is what makes the drain hitless.
            for d in &mut vr.draining {
                d.adapter.drain_egress(out);
            }
            vr.frames_out += (out.len() - vr_before) as u64;
            if now > 0 {
                for f in &out[vr_before..] {
                    if f.ts_ns > 0 && now > f.ts_ns {
                        vr.latency.record(now - f.ts_ns);
                    }
                }
            }
        }
        let n = out.len() - before;
        self.stats.frames_out.add(n as u64);
        out.len() - start
    }

    /// Structured point-in-time view of every VR and VRI (for dashboards,
    /// the `lvrmd` daemon, and tests).
    pub fn snapshot(&self) -> Vec<VrSnapshot> {
        self.vrs
            .iter()
            .map(|vr| VrSnapshot {
                id: vr.id,
                name: vr.name.clone(),
                arrival_rate_fps: vr.arrival.rate_per_sec(),
                frames_in: vr.frames_in,
                frames_out: vr.frames_out,
                quarantined: vr.quarantined,
                pressure: vr.pressure.level(),
                admitted: vr.admitted,
                shed: vr.shed,
                flow: vr.balancer.flow_table_stats(),
                vris: vr
                    .vris
                    .iter()
                    .map(|v| (v, false))
                    .chain(vr.draining.iter().map(|d| (&d.adapter, true)))
                    .map(|(v, draining)| VriSnapshot {
                        id: v.id,
                        core: v.core,
                        load_estimate: v.load(),
                        queue_len: v.queue_len(),
                        dispatched: v.dispatched,
                        returned: v.returned,
                        dispatch_drops: v.dispatch_drops,
                        reported_service_rate: v.reported_service_rate,
                        health: v.health,
                        draining,
                    })
                    .collect(),
            })
            .collect()
    }

    /// Whether any VRI has forwarded frames waiting to be collected (used
    /// by polling hosts to decide whether another egress pass is needed).
    /// Draining VRIs count: their egress must flush before retirement.
    pub fn has_pending_egress(&self) -> bool {
        self.vrs.iter().any(|vr| {
            vr.vris.iter().any(|v| v.has_pending_egress())
                || vr.draining.iter().any(|d| d.adapter.has_pending_egress())
        })
    }

    /// Relay control traffic: service-rate reports terminate here; anything
    /// else is forwarded to its destination VRI's incoming control queue
    /// ("a VRI can share control information with other VRIs of the same
    /// VR", §2.1).
    pub fn process_control(&mut self) {
        self.bursts_since_ctrl = 0;
        let now = self.clock.now_ns();
        let mut events = std::mem::take(&mut self.scratch_ctrl);
        events.clear();
        for vr in &mut self.vrs {
            for vri in &mut vr.vris {
                vri.drain_control(&mut events);
            }
            // Control from draining VRIs still flows: the drain is hitless
            // for the control plane too.
            for d in &mut vr.draining {
                d.adapter.drain_control(&mut events);
            }
        }
        for ev in events.drain(..) {
            // Heartbeats terminate at LVRM: pure proof of life.
            if let Some(vri) = decode_heartbeat(&ev) {
                if let Some(adapter) = self.find_vri_mut(vri) {
                    adapter.note_liveness(now);
                }
                continue;
            }
            if let Some((vri, rate)) = decode_service_rate(&ev) {
                if let Some(adapter) = self.find_vri_mut(vri) {
                    adapter.reported_service_rate = Some(rate);
                    adapter.note_liveness(now);
                }
                continue;
            }
            // Any other control event is also proof its source is alive.
            if let Some(adapter) = self.find_vri_mut(VriId(ev.src_vri)) {
                adapter.note_liveness(now);
            }
            // `LVSU` state-update batches are replication traffic: decode
            // once here and fan the records out to the origin's live
            // sibling replicas (DESIGN.md §14) instead of point-to-point
            // relay. Emitted/folded/lost are charged so the fifth identity
            // (`updates_emitted == updates_folded + updates_lost`) holds at
            // every snapshot.
            if crate::repl::is_state_update(&ev.payload) {
                self.fan_out_state_updates(ev, now);
                continue;
            }
            let dst = VriId(ev.dst_vri);
            match self.find_vri_mut(dst) {
                Some(adapter) => match adapter.relay_control(ev) {
                    Ok(()) => self.stats.control_relayed.inc(),
                    Err(_) => self.stats.control_drops.inc(),
                },
                None => self.stats.control_drops.inc(),
            }
        }
        self.scratch_ctrl = events;
    }

    /// Fan one `LVSU` batch out to the origin VRI's live sibling replicas.
    ///
    /// A batch of `k` records with `m` live siblings charges
    /// `updates_emitted += k × m`; each sibling relay then lands in either
    /// `updates_folded` (accepted onto its control queue) or `updates_lost`
    /// (queue full), so the fifth conservation identity is exact by
    /// construction. A batch that fails to decode (corrupt, truncated)
    /// never charges `emitted` and is counted as a control drop. Draining
    /// siblings are skipped: they are leaving the replica set and their
    /// books die with them.
    fn fan_out_state_updates(&mut self, ev: ControlEvent, now: u64) {
        let batch_len = match crate::repl::decode_batch(&ev.payload) {
            Ok((_origin, updates)) => updates.len() as u64,
            Err(_) => {
                self.stats.control_drops.inc();
                return;
            }
        };
        // Replication-lag bookkeeping (ROADMAP item 2): how many records the
        // most recent fan-out carried, and when it ran. Between fan-outs the
        // sibling books are stale by at most this batch plus the elapsed
        // time — the `lvrm_repl_lag_{updates,ns}` gauges.
        self.repl_last_fanout_records = batch_len;
        self.repl_last_fanout_ns = now;
        let origin = VriId(ev.src_vri);
        let Some(vr) = self.vrs.iter_mut().find(|vr| vr.vris.iter().any(|v| v.id == origin)) else {
            // Origin died or drained between emit and fan-out: no sibling
            // set to address, nothing was promised, nothing is lost.
            self.stats.control_drops.inc();
            return;
        };
        let siblings: u64 = vr.vris.iter().filter(|v| v.id != origin).count() as u64;
        self.stats.updates_emitted.add(batch_len * siblings);
        for vri in vr.vris.iter_mut().filter(|v| v.id != origin) {
            let mut copy = ev.clone();
            copy.dst_vri = vri.id.0;
            match vri.relay_control(copy) {
                Ok(()) => {
                    self.stats.updates_folded.add(batch_len);
                    self.stats.control_relayed.inc();
                }
                Err(_) => {
                    self.stats.updates_lost.add(batch_len);
                    self.stats.control_drops.inc();
                }
            }
        }
    }

    fn find_vri_mut(&mut self, id: VriId) -> Option<&mut VriAdapter> {
        self.vrs
            .iter_mut()
            .flat_map(|vr| vr.vris.iter_mut().chain(vr.draining.iter_mut().map(|d| &mut d.adapter)))
            .find(|v| v.id == id)
    }

    /// The VR monitor's allocation pass (Fig. 3.2's `allocate`), rate-limited
    /// to one run per allocation period. Exposed for hosts that want to
    /// drive it on a timer even without traffic.
    pub fn maybe_reallocate(&mut self, now_ns: u64, host: &mut dyn VriHost) {
        // Fast HA sub-tick: runs on *every* invocation (the host loop), ahead
        // of the 1 s allocation gate — advert cadence, master-down detection,
        // and promotion must all be sub-second. Take/put so the node can
        // borrow the monitor mutably for checkpoint build/apply.
        if let Some(mut ha) = self.ha.take() {
            ha.tick(now_ns, self, host);
            self.ha = Some(ha);
        }
        // Fleet directory sub-tick, immediately after HA so a promotion is
        // visible to the directory within the same invocation (the freshly
        // promoted master starts adverting for its shard right away).
        if let Some(mut fleet) = self.fleet.take() {
            fleet.tick(now_ns, self, host);
            self.fleet = Some(fleet);
        }
        if self.shutting_down {
            return; // the only remaining allocation activity is the drain
        }
        match self.last_alloc_ns {
            Some(last) if now_ns.saturating_sub(last) < self.config.allocation_period_ns => return,
            _ => {}
        }
        self.last_alloc_ns = Some(now_ns);

        // The supervisor shares the lazy tick: recover dead VRIs first so
        // the allocator below sees the post-recovery instance counts.
        self.supervise(now_ns, host);
        if self.draining_count > 0 {
            self.poll_drains(now_ns, host);
        }

        let age_budget = self.config.effective_flow_age_budget();
        for idx in 0..self.vrs.len() {
            // Close out elapsed rate windows even for silent VRs.
            self.vrs[idx].arrival.advance(now_ns);
            // Bounded incremental flow aging rides the tick (a no-op for
            // frame-based balancers): O(budget) per tick, never a full
            // table scan, so tick cost is independent of table size.
            // Runs even for quarantined/draining VRs — their idle flows
            // still need to expire.
            self.vrs[idx].balancer.age_flows(now_ns, age_budget);
            // A quarantined VR gets no allocator attention: no grows (it
            // crash-loops) and no shrinks (nothing worth preserving).
            if self.vrs[idx].quarantined {
                continue;
            }
            // A VR mid-drain holds its size until the drain settles; acting
            // on load readings polluted by a retiring instance would flap.
            if !self.vrs[idx].draining.is_empty() {
                continue;
            }
            let view = VrLoadView {
                arrival_rate: self.vrs[idx].arrival.rate_per_sec(),
                service_rate_per_vri: self.vrs[idx].service_rate_per_vri(),
                current_vris: self.vrs[idx].vris.len(),
                pressure: self.vrs[idx].pressure.level(),
            };
            match self.vrs[idx].allocator.decide(&view) {
                AllocDecision::Grow => {
                    self.grow_vr(idx, now_ns, host);
                }
                AllocDecision::Shrink => {
                    self.shrink_vr(idx, now_ns, host);
                }
                AllocDecision::Hold => {}
            }
        }

        // One structured line per reallocation tick, for hosts that log it
        // (see `take_tick_line`). Built here so it rides the existing 1 s
        // cadence instead of adding a timer.
        let s = self.stats.read();
        let drops =
            s.dispatch_drops + s.no_vri_drops + s.crash_lost + s.shrink_lost + s.quarantined_drops;
        self.tick_line = Some(format!(
            "lvrm-tick ts_ns={} vrs={} vris={} draining={} frames_in={} frames_out={} \
             drops={} shed={} redispatched={} deaths={} respawns={} \
             repl_lag_updates={} repl_lag_ns={}",
            now_ns,
            self.vrs.len(),
            self.vrs.iter().map(|v| v.vris.len()).sum::<usize>(),
            self.draining_count,
            s.frames_in,
            s.frames_out,
            drops,
            s.shed_early,
            s.redispatched,
            s.vri_deaths,
            s.respawns,
            self.repl_last_fanout_records,
            self.repl_lag_ns(now_ns),
        ));

        // Periodic checkpoint rides the same lazy tick: zero hot-path cost,
        // one serialize + atomic rename per interval.
        self.maybe_checkpoint(now_ns);
    }

    /// Whether `vr` has been quarantined by the supervisor.
    pub fn vr_quarantined(&self, vr: VrId) -> bool {
        self.vrs.get(vr.0 as usize).is_some_and(|s| s.quarantined)
    }

    /// The supervisor pass (run from the same lazy tick as reallocation,
    /// gated on `config.supervision`): reclassify every VRI's health, tear
    /// down the dead ones (rescuing their egress and reclaiming their
    /// in-flight inbound frames), respawn within the backoff budget, and
    /// re-balance reclaimed frames across the survivors. Public so hosts
    /// can drive it directly in tests; production paths reach it through
    /// [`Lvrm::maybe_reallocate`].
    pub fn supervise(&mut self, now_ns: u64, host: &mut dyn VriHost) {
        if !self.config.supervision {
            return;
        }
        let suspect_after = self.config.suspect_after_ns;
        let dead_after = self.config.dead_after_ns;
        let mut reclaimed: Vec<Frame> = Vec::new();
        for idx in 0..self.vrs.len() {
            // A healthy stretch forgives past crashes.
            if self.vrs[idx].crash_streak > 0
                && !self.vrs[idx].quarantined
                && now_ns.saturating_sub(self.vrs[idx].last_crash_ns)
                    > self.config.crash_streak_reset_ns
            {
                self.vrs[idx].crash_streak = 0;
            }

            reclaimed.clear();
            let mut slot = 0;
            while slot < self.vrs[idx].vris.len() {
                let prev = self.vrs[idx].vris[slot].health;
                let health =
                    self.vrs[idx].vris[slot].update_health(now_ns, suspect_after, dead_after);
                if health == VriHealth::Dead {
                    let adapter = self.vrs[idx].vris.remove(slot);
                    self.reap_dead_vri(idx, adapter, now_ns, host, &mut reclaimed);
                } else {
                    if health != prev {
                        self.registry.push_event(
                            now_ns,
                            format!(
                                "vri-health vr={} vri={} from={} to={}",
                                self.vrs[idx].name,
                                self.vrs[idx].vris[slot].id,
                                prev.name(),
                                health.name()
                            ),
                        );
                    }
                    slot += 1;
                }
            }

            // Respawn before re-dispatch so a one-off crash recovers within
            // this very tick (first respawn carries no backoff). `grow_vr`
            // absorbs the deficit and logs the respawn, so an allocator that
            // independently refills the VR in the same tick satisfies the
            // same debt instead of provoking an over-grow here later.
            while self.vrs[idx].respawn_deficit > 0
                && !self.vrs[idx].quarantined
                && now_ns >= self.vrs[idx].backoff_until_ns
            {
                if !self.grow_vr(idx, now_ns, host) {
                    break; // no core/memory available; retry next tick
                }
            }

            if !reclaimed.is_empty() {
                self.rehome(idx, &mut reclaimed, now_ns, RehomeLoss::Crash);
            }
        }
    }

    /// Tear down one dead VRI: kill its vehicle, rescue its egress frames,
    /// reclaim its in-flight inbound frames (appended to `reclaimed`), fold
    /// its counters, release its core, and update the VR's crash records.
    fn reap_dead_vri(
        &mut self,
        idx: usize,
        mut adapter: VriAdapter,
        now_ns: u64,
        host: &mut dyn VriHost,
        reclaimed: &mut Vec<Frame>,
    ) {
        let vri = adapter.id;
        let queued = adapter.queue_len() as u64;
        host.kill_vri(self.vrs[idx].id, vri);

        // Frames the instance already forwarded reach egress normally.
        let mut rescued = Vec::new();
        adapter.drain_egress(&mut rescued);
        self.vrs[idx].frames_out += rescued.len() as u64;
        self.stats.frames_out.add(rescued.len() as u64);
        self.rescued_egress.append(&mut rescued);

        // Frames still queued toward the instance: drain them back through
        // the balancer if the host can hand the endpoint over, else they
        // died with the process.
        let before = reclaimed.len();
        if let Some(mut endpoint) = host.reap_endpoint(vri) {
            while endpoint.data_rx.try_recv_batch(reclaimed, usize::MAX) > 0 {}
        }
        let got = (reclaimed.len() - before) as u64;
        let lost = queued.saturating_sub(got);
        self.stats.crash_lost.add(lost);
        self.stats.reclaimed.add(got);
        self.stats.queue_lost.add(lost);

        self.stats.retired_dispatch_drops.add(adapter.dispatch_drops);
        self.stats.retired_dispatched.add(adapter.dispatched);
        self.stats.retired_returned.add(adapter.returned);
        self.stats.vri_deaths.inc();
        // Both drains are done: freeze the per-instance series at their
        // final values (returned includes the rescued egress above).
        publish_vri_final(&self.registry, &self.vrs[idx].name, &adapter);
        self.registry.push_event(
            now_ns,
            format!(
                "vri-died vr={} vri={} reclaimed={} lost={}",
                self.vrs[idx].name, vri, got, lost
            ),
        );
        self.vrs[idx].balancer.purge_vri(vri);
        self.cores.release(adapter.core);

        let vr = &mut self.vrs[idx];
        vr.crash_streak += 1;
        vr.last_crash_ns = now_ns;
        vr.respawn_deficit += 1;
        // First crash respawns immediately; from the second on, exponential
        // backoff doubling per crash, bounded, with ±25% jitter keyed by VR
        // id so VRs that crashed together don't respawn in lockstep.
        let backoff = if vr.crash_streak <= 1 {
            0
        } else {
            let doublings = (vr.crash_streak - 2).min(20);
            let clamped = self
                .config
                .respawn_backoff_ns
                .saturating_mul(1u64 << doublings)
                .min(self.config.respawn_backoff_max_ns);
            crate::fault::jittered_backoff(clamped, vr.id.0 as u64, vr.crash_streak as u64)
        };
        vr.backoff_until_ns = now_ns.saturating_add(backoff);
        self.supervision_log.push(SupervisionEvent {
            ts_ns: now_ns,
            vr: vr.id,
            vri,
            action: SupervisionAction::Died { reclaimed: got, lost },
        });
        if self.config.quarantine_after > 0
            && vr.crash_streak >= self.config.quarantine_after
            && !vr.quarantined
        {
            vr.quarantined = true;
            self.registry.push_event(now_ns, format!("vr-quarantined vr={} vri={vri}", vr.name));
            self.supervision_log.push(SupervisionEvent {
                ts_ns: now_ns,
                vr: vr.id,
                vri,
                action: SupervisionAction::Quarantined,
            });
        }
        // A quarantined VR gets no respawn, so with no instance left nothing
        // will ever steal from its shared ring: reconcile the parked frames
        // through the crash taxonomy (quarantined_drops, as rehome charges
        // for a quarantined VR with no survivors). A VR that *will* respawn
        // keeps its ring intact — the replacement instance steals the
        // backlog, which is exactly the "dead VRI loses nothing still
        // queued" property of the fabric.
        if self.vrs[idx].quarantined
            && self.vrs[idx].vris.is_empty()
            && self.vrs[idx].draining.is_empty()
        {
            self.drain_stranded_ring(idx, now_ns, RehomeLoss::Crash);
        }
    }

    /// Re-balance frames reclaimed from a departed VRI across the VR's
    /// survivors. Unlike [`Lvrm::dispatch_bucket`] this records neither
    /// `frames_in` nor arrivals — the frames were admitted once already.
    ///
    /// `loss` names the counter charged for frames that cannot be rehomed.
    /// A crash charges the usual drop taxonomy (the survivors refusing a
    /// frame is an ordinary dispatch drop); a shrink charges `shrink_lost`
    /// only, *without* `note_discarded`, so the per-adapter dispatch-drop
    /// identity is untouched by voluntary retirement.
    fn rehome(&mut self, vr_idx: usize, frames: &mut Vec<Frame>, now: u64, loss: RehomeLoss) {
        let vr = &mut self.vrs[vr_idx];
        self.scratch_loads.clear();
        self.scratch_valid.clear();
        self.scratch_vris.clear();
        for v in &mut vr.vris {
            v.observe_load(now);
            self.scratch_loads.push(v.load());
            self.scratch_valid.push(v.accepting() && v.endpoint_attached());
            self.scratch_vris.push(v.id);
        }
        while self.scratch_slot_buckets.len() < vr.vris.len() {
            self.scratch_slot_buckets.push(Vec::new());
        }
        for frame in frames.drain(..) {
            let ctx = BalanceCtx {
                vris: &self.scratch_vris,
                loads: &self.scratch_loads,
                valid: &self.scratch_valid,
                now_ns: now,
            };
            match vr.balancer.pick(&frame, &ctx) {
                Some(slot) => {
                    self.scratch_slot_buckets[slot].push(frame);
                    self.scratch_loads[slot] += 1.0;
                }
                None => match loss {
                    RehomeLoss::Crash if vr.quarantined => self.stats.quarantined_drops.inc(),
                    RehomeLoss::Crash => self.stats.no_vri_drops.inc(),
                    RehomeLoss::Shrink => self.stats.shrink_lost.inc(),
                },
            }
        }
        for (slot, sb) in self.scratch_slot_buckets.iter_mut().enumerate().take(vr.vris.len()) {
            if sb.is_empty() {
                continue;
            }
            let accepted = vr.vris[slot].dispatch_batch(sb, now);
            self.stats.redispatched.add(accepted as u64);
            let leftover = sb.len() as u64;
            if leftover > 0 {
                match loss {
                    RehomeLoss::Crash => {
                        vr.vris[slot].note_discarded(leftover);
                        self.stats.dispatch_drops.add(leftover);
                    }
                    RehomeLoss::Shrink => self.stats.shrink_lost.add(leftover),
                }
            }
            sb.clear();
        }
    }

    /// Bench/ops hook: resize `vr` to exactly `target` VRIs right now,
    /// bypassing the load estimators but going through the production
    /// grow/shrink paths — reaction latencies are recorded in
    /// [`Lvrm::realloc_log`] as usual. Used by the Fig. 4.11 reaction-time
    /// measurement and by operators who want manual scaling.
    pub fn force_resize_for_bench(
        &mut self,
        vr: VrId,
        target: usize,
        now_ns: u64,
        host: &mut dyn VriHost,
    ) {
        let idx = vr.0 as usize;
        // Manual resize is explicit operator intent: settle pending drains
        // first so their cores and queue-memory budget are actually free,
        // and the instance count lands exactly on `target`.
        self.force_retire_drains(now_ns, host);
        while self.vrs[idx].vris.len() < target {
            if !self.grow_vr(idx, now_ns, host) {
                break;
            }
        }
        while self.vrs[idx].vris.len() > target.max(1) {
            if !self.shrink_vr(idx, now_ns, host) {
                break;
            }
            // The forced path does not wait out the drain either.
            self.force_retire_drains(now_ns, host);
        }
    }

    /// Retire every draining VRI right now, deadline or not (forced-resize
    /// path). Parked frames are still rehomed; only un-rehomeable ones are
    /// `shrink_lost`.
    fn force_retire_drains(&mut self, now_ns: u64, host: &mut dyn VriHost) {
        for idx in 0..self.vrs.len() {
            while let Some(d) = self.vrs[idx].draining.pop() {
                self.draining_count -= 1;
                self.retire_vri(idx, d.adapter, now_ns, host);
            }
        }
    }

    /// Estimated queue memory one VRI's channel fabric reserves: two data
    /// queues of `data_queue_capacity` max-size frames plus two control
    /// queues (each entry conservatively one max frame).
    pub fn vri_queue_memory_estimate(&self) -> usize {
        let per_entry = lvrm_net::wire::MAX_FRAME_WIRE;
        2 * self.config.data_queue_capacity * per_entry
            + 2 * self.config.ctrl_queue_capacity * per_entry
    }

    /// "Create VRI adapter" (Fig. 3.2): queues into shared memory, bind to a
    /// core, add to the VRI list.
    fn grow_vr(&mut self, idx: usize, now_ns: u64, host: &mut dyn VriHost) -> bool {
        if self.vrs[idx].vris.len() >= self.config.max_vris_per_vr {
            return false;
        }
        if self.config.max_queue_memory_bytes > 0 {
            // Draining VRIs still hold their channel fabric until retired.
            let live: usize = self.vrs.iter().map(|v| v.vris.len() + v.draining.len()).sum();
            if (live + 1) * self.vri_queue_memory_estimate() > self.config.max_queue_memory_bytes {
                return false; // memory budget exhausted (§3.2 extension)
            }
        }
        // NUMA-aware placement: keep a VR's VRIs on the package(s) already
        // hosting it — under the VLink fabric that package is the shared
        // ring's home node, and a cross-socket steal costs a QPI round trip.
        self.scratch_cores.clear();
        self.scratch_cores.extend(self.vrs[idx].vris.iter().map(|v| v.core));
        let near = std::mem::take(&mut self.scratch_cores);
        let allocated = self.cores.allocate_near(&near);
        self.scratch_cores = near;
        let Some(core) = allocated else {
            return false; // every candidate core is taken
        };
        let t0 = self.clock.now_ns();
        let vri = VriId(self.next_vri);
        self.next_vri += 1;
        let (channels, endpoint) = vri_channels_with_ring::<Frame>(
            self.config.queue_kind,
            self.config.data_queue_capacity,
            self.config.ctrl_queue_capacity,
            self.vrs[idx].ring.as_ref().map(|r| r.rx.clone()),
        );
        let mut adapter = VriAdapter::new(vri, core, channels, self.config.build_estimator());
        // A newborn has not heartbeat yet; give it a full liveness window
        // before the supervisor may judge it.
        adapter.note_liveness(now_ns);
        let router = self.vrs[idx].router_template.spawn_instance();
        host.spawn_vri(VriSpec { vr: self.vrs[idx].id, vri, core }, endpoint, router);
        self.vrs[idx].vris.push(adapter);
        // Any grow on a VR that owes instances to the supervisor counts as
        // the replacement, whether the supervisor or the allocator asked for
        // it — otherwise both paths would refill the same crash and the VR
        // would overshoot its target by one.
        if self.vrs[idx].respawn_deficit > 0 {
            self.vrs[idx].respawn_deficit -= 1;
            self.stats.respawns.inc();
            self.registry.push_event(
                now_ns,
                format!(
                    "vri-respawned vr={} vri={vri} vris={}",
                    self.vrs[idx].name,
                    self.vrs[idx].vris.len()
                ),
            );
            self.supervision_log.push(SupervisionEvent {
                ts_ns: now_ns,
                vr: self.vrs[idx].id,
                vri,
                action: SupervisionAction::Respawned,
            });
        } else {
            self.registry.push_event(
                now_ns,
                format!(
                    "vr-alloc vr={} decision={} vris={}",
                    self.vrs[idx].name,
                    AllocDecision::Grow.name(),
                    self.vrs[idx].vris.len()
                ),
            );
        }
        let latency = self.clock.now_ns().saturating_sub(t0);
        self.realloc_log.push(ReallocEvent {
            ts_ns: now_ns,
            vr: self.vrs[idx].id,
            decision: AllocDecision::Grow,
            latency_ns: latency,
            vris_after: self.vrs[idx].vris.len(),
        });
        true
    }

    /// "Destroy VRI adapter" (Fig. 3.2), hitlessly: the victim leaves the
    /// balance set at once (no new dispatches), but its vehicle keeps
    /// servicing parked frames until the queue empties, the endpoint
    /// detaches, or `config.drain_deadline_ns` elapses — only then is it
    /// retired ([`Lvrm::retire_vri`]). The most recently added VRI goes
    /// first so sibling cores are surrendered last. With a zero deadline the
    /// victim is retired immediately (still rehoming its parked frames).
    fn shrink_vr(&mut self, idx: usize, now_ns: u64, host: &mut dyn VriHost) -> bool {
        if self.vrs[idx].vris.len() <= 1 && !self.shutting_down {
            return false; // a live VR keeps at least one instance
        }
        if self.vrs[idx].vris.is_empty() {
            return false;
        }
        let t0 = self.clock.now_ns();
        let adapter = self.vrs[idx].vris.pop().expect("len checked");
        let vri = adapter.id;
        self.vrs[idx].balancer.purge_vri(vri);
        self.registry.push_event(
            now_ns,
            format!(
                "vr-alloc vr={} decision={} vri={vri} vris={}",
                self.vrs[idx].name,
                AllocDecision::Shrink.name(),
                self.vrs[idx].vris.len()
            ),
        );
        let latency = self.clock.now_ns().saturating_sub(t0);
        self.realloc_log.push(ReallocEvent {
            ts_ns: now_ns,
            vr: self.vrs[idx].id,
            decision: AllocDecision::Shrink,
            latency_ns: latency,
            vris_after: self.vrs[idx].vris.len(),
        });
        if self.config.drain_deadline_ns == 0 {
            self.retire_vri(idx, adapter, now_ns, host);
        } else {
            let deadline_ns = now_ns.saturating_add(self.config.drain_deadline_ns);
            self.vrs[idx].draining.push(DrainingVri { adapter, deadline_ns });
            self.draining_count += 1;
        }
        true
    }

    /// Final teardown of a drained (or deadline-expired) VRI: kill the
    /// vehicle, rescue forwarded frames, reclaim parked inbound frames and
    /// rehome them across the survivors. Only frames neither rescued nor
    /// rehomed count as `shrink_lost` — on the happy path (queue drained
    /// empty) that is zero.
    fn retire_vri(
        &mut self,
        idx: usize,
        mut adapter: VriAdapter,
        now_ns: u64,
        host: &mut dyn VriHost,
    ) {
        let vri = adapter.id;
        let queued = adapter.queue_len() as u64;
        host.kill_vri(self.vrs[idx].id, vri);

        let mut rescued = Vec::new();
        adapter.drain_egress(&mut rescued);
        self.vrs[idx].frames_out += rescued.len() as u64;
        self.stats.frames_out.add(rescued.len() as u64);
        self.rescued_egress.append(&mut rescued);

        let mut reclaimed: Vec<Frame> = Vec::new();
        if let Some(mut endpoint) = host.reap_endpoint(vri) {
            while endpoint.data_rx.try_recv_batch(&mut reclaimed, usize::MAX) > 0 {}
        }
        let got = reclaimed.len() as u64;
        let lost = queued.saturating_sub(got);
        self.stats.shrink_lost.add(lost);
        self.stats.reclaimed.add(got);
        self.stats.queue_lost.add(lost);
        self.stats.retired_dispatch_drops.add(adapter.dispatch_drops);
        self.stats.retired_dispatched.add(adapter.dispatched);
        self.stats.retired_returned.add(adapter.returned);
        // Both drains are done: freeze the per-instance series.
        publish_vri_final(&self.registry, &self.vrs[idx].name, &adapter);
        self.registry.push_event(
            now_ns,
            format!("vri-retired vr={} vri={vri} reclaimed={got} lost={lost}", self.vrs[idx].name),
        );
        self.cores.release(adapter.core);
        if !reclaimed.is_empty() {
            self.rehome(idx, &mut reclaimed, now_ns, RehomeLoss::Shrink);
        }
        // Shutdown path: the VR's last instance is gone, so frames still
        // parked in the shared ring have no stealer left. Reconcile them
        // through the voluntary-retirement taxonomy now rather than letting
        // the queued gauge carry them forever.
        if self.vrs[idx].vris.is_empty() && self.vrs[idx].draining.is_empty() {
            self.drain_stranded_ring(idx, now_ns, RehomeLoss::Shrink);
        }
    }

    /// Empty a VR's shared ring once no instance remains to steal from it,
    /// keeping the conservation identities intact: drained frames count as
    /// `reclaimed` (they left the queued gauge alive) and then run through
    /// [`Lvrm::rehome`], which — with no survivors — charges them to the
    /// taxonomy `loss` names. A no-op for VRs without a ring or with the
    /// ring already empty.
    fn drain_stranded_ring(&mut self, idx: usize, now_ns: u64, loss: RehomeLoss) {
        let Some(ring) = self.vrs[idx].ring.as_ref() else {
            return;
        };
        let mut frames: Vec<Frame> = Vec::new();
        while ring.rx.try_recv_batch(&mut frames, usize::MAX) > 0 {}
        if frames.is_empty() {
            return;
        }
        let got = frames.len() as u64;
        self.stats.reclaimed.add(got);
        self.registry
            .push_event(now_ns, format!("ring-drained vr={} frames={got}", self.vrs[idx].name));
        self.rehome(idx, &mut frames, now_ns, loss);
    }

    /// Sweep the drain lists and retire every VRI whose queue has emptied,
    /// whose endpoint has detached, or whose deadline has passed. Runs from
    /// ingress bursts and the reallocation tick; hosts may also call it
    /// directly (e.g. the shutdown loop).
    pub fn poll_drains(&mut self, now_ns: u64, host: &mut dyn VriHost) {
        if self.draining_count == 0 {
            return;
        }
        for idx in 0..self.vrs.len() {
            let mut slot = 0;
            while slot < self.vrs[idx].draining.len() {
                let d = &self.vrs[idx].draining[slot];
                let ready = d.adapter.queue_len() == 0
                    || !d.adapter.endpoint_attached()
                    || now_ns >= d.deadline_ns;
                if ready {
                    let d = self.vrs[idx].draining.remove(slot);
                    self.draining_count -= 1;
                    self.retire_vri(idx, d.adapter, now_ns, host);
                } else {
                    slot += 1;
                }
            }
        }
    }

    /// Begin (idempotently) and advance a graceful shutdown: every VRI of
    /// every VR moves to the drain state, new ingress is quiesced (counted
    /// as `shed_early`), and each call sweeps the drains. Returns `true`
    /// once every VRI has been retired — hosts loop, pumping vehicles and
    /// collecting egress, until then (or until their own deadline, passed
    /// here as each drain's forcible-retirement instant).
    pub fn shutdown(&mut self, deadline_ns: u64, host: &mut dyn VriHost) -> bool {
        let now = self.clock.now_ns();
        if !self.shutting_down {
            self.shutting_down = true;
            for idx in 0..self.vrs.len() {
                while let Some(adapter) = self.vrs[idx].vris.pop() {
                    self.vrs[idx].balancer.purge_vri(adapter.id);
                    self.vrs[idx].draining.push(DrainingVri { adapter, deadline_ns });
                    self.draining_count += 1;
                }
            }
        }
        // Relay any last control traffic, then sweep.
        self.process_control();
        self.poll_drains(now, host);
        self.shutdown_complete()
    }

    /// Whether a begun shutdown has fully quiesced (every VRI retired).
    pub fn shutdown_complete(&self) -> bool {
        self.shutting_down && self.draining_count == 0
    }

    /// Whether [`Lvrm::shutdown`] has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down
    }

    /// Aggregate counters, materialized from the live registry handles.
    pub fn stats(&self) -> LvrmStats {
        self.stats.read()
    }

    /// The metrics registry every monitor counter publishes into. Clone the
    /// handle to share it with scrape endpoints or log shippers.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Mirror the sampled (non-counter) state — queue depths, pressure,
    /// arrival rates, per-VRI series — into the registry. Counters update
    /// live; gauges only move when this runs, so scrapes call it first
    /// (via [`Lvrm::metrics_snapshot`]).
    pub fn refresh_registry(&self) {
        let reg = &self.registry;
        let mut data_queued = 0u64;
        let mut egress_queued = 0u64;
        for vr in &self.vrs {
            let name = vr.name.as_str();
            let labels = [("vr", name)];
            let c = |n: &str, h: &str, v: u64| reg.counter(n, h, &labels).store(v);
            c("lvrm_vr_frames_in_total", "Frames classified to the VR.", vr.frames_in);
            c("lvrm_vr_frames_out_total", "Frames the VR's VRIs forwarded.", vr.frames_out);
            c(
                "lvrm_vr_admitted_total",
                "Frames admitted past ingress classification.",
                vr.admitted,
            );
            c(
                "lvrm_vr_shed_total",
                "Frames shed at ingress classification (over admission quota).",
                vr.shed,
            );
            let (sticky, fresh) = vr.balancer.flow_stats();
            c(
                "lvrm_vr_flow_sticky_total",
                "Flow-based balancer: frames that hit a live flow entry.",
                sticky,
            );
            c(
                "lvrm_vr_flow_fresh_total",
                "Flow-based balancer: frames that picked a VRI afresh.",
                fresh,
            );
            vr.latency_pub.store(&vr.latency);
            let g = |n: &str, h: &str, v: f64| reg.gauge(n, h, &labels).set(v);
            if let Some(fs) = vr.balancer.flow_table_stats() {
                c(
                    "lvrm_vr_flow_evictions_total",
                    "Expired flow entries evicted (lazy probe hits + aging sweeps).",
                    fs.evictions,
                );
                c(
                    "lvrm_vr_flow_overflows_total",
                    "Flow insertions refused because the table was full.",
                    fs.overflows,
                );
                c(
                    "lvrm_vr_flow_age_sweep_slots_total",
                    "Slots visited by the incremental aging sweep (bounded per tick).",
                    fs.age_sweep_slots,
                );
                g("lvrm_vr_flow_entries", "Tracked flows in the flow table.", fs.len as f64);
                g(
                    "lvrm_vr_flow_occupancy",
                    "Flow-table fill fraction (entries / capacity).",
                    fs.occupancy(),
                );
            }
            g(
                "lvrm_vr_pressure",
                "Watermark pressure state (0 normal, 1 pressured, 2 overloaded).",
                vr.pressure.level_gauge(),
            );
            g("lvrm_vr_vris", "Live (balanced-to) VRIs.", vr.vris.len() as f64);
            g("lvrm_vr_draining", "VRIs of this VR in the drain state.", vr.draining.len() as f64);
            g(
                "lvrm_vr_arrival_fps",
                "Smoothed arrival rate, frames per second.",
                vr.arrival.rate_per_sec(),
            );
            g(
                "lvrm_vr_quarantined",
                "1 while the VR is quarantined, else 0.",
                if vr.quarantined { 1.0 } else { 0.0 },
            );
            for (v, draining) in vr
                .vris
                .iter()
                .map(|v| (v, false))
                .chain(vr.draining.iter().map(|d| (&d.adapter, true)))
            {
                let vri = v.id.to_string();
                let labels = [("vr", name), ("vri", vri.as_str())];
                let qlen = v.queue_len() as u64;
                let elen = v.egress_len() as u64;
                data_queued += qlen;
                egress_queued += elen;
                reg.counter(M_VRI_DISPATCHED.0, M_VRI_DISPATCHED.1, &labels).store(v.dispatched);
                reg.counter(M_VRI_RETURNED.0, M_VRI_RETURNED.1, &labels).store(v.returned);
                reg.counter(M_VRI_DROPS.0, M_VRI_DROPS.1, &labels).store(v.dispatch_drops);
                reg.gauge(M_VRI_QUEUE_LEN.0, M_VRI_QUEUE_LEN.1, &labels).set(qlen as f64);
                reg.gauge(M_VRI_QUEUE_WM.0, M_VRI_QUEUE_WM.1, &labels)
                    .set(v.queue_watermark as f64);
                reg.gauge(M_VRI_EGRESS_LEN.0, M_VRI_EGRESS_LEN.1, &labels).set(elen as f64);
                reg.gauge(M_VRI_HEALTH.0, M_VRI_HEALTH.1, &labels).set(v.health.as_gauge());
                reg.gauge(M_VRI_DRAINING.0, M_VRI_DRAINING.1, &labels).set(if draining {
                    1.0
                } else {
                    0.0
                });
            }
            // The shared ring publishes as a synthetic `vri="ring"` series in
            // the per-VRI dispatch families: frames the monitor bulk-enqueued
            // count as dispatched there (the stealing VRI's own series later
            // records the `returned`), ring occupancy joins `lvrm_data_queued`,
            // and ring refusals join the dispatch-drop family — identities
            // (B), (C) and (D) hold without special-casing the fabric.
            if let Some(ring) = &vr.ring {
                let ring_len = ring.rx.len() as u64;
                data_queued += ring_len;
                let labels = [("vr", name), ("vri", "ring")];
                reg.counter(M_VRI_DISPATCHED.0, M_VRI_DISPATCHED.1, &labels).store(ring.enqueued);
                reg.counter(M_VRI_RETURNED.0, M_VRI_RETURNED.1, &labels).store(0);
                reg.counter(M_VRI_DROPS.0, M_VRI_DROPS.1, &labels).store(ring.drops);
                reg.gauge(M_VRI_QUEUE_LEN.0, M_VRI_QUEUE_LEN.1, &labels).set(ring_len as f64);
                reg.gauge(
                    "lvrm_vr_ring_occupancy",
                    "Shared-ring fill fraction (VLink fabric only).",
                    &[("vr", name)],
                )
                .set(ring.occupancy());
            }
        }
        let g = |n: &str, h: &str, v: f64| reg.gauge(n, h, &[]).set(v);
        g(
            "lvrm_data_queued",
            "Frames queued toward VRIs (all incoming data queues).",
            data_queued as f64,
        );
        g(
            "lvrm_egress_queued",
            "Forwarded frames not yet collected (all outgoing data queues).",
            egress_queued as f64,
        );
        g(
            "lvrm_rescued_pending",
            "Rescued egress frames awaiting the next poll (already in frames_out).",
            self.rescued_egress.len() as f64,
        );
        g(
            "lvrm_draining_vris",
            "VRIs in the drain state across all VRs.",
            self.draining_count as f64,
        );
        g("lvrm_vrs", "Registered VRs.", self.vrs.len() as f64);
        g(
            "lvrm_restore_epoch",
            "Restart epoch (0 cold start; checkpoint epoch + 1 after restore).",
            self.epoch as f64,
        );
        g(
            "lvrm_repl_lag_updates",
            "Records carried by the most recent state-update fan-out (sibling-book staleness).",
            self.repl_last_fanout_records as f64,
        );
        g(
            "lvrm_repl_lag_ns",
            "Age of the most recent state-update fan-out, vs the replica flush interval.",
            self.repl_lag_ns(self.clock.now_ns()) as f64,
        );
    }

    /// Refresh the sampled gauges and snapshot the whole registry.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.refresh_registry();
        self.registry.snapshot()
    }

    /// Render the current metrics in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.metrics_snapshot().render_prometheus()
    }

    /// Take (and clear) the structured one-line summary built by the last
    /// reallocation tick, if one fired since the previous call.
    pub fn take_tick_line(&mut self) -> Option<String> {
        self.tick_line.take()
    }

    /// Restart epoch: 0 on a cold start, `checkpoint.epoch + 1` after a
    /// [`Lvrm::restore_from`].
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Arm the active/standby HA state machine over `link`, using the
    /// election knobs in `config.ha`. Returns `false` (and attaches
    /// nothing) when the config carries no HA section. The node starts as
    /// `Backup`; with no peer on the link it promotes itself after one
    /// master-down interval.
    pub fn attach_ha(&mut self, link: Box<dyn PeerLink>) -> bool {
        let Some(ha_cfg) = self.config.ha else {
            return false;
        };
        self.ha = Some(Box::new(HaNode::new(ha_cfg, link, &self.registry)));
        true
    }

    /// The attached HA node, if any.
    pub fn ha(&self) -> Option<&HaNode> {
        self.ha.as_deref()
    }

    /// Mutable access to the attached HA node (manual failover, tests).
    pub fn ha_mut(&mut self) -> Option<&mut HaNode> {
        self.ha.as_deref_mut()
    }

    /// Whether this monitor currently owns the dataplane. Solo monitors
    /// (no HA attached) always accept; paired monitors accept only as the
    /// post-probation master. Hosts gate ingress polling on this.
    pub fn ha_accepting(&self) -> bool {
        self.ha.as_ref().is_none_or(|h| h.accepting())
    }

    /// Current HA role, when HA is attached.
    pub fn ha_role(&self) -> Option<Role> {
        self.ha.as_ref().map(|h| h.role())
    }

    /// Periodic checkpoint, gated on `config.checkpoint_interval_ns`. Runs
    /// from the lazy reallocation tick so the hot path never pays for it.
    fn maybe_checkpoint(&mut self, now_ns: u64) {
        let Some(path) = self.config.checkpoint_path.clone() else {
            return;
        };
        if let Some(last) = self.last_checkpoint_ns {
            if now_ns.saturating_sub(last) < self.config.checkpoint_interval_ns {
                return;
            }
        }
        self.last_checkpoint_ns = Some(now_ns);
        self.checkpoint_to(&path, now_ns);
    }

    /// Write a checkpoint to `path` now (the SIGHUP / on-demand entry point).
    /// Returns whether the write landed; failures are logged to the event
    /// stream, never fatal — a monitor that cannot checkpoint keeps routing.
    pub fn checkpoint_to(&mut self, path: &Path, now_ns: u64) -> bool {
        let ck = self.build_checkpoint(now_ns);
        match ck.write_atomic(path) {
            Ok(()) => {
                self.stats.checkpoint_writes.inc();
                true
            }
            Err(e) => {
                self.registry.push_event(
                    now_ns,
                    format!("checkpoint-error path={} err={e}", path.display()),
                );
                false
            }
        }
    }

    /// Snapshot the control plane into a [`Checkpoint`].
    ///
    /// Counters are folded **as if every live and draining VRI retired with
    /// total loss**: per-VRI dispatched/returned/drops move into the
    /// `retired_*` aggregates and in-flight frames (data + egress queues)
    /// are charged to both `crash_lost` (drop taxonomy) and `queue_lost`
    /// (dispatch identity). A restore therefore satisfies all four
    /// conservation identities by construction — the frames a restart
    /// genuinely loses are accounted, not wished away.
    pub fn build_checkpoint(&self, now_ns: u64) -> Checkpoint {
        let mut stats = self.stats.read();
        let mut flows_scratch: Vec<(FlowKey, VriId, u64)> = Vec::new();
        let mut vrs = Vec::with_capacity(self.vrs.len());
        for vr in &self.vrs {
            flows_scratch.clear();
            vr.balancer.export_flows(&mut flows_scratch);
            // Affinity is checkpointed against the VRI's *slot* within the
            // VR (ids are not stable across restarts); draining/dead VRIs
            // have left the balance set and are dropped here.
            let mut flows = Vec::with_capacity(flows_scratch.len());
            for &(key, vri, last_seen_ns) in &flows_scratch {
                if let Some(slot) = vr.vris.iter().position(|v| v.id == vri) {
                    flows.push(FlowRecord { key, slot: slot as u32, last_seen_ns });
                }
            }
            for v in vr.vris.iter().chain(vr.draining.iter().map(|d| &d.adapter)) {
                stats.retired_dispatched += v.dispatched;
                stats.retired_returned += v.returned;
                stats.retired_dispatch_drops += v.dispatch_drops;
                let in_flight = (v.queue_len() + v.egress_len()) as u64;
                stats.crash_lost += in_flight;
                stats.queue_lost += in_flight;
            }
            // The shared ring folds like one more instance: its series moves
            // into the retired aggregates and its parked frames are charged
            // as restart loss — a restore starts with a fresh, empty ring.
            if let Some(ring) = &vr.ring {
                stats.retired_dispatched += ring.enqueued;
                stats.retired_dispatch_drops += ring.drops;
                let in_flight = ring.rx.len() as u64;
                stats.crash_lost += in_flight;
                stats.queue_lost += in_flight;
            }
            vrs.push(VrCheckpoint {
                name: vr.name.clone(),
                frames_in: vr.frames_in,
                frames_out: vr.frames_out,
                admitted: vr.admitted,
                shed: vr.shed,
                weight: vr.weight,
                shed_credit: vr.shed_credit,
                crash_streak: vr.crash_streak,
                last_crash_ns: vr.last_crash_ns,
                backoff_until_ns: vr.backoff_until_ns,
                respawn_deficit: vr.respawn_deficit as u32,
                quarantined: vr.quarantined,
                pressure: vr.pressure.level_gauge() as u8,
                vri_slots: vr.vris.len() as u32,
                flows,
            });
        }
        Checkpoint { epoch: self.epoch, ts_ns: now_ns, stats, next_vri: self.next_vri, vrs }
    }

    /// Warm-restart entry point: load `path` and resume from it.
    ///
    /// A rejected checkpoint (corrupt, truncated, unreadable) is **not**
    /// fatal: the monitor logs `checkpoint_rejected`, bumps the counter and
    /// returns the error so the caller can proceed with a cold start.
    /// On success returns the new epoch (`checkpoint.epoch + 1`).
    pub fn restore_from(
        &mut self,
        path: &Path,
        host: &mut dyn VriHost,
    ) -> Result<u32, CheckpointError> {
        let now_ns = self.clock.now_ns();
        match Checkpoint::load(path) {
            Ok(ck) => Ok(self.apply_checkpoint(&ck, now_ns, host)),
            Err(e) => {
                self.stats.checkpoint_rejected.inc();
                self.registry.push_event(
                    now_ns,
                    format!("checkpoint_rejected path={} err={e}", path.display()),
                );
                Err(e)
            }
        }
    }

    /// Resume control-plane state from a decoded checkpoint: counter
    /// baselines, supervisor state, pressure hysteresis, VRI population and
    /// flow affinity. VRs are matched **by name** against the already
    /// re-registered set; checkpointed VRs with no live counterpart are
    /// logged and skipped.
    pub fn apply_checkpoint(
        &mut self,
        ck: &Checkpoint,
        now_ns: u64,
        host: &mut dyn VriHost,
    ) -> u32 {
        let s = &ck.stats;
        self.stats.frames_in.store(s.frames_in);
        self.stats.frames_out.store(s.frames_out);
        self.stats.unclassified.store(s.unclassified);
        self.stats.dispatch_drops.store(s.dispatch_drops);
        self.stats.no_vri_drops.store(s.no_vri_drops);
        self.stats.shrink_lost.store(s.shrink_lost);
        self.stats.control_relayed.store(s.control_relayed);
        self.stats.control_drops.store(s.control_drops);
        self.stats.redispatched.store(s.redispatched);
        self.stats.crash_lost.store(s.crash_lost);
        self.stats.quarantined_drops.store(s.quarantined_drops);
        self.stats.vri_deaths.store(s.vri_deaths);
        self.stats.respawns.store(s.respawns);
        self.stats.retired_dispatch_drops.store(s.retired_dispatch_drops);
        self.stats.shed_early.store(s.shed_early);
        self.stats.reclaimed.store(s.reclaimed);
        self.stats.queue_lost.store(s.queue_lost);
        self.stats.retired_dispatched.store(s.retired_dispatched);
        self.stats.retired_returned.store(s.retired_returned);
        self.stats.updates_emitted.store(s.updates_emitted);
        self.stats.updates_folded.store(s.updates_folded);
        self.stats.updates_lost.store(s.updates_lost);
        self.next_vri = self.next_vri.max(ck.next_vri);
        self.epoch = ck.epoch.wrapping_add(1);
        for vrck in &ck.vrs {
            let Some(idx) = self.vrs.iter().position(|v| v.name == vrck.name) else {
                self.registry
                    .push_event(now_ns, format!("checkpoint-vr-unmatched vr={}", vrck.name));
                continue;
            };
            {
                let vr = &mut self.vrs[idx];
                vr.frames_in = vrck.frames_in;
                vr.frames_out = vrck.frames_out;
                vr.admitted = vrck.admitted;
                vr.shed = vrck.shed;
                vr.weight = vrck.weight;
                vr.shed_credit = vrck.shed_credit;
                vr.crash_streak = vrck.crash_streak;
                vr.last_crash_ns = vrck.last_crash_ns;
                vr.backoff_until_ns = vrck.backoff_until_ns;
                vr.quarantined = vrck.quarantined;
                vr.pressure = PressureTracker::restore(match vrck.pressure {
                    0 => PressureLevel::Normal,
                    1 => PressureLevel::Pressured,
                    _ => PressureLevel::Overloaded,
                });
            }
            if !self.vrs[idx].quarantined {
                while self.vrs[idx].vris.len() < vrck.vri_slots as usize {
                    if !self.grow_vr(idx, now_ns, host) {
                        break; // cores/memory shrank across the restart
                    }
                }
            }
            // Restored *after* the population grows back, so the refills
            // above do not absorb the deficit as phantom respawns.
            self.vrs[idx].respawn_deficit = vrck.respawn_deficit as usize;
            for f in &vrck.flows {
                if let Some(v) = self.vrs[idx].vris.get(f.slot as usize) {
                    let vri = v.id;
                    self.vrs[idx].balancer.import_flow(f.key, vri, f.last_seen_ns);
                }
            }
        }
        self.registry.push_event(
            now_ns,
            format!("monitor-restored epoch={} checkpoint_ts_ns={}", self.epoch, ck.ts_ns),
        );
        self.epoch
    }

    // ---- fleet (N-way sharding, DESIGN.md §15) -------------------------

    /// Nanoseconds since the most recent state-update fan-out (0 before the
    /// first, or when replication is idle because nothing emitted).
    fn repl_lag_ns(&self, now_ns: u64) -> u64 {
        if self.repl_last_fanout_ns == 0 {
            0
        } else {
            now_ns.saturating_sub(self.repl_last_fanout_ns)
        }
    }

    /// Join an N-shard monitor fleet over `links` (`(peer shard id, link)`
    /// pairs), using the sharding knobs in `config.shard`. Returns `false`
    /// (and attaches nothing) when the config carries no shard section.
    ///
    /// Every fleet member declares the same VR universe and calls this with
    /// the same topology, so the version-1 [`ShardMap`] — a rendezvous hash
    /// over the declared VR names — is unanimous without any exchange. VRs
    /// the map assigns elsewhere are immediately disowned: their classified
    /// frames shed at ingress until a takeover re-homes them here.
    pub fn attach_fleet(&mut self, links: Vec<(u32, Box<dyn PeerLink>)>) -> bool {
        let Some(shard_cfg) = self.config.shard else {
            return false;
        };
        let universe: Vec<(String, Ipv4Addr, u8)> = self
            .vrs
            .iter()
            .map(|vr| {
                let (net, prefix) =
                    vr.subnets.first().copied().unwrap_or((Ipv4Addr::UNSPECIFIED, 0));
                (vr.name.clone(), net, prefix)
            })
            .collect();
        let shards: Vec<u32> = (0..shard_cfg.shards).collect();
        let map = ShardMap::partition(&universe, &shards);
        for vr in &mut self.vrs {
            vr.owned = map.owner_of(&vr.name) == Some(shard_cfg.shard_id);
        }
        self.fleet = Some(Box::new(FleetNode::new(shard_cfg, map, links, &self.registry)));
        self.registry.push_event(
            self.clock.now_ns(),
            format!(
                "fleet-attached shard={} shards={} owned={}",
                shard_cfg.shard_id,
                shard_cfg.shards,
                self.owned_vrs()
            ),
        );
        true
    }

    /// The attached fleet directory node, if any.
    pub fn fleet(&self) -> Option<&FleetNode> {
        self.fleet.as_deref()
    }

    /// Mutable access to the attached fleet node (tests, manual rebalance).
    pub fn fleet_mut(&mut self) -> Option<&mut FleetNode> {
        self.fleet.as_deref_mut()
    }

    /// VRs this monitor currently owns (all of them outside a fleet). The
    /// per-shard term of the sixth fleet identity:
    /// `Σ owned over shards == vrs declared` at every directory epoch.
    pub fn owned_vrs(&self) -> usize {
        self.vrs.iter().filter(|v| v.owned).count()
    }

    /// Whether the named VR is currently owned (served) by this monitor.
    pub fn vr_owned_by_name(&self, name: &str) -> bool {
        self.vrs.iter().any(|v| v.name == name && v.owned)
    }

    /// Grant or revoke ownership of the named VR. Revocation stops ingress
    /// admission on the next classified burst; the VR's VRIs stay warm so a
    /// later re-grant serves immediately.
    pub fn set_vr_owned_by_name(&mut self, name: &str, owned: bool) {
        if let Some(vr) = self.vrs.iter_mut().find(|v| v.name == name) {
            vr.owned = owned;
        }
    }

    /// Cold-adopt the named VR after a shard takeover with no usable shadow
    /// checkpoint: mark it owned and make sure at least one VRI is up. The
    /// dead shard's in-flight frames were already folded into
    /// `crash_lost`/`queue_lost` when its last checkpoint was built, so the
    /// books the successor starts from are honest — what could not be
    /// recovered is counted as lost, not wished away.
    pub fn adopt_vr_cold(&mut self, name: &str, now_ns: u64, host: &mut dyn VriHost) {
        let Some(idx) = self.vrs.iter().position(|v| v.name == name) else {
            return;
        };
        self.vrs[idx].owned = true;
        if self.vrs[idx].vris.is_empty() && !self.vrs[idx].quarantined {
            self.grow_vr(idx, now_ns, host);
        }
    }

    /// Warm-adopt a dead shard's VRs from its last streamed checkpoint.
    ///
    /// Unlike [`Lvrm::apply_checkpoint`] (a restart: the monitor's books
    /// *are* the checkpoint's books), a takeover merges two live histories:
    /// global counters are **added** component-wise — every conservation
    /// identity is a linear equation over the counters, so the sum of two
    /// identity-satisfying states satisfies them too — and only the VRs in
    /// `names` (the share the new map assigns here) are restored. Exactly
    /// one successor per dead shard passes `fold_global = true` (the
    /// rendezvous primary), so the fleet-wide ledger counts the dead
    /// shard's frames exactly once. Returns how many VRs warm-restored.
    pub fn adopt_checkpoint(
        &mut self,
        ck: &Checkpoint,
        names: &[String],
        fold_global: bool,
        now_ns: u64,
        host: &mut dyn VriHost,
    ) -> usize {
        if fold_global {
            let s = &ck.stats;
            self.stats.frames_in.add(s.frames_in);
            self.stats.frames_out.add(s.frames_out);
            self.stats.unclassified.add(s.unclassified);
            self.stats.dispatch_drops.add(s.dispatch_drops);
            self.stats.no_vri_drops.add(s.no_vri_drops);
            self.stats.shrink_lost.add(s.shrink_lost);
            self.stats.control_relayed.add(s.control_relayed);
            self.stats.control_drops.add(s.control_drops);
            self.stats.redispatched.add(s.redispatched);
            self.stats.crash_lost.add(s.crash_lost);
            self.stats.quarantined_drops.add(s.quarantined_drops);
            self.stats.vri_deaths.add(s.vri_deaths);
            self.stats.respawns.add(s.respawns);
            self.stats.retired_dispatch_drops.add(s.retired_dispatch_drops);
            self.stats.shed_early.add(s.shed_early);
            self.stats.reclaimed.add(s.reclaimed);
            self.stats.queue_lost.add(s.queue_lost);
            self.stats.retired_dispatched.add(s.retired_dispatched);
            self.stats.retired_returned.add(s.retired_returned);
            self.stats.updates_emitted.add(s.updates_emitted);
            self.stats.updates_folded.add(s.updates_folded);
            self.stats.updates_lost.add(s.updates_lost);
        }
        let mut warm = 0usize;
        for vrck in &ck.vrs {
            if !names.contains(&vrck.name) {
                continue;
            }
            let Some(idx) = self.vrs.iter().position(|v| v.name == vrck.name) else {
                self.registry.push_event(now_ns, format!("takeover-vr-unmatched vr={}", vrck.name));
                continue;
            };
            {
                let vr = &mut self.vrs[idx];
                vr.owned = true;
                // Frame books add (this shard shed the VR's frames while
                // unowned — that history stays on the ledger); supervisor
                // and pressure state transfer wholesale from the corpse.
                vr.frames_in += vrck.frames_in;
                vr.frames_out += vrck.frames_out;
                vr.admitted += vrck.admitted;
                vr.shed += vrck.shed;
                vr.weight = vrck.weight;
                vr.shed_credit = vrck.shed_credit;
                vr.crash_streak = vrck.crash_streak;
                vr.last_crash_ns = vrck.last_crash_ns;
                vr.backoff_until_ns = vrck.backoff_until_ns;
                vr.quarantined = vrck.quarantined;
                vr.pressure = PressureTracker::restore(match vrck.pressure {
                    0 => PressureLevel::Normal,
                    1 => PressureLevel::Pressured,
                    _ => PressureLevel::Overloaded,
                });
            }
            if !self.vrs[idx].quarantined {
                while self.vrs[idx].vris.len() < vrck.vri_slots as usize {
                    if !self.grow_vr(idx, now_ns, host) {
                        break; // not enough cores to match the corpse
                    }
                }
            }
            self.vrs[idx].respawn_deficit = vrck.respawn_deficit as usize;
            for f in &vrck.flows {
                if let Some(v) = self.vrs[idx].vris.get(f.slot as usize) {
                    let vri = v.id;
                    self.vrs[idx].balancer.import_flow(f.key, vri, f.last_seen_ns);
                }
            }
            warm += 1;
        }
        self.registry.push_event(
            now_ns,
            format!(
                "takeover-adopted vrs={warm} fold_global={fold_global} checkpoint_ts_ns={}",
                ck.ts_ns
            ),
        );
        warm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::config::AllocatorKind;
    use crate::host::RecordingHost;
    use crate::topology::{AffinityMode, CoreId, CoreTopology};
    use lvrm_net::FrameBuilder;
    use lvrm_router::FastVr;

    fn subnet(a: u8, b: u8, c: u8) -> (Ipv4Addr, u8) {
        (Ipv4Addr::new(a, b, c, 0), 24)
    }

    fn frame_from(src: [u8; 4]) -> Frame {
        FrameBuilder::new(Ipv4Addr::from(src), Ipv4Addr::new(10, 0, 2, 1)).udp(1, 2, &[])
    }

    fn routed_vr(name: &str) -> Box<dyn VirtualRouter> {
        let routes = lvrm_router::parse_map_file("10.0.2.0/24 1\n0.0.0.0/0 1\n").unwrap();
        Box::new(FastVr::new(name, routes))
    }

    fn new_lvrm(clock: ManualClock, config: LvrmConfig) -> Lvrm<ManualClock> {
        let cores =
            CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
        Lvrm::new(config, cores, clock)
    }

    #[test]
    fn add_vr_spawns_first_vri_on_sibling_core() {
        let clock = ManualClock::new();
        let mut lvrm = new_lvrm(clock, LvrmConfig::default());
        let mut host = RecordingHost::default();
        let vr = lvrm.add_vr("deptA", &[subnet(10, 0, 1)], routed_vr("a"), &mut host);
        assert_eq!(lvrm.vri_count(vr), 1);
        assert_eq!(host.spawned.len(), 1);
        assert_eq!(host.spawned[0].core, CoreId(1), "first sibling core");
    }

    #[test]
    fn ingress_classifies_by_source_subnet() {
        let clock = ManualClock::new();
        let mut lvrm = new_lvrm(clock, LvrmConfig::default());
        let mut host = RecordingHost::default();
        let a = lvrm.add_vr("deptA", &[subnet(10, 0, 1)], routed_vr("a"), &mut host);
        let b = lvrm.add_vr("deptB", &[subnet(10, 0, 3)], routed_vr("b"), &mut host);
        lvrm.ingress(frame_from([10, 0, 1, 5]), &mut host);
        lvrm.ingress(frame_from([10, 0, 3, 5]), &mut host);
        lvrm.ingress(frame_from([10, 0, 3, 6]), &mut host);
        lvrm.ingress(frame_from([192, 168, 0, 1]), &mut host); // unclassified
        assert_eq!(lvrm.vr_frame_counts(a).0, 1);
        assert_eq!(lvrm.vr_frame_counts(b).0, 2);
        assert_eq!(lvrm.stats().unclassified, 1);
    }

    #[test]
    fn full_forwarding_workflow() {
        let clock = ManualClock::new();
        let mut lvrm = new_lvrm(clock, LvrmConfig::default());
        let mut host = RecordingHost::default();
        let vr = lvrm.add_vr("deptA", &[subnet(10, 0, 1)], routed_vr("a"), &mut host);
        for _ in 0..10 {
            lvrm.ingress(frame_from([10, 0, 1, 5]), &mut host);
        }
        assert_eq!(host.pump(), 10);
        let mut out = Vec::new();
        assert_eq!(lvrm.poll_egress(&mut out), 10);
        assert!(out.iter().all(|f| f.egress_if == 1));
        assert_eq!(lvrm.vr_frame_counts(vr), (10, 10));
        assert_eq!(lvrm.stats().frames_out, 10);
    }

    #[test]
    fn dynamic_allocation_grows_under_load() {
        let clock = ManualClock::new();
        let config = LvrmConfig {
            allocator: AllocatorKind::DynamicFixed { per_core_rate: 1000.0 },
            ..Default::default()
        };
        let mut lvrm = new_lvrm(clock.clone(), config);
        let mut host = RecordingHost::default();
        let vr = lvrm.add_vr("deptA", &[subnet(10, 0, 1)], routed_vr("a"), &mut host);
        assert_eq!(lvrm.vri_count(vr), 1);
        // Offer ~3000 fps for 3 simulated seconds.
        let mut now = 0u64;
        for _ in 0..9000 {
            now += 333_333;
            clock.set_ns(now);
            lvrm.ingress(frame_from([10, 0, 1, 5]), &mut host);
            host.pump();
        }
        assert!(
            lvrm.vri_count(vr) >= 3,
            "3000 fps over 1000 fps/core should grow to >=3 VRIs, got {}",
            lvrm.vri_count(vr)
        );
    }

    #[test]
    fn dynamic_allocation_shrinks_when_idle() {
        let clock = ManualClock::new();
        let config = LvrmConfig {
            allocator: AllocatorKind::DynamicFixed { per_core_rate: 1000.0 },
            ..Default::default()
        };
        let mut lvrm = new_lvrm(clock.clone(), config);
        let mut host = RecordingHost::default();
        let vr = lvrm.add_vr("deptA", &[subnet(10, 0, 1)], routed_vr("a"), &mut host);
        // Keep egress drained like the real collect loop would: a full
        // egress queue backpressures the instances and reads as load.
        let mut sink = Vec::new();
        let mut now = 0u64;
        for _ in 0..9000 {
            now += 333_333;
            clock.set_ns(now);
            lvrm.ingress(frame_from([10, 0, 1, 5]), &mut host);
            host.pump();
            lvrm.poll_egress(&mut sink);
            sink.clear();
        }
        let peak = lvrm.vri_count(vr);
        assert!(peak >= 3);
        // Go almost idle: 10 fps for 5 simulated seconds.
        for _ in 0..50 {
            now += 100_000_000;
            clock.set_ns(now);
            lvrm.ingress(frame_from([10, 0, 1, 5]), &mut host);
            host.pump();
            lvrm.poll_egress(&mut sink);
            sink.clear();
        }
        assert!(
            lvrm.vri_count(vr) < peak,
            "idle VR should give cores back (peak {peak}, now {})",
            lvrm.vri_count(vr)
        );
        assert!(!host.killed.is_empty());
    }

    #[test]
    fn reallocation_respects_period() {
        let clock = ManualClock::new();
        let config = LvrmConfig {
            allocator: AllocatorKind::DynamicFixed { per_core_rate: 1.0 }, // grow-happy
            ..Default::default()
        };
        let mut lvrm = new_lvrm(clock.clone(), config);
        let mut host = RecordingHost::default();
        let vr = lvrm.add_vr("deptA", &[subnet(10, 0, 1)], routed_vr("a"), &mut host);
        // Steady 1 kHz traffic. The allocator wants to grow on every pass
        // (threshold 1 fps), but passes are rate-limited to one per second:
        // the pass at t=0 sees no rate yet, so the first grow can only land
        // once the period has elapsed.
        for i in 0..999 {
            clock.set_ns(i * 1_000_000);
            lvrm.ingress(frame_from([10, 0, 1, 5]), &mut host);
        }
        assert_eq!(lvrm.vri_count(vr), 1, "no reallocation inside the 1 s period");
        for i in 999..1100 {
            clock.set_ns(i * 1_000_000);
            lvrm.ingress(frame_from([10, 0, 1, 5]), &mut host);
        }
        assert_eq!(lvrm.vri_count(vr), 2, "period elapsed, exactly one grow allowed");
    }

    #[test]
    fn grow_stops_at_core_exhaustion() {
        let clock = ManualClock::new();
        let config =
            LvrmConfig { allocator: AllocatorKind::Fixed { cores: 100 }, ..Default::default() };
        let mut lvrm = new_lvrm(clock.clone(), config);
        let mut host = RecordingHost::default();
        let vr = lvrm.add_vr("deptA", &[subnet(10, 0, 1)], routed_vr("a"), &mut host);
        for s in 1..20u64 {
            clock.set_ns(s * 1_100_000_000);
            lvrm.ingress(frame_from([10, 0, 1, 5]), &mut host);
        }
        // 8 cores minus LVRM's own = 7 allocatable.
        assert_eq!(lvrm.vri_count(vr), 7);
    }

    #[test]
    fn two_vrs_share_the_core_pool() {
        let clock = ManualClock::new();
        let config =
            LvrmConfig { allocator: AllocatorKind::Fixed { cores: 4 }, ..Default::default() };
        let mut lvrm = new_lvrm(clock.clone(), config);
        let mut host = RecordingHost::default();
        let a = lvrm.add_vr("deptA", &[subnet(10, 0, 1)], routed_vr("a"), &mut host);
        let b = lvrm.add_vr("deptB", &[subnet(10, 0, 3)], routed_vr("b"), &mut host);
        for s in 1..10u64 {
            clock.set_ns(s * 1_100_000_000);
            lvrm.ingress(frame_from([10, 0, 1, 5]), &mut host);
            lvrm.ingress(frame_from([10, 0, 3, 5]), &mut host);
        }
        // 7 cores for 2 VRs wanting 4 each: 4 + 3.
        assert_eq!(lvrm.vri_count(a) + lvrm.vri_count(b), 7);
        assert_eq!(lvrm.vri_count(a), 4);
        assert_eq!(lvrm.vri_count(b), 3);
    }

    #[test]
    fn snapshot_reports_live_state() {
        let clock = ManualClock::new();
        let config =
            LvrmConfig { allocator: AllocatorKind::Fixed { cores: 2 }, ..Default::default() };
        let mut lvrm = new_lvrm(clock, config);
        let mut host = RecordingHost::default();
        let _ = lvrm.add_vr("deptA", &[subnet(10, 0, 1)], routed_vr("a"), &mut host);
        for _ in 0..10 {
            lvrm.ingress(frame_from([10, 0, 1, 5]), &mut host);
        }
        let snap = lvrm.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].name, "deptA");
        assert_eq!(snap[0].frames_in, 10);
        assert_eq!(snap[0].vris.len(), 2);
        let dispatched: u64 = snap[0].vris.iter().map(|v| v.dispatched).sum();
        assert_eq!(dispatched, 10);
        // Display renders without panicking and mentions the VR name.
        let text = format!("{}", snap[0]);
        assert!(text.contains("deptA"));
    }

    #[test]
    fn memory_budget_caps_growth() {
        let clock = ManualClock::new();
        let mut config = LvrmConfig {
            allocator: AllocatorKind::Fixed { cores: 7 },
            data_queue_capacity: 64,
            ctrl_queue_capacity: 8,
            ..Default::default()
        };
        // Budget for exactly three VRIs' worth of queues.
        let per_vri = {
            let cores =
                CoreMap::new(CoreTopology::dual_quad_xeon(), CoreId(0), AffinityMode::SiblingFirst);
            Lvrm::new(config.clone(), cores, ManualClock::new()).vri_queue_memory_estimate()
        };
        config.max_queue_memory_bytes = 3 * per_vri;
        let mut lvrm = new_lvrm(clock.clone(), config);
        let mut host = RecordingHost::default();
        let vr = lvrm.add_vr("deptA", &[subnet(10, 0, 1)], routed_vr("a"), &mut host);
        // Fixed policy wants 7; the budget admits only 3.
        for s in 1..8u64 {
            clock.set_ns(s * 1_100_000_000);
            lvrm.ingress(frame_from([10, 0, 1, 5]), &mut host);
        }
        assert_eq!(lvrm.vri_count(vr), 3, "memory budget must cap the allocation");
    }

    #[test]
    fn realloc_log_records_events() {
        let clock = ManualClock::new();
        let config =
            LvrmConfig { allocator: AllocatorKind::Fixed { cores: 3 }, ..Default::default() };
        let mut lvrm = new_lvrm(clock.clone(), config);
        let mut host = RecordingHost::default();
        let _ = lvrm.add_vr("deptA", &[subnet(10, 0, 1)], routed_vr("a"), &mut host);
        for s in 1..4u64 {
            clock.set_ns(s * 1_100_000_000);
            lvrm.ingress(frame_from([10, 0, 1, 5]), &mut host);
        }
        let grows = lvrm.realloc_log.iter().filter(|e| e.decision == AllocDecision::Grow).count();
        assert_eq!(grows, 3, "initial + two growth events");
        assert_eq!(lvrm.realloc_log.last().unwrap().vris_after, 3);
    }

    #[test]
    fn balancer_spreads_across_vris() {
        let clock = ManualClock::new();
        let config = LvrmConfig {
            allocator: AllocatorKind::Fixed { cores: 3 },
            balancer: crate::config::BalancerKind::RoundRobin,
            ..Default::default()
        };
        let mut lvrm = new_lvrm(clock.clone(), config);
        let mut host = RecordingHost::default();
        let vr = lvrm.add_vr("deptA", &[subnet(10, 0, 1)], routed_vr("a"), &mut host);
        for s in 1..4u64 {
            clock.set_ns(s * 1_100_000_000);
            lvrm.ingress(frame_from([10, 0, 1, 5]), &mut host);
        }
        assert_eq!(lvrm.vri_count(vr), 3);
        for _ in 0..297 {
            lvrm.ingress(frame_from([10, 0, 1, 5]), &mut host);
        }
        host.pump();
        let counts = lvrm.vri_dispatch_counts(vr);
        assert_eq!(counts.len(), 3);
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 300);
        for c in &counts {
            assert!((95..=105).contains(c), "RR should be near-even: {counts:?}");
        }
    }

    /// The frame mix used by the batch-equivalence tests: two VRs plus
    /// unclassified traffic, deterministic pattern.
    fn mixed_frames(n: usize) -> Vec<Frame> {
        (0..n)
            .map(|i| match i % 4 {
                0 | 1 => frame_from([10, 0, 1, (i % 200) as u8]),
                2 => frame_from([10, 0, 3, (i % 200) as u8]),
                _ => frame_from([192, 168, 0, 1]), // matches no VR
            })
            .collect()
    }

    /// Latency-histogram digest and registry event log alongside the
    /// counters, so the equivalence tests can compare observability outputs
    /// too, not just the frame accounting.
    struct MixOutcome {
        stats: LvrmStats,
        a_counts: (u64, u64),
        b_counts: (u64, u64),
        a_dispatch: Vec<u64>,
        /// (count, min, max, p50, p99) of `lvrm_vr_latency_ns{vr="deptA"}`.
        latency_digest: (u64, u64, u64, u64, u64),
        events: Vec<lvrm_metrics::MetricEvent>,
    }

    fn run_mix(batch: usize) -> MixOutcome {
        let clock = ManualClock::new();
        let config = LvrmConfig {
            allocator: AllocatorKind::Fixed { cores: 3 },
            batch_size: batch,
            ..Default::default()
        };
        let mut lvrm = new_lvrm(clock.clone(), config);
        let mut host = RecordingHost::default();
        let a = lvrm.add_vr("deptA", &[subnet(10, 0, 1)], routed_vr("a"), &mut host);
        let b = lvrm.add_vr("deptB", &[subnet(10, 0, 3)], routed_vr("b"), &mut host);
        // Let the fixed policy reach its target before traffic starts.
        for s in 1..4u64 {
            clock.set_ns(s * 1_100_000_000);
            lvrm.maybe_reallocate(clock.now_ns(), &mut host);
        }
        // Stamp frame `j`'s ingress at a fixed offset and poll it back at a
        // deterministic, varying delay so the latency histograms of two runs
        // with the same per-iteration schedule must agree bucket for bucket.
        let base = clock.now_ns();
        let stamp = |j: u64| base + (j + 1) * 10_000;
        let poll_at = |j: u64| stamp(j) + (j % 7 + 1) * 1_000;
        let frames = mixed_frames(600);
        let mut out = Vec::new();
        if batch == 0 {
            // The per-frame entry point (itself a burst of one internally).
            for (j, mut f) in frames.into_iter().enumerate() {
                f.ts_ns = stamp(j as u64);
                clock.set_ns(poll_at(j as u64));
                lvrm.ingress(f, &mut host);
                host.pump();
                lvrm.poll_egress(&mut out);
            }
        } else {
            let mut burst = Vec::new();
            let mut j = 0u64;
            for chunk in frames.chunks(batch) {
                for f in chunk {
                    let mut f = f.clone();
                    f.ts_ns = stamp(j);
                    burst.push(f);
                    j += 1;
                }
                clock.set_ns(poll_at(j - 1));
                lvrm.ingress_batch(&mut burst, &mut host);
                host.pump();
                lvrm.poll_egress(&mut out);
            }
        }
        let snap = lvrm.metrics_snapshot();
        let lat = snap.summary("lvrm_vr_latency_ns", &[("vr", "deptA")]).expect("registered");
        MixOutcome {
            stats: lvrm.stats(),
            a_counts: lvrm.vr_frame_counts(a),
            b_counts: lvrm.vr_frame_counts(b),
            a_dispatch: lvrm.vri_dispatch_counts(a),
            latency_digest: (
                lat.count(),
                lat.min_ns(),
                lat.max_ns(),
                lat.percentile_ns(50.0),
                lat.percentile_ns(99.0),
            ),
            events: snap.events.clone(),
        }
    }

    #[test]
    fn batch_of_one_is_identical_to_per_frame_path() {
        let r1 = run_mix(1);
        let r2 = run_mix(0); // 0 exercises the explicit per-frame loop
        assert_eq!(r1.stats.frames_in, r2.stats.frames_in);
        assert_eq!(r1.stats.frames_out, r2.stats.frames_out);
        assert_eq!(r1.stats.unclassified, r2.stats.unclassified);
        assert_eq!(r1.stats.dispatch_drops, r2.stats.dispatch_drops);
        assert_eq!(r1.stats.no_vri_drops, r2.stats.no_vri_drops);
        assert_eq!(r1.a_counts, r2.a_counts);
        assert_eq!(r1.b_counts, r2.b_counts);
        assert_eq!(r1.a_dispatch, r2.a_dispatch, "per-VRI dispatch counts must match exactly");
        // The observability outputs must agree too: same latency histogram
        // (both paths saw the same ingress stamps and poll times) and the
        // same event log (same spawns, grows, health transitions).
        assert_eq!(r1.latency_digest, r2.latency_digest, "latency histograms must match");
        assert!(r1.latency_digest.0 > 0, "traffic must have recorded latencies");
        assert_eq!(r1.events, r2.events, "registry event logs must match");
        assert!(!r1.events.is_empty(), "vr-added and vr-alloc events expected");
    }

    #[test]
    fn batched_ingress_preserves_aggregate_stats() {
        let per_frame = run_mix(1);
        for batch in [8usize, 32, 256] {
            let r = run_mix(batch);
            assert_eq!(r.stats.frames_in, per_frame.stats.frames_in, "batch {batch}");
            assert_eq!(r.stats.frames_out, per_frame.stats.frames_out, "batch {batch}");
            assert_eq!(r.stats.unclassified, per_frame.stats.unclassified, "batch {batch}");
            assert_eq!(r.stats.dispatch_drops, 0, "batch {batch}");
            assert_eq!(r.stats.no_vri_drops, 0, "batch {batch}");
            assert_eq!(r.a_counts, per_frame.a_counts, "batch {batch}: per-VR accounting");
            assert_eq!(r.b_counts, per_frame.b_counts, "batch {batch}: per-VR accounting");
            // Latencies depend on the poll schedule, not the batch size
            // alone — but every admitted frame must be measured exactly once.
            assert_eq!(r.latency_digest.0, per_frame.latency_digest.0, "batch {batch}");
            assert_eq!(r.events, per_frame.events, "batch {batch}: event log");
        }
    }

    #[test]
    fn batched_jsq_spreads_within_a_burst() {
        let clock = ManualClock::new();
        let config =
            LvrmConfig { allocator: AllocatorKind::Fixed { cores: 3 }, ..Default::default() };
        let mut lvrm = new_lvrm(clock.clone(), config);
        let mut host = RecordingHost::default();
        let vr = lvrm.add_vr("deptA", &[subnet(10, 0, 1)], routed_vr("a"), &mut host);
        for s in 1..4u64 {
            clock.set_ns(s * 1_100_000_000);
            lvrm.maybe_reallocate(clock.now_ns(), &mut host);
        }
        assert_eq!(lvrm.vri_count(vr), 3);
        // One big burst: without the within-burst load bump JSQ would pin
        // every frame on one VRI.
        let mut burst: Vec<Frame> =
            (0..300).map(|i| frame_from([10, 0, 1, (i % 200) as u8])).collect();
        lvrm.ingress_batch(&mut burst, &mut host);
        let counts = lvrm.vri_dispatch_counts(vr);
        assert_eq!(counts.iter().sum::<u64>(), 300);
        for c in &counts {
            assert!((95..=105).contains(c), "burst must spread across VRIs: {counts:?}");
        }
    }

    #[test]
    fn service_rate_reports_reach_allocator_view() {
        let clock = ManualClock::new();
        let mut lvrm = new_lvrm(clock.clone(), LvrmConfig::default());
        let mut host = RecordingHost::default();
        let vr = lvrm.add_vr("deptA", &[subnet(10, 0, 1)], routed_vr("a"), &mut host);
        // Inject a synthetic report through the VRI's control channel.
        let (_, endpoint, _) = &mut host.endpoints[0];
        let vri_id = host.spawned[0].vri;
        endpoint.ctrl_tx.try_send(crate::vri::encode_service_rate(vri_id, 42_000.0)).unwrap();
        lvrm.process_control();
        let state = &lvrm.vrs[vr.0 as usize];
        assert_eq!(state.service_rate_per_vri(), Some(42_000.0));
    }
}
