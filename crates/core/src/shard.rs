//! Sharded monitor fleet: N-way VR-space partitioning with shard failover,
//! takeover, and bounded re-homing (DESIGN.md §15).
//!
//! One monitor scales to one box; ROADMAP item 1 asks for N monitor shards
//! that partition the VR space. The shard key already exists — ingress
//! classifies by source subnet to a VR — so the fleet layer only has to
//! decide *which shard owns which VR* and keep that decision unanimous
//! across failures. Three pieces:
//!
//! * **[`ShardMap`]** — the versioned ownership table, one entry per VR
//!   (name + classify subnet + owning shard), assigned by rendezvous
//!   hashing so any node can recompute the map from the membership alone.
//!   Wire format `LVSM`, CRC-trailed like `LVCK`/`LVCD`/`LVHA`/`LVSU`.
//! * **[`FleetNode`]** — the gossip-lite shard directory, ticked from the
//!   same lazy sub-tick that drives HA. Each shard's accepting node
//!   broadcasts adverts carrying `(term, shard_id, epoch, map_version)`;
//!   per-peer shard-down timers (base `6 × advert`, seeded ±25% jitter so
//!   detections do not stampede) declare a silent shard dead.
//! * **Takeover** — on shard death the dead shard's entries (and only
//!   those: re-homing is bounded) are re-assigned by rendezvous hash over
//!   the survivors. Each successor adopts its share through the §10/§13
//!   warm-restart path: from the dead shard's last streamed shadow
//!   checkpoint when one is fresh, else cold. The rendezvous-primary
//!   successor also folds the dead shard's checkpointed global counters —
//!   which already carry its in-flight frames in `crash_lost`/`queue_lost`
//!   — so all five conservation identities hold by construction on every
//!   survivor, and the sixth fleet identity
//!   `vrs_owned_total == vrs_declared` holds at every directory epoch.
//!
//! Inter-shard control (the takeover claim) is retried with the seeded
//! [`crate::fault::jittered_backoff`], doubling per attempt, until every
//! live peer acknowledges. **CAP stance** (mirroring §13's restart
//! semantics): a shard that loses directory quorum keeps serving the VRs
//! it already owns (availability for established state) but stops
//! accepting new VRs and never takes over a dead peer's — only a majority
//! side re-homes, so a healed partition converges on the majority's map.

use std::net::Ipv4Addr;

use lvrm_metrics::{Counter, Gauge, MetricsRegistry};

use crate::checkpoint::{crc32, Checkpoint, CheckpointError, Dec, Enc};
use crate::clock::Clock;
use crate::config::ShardConfig;
use crate::fault::{jittered_backoff, splitmix64};
use crate::ha::PeerLink;
use crate::host::VriHost;
use crate::monitor::Lvrm;

/// Leading magic of the shard-map / fleet-message wire format — disjoint
/// from `LVCK` (checkpoints), `LVCD` (HA deltas), `LVHA` (HA adverts) and
/// `LVSU` (state updates), so no fleet frame can be mistaken for any of
/// them.
pub const SHARD_MAP_MAGIC: [u8; 4] = *b"LVSM";
pub const SHARD_MAP_VERSION: u8 = 1;

/// One VR's ownership record: its name, the classify-by-subnet key it is
/// reached through, and the shard that owns it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardEntry {
    pub vr: String,
    pub net: Ipv4Addr,
    pub prefix: u8,
    pub shard: u32,
}

/// The versioned VR-ownership table every fleet member converges to.
/// Entirely recomputable: given the same `(version, membership)` every
/// node derives byte-identical maps, which is what makes takeover
/// deterministic without a coordinator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// Bumps on every reassignment; higher version always wins.
    pub version: u32,
    pub entries: Vec<ShardEntry>,
}

/// Rendezvous (highest-random-weight) owner of `key` among `shards`.
/// Deterministic, minimal-movement: removing one shard only moves the
/// keys that shard owned. Ties break toward the lower shard id.
pub fn rendezvous_owner(key: &str, shards: &[u32]) -> Option<u32> {
    let kh = fnv1a(key.as_bytes());
    shards
        .iter()
        .map(|&s| (splitmix64(kh ^ splitmix64(s as u64 ^ 0x9e37_79b9_7f4a_7c15)), s))
        // max_by_key returns the *last* max; order by (weight, Reverse(id))
        // via comparing on weight then preferring lower id explicitly.
        .fold(None, |best: Option<(u64, u32)>, cand| match best {
            None => Some(cand),
            Some(b) if cand.0 > b.0 || (cand.0 == b.0 && cand.1 < b.1) => Some(cand),
            Some(b) => Some(b),
        })
        .map(|(_, s)| s)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ShardMap {
    /// Initial partition of the declared VR universe over the full fleet.
    /// `vrs` is `(name, classify subnet)` per VR; every fleet member calls
    /// this with the same arguments at attach time, so version 1 is
    /// unanimous by construction.
    pub fn partition(vrs: &[(String, Ipv4Addr, u8)], shards: &[u32]) -> ShardMap {
        let entries = vrs
            .iter()
            .map(|(vr, net, prefix)| ShardEntry {
                vr: vr.clone(),
                net: *net,
                prefix: *prefix,
                shard: rendezvous_owner(vr, shards).unwrap_or(0),
            })
            .collect();
        ShardMap { version: 1, entries }
    }

    /// The shard owning `vr`, if the VR is declared.
    pub fn owner_of(&self, vr: &str) -> Option<u32> {
        self.entries.iter().find(|e| e.vr == vr).map(|e| e.shard)
    }

    /// Names of the VRs `shard` owns.
    pub fn owned_by(&self, shard: u32) -> Vec<&str> {
        self.entries.iter().filter(|e| e.shard == shard).map(|e| e.vr.as_str()).collect()
    }

    /// Bounded re-homing after `dead` leaves the fleet: only the dead
    /// shard's entries move, each to its rendezvous successor among the
    /// `survivors`; every other assignment is untouched. Version bumps so
    /// the new map outranks the old everywhere it gossips to.
    pub fn rehomed(&self, dead: u32, survivors: &[u32]) -> ShardMap {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let shard = if e.shard == dead {
                    rendezvous_owner(&e.vr, survivors).unwrap_or(e.shard)
                } else {
                    e.shard
                };
                ShardEntry { shard, ..e.clone() }
            })
            .collect();
        ShardMap { version: self.version + 1, entries }
    }

    /// Encode as a standalone `LVSM` map frame ([`FleetMsg::Map`] with an
    /// anonymous sender).
    pub fn encode(&self) -> Vec<u8> {
        FleetMsg::Map { from: u32::MAX, map: self.clone() }.encode()
    }

    /// Decode a standalone `LVSM` map frame; any other fleet message kind
    /// is `Malformed`. Never panics.
    pub fn decode(buf: &[u8]) -> Result<ShardMap, CheckpointError> {
        match FleetMsg::decode(buf)? {
            FleetMsg::Map { map, .. } => Ok(map),
            _ => Err(CheckpointError::Malformed("not a shard-map frame")),
        }
    }

    fn enc_body(&self, e: &mut Enc) {
        e.u32(self.version);
        e.u32(self.entries.len() as u32);
        for en in &self.entries {
            e.u32(u32::from(en.net));
            e.u8(en.prefix);
            e.u32(en.shard);
            e.str(&en.vr);
        }
    }

    fn dec_body(d: &mut Dec<'_>) -> Result<ShardMap, CheckpointError> {
        let version = d.u32()?;
        let n = d.u32()? as usize;
        let mut entries = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let net = Ipv4Addr::from(d.u32()?);
            let prefix = d.u8()?;
            let shard = d.u32()?;
            let vr = d.str()?;
            entries.push(ShardEntry { vr, net, prefix, shard });
        }
        Ok(ShardMap { version, entries })
    }
}

/// One fleet-directory message. All little-endian, framed
/// `"LVSM" | version u8 | kind u8 | payload | crc32`, the same discipline
/// as every other wire format in the repo: length check, magic, CRC over
/// everything before the trailer, version, then an exact-consumption
/// check, so any one-byte corruption or truncation is rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum FleetMsg {
    /// Shard heartbeat from the shard's accepting node.
    Advert { term: u64, shard_id: u32, epoch: u32, map_version: u32 },
    /// Full ownership-map gossip (after any reassignment, and as the
    /// reconciliation vehicle after partitions).
    Map { from: u32, map: ShardMap },
    /// Inter-shard state stream: the sender's full control-plane
    /// checkpoint, the shadow a successor warm-adopts from.
    Snapshot { shard_id: u32, seq: u64, bytes: Vec<u8> },
    /// Takeover claim: `from` observed `dead` miss its shard-down timer at
    /// directory epoch `epoch`. Retried with jittered exponential backoff
    /// until every live peer acks.
    Claim { dead: u32, epoch: u32, from: u32 },
    /// Acknowledgement of a [`FleetMsg::Claim`].
    ClaimAck { dead: u32, epoch: u32, from: u32 },
}

const KIND_ADVERT: u8 = 0;
const KIND_MAP: u8 = 1;
const KIND_SNAPSHOT: u8 = 2;
const KIND_CLAIM: u8 = 3;
const KIND_CLAIM_ACK: u8 = 4;

impl FleetMsg {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc { buf: Vec::with_capacity(64) };
        e.buf.extend_from_slice(&SHARD_MAP_MAGIC);
        e.u8(SHARD_MAP_VERSION);
        match self {
            FleetMsg::Advert { term, shard_id, epoch, map_version } => {
                e.u8(KIND_ADVERT);
                e.u64(*term);
                e.u32(*shard_id);
                e.u32(*epoch);
                e.u32(*map_version);
            }
            FleetMsg::Map { from, map } => {
                e.u8(KIND_MAP);
                e.u32(*from);
                map.enc_body(&mut e);
            }
            FleetMsg::Snapshot { shard_id, seq, bytes } => {
                e.u8(KIND_SNAPSHOT);
                e.u32(*shard_id);
                e.u64(*seq);
                e.u32(bytes.len() as u32);
                e.buf.extend_from_slice(bytes);
            }
            FleetMsg::Claim { dead, epoch, from } => {
                e.u8(KIND_CLAIM);
                e.u32(*dead);
                e.u32(*epoch);
                e.u32(*from);
            }
            FleetMsg::ClaimAck { dead, epoch, from } => {
                e.u8(KIND_CLAIM_ACK);
                e.u32(*dead);
                e.u32(*epoch);
                e.u32(*from);
            }
        }
        let crc = crc32(&e.buf);
        e.u32(crc);
        e.buf
    }

    pub fn decode(buf: &[u8]) -> Result<FleetMsg, CheckpointError> {
        if buf.len() < 4 + 1 + 1 + 4 {
            return Err(CheckpointError::TooShort);
        }
        if buf[..4] != SHARD_MAP_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let body = &buf[..buf.len() - 4];
        let found = u32::from_le_bytes(buf[buf.len() - 4..].try_into().expect("4 bytes"));
        let expected = crc32(body);
        if found != expected {
            return Err(CheckpointError::BadChecksum { expected, found });
        }
        let mut d = Dec { buf: body, pos: 4 };
        let version = d.u8()?;
        if version != SHARD_MAP_VERSION {
            return Err(CheckpointError::BadVersion(version as u32));
        }
        let kind = d.u8()?;
        let msg = match kind {
            KIND_ADVERT => FleetMsg::Advert {
                term: d.u64()?,
                shard_id: d.u32()?,
                epoch: d.u32()?,
                map_version: d.u32()?,
            },
            KIND_MAP => {
                let from = d.u32()?;
                let map = ShardMap::dec_body(&mut d)?;
                FleetMsg::Map { from, map }
            }
            KIND_SNAPSHOT => {
                let shard_id = d.u32()?;
                let seq = d.u64()?;
                let len = d.u32()? as usize;
                let bytes = d.take(len)?.to_vec();
                FleetMsg::Snapshot { shard_id, seq, bytes }
            }
            KIND_CLAIM => FleetMsg::Claim { dead: d.u32()?, epoch: d.u32()?, from: d.u32()? },
            KIND_CLAIM_ACK => {
                FleetMsg::ClaimAck { dead: d.u32()?, epoch: d.u32()?, from: d.u32()? }
            }
            _ => return Err(CheckpointError::Malformed("unknown fleet message kind")),
        };
        if d.pos != body.len() {
            return Err(CheckpointError::Malformed("trailing bytes after payload"));
        }
        Ok(msg)
    }
}

/// Directory state for one peer shard.
struct PeerState {
    shard: u32,
    alive: bool,
    /// Last advert heard (ns). Zero until the first advert.
    last_rx_ns: u64,
    /// Jittered shard-down deadline; re-armed on every advert.
    down_at_ns: u64,
    term: u64,
    map_version: u32,
    /// Freshest streamed checkpoint from this shard: `(seq, rx_ns, ck)`.
    shadow: Option<(u64, u64, Checkpoint)>,
}

/// An unacknowledged takeover claim, retried with jittered exponential
/// backoff (base = the advert interval, doubling per attempt, capped).
struct PendingClaim {
    dead: u32,
    epoch: u32,
    attempts: u32,
    next_tx_ns: u64,
    acked: Vec<u32>,
}

const CLAIM_MAX_ATTEMPTS: u32 = 6;

/// The fleet directory attached to one monitor (`Lvrm::attach_fleet`),
/// ticked from the lazy sub-tick right after HA. Owns the peer links, the
/// current [`ShardMap`], death detection, and the takeover protocol.
pub struct FleetNode {
    cfg: ShardConfig,
    /// `(peer shard id, link)` — more than one link per peer shard is fine
    /// (both nodes of an HA pair); duplicate deliveries are idempotent.
    links: Vec<(u32, Box<dyn PeerLink>)>,
    map: ShardMap,
    peers: Vec<PeerState>,
    /// Directory epoch: bumps on every membership change (death, rejoin).
    epoch: u32,
    started: bool,
    last_advert_tx_ns: u64,
    last_snapshot_tx_ns: u64,
    snapshot_seq: u64,
    pending_claims: Vec<PendingClaim>,
    /// Nonce feeding [`jittered_backoff`] so successive timers de-correlate.
    backoff_nonce: u64,
    quorum_ok: bool,
    m_owned: Gauge,
    m_takeovers: Counter,
    m_rehome_ns: Gauge,
    m_epoch: Gauge,
    m_quorum: Gauge,
    m_rejected: Counter,
    registry: MetricsRegistry,
    recv_scratch: Vec<Vec<u8>>,
}

impl FleetNode {
    pub(crate) fn new(
        cfg: ShardConfig,
        map: ShardMap,
        links: Vec<(u32, Box<dyn PeerLink>)>,
        registry: &MetricsRegistry,
    ) -> FleetNode {
        let peers = (0..cfg.shards)
            .filter(|&s| s != cfg.shard_id)
            .map(|shard| PeerState {
                shard,
                alive: true,
                last_rx_ns: 0,
                down_at_ns: 0,
                term: 0,
                map_version: 0,
                shadow: None,
            })
            .collect();
        FleetNode {
            cfg,
            links,
            map,
            peers,
            epoch: 1,
            started: false,
            last_advert_tx_ns: 0,
            last_snapshot_tx_ns: 0,
            snapshot_seq: 0,
            pending_claims: Vec::new(),
            backoff_nonce: 0,
            quorum_ok: true,
            m_owned: registry.gauge("lvrm_shard_owned", "VRs this shard currently owns.", &[]),
            m_takeovers: registry.counter(
                "lvrm_shard_takeovers_total",
                "Dead-shard takeovers this monitor participated in as a successor.",
                &[],
            ),
            m_rehome_ns: registry.gauge(
                "lvrm_shard_rehome_ns",
                "Last takeover's re-homing latency: dead shard's final advert to adoption.",
                &[],
            ),
            m_epoch: registry.gauge(
                "lvrm_shard_directory_epoch",
                "Fleet directory epoch (bumps on every membership change).",
                &[],
            ),
            m_quorum: registry.gauge(
                "lvrm_shard_quorum",
                "1 while this shard can reach a directory majority, else 0.",
                &[],
            ),
            m_rejected: registry.counter(
                "lvrm_shard_rejected_total",
                "Fleet messages rejected at decode (corrupt, truncated, or unknown).",
                &[],
            ),
            registry: registry.clone(),
            recv_scratch: Vec::new(),
        }
    }

    /// This shard's id.
    pub fn shard_id(&self) -> u32 {
        self.cfg.shard_id
    }

    /// The current ownership map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The current directory epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Whether this shard still reaches a directory majority. While false
    /// the shard serves what it owns but registers no new VRs and never
    /// takes over (the documented CAP stance).
    pub fn accepting_new_vrs(&self) -> bool {
        self.quorum_ok
    }

    /// Shard ids currently believed alive, self included, ascending.
    pub fn alive_shards(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .peers
            .iter()
            .filter(|p| p.alive)
            .map(|p| p.shard)
            .chain(std::iter::once(self.cfg.shard_id))
            .collect();
        out.sort_unstable();
        out
    }

    /// One directory tick. Rides the monitor's lazy sub-tick (the same
    /// hook HA uses), so it runs on every `maybe_reallocate` call ahead of
    /// the 1 s reallocation gate.
    pub fn tick<C: Clock>(&mut self, now_ns: u64, lvrm: &mut Lvrm<C>, host: &mut dyn VriHost) {
        if !self.started {
            self.started = true;
            for i in 0..self.peers.len() {
                self.peers[i].down_at_ns = now_ns + self.down_interval(self.peers[i].shard);
            }
        }

        // Drain every peer link first: adverts heard this tick must re-arm
        // their timers before the death scan below.
        let mut scratch = std::mem::take(&mut self.recv_scratch);
        for i in 0..self.links.len() {
            scratch.clear();
            self.links[i].1.recv(now_ns, &mut scratch);
            for buf in scratch.drain(..) {
                match FleetMsg::decode(&buf) {
                    Ok(msg) => self.on_msg(now_ns, msg, lvrm, host),
                    Err(_) => self.m_rejected.inc(),
                }
            }
        }
        self.recv_scratch = scratch;

        // Only the shard's accepting node speaks: in an HA pair the backup
        // tracks the directory silently and takes over the microphone the
        // moment it is promoted.
        let speaking = lvrm.ha_role().is_none_or(|r| r == crate::ha::Role::Master);
        if speaking {
            if self.last_advert_tx_ns == 0
                || now_ns.saturating_sub(self.last_advert_tx_ns) >= self.cfg.advert_interval_ns
            {
                // max(1): simulated clocks start at 0, which doubles as the
                // never-sent sentinel.
                self.last_advert_tx_ns = now_ns.max(1);
                let term = lvrm.ha().map_or(0, |h| h.term());
                self.broadcast(
                    now_ns,
                    &FleetMsg::Advert {
                        term,
                        shard_id: self.cfg.shard_id,
                        epoch: self.epoch,
                        map_version: self.map.version,
                    },
                );
            }
            if now_ns.saturating_sub(self.last_snapshot_tx_ns) >= self.cfg.snapshot_interval_ns {
                self.last_snapshot_tx_ns = now_ns;
                self.snapshot_seq += 1;
                let ck = lvrm.build_checkpoint(now_ns);
                self.broadcast(
                    now_ns,
                    &FleetMsg::Snapshot {
                        shard_id: self.cfg.shard_id,
                        seq: self.snapshot_seq,
                        bytes: ck.encode(),
                    },
                );
            }
            self.retry_claims(now_ns);
        }

        // Death scan: a peer silent past its jittered deadline leaves the
        // directory. Skipped entirely without quorum — a minority must not
        // declare the majority dead and absorb the fleet.
        if self.quorum_ok {
            for i in 0..self.peers.len() {
                if self.peers[i].alive
                    && self.peers[i].last_rx_ns > 0
                    && now_ns >= self.peers[i].down_at_ns
                {
                    let dead = self.peers[i].shard;
                    self.on_shard_dead(now_ns, dead, lvrm, host);
                }
            }
        }

        let alive = self.alive_shards().len() as u32;
        self.quorum_ok = alive >= self.cfg.quorum();
        self.m_quorum.set(if self.quorum_ok { 1.0 } else { 0.0 });
        self.m_epoch.set(self.epoch as f64);
        self.m_owned.set(lvrm.owned_vrs() as f64);
    }

    fn down_interval(&mut self, peer: u32) -> u64 {
        self.backoff_nonce += 1;
        // Base 6 × advert, ±25% seeded jitter keyed by (self, peer, nonce).
        self.cfg.shard_down_ns()
            + jittered_backoff(
                self.cfg.advert_interval_ns,
                (self.cfg.shard_id as u64) << 32 | peer as u64,
                self.backoff_nonce,
            )
    }

    fn broadcast(&mut self, now_ns: u64, msg: &FleetMsg) {
        let wire = msg.encode();
        for (_, link) in &mut self.links {
            link.send(now_ns, &wire);
        }
    }

    fn on_msg<C: Clock>(
        &mut self,
        now_ns: u64,
        msg: FleetMsg,
        lvrm: &mut Lvrm<C>,
        host: &mut dyn VriHost,
    ) {
        match msg {
            FleetMsg::Advert { term, shard_id, epoch, map_version } => {
                let interval = self.down_interval(shard_id);
                let Some(p) = self.peers.iter_mut().find(|p| p.shard == shard_id) else {
                    return;
                };
                let rejoined = !p.alive;
                p.alive = true;
                p.last_rx_ns = now_ns;
                p.down_at_ns = now_ns + interval;
                p.term = term;
                p.map_version = map_version;
                if rejoined {
                    // A shard we buried is speaking again (healed partition
                    // or restart). Re-admit it and hand its original VRs
                    // back: rendezvous over the full alive set reproduces
                    // the pre-death assignment for everything else, so the
                    // move set is again just the rejoiner's share.
                    self.epoch = self.epoch.max(epoch) + 1;
                    let alive = self.alive_shards();
                    let rebased = ShardMap {
                        version: self.map.version + 1,
                        entries: self
                            .map
                            .entries
                            .iter()
                            .map(|e| ShardEntry {
                                shard: rendezvous_owner(&e.vr, &alive).unwrap_or(e.shard),
                                ..e.clone()
                            })
                            .collect(),
                    };
                    self.registry.push_event(
                        now_ns,
                        format!("shard-rejoined shard={shard_id} epoch={}", self.epoch),
                    );
                    self.adopt_map(now_ns, rebased, None, lvrm, host);
                    let map = self.map.clone();
                    self.broadcast(now_ns, &FleetMsg::Map { from: self.cfg.shard_id, map });
                }
            }
            FleetMsg::Map { from, map } => {
                // Higher version always wins; equal versions with different
                // bytes (concurrent recomputations after multi-death races)
                // reconcile deterministically toward the lower shard id.
                let adopt = map.version > self.map.version
                    || (map.version == self.map.version
                        && map != self.map
                        && from < self.cfg.shard_id);
                if adopt {
                    self.adopt_map(now_ns, map, None, lvrm, host);
                }
            }
            FleetMsg::Snapshot { shard_id, seq, bytes } => {
                let Ok(ck) = Checkpoint::decode(&bytes) else {
                    self.m_rejected.inc();
                    return;
                };
                if let Some(p) = self.peers.iter_mut().find(|p| p.shard == shard_id) {
                    if p.shadow.as_ref().is_none_or(|(s, _, _)| seq > *s) {
                        p.shadow = Some((seq, now_ns, ck));
                    }
                }
            }
            FleetMsg::Claim { dead, epoch, from } => {
                self.broadcast(
                    now_ns,
                    &FleetMsg::ClaimAck { dead, epoch, from: self.cfg.shard_id },
                );
                let _ = from;
                let still_alive = self.peers.iter().any(|p| p.shard == dead && p.alive);
                if still_alive && self.quorum_ok {
                    // Learn of the death secondhand: converge on the same
                    // deterministic re-homing the detector computed.
                    self.on_shard_dead(now_ns, dead, lvrm, host);
                }
            }
            FleetMsg::ClaimAck { dead, epoch: _, from } => {
                if let Some(c) = self.pending_claims.iter_mut().find(|c| c.dead == dead) {
                    if !c.acked.contains(&from) {
                        c.acked.push(from);
                    }
                }
                let alive: Vec<u32> =
                    self.peers.iter().filter(|p| p.alive).map(|p| p.shard).collect();
                self.pending_claims.retain(|c| !alive.iter().all(|s| c.acked.contains(s)));
            }
        }
    }

    /// Resend unacknowledged claims whose backoff expired, doubling the
    /// delay each attempt (seeded jitter, capped attempts).
    fn retry_claims(&mut self, now_ns: u64) {
        let shard_id = self.cfg.shard_id;
        let advert = self.cfg.advert_interval_ns;
        let mut due: Vec<FleetMsg> = Vec::new();
        self.backoff_nonce += 1;
        let nonce = self.backoff_nonce;
        for c in &mut self.pending_claims {
            if now_ns >= c.next_tx_ns && c.attempts < CLAIM_MAX_ATTEMPTS {
                c.attempts += 1;
                let base = advert << c.attempts.min(5);
                c.next_tx_ns =
                    now_ns + jittered_backoff(base, shard_id as u64, nonce ^ c.dead as u64);
                due.push(FleetMsg::Claim { dead: c.dead, epoch: c.epoch, from: shard_id });
            }
        }
        self.pending_claims.retain(|c| c.attempts < CLAIM_MAX_ATTEMPTS);
        for msg in due {
            self.broadcast(now_ns, &msg);
        }
    }

    /// A peer shard missed its deadline (or a claim told us so): bury it,
    /// bump the epoch, re-home its VRs over the survivors, adopt our
    /// share, and gossip both the claim and the new map.
    fn on_shard_dead<C: Clock>(
        &mut self,
        now_ns: u64,
        dead: u32,
        lvrm: &mut Lvrm<C>,
        host: &mut dyn VriHost,
    ) {
        let Some(p) = self.peers.iter_mut().find(|p| p.shard == dead && p.alive) else {
            return;
        };
        p.alive = false;
        let last_heard = p.last_rx_ns;
        self.epoch += 1;
        self.registry.push_event(
            now_ns,
            format!(
                "shard-dead shard={dead} epoch={} map_version={}",
                self.epoch, self.map.version
            ),
        );
        let survivors = self.alive_shards();
        // A lone survivor of a >2-shard fleet has no quorum and must not
        // absorb the fleet; `tick` re-checks after the scan, but guard the
        // secondhand (claim-driven) path here too.
        if (survivors.len() as u32) < self.cfg.quorum() {
            self.quorum_ok = false;
            return;
        }
        let new_map = self.map.rehomed(dead, &survivors);
        self.pending_claims.push(PendingClaim {
            dead,
            epoch: self.epoch,
            attempts: 0,
            next_tx_ns: now_ns,
            acked: Vec::new(),
        });
        self.broadcast(
            now_ns,
            &FleetMsg::Claim { dead, epoch: self.epoch, from: self.cfg.shard_id },
        );
        self.adopt_map(now_ns, new_map, Some((dead, last_heard)), lvrm, host);
        let map = self.map.clone();
        self.broadcast(now_ns, &FleetMsg::Map { from: self.cfg.shard_id, map });
    }

    /// Swap in a new ownership map and reconcile the monitor: release VRs
    /// assigned away, adopt VRs assigned here. When the reassignment is a
    /// takeover (`takeover = Some((dead, last_heard))`), adoption goes
    /// through the warm-restart path: the dead shard's shadow checkpoint
    /// if it is fresh, else a cold adopt; the rendezvous-primary successor
    /// folds the dead shard's global counters so the conservation
    /// identities carry over instead of vanishing with the corpse.
    fn adopt_map<C: Clock>(
        &mut self,
        now_ns: u64,
        new_map: ShardMap,
        takeover: Option<(u32, u64)>,
        lvrm: &mut Lvrm<C>,
        host: &mut dyn VriHost,
    ) {
        let me = self.cfg.shard_id;
        let mut released = 0usize;
        let mut gained: Vec<String> = Vec::new();
        for e in &new_map.entries {
            let owned_now = lvrm.vr_owned_by_name(&e.vr);
            if e.shard == me && !owned_now {
                gained.push(e.vr.clone());
            } else if e.shard != me && owned_now {
                lvrm.set_vr_owned_by_name(&e.vr, false);
                released += 1;
            }
        }
        self.map = new_map;
        if gained.is_empty() {
            if released > 0 {
                self.registry.push_event(
                    now_ns,
                    format!("shard-map-adopted version={} released={released}", self.map.version),
                );
            }
            return;
        }
        let mut warm = 0usize;
        if let Some((dead, last_heard)) = takeover {
            // Shadow freshness: a shard streaming right up to its death
            // leaves a shadow at most `snapshot_interval + shard_down +
            // jitter` old by the time the deadline declares it dead — that
            // envelope (jitter generously rounded to 2 adverts) is the warm
            // bar. Anything staler predates the final life of the corpse
            // and is worse than a cold start with honest zero books.
            let warm_bar = self.cfg.snapshot_interval_ns
                + self.cfg.shard_down_ns()
                + 2 * self.cfg.advert_interval_ns;
            let fresh = self
                .peers
                .iter()
                .find(|p| p.shard == dead)
                .and_then(|p| p.shadow.as_ref())
                .filter(|(_, rx, _)| now_ns.saturating_sub(*rx) <= warm_bar)
                .map(|(_, _, ck)| ck.clone());
            // Exactly one successor folds the dead shard's global stats —
            // the rendezvous primary for the shard's own key — so the
            // fleet-wide books count the corpse's frames exactly once.
            let survivors = self.alive_shards();
            let primary = rendezvous_owner(&format!("shard:{dead}"), &survivors) == Some(me);
            if let Some(ck) = fresh {
                warm = lvrm.adopt_checkpoint(&ck, &gained, primary, now_ns, host);
            }
            self.m_takeovers.inc();
            self.m_rehome_ns.set(now_ns.saturating_sub(last_heard) as f64);
        }
        for vr in &gained {
            // Whatever the shadow did not cover (or everything, on a cold
            // adopt) comes up owned with empty books.
            lvrm.adopt_vr_cold(vr, now_ns, host);
        }
        self.registry.push_event(
            now_ns,
            format!(
                "shard-map-adopted version={} gained={} warm={warm} released={released}",
                self.map.version,
                gained.len()
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> Vec<(String, Ipv4Addr, u8)> {
        (1..=6u8).map(|i| (format!("dept{i}"), Ipv4Addr::new(10, 0, i, 0), 24)).collect()
    }

    #[test]
    fn rendezvous_is_deterministic_and_total() {
        let shards = [0u32, 1, 2];
        for (vr, _, _) in universe() {
            let a = rendezvous_owner(&vr, &shards);
            let b = rendezvous_owner(&vr, &shards);
            assert_eq!(a, b);
            assert!(shards.contains(&a.unwrap()));
        }
        assert_eq!(rendezvous_owner("x", &[]), None);
        assert_eq!(rendezvous_owner("x", &[7]), Some(7));
    }

    #[test]
    fn partition_assigns_every_vr_exactly_once() {
        let map = ShardMap::partition(&universe(), &[0, 1, 2]);
        assert_eq!(map.version, 1);
        assert_eq!(map.entries.len(), 6);
        let total: usize = (0..3).map(|s| map.owned_by(s).len()).sum();
        assert_eq!(total, 6, "vrs_owned_total == vrs_declared at version 1");
    }

    #[test]
    fn rehoming_is_bounded_to_the_dead_shards_entries() {
        let map = ShardMap::partition(&universe(), &[0, 1, 2]);
        let dead = map.entries[0].shard;
        let survivors: Vec<u32> = [0, 1, 2].into_iter().filter(|&s| s != dead).collect();
        let after = map.rehomed(dead, &survivors);
        assert_eq!(after.version, map.version + 1);
        for (before, now) in map.entries.iter().zip(&after.entries) {
            if before.shard == dead {
                assert_eq!(now.shard, rendezvous_owner(&before.vr, &survivors).unwrap());
                assert_ne!(now.shard, dead);
            } else {
                assert_eq!(now.shard, before.shard, "surviving assignment moved: {}", now.vr);
            }
        }
        let total: usize = survivors.iter().map(|&s| after.owned_by(s).len()).sum();
        assert_eq!(total, 6, "fleet identity survives re-homing");
    }

    #[test]
    fn shard_map_codec_roundtrip_and_rejection() {
        let map = ShardMap::partition(&universe(), &[0, 1, 2]);
        let wire = map.encode();
        assert_eq!(&wire[..4], b"LVSM");
        assert_eq!(ShardMap::decode(&wire).unwrap(), map);
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x10;
            assert!(ShardMap::decode(&bad).is_err(), "flip at byte {i} accepted");
        }
        for len in 0..wire.len() {
            assert!(ShardMap::decode(&wire[..len]).is_err(), "truncation to {len} accepted");
        }
    }

    #[test]
    fn fleet_msg_kinds_roundtrip() {
        let map = ShardMap::partition(&universe(), &[0, 1]);
        let msgs = [
            FleetMsg::Advert { term: 3, shard_id: 1, epoch: 9, map_version: 4 },
            FleetMsg::Map { from: 0, map },
            FleetMsg::Snapshot { shard_id: 2, seq: 11, bytes: vec![1, 2, 3, 4, 5] },
            FleetMsg::Claim { dead: 1, epoch: 7, from: 2 },
            FleetMsg::ClaimAck { dead: 1, epoch: 7, from: 0 },
        ];
        for m in msgs {
            let wire = m.encode();
            assert_eq!(FleetMsg::decode(&wire).unwrap(), m, "roundtrip {m:?}");
        }
        assert!(FleetMsg::decode(b"LVSM").is_err());
        assert!(
            ShardMap::decode(&FleetMsg::Claim { dead: 0, epoch: 1, from: 1 }.encode()).is_err(),
            "a claim is not a map"
        );
    }
}
